module relest

go 1.22
