// Command relgen generates the synthetic datasets used throughout the
// repository as CSV files, so the CLI and external tools can replay the
// experiments' workloads.
//
// Usage:
//
//	relgen -kind zipf-pair -n 100000 -domain 10000 -z2 1.0 \
//	       -correlation independent -out-dir data/
//	relgen -kind clustered -n 100000 -regions 10 -out-dir data/
//	relgen -kind company -n 50000 -departments 25 -out-dir data/
//
// Every dataset is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "zipf-pair", "dataset kind: zipf-pair|clustered|company")
	n := flag.Int("n", 100_000, "tuples per relation")
	domain := flag.Int("domain", 10_000, "join attribute domain size")
	z1 := flag.Float64("z1", 0.5, "zipf-pair: skew of R1")
	z2 := flag.Float64("z2", 1.0, "zipf-pair: skew of R2")
	correlation := flag.String("correlation", "independent", "zipf-pair: positive|independent|negative")
	smooth := flag.Bool("smooth", false, "zipf-pair: orderly rank→value mapping")
	regions := flag.Int("regions", 10, "clustered: number of clusters")
	departments := flag.Int("departments", 25, "company: number of departments")
	seed := flag.Int64("seed", 1, "random seed")
	outDir := flag.String("out-dir", ".", "output directory")
	flag.Parse()

	rng := sampling.NewSource(*seed).Rand(0)
	var outputs []*relation.Relation
	switch *kind {
	case "zipf-pair":
		var corr workload.Correlation
		switch *correlation {
		case "positive":
			corr = workload.Positive
		case "independent":
			corr = workload.Independent
		case "negative":
			corr = workload.Negative
		default:
			return fmt.Errorf("unknown correlation %q", *correlation)
		}
		r1, r2 := workload.JoinPair(rng, workload.JoinPairSpec{
			Z1: *z1, Z2: *z2, Domain: *domain, N1: *n, N2: *n,
			Correlation: corr, Smooth: *smooth,
		})
		outputs = []*relation.Relation{r1, r2}
	case "clustered":
		r1, r2 := workload.ClusteredPair(rng, workload.ClusterSpec{
			Regions: *regions, Domain: *domain, N1: *n, N2: *n,
		})
		outputs = []*relation.Relation{r1, r2}
	case "company":
		emp, dept := workload.Company(rng, *n, *departments)
		outputs = []*relation.Relation{emp, dept}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	for _, r := range outputs {
		path := filepath.Join(*outDir, r.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := relation.ExportCSV(r, f); err != nil {
			_ = f.Close() // the export error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d rows, schema %s\n", path, r.Len(), r.Schema())
	}
	return nil
}
