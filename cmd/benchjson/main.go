// Command benchjson turns `go test -bench` output into the committed
// BENCH_N.json evidence files: it parses benchmark results (ns/op plus any
// ReportMetric extras) from stdin, attaches host information, compares
// against baseline numbers given on the command line, and writes one JSON
// document to stdout.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 50x . | benchjson \
//	    -issue 5 -title "..." \
//	    -baseline BenchmarkPointEstimateJoin=485350 \
//	    -baseline-metric heap-bytes/row=103.2 \
//	    -note "..." > BENCH_5.json
//
// Speedups are baseline/current: >1 means the current tree is faster (or,
// for byte metrics, smaller).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Issue             int                    `json:"issue,omitempty"`
	Title             string                 `json:"title,omitempty"`
	Date              string                 `json:"date"`
	Host              map[string]any         `json:"host"`
	Command           string                 `json:"command,omitempty"`
	Benchmarks        map[string]benchResult `json:"benchmarks"`
	BaselineNsPerOp   map[string]float64     `json:"baseline_ns_per_op,omitempty"`
	BaselineMetrics   map[string]float64     `json:"baseline_metrics,omitempty"`
	Speedup           map[string]float64     `json:"speedup,omitempty"`
	MetricImprovement map[string]float64     `json:"metric_improvement,omitempty"`
	Notes             []string               `json:"notes,omitempty"`
}

// benchLine matches one result row, e.g.
// "BenchmarkBuildIndex-4   30   1528797 ns/op   25.43 heap-bytes/row".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	issue := fs.Int("issue", 0, "issue number recorded in the report")
	title := fs.String("title", "", "headline recorded in the report")
	command := fs.String("command", "", "the benchmark command, for reproduction")
	rep := report{
		Benchmarks: map[string]benchResult{},
		Host: map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
	}
	fs.Func("baseline", "Name=ns_per_op baseline (repeatable)", func(s string) error {
		name, v, err := splitPair(s)
		if err != nil {
			return err
		}
		if rep.BaselineNsPerOp == nil {
			rep.BaselineNsPerOp = map[string]float64{}
		}
		rep.BaselineNsPerOp[name] = v
		return nil
	})
	fs.Func("baseline-metric", "unit=value baseline for a ReportMetric unit (repeatable)", func(s string) error {
		name, v, err := splitPair(s)
		if err != nil {
			return err
		}
		if rep.BaselineMetrics == nil {
			rep.BaselineMetrics = map[string]float64{}
		}
		rep.BaselineMetrics[name] = v
		return nil
	})
	fs.Func("note", "free-form note recorded in the report (repeatable)", func(s string) error {
		rep.Notes = append(rep.Notes, s)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep.Issue = *issue
	rep.Title = *title
	rep.Command = *command
	rep.Date = time.Now().UTC().Format("2006-01-02")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.Host["cpu"] = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("line %q: %v", line, err)
		}
		res := benchResult{NsPerOp: ns}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("line %q: metric %q: %v", line, fields[i+1], err)
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks[m[1]] = res
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	for name, base := range rep.BaselineNsPerOp {
		cur, ok := rep.Benchmarks[name]
		//lint:ignore floateq guarding division by a parsed literal zero, not a computed float
		if !ok || cur.NsPerOp == 0 {
			return fmt.Errorf("baseline %q has no benchmark result", name)
		}
		if rep.Speedup == nil {
			rep.Speedup = map[string]float64{}
		}
		rep.Speedup[name] = round2(base / cur.NsPerOp)
	}
	for unit, base := range rep.BaselineMetrics {
		cur, ok := findMetric(rep.Benchmarks, unit)
		//lint:ignore floateq guarding division by a parsed literal zero, not a computed float
		if !ok || cur == 0 {
			return fmt.Errorf("baseline metric %q has no benchmark result", unit)
		}
		if rep.MetricImprovement == nil {
			rep.MetricImprovement = map[string]float64{}
		}
		rep.MetricImprovement[unit] = round2(base / cur)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func splitPair(s string) (string, float64, error) {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return "", 0, fmt.Errorf("value in %q: %v", s, err)
	}
	return name, v, nil
}

func findMetric(benchmarks map[string]benchResult, unit string) (float64, bool) {
	for _, b := range benchmarks {
		if v, ok := b.Metrics[unit]; ok {
			return v, true
		}
	}
	return 0, false
}

func round2(x float64) float64 {
	v, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', 2, 64), 64)
	return v
}
