package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with the given args and returns its stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

// TestGoldenOutput pins the CLI's byte-exact output on the committed
// fixtures at a fixed seed, for serial and parallel evaluation. Any change
// to an estimate, to sampling, or to the output format shows up as a diff
// against the golden file. (-exact and -metrics are deliberately absent:
// they print wall-clock times.)
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		args   []string
	}{
		{
			name:   "count-join",
			golden: "testdata/count_join.golden",
			args: []string{
				"-rel", "orders=testdata/orders.csv",
				"-rel", "customers=testdata/customers.csv",
				"-query", "count(join(orders, customers, on cust_id = id))",
				"-seed", "42",
			},
		},
		{
			name:   "sum-select",
			golden: "testdata/sum_select.golden",
			args: []string{
				"-rel", "orders=testdata/orders.csv",
				"-query", "sum(select(orders, amount > 100), amount)",
				"-seed", "42",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []string{"1", "4"} {
				got := runCLI(t, append(tc.args, "-workers", workers)...)
				if got != string(want) {
					t.Errorf("workers=%s output differs from %s:\ngot:\n%s\nwant:\n%s",
						workers, tc.golden, got, want)
				}
			}
		})
	}
}

// TestMetricsOutput checks the -metrics exposition: the file must contain
// parseable Prometheus text (TYPE lines, the advertised families) followed
// by a valid JSON snapshot, and the flag must not change the estimate.
func TestMetricsOutput(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.out")
	trace := filepath.Join(dir, "trace.out")
	args := []string{
		"-rel", "orders=testdata/orders.csv",
		"-rel", "customers=testdata/customers.csv",
		"-query", "count(join(orders, customers, on cust_id = id))",
		"-seed", "42", "-workers", "4",
		"-metrics", metrics, "-trace", trace,
	}
	got := runCLI(t, args...)
	want, err := os.ReadFile("testdata/count_join.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-metrics changed the stdout output:\n%s", got)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	jsonStart := strings.Index(text, "\n{")
	if jsonStart < 0 {
		t.Fatalf("no JSON snapshot after the Prometheus text:\n%s", text)
	}
	prom, jsonPart := text[:jsonStart+1], text[jsonStart+1:]

	// Prometheus text: every non-comment line is "name[{labels}] value",
	// and the families the issue promises are present.
	for _, line := range strings.Split(strings.TrimSpace(prom), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable sample line %q", line)
		}
	}
	for _, family := range []string{
		"relest_plan_built_total",
		"relest_pool_workers",
		"relest_pool_busy_seconds_total",
		"relest_samples_rows_total",
		"relest_sampling_units_drawn_total",
		"relest_term_seconds",
		"relest_variance_method_total",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("Prometheus text missing family %q", family)
		}
	}

	var snap struct {
		Counters   map[string]float64        `json:"counters"`
		Gauges     map[string]float64        `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(jsonPart), &snap); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v\n%s", err, jsonPart)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("JSON snapshot is empty: %s", jsonPart)
	}
	if v := snap.Counters[`relest_samples_rows_total{rel="orders"}`]; v != 50 {
		t.Errorf("samples rows for orders = %v, want 50", v)
	}

	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), "relest_estimate") || !strings.Contains(string(tr), "relest_term") {
		t.Errorf("trace missing estimate/term spans:\n%s", tr)
	}
}

// TestStreamAndCSEMetrics checks the PR-6 families reach the -metrics
// exposition: -exact routes through the streaming executor (batch counter
// and peak-working-set gauge), and a union whose terms overlap on a join
// prefix drives the CSE sharing counter.
func TestStreamAndCSEMetrics(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.out")
	args := []string{
		"-rel", "orders=testdata/orders.csv",
		"-rel", "customers=testdata/customers.csv",
		"-rel", "orders2=testdata/orders.csv",
		"-query", "count(union(" +
			"join(join(customers, orders, on id = cust_id), select(orders2, amount > 0), on cust_id = id), " +
			"join(join(customers, orders, on id = cust_id), select(orders2, amount > 1), on cust_id = id)))",
		"-seed", "7", "-exact",
		"-metrics", metrics,
	}
	runCLI(t, args...)
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		"relest_stream_batches_total",
		"relest_stream_peak_bytes",
		"relest_cse_subplans_shared_total",
		"relest_cse_subplan_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("-metrics output missing family %q:\n%s", family, text)
		}
	}
}

// TestNoCSEFlag pins the -no-cse debugging switch: the estimate is
// bit-identical with sharing disabled and the sharing counter stays
// silent.
func TestNoCSEFlag(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.out")
	query := "count(union(" +
		"join(join(customers, orders, on id = cust_id), select(orders2, amount > 0), on cust_id = id), " +
		"join(join(customers, orders, on id = cust_id), select(orders2, amount > 1), on cust_id = id)))"
	base := []string{
		"-rel", "orders=testdata/orders.csv",
		"-rel", "customers=testdata/customers.csv",
		"-rel", "orders2=testdata/orders.csv",
		"-query", query,
		"-seed", "7",
	}
	withCSE := runCLI(t, base...)
	without := runCLI(t, append(append([]string{}, base...), "-no-cse", "-metrics", metrics)...)
	if withCSE != without {
		t.Errorf("-no-cse changed the output:\nwith CSE:\n%s\nwithout:\n%s", withCSE, without)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "relest_cse_subplans_shared_total") {
		t.Errorf("-no-cse run still recorded subplan sharing:\n%s", raw)
	}
}

// TestFlagValidation pins the CLI contract: unknown flags and stray
// positional arguments fail with a usage error instead of being
// silently ignored (all inputs are flags; a stray word is a typo).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray arg", []string{"estimate"}},
		{"flag then stray arg", []string{"-seed", "42", "extra"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("run(%v) succeeded; want a usage error", tc.args)
			}
		})
	}
}
