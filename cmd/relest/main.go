// Command relest estimates COUNT, SUM, AVG, GROUP BY and DISTINCT queries
// over CSV relations from small random samples, the way the CASE-DB front
// end would: load relations, parse a query, draw a synopsis, and report
// the estimate with its confidence interval — optionally alongside the
// exact answer for validation.
//
// Usage:
//
//	relest -rel orders=orders.csv -rel customers=customers.csv \
//	       -fraction 0.05 \
//	       -query "count(join(orders, customers, on cust_id = id))"
//
//	relest -rel emp=emp.csv -query "distinct(emp.dept)" -method jackknife
//	relest -rel emp=emp.csv -query "avg(select(emp, age > 50), salary)"
//	relest -rel emp=emp.csv -query "group(emp, dept)"
//
// Queries use the functional language documented in internal/query:
// count/sum/avg/group(...) over
// select/project/join/product/union/intersect/except, plus
// distinct(R.col, ...). Pass -exact to also compute the true answer,
// -target 0.05 for double sampling to a ±5% goal, or -deadline 50ms for a
// time-budgeted answer. Sampling designs: -page-size 100 samples whole
// pages (cluster sampling), -stratify rel=column draws a stratified sample
// of that relation. Plain count queries may opt into the tiered planner
// with -tier auto (sketch-first with per-term escalation) or -tier sketch,
// and -precision 0.05 sets the sketch acceptance band; the default
// -tier sample keeps the legacy byte-identical output.
//
// Observability: -metrics PATH writes the run's metrics on exit as
// Prometheus text followed by a JSON snapshot ("-" = stderr); -trace PATH
// writes the span tree (what took how long, nested). Neither flag changes
// the estimate: instrumentation is passive and the engine is bit-identical
// with it on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/obs"
	"relest/internal/parallel"
	"relest/internal/query"
	"relest/internal/relation"
	"relest/internal/sampling"
)

// relFlags accumulates repeated -rel name=path flags.
type relFlags map[string]string

func (r relFlags) String() string { return fmt.Sprint(map[string]string(r)) }

func (r relFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := r[name]; dup {
		return fmt.Errorf("relation %q given twice", name)
	}
	r[name] = path
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relest:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("relest", flag.ContinueOnError)
	rels := relFlags{}
	fs.Var(rels, "rel", "relation as name=path.csv (repeatable)")
	queryText := fs.String("query", "", "query, e.g. count(join(R, S, on a = a))")
	fraction := fs.Float64("fraction", 0.05, "sampling fraction per relation")
	minSample := fs.Int("min-sample", 50, "minimum sample size per relation")
	seed := fs.Int64("seed", 1, "random seed (estimates are reproducible per seed)")
	confidence := fs.Float64("confidence", 0.95, "confidence level for the interval")
	exact := fs.Bool("exact", false, "also compute the exact answer for comparison")
	target := fs.Float64("target", 0, "double sampling: target relative error (e.g. 0.05); 0 disables")
	deadline := fs.Duration("deadline", 0, "deadline mode: grow samples until this budget expires; 0 disables")
	method := fs.String("method", "jackknife", "distinct estimator: goodman|scale-up|sample-d|jackknife|gee")
	pageSize := fs.Int("page-size", 0, "page-level sampling: rows per page (0 = tuple-level SRSWOR)")
	stratify := fs.String("stratify", "", "stratified sampling as rel=column (proportional allocation by column value)")
	workers := fs.Int("workers", 0, "evaluation goroutines (0 = all CPUs, 1 = serial); estimates are identical for every setting")
	tier := fs.String("tier", "sample", "synopsis tiers for plain count queries: auto (sketch first, escalate per term), sketch (sketch only), sample (exact legacy path)")
	precision := fs.Float64("precision", 0, "target relative CI half-width for accepting a sketch-tier answer (0 = default 0.1); implies -tier auto unless one is given")
	noCSE := fs.Bool("no-cse", false, "disable cross-term subexpression sharing (estimates are bit-identical either way)")
	metricsOut := fs.String("metrics", "", `write metrics on exit (Prometheus text + JSON snapshot) to this file; "-" = stderr`)
	traceOut := fs.String("trace", "", `write the span trace on exit to this file; "-" = stderr`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q (all inputs are flags)", fs.Arg(0))
	}
	parallel.SetWorkers(*workers)

	// Observability is opt-in: the recorder stays nil (a no-op in the
	// engine) unless -metrics or -trace asks for output.
	var collector *obs.Collector
	var rec obs.Recorder
	if *metricsOut != "" || *traceOut != "" {
		collector = obs.NewCollector()
		if *traceOut != "" {
			collector.EnableTrace()
		}
		rec = collector
		sampling.SetRecorder(collector)
		defer sampling.SetRecorder(nil)
	}
	defer func() {
		if ferr := flushObs(collector, *metricsOut, *traceOut); ferr != nil && err == nil {
			err = ferr
		}
	}()

	if len(rels) == 0 {
		return fmt.Errorf("no relations; pass at least one -rel name=path.csv")
	}
	if *queryText == "" {
		return fmt.Errorf("no query; pass -query")
	}

	cat := algebra.MapCatalog{}
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := rels[name]
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := relation.ImportCSV(name, f, nil)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		cat[name] = r
		fmt.Fprintf(stdout, "loaded %s: %d rows, schema %s\n", name, r.Len(), r.Schema())
	}

	st, err := query.Parse(*queryText, query.CatalogSchemas{Cat: cat})
	if err != nil {
		return err
	}

	tierPolicy, err := estimator.ParseTierPolicy(*tier)
	if err != nil {
		return err
	}
	// The tier planner answers plain counts only; -tier sample (the
	// default) keeps every other query shape on its legacy path.
	tiered := (tierPolicy != estimator.TierDefault && tierPolicy != estimator.TierSampleOnly) || *precision > 0
	if tiered && (st.IsDistinct() || st.Agg != "count" || *deadline > 0 || *target > 0) {
		return fmt.Errorf("-tier/-precision apply to plain count queries only")
	}

	stratRel, stratCol := "", ""
	if *stratify != "" {
		var ok bool
		stratRel, stratCol, ok = strings.Cut(*stratify, "=")
		if !ok {
			return fmt.Errorf("-stratify wants rel=column, got %q", *stratify)
		}
		if _, known := cat[stratRel]; !known {
			return fmt.Errorf("-stratify relation %q not loaded", stratRel)
		}
	}

	if collector != nil {
		bytes := 0
		for _, name := range names {
			bytes += cat[name].Bytes()
		}
		collector.Set(obs.MetricRelationBytes, float64(bytes))
	}

	rng := sampling.NewSource(*seed).Rand(0)
	syn := estimator.NewSynopsis()
	// Draw in sorted-name order: sampling consumes a shared stream, so
	// map-order iteration would make the estimate depend on Go's
	// randomized map walk rather than on -seed alone.
	for _, name := range names {
		r := cat[name]
		n := int(*fraction * float64(r.Len()))
		if n < *minSample {
			n = *minSample
		}
		if n > r.Len() {
			n = r.Len()
		}
		switch {
		case r.Name() == stratRel:
			pos := r.Schema().ColumnIndex(stratCol)
			if pos < 0 {
				return fmt.Errorf("-stratify column %q not in relation %q", stratCol, stratRel)
			}
			if err := syn.AddDrawnStratified(r, func(row relation.Row) int {
				return int(row.Value(pos).Hash())
			}, n, rng); err != nil {
				return err
			}
			got, _ := syn.SampleSize(r.Name())
			fmt.Fprintf(stdout, "sampled %s: %d of %d rows (stratified by %s)\n", r.Name(), got, r.Len(), stratCol)
		case *pageSize > 0:
			pages := (n + *pageSize - 1) / *pageSize
			maxPages := (r.Len() + *pageSize - 1) / *pageSize
			if pages > maxPages {
				pages = maxPages
			}
			if err := syn.AddDrawnPages(r, *pageSize, pages, rng); err != nil {
				return err
			}
			got, _ := syn.SampleSize(r.Name())
			fmt.Fprintf(stdout, "sampled %s: %d rows in %d pages of %d\n", r.Name(), got, pages, *pageSize)
		default:
			if err := syn.AddDrawn(r, n, rng); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "sampled %s: %d of %d rows\n", r.Name(), n, r.Len())
		}
	}

	if st.IsDistinct() {
		m, err := distinctMethod(*method)
		if err != nil {
			return err
		}
		got, err := estimator.Distinct(syn, st.DistinctRel, st.DistinctCols, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ndistinct estimate (%s): %.1f\n", m, got)
		if *exact {
			e, err := algebra.Project(algebra.BaseOf(cat[st.DistinctRel]), st.DistinctCols...)
			if err != nil {
				return err
			}
			actual, err := algebra.StreamCountOpts(e, cat, algebra.StreamOptions{Workers: *workers, Rec: rec})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "exact distinct:          %d\n", actual)
		}
		return nil
	}

	opts := estimator.Options{Confidence: *confidence, Workers: *workers, DisableCSE: *noCSE, Recorder: rec}
	if st.Agg == "group" {
		groups, err := estimator.GroupCount(st.Expr, st.AggCol, syn)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ntop groups by estimated COUNT(*) GROUP BY %s:\n", st.AggCol)
		limit := 15
		for i, g := range groups {
			if i >= limit {
				fmt.Fprintf(stdout, "  ... and %d more groups\n", len(groups)-limit)
				break
			}
			fmt.Fprintf(stdout, "  %-12v %12.1f\n", g.Value, g.Count)
		}
		return nil
	}
	if st.Agg == "sum" || st.Agg == "avg" {
		if *deadline > 0 || *target > 0 {
			return fmt.Errorf("sum/avg queries support plain estimation only (no -deadline/-target)")
		}
		switch st.Agg {
		case "sum":
			est, err := estimator.SumWithOptions(st.Expr, st.AggCol, syn, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nSUM(%s) estimate: %.1f\n", st.AggCol, est.Value)
			printCI(stdout, est)
		case "avg":
			res, err := estimator.Avg(st.Expr, st.AggCol, syn, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nAVG(%s) estimate: %.3f (SUM %.1f / COUNT %.1f)\n",
				st.AggCol, res.Avg, res.Sum.Value, res.Count.Value)
		}
		if *exact {
			//lint:ignore materialize exact SUM/AVG reads the aggregate column off every result row
			res, err := algebra.Eval(st.Expr, cat)
			if err != nil {
				return err
			}
			pos := res.Schema().MustColumnIndex(st.AggCol)
			sum, cnt := 0.0, 0
			res.EachRow(func(i int, row relation.Row) bool {
				if v := row.Value(pos); !v.IsNull() {
					sum += v.Float64()
					cnt++
				}
				return true
			})
			if st.Agg == "sum" {
				fmt.Fprintf(stdout, "exact SUM: %.1f\n", sum)
			} else if cnt > 0 {
				fmt.Fprintf(stdout, "exact AVG: %.3f\n", sum/float64(res.Len()))
			}
		}
		return nil
	}
	switch {
	case *deadline > 0:
		est, history, err := estimator.DeadlineCountContext(context.Background(), st.Expr, syn, estimator.DeadlineOptions{
			Budget:   *deadline,
			Estimate: opts,
			RNG:      rng,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ndeadline estimate after %d rounds: %.1f\n", len(history), est.Value)
		printCI(stdout, est)
	case *target > 0:
		res, err := estimator.SequentialCountContext(context.Background(), st.Expr, syn, estimator.SequentialOptions{
			TargetRelErr: *target,
			Confidence:   *confidence,
			Estimate:     opts,
			RNG:          rng,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\npilot estimate:  %.1f (±%.1f)\n", res.Pilot.Value, res.Pilot.StdErr)
		fmt.Fprintf(stdout, "growth factor:   %.2f, final samples %v\n", res.GrowthFactor, res.SampleSizes)
		fmt.Fprintf(stdout, "final estimate:  %.1f\n", res.Final.Value)
		printCI(stdout, res.Final)
		fmt.Fprintf(stdout, "target met:      %v\n", res.TargetMet)
	default:
		// Every plain count goes through the unified handle; -tier sample
		// (the default) pins the legacy sample-only path bit for bit, so
		// the output is byte-identical to earlier releases.
		policy := tierPolicy
		if !tiered {
			policy = estimator.TierSampleOnly
		}
		h := estimator.NewEstimator(syn,
			estimator.WithOptions(opts),
			estimator.WithTierPolicy(policy),
			estimator.WithPrecision(*precision))
		res, err := h.Count(context.Background(), estimator.Request{Expr: st.Expr})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nestimate: %.1f\n", res.Value)
		printCI(stdout, res.Estimate)
		if tiered {
			fmt.Fprintf(stdout, "tier:     %s (%d sketch, %d sample terms)\n",
				res.Tier.Answered, res.Tier.SketchTerms, res.Tier.SampleTerms)
		}
	}

	if *exact {
		start := time.Now()
		actual, err := algebra.StreamCountOpts(st.Expr, cat, algebra.StreamOptions{Workers: *workers, Rec: rec})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "exact:    %d (computed in %s)\n", actual, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func printCI(stdout io.Writer, est estimator.Estimate) {
	if est.StdErr > 0 {
		fmt.Fprintf(stdout, "stderr:   %.1f (variance via %s)\n", est.StdErr, est.VarianceMethod)
		fmt.Fprintf(stdout, "%.0f%% CI:   [%.1f, %.1f]\n", 100*est.Confidence, est.Lo, est.Hi)
	}
}

func distinctMethod(name string) (estimator.DistinctMethod, error) {
	switch strings.ToLower(name) {
	case "goodman":
		return estimator.DistinctGoodman, nil
	case "scale-up", "scaleup":
		return estimator.DistinctScaleUp, nil
	case "sample-d", "sampled":
		return estimator.DistinctSampleD, nil
	case "jackknife":
		return estimator.DistinctJackknife, nil
	case "gee":
		return estimator.DistinctGEE, nil
	default:
		return 0, fmt.Errorf("unknown distinct method %q", name)
	}
}

// flushObs writes the collected metrics and trace to their destinations on
// exit ("-" = stderr). A nil collector (observability off) is a no-op.
func flushObs(c *obs.Collector, metricsPath, tracePath string) error {
	if c == nil {
		return nil
	}
	if metricsPath != "" {
		w, done, err := openOut(metricsPath)
		if err != nil {
			return err
		}
		werr := c.Metrics().WritePrometheus(w)
		if werr == nil {
			werr = c.Metrics().WriteJSON(w)
		}
		if cerr := done(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing -metrics: %w", werr)
		}
	}
	if tracePath != "" {
		w, done, err := openOut(tracePath)
		if err != nil {
			return err
		}
		werr := c.Trace().WriteText(w)
		if cerr := done(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing -trace: %w", werr)
		}
	}
	return nil
}

// openOut resolves an output destination: "-" is stderr (never closed),
// anything else is created as a file whose Close the caller must run.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stderr, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
