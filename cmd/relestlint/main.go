// Command relestlint runs relest's repo-specific static analyzers: the
// determinism, RNG-discipline, and concurrency invariants the estimation
// engine depends on (see internal/lint). It type-checks the whole module
// from source with the standard library only.
//
// Usage:
//
//	relestlint [-root dir] [-pkg substring] [-rules r1,r2] [-json] [-list]
//
// Findings print as "file:line:col: [rule] message" with paths relative
// to the module root, sorted by position; with -json they print instead
// as a JSON array of {file,line,col,rule,msg} objects (one stable
// machine-readable artifact per run — see `make lint-json`). The exit
// status is 1 when any unsuppressed finding exists, 2 on load/usage
// errors. Suppress a finding site with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"relest/internal/lint"
)

// jsonFinding is the -json wire shape for one finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	root := flag.String("root", ".", "directory inside the module to lint")
	pkgFilter := flag.String("pkg", "", "only lint packages whose import path contains this substring")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "relestlint: unexpected argument %q (targets are selected with -root and -pkg)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		keep := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			keep[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for r := range keep {
			fmt.Fprintf(os.Stderr, "relestlint: unknown rule %q (use -list)\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relestlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "relestlint: %v\n", err)
		os.Exit(2)
	}
	if *pkgFilter != "" {
		var sel []*lint.Package
		for _, p := range pkgs {
			if strings.Contains(p.Path, *pkgFilter) {
				sel = append(sel, p)
			}
		}
		pkgs = sel
	}

	findings := lint.Run(pkgs, analyzers)
	lint.Relativize(findings, loader.ModuleRoot())
	if *jsonOut {
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Msg: f.Msg}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "relestlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "relestlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
