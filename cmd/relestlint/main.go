// Command relestlint runs relest's repo-specific static analyzers: the
// determinism, RNG-discipline, and concurrency invariants the estimation
// engine depends on (see internal/lint). It type-checks the whole module
// from source with the standard library only.
//
// Usage:
//
//	relestlint [-root dir] [-pkg substring] [-rules r1,r2] [-list]
//
// Findings print as "file:line:col: [rule] message" with paths relative
// to the module root; the exit status is 1 when any unsuppressed finding
// exists, 2 on load/usage errors. Suppress a finding site with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relest/internal/lint"
)

func main() {
	root := flag.String("root", ".", "directory inside the module to lint")
	pkgFilter := flag.String("pkg", "", "only lint packages whose import path contains this substring")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		keep := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			keep[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for r := range keep {
			fmt.Fprintf(os.Stderr, "relestlint: unknown rule %q (use -list)\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relestlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "relestlint: %v\n", err)
		os.Exit(2)
	}
	if *pkgFilter != "" {
		var sel []*lint.Package
		for _, p := range pkgs {
			if strings.Contains(p.Path, *pkgFilter) {
				sel = append(sel, p)
			}
		}
		pkgs = sel
	}

	findings := lint.Run(pkgs, analyzers)
	lint.Relativize(findings, loader.ModuleRoot())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "relestlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
