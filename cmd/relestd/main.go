// Command relestd runs the estimation daemon: an HTTP service that
// registers relations (CSV upload or synthetic generation), maintains
// named synopses — one-shot static draws and incrementally-maintained
// samples fed by an insert/delete stream — and answers estimation
// requests from them.
//
// Usage:
//
//	relestd -addr 127.0.0.1:7878 -concurrency 8 -queue 64 -timeout 30s
//
// The daemon prints "relestd listening on ADDR" once the listener is
// bound, serves until SIGINT/SIGTERM, then drains: new estimates are
// refused while every admitted request still gets its answer.
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	POST /v1/relations/{name}        register the CSV request body
//	POST /v1/generate                synthesize a dataset (relgen kinds)
//	GET  /v1/relations               list registered relations
//	POST /v1/synopses/{name}         create a static or incremental synopsis
//	POST /v1/synopses/{name}/stream  feed one insert/delete event
//	GET  /v1/synopses                list synopses
//	POST /v1/estimate                estimate count/sum/avg from a synopsis
//	POST /v1/estimate/batch          many estimates in one admitted request
//	POST /v1/snapshot                persist state to -snapshot-dir
//	GET  /metrics                    Prometheus text metrics
//	GET  /healthz                    liveness and drain state
//
// Estimates are deterministic for a pinned seed: the response bytes
// match a direct library call, for every concurrency setting.
//
// Cluster modes:
//
//	relestd -role coordinator -shard-addrs http://h1:7878,http://h2:7878
//	relestd -shards 4
//
// A coordinator fronts stock relestd shard nodes, hash- or range-sharding
// registered relations by -shard-key and answering estimates by
// stratified merge of per-shard partials (byte-identical to a single node
// at one shard). -shards N runs coordinator and N shard nodes inside one
// process. Coordinators add POST /v1/cluster/rebalance and
// GET /v1/cluster, and their /metrics merges every shard's families under
// distinct shard="N" labels.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relest/internal/cluster"
	"relest/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relestd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relestd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7878", "listen address (port 0 picks a free port)")
	concurrency := fs.Int("concurrency", 0, "estimation workers (0 = all CPUs)")
	queue := fs.Int("queue", 64, "admission queue depth; excess requests are shed with 429")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request wall-clock cap")
	workers := fs.Int("workers", 0, "per-estimate evaluation parallelism (0 = library default); estimates are identical for every setting")
	maxUpload := fs.Int64("max-upload-bytes", 0, "CSV upload size cap in bytes; imports stream, so this bounds upload memory (0 = 64 MiB default)")
	snapshotDir := fs.String("snapshot-dir", "", "directory for snapshot/restore and the append-only stream log; restored on start, saved on POST /v1/snapshot and on shutdown (empty = persistence off)")
	synBudget := fs.Int64("synopsis-budget-bytes", 0, "total resident static synopsis bytes before LRU eviction; evicted synopses rebuild transparently on next use (0 = unlimited)")
	tenantSlots := fs.Int("tenant-queue-slots", 0, "concurrently admitted estimation requests per tenant before 429 (0 = unlimited)")
	tenantBytes := fs.Int64("tenant-synopsis-bytes", 0, "resident static synopsis bytes per tenant before creations are rejected with 413 (0 = unlimited)")
	role := fs.String("role", "single", "\"single\" (stock daemon) or \"coordinator\" (front a -shard-addrs cluster)")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard node base URLs (coordinator role)")
	shards := fs.Int("shards", 0, "run an in-process cluster: a coordinator fronting this many shard nodes in one binary (0 = off)")
	shardKey := fs.String("shard-key", "", "default shard-key column for registered relations (empty = first column)")
	shardMode := fs.String("shard-mode", "hash", "shard routing: \"hash\" or \"range\" (range needs -shard-bounds)")
	shardBounds := fs.String("shard-bounds", "", "comma-separated ascending int upper bounds for range mode (one fewer than the shard count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if narg := fs.NArg(); narg > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	switch *role {
	case "single":
		if *shardAddrs != "" {
			return fmt.Errorf("-shard-addrs requires -role coordinator")
		}
	case "coordinator":
		if *shards > 0 {
			return fmt.Errorf("-shards runs its own in-process coordinator; it conflicts with -role coordinator")
		}
		if *shardAddrs == "" {
			return fmt.Errorf("-role coordinator requires -shard-addrs")
		}
	default:
		return fmt.Errorf("unknown role %q (want single or coordinator)", *role)
	}
	bounds, err := parseBounds(*shardBounds)
	if err != nil {
		return err
	}
	if (*role == "coordinator" || *shards > 0) && *snapshotDir != "" {
		// A coordinator holds no synopses of its own and in-process shard
		// nodes would collide inside one snapshot directory; refusing beats
		// silently not persisting.
		return fmt.Errorf("-snapshot-dir is a single-node feature")
	}

	shardCfg := server.Config{
		Concurrency:         *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		EstimatorWorkers:    *workers,
		MaxUploadBytes:      *maxUpload,
		SynopsisBytesBudget: *synBudget,
		TenantQueueSlots:    *tenantSlots,
		TenantSynopsisBytes: *tenantBytes,
	}
	if *role == "coordinator" {
		coord, err := cluster.New(cluster.Config{
			Addr:            *addr,
			ShardAddrs:      strings.Split(*shardAddrs, ","),
			Spec:            cluster.ShardSpec{Shards: len(strings.Split(*shardAddrs, ",")), Mode: *shardMode, Bounds: bounds},
			DefaultShardKey: *shardKey,
			RequestTimeout:  *timeout,
		})
		if err != nil {
			return err
		}
		if err := coord.Start(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "relestd listening on %s\n", coord.Addr())
		fmt.Fprintf(stdout, "relestd coordinator over %d shards\n", len(strings.Split(*shardAddrs, ",")))
		return awaitSignals(stdout, 2**timeout, coord.Shutdown)
	}
	if *shards > 0 {
		h, err := cluster.StartHarness(cluster.HarnessConfig{
			Shards:      *shards,
			Mode:        *shardMode,
			Bounds:      bounds,
			ShardKey:    *shardKey,
			Shard:       shardCfg,
			Coordinator: cluster.Config{Addr: *addr, RequestTimeout: *timeout},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "relestd listening on %s\n", h.Addr())
		for i, node := range h.Shards {
			fmt.Fprintf(stdout, "relestd shard %d on %s\n", i, node.Addr())
		}
		return awaitSignals(stdout, 2**timeout, h.Close)
	}

	srv := server.New(server.Config{
		Addr:                *addr,
		Concurrency:         *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		EstimatorWorkers:    *workers,
		MaxUploadBytes:      *maxUpload,
		SnapshotDir:         *snapshotDir,
		SynopsisBytesBudget: *synBudget,
		TenantQueueSlots:    *tenantSlots,
		TenantSynopsisBytes: *tenantBytes,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "relestd listening on %s\n", srv.Addr())

	return awaitSignals(stdout, 2**timeout, srv.Shutdown)
}

// awaitSignals blocks until SIGINT/SIGTERM, then drains through shutdown
// with the given grace period. All daemon roles share this tail so their
// lifecycle lines stay identical.
func awaitSignals(stdout io.Writer, grace time.Duration, shutdown func(context.Context) error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(stdout, "relestd draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "relestd stopped")
	return nil
}

// parseBounds parses the -shard-bounds list.
func parseBounds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, f := range strings.Split(s, ",") {
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil {
			return nil, fmt.Errorf("parsing -shard-bounds entry %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
