// Command relestd runs the estimation daemon: an HTTP service that
// registers relations (CSV upload or synthetic generation), maintains
// named synopses — one-shot static draws and incrementally-maintained
// samples fed by an insert/delete stream — and answers estimation
// requests from them.
//
// Usage:
//
//	relestd -addr 127.0.0.1:7878 -concurrency 8 -queue 64 -timeout 30s
//
// The daemon prints "relestd listening on ADDR" once the listener is
// bound, serves until SIGINT/SIGTERM, then drains: new estimates are
// refused while every admitted request still gets its answer.
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	POST /v1/relations/{name}        register the CSV request body
//	POST /v1/generate                synthesize a dataset (relgen kinds)
//	GET  /v1/relations               list registered relations
//	POST /v1/synopses/{name}         create a static or incremental synopsis
//	POST /v1/synopses/{name}/stream  feed one insert/delete event
//	GET  /v1/synopses                list synopses
//	POST /v1/estimate                estimate count/sum/avg from a synopsis
//	POST /v1/estimate/batch          many estimates in one admitted request
//	POST /v1/snapshot                persist state to -snapshot-dir
//	GET  /metrics                    Prometheus text metrics
//	GET  /healthz                    liveness and drain state
//
// Estimates are deterministic for a pinned seed: the response bytes
// match a direct library call, for every concurrency setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relest/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relestd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relestd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7878", "listen address (port 0 picks a free port)")
	concurrency := fs.Int("concurrency", 0, "estimation workers (0 = all CPUs)")
	queue := fs.Int("queue", 64, "admission queue depth; excess requests are shed with 429")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request wall-clock cap")
	workers := fs.Int("workers", 0, "per-estimate evaluation parallelism (0 = library default); estimates are identical for every setting")
	maxUpload := fs.Int64("max-upload-bytes", 0, "CSV upload size cap in bytes; imports stream, so this bounds upload memory (0 = 64 MiB default)")
	snapshotDir := fs.String("snapshot-dir", "", "directory for snapshot/restore and the append-only stream log; restored on start, saved on POST /v1/snapshot and on shutdown (empty = persistence off)")
	synBudget := fs.Int64("synopsis-budget-bytes", 0, "total resident static synopsis bytes before LRU eviction; evicted synopses rebuild transparently on next use (0 = unlimited)")
	tenantSlots := fs.Int("tenant-queue-slots", 0, "concurrently admitted estimation requests per tenant before 429 (0 = unlimited)")
	tenantBytes := fs.Int64("tenant-synopsis-bytes", 0, "resident static synopsis bytes per tenant before creations are rejected with 413 (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if narg := fs.NArg(); narg > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	srv := server.New(server.Config{
		Addr:                *addr,
		Concurrency:         *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		EstimatorWorkers:    *workers,
		MaxUploadBytes:      *maxUpload,
		SnapshotDir:         *snapshotDir,
		SynopsisBytesBudget: *synBudget,
		TenantQueueSlots:    *tenantSlots,
		TenantSynopsisBytes: *tenantBytes,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "relestd listening on %s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(stdout, "relestd draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2**timeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "relestd stopped")
	return nil
}
