package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFlagValidation pins the CLI contract: bad flags and stray
// positional arguments fail with a usage error instead of being
// silently ignored.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray arg", []string{"serve"}},
		{"flag then stray arg", []string{"-queue", "8", "extra"}},
		{"unknown role", []string{"-role", "replica"}},
		{"coordinator without shard addrs", []string{"-role", "coordinator"}},
		{"shard addrs without coordinator role", []string{"-shard-addrs", "http://h1:7878"}},
		{"shards conflicts with coordinator role", []string{"-role", "coordinator", "-shard-addrs", "http://h1:7878", "-shards", "2"}},
		{"snapshot dir in cluster mode", []string{"-shards", "2", "-snapshot-dir", "/tmp/x"}},
		{"bad shard bounds", []string{"-shards", "2", "-shard-mode", "range", "-shard-bounds", "ten"}},
		{"range bounds mismatch", []string{"-shards", "3", "-shard-mode", "range", "-shard-bounds", "10"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("run(%v) succeeded; want a usage error", tc.args)
			}
		})
	}
}

// TestDaemonSmoke builds the real binary and walks the whole service
// lifecycle: start, register data, estimate, scrape metrics, SIGTERM,
// clean exit. Everything runs sequentially off the daemon's stdout — the
// first line carries the bound address, the drain messages follow the
// signal.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary")
	}
	bin := filepath.Join(t.TempDir(), "relestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-queue", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line: %v", scanner.Err())
	}
	first := scanner.Text()
	addr, ok := strings.CutPrefix(first, "relestd listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", first)
	}
	base := "http://" + addr

	post := func(path string, body any) (int, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if status, out := post("/v1/generate", map[string]any{
		"kind": "zipf-pair", "n": 2000, "domain": 200, "seed": 7,
	}); status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, out)
	}
	if status, out := post("/v1/synopses/main", map[string]any{
		"kind": "static", "relations": map[string]int{"R1": 200, "R2": 200}, "seed": 9,
	}); status != http.StatusCreated {
		t.Fatalf("synopsis: %d %s", status, out)
	}
	status, out := post("/v1/estimate", map[string]any{
		"query": "count(join(R1, R2, on a = a))", "synopsis": "main", "seed": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, out)
	}
	var resp struct {
		Estimate struct {
			Value float64 `json:"value"`
		} `json:"estimate"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("decoding %s: %v", out, err)
	}
	if resp.Estimate.Value <= 0 {
		t.Fatalf("estimate value = %v", resp.Estimate.Value)
	}

	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metricsResp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "relestd_requests_total") {
		t.Errorf("/metrics lacks the request counter:\n%s", metrics)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail []string
	deadline := time.Now().Add(30 * time.Second)
	for scanner.Scan() {
		tail = append(tail, scanner.Text())
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not finish draining; output so far: %v", tail)
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v (output %v)", err, tail)
	}
	joined := strings.Join(tail, "\n")
	if !strings.Contains(joined, "relestd draining") || !strings.Contains(joined, "relestd stopped") {
		t.Errorf("drain messages missing from shutdown output: %v", tail)
	}
}

// TestClusterSmoke walks the -shards mode end to end against the real
// binary: one process runs a coordinator and two shard nodes, answers a
// sharded estimate, exposes the merged shard-labelled metrics, and
// drains cleanly on SIGTERM.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary")
	}
	bin := filepath.Join(t.TempDir(), "relestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-shards", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line: %v", scanner.Err())
	}
	first := scanner.Text()
	addr, ok := strings.CutPrefix(first, "relestd listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", first)
	}
	for i := 0; i < 2; i++ {
		if !scanner.Scan() {
			t.Fatalf("missing shard %d startup line: %v", i, scanner.Err())
		}
		if line := scanner.Text(); !strings.HasPrefix(line, "relestd shard ") {
			t.Fatalf("unexpected shard startup line %q", line)
		}
	}
	base := "http://" + addr

	post := func(path string, body any) (int, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if status, out := post("/v1/generate", map[string]any{
		"kind": "zipf-pair", "n": 2000, "domain": 200, "seed": 7,
	}); status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, out)
	}
	if status, out := post("/v1/synopses/main", map[string]any{
		"kind": "static", "relations": map[string]int{"R1": 200, "R2": 200}, "seed": 9,
	}); status != http.StatusCreated {
		t.Fatalf("synopsis: %d %s", status, out)
	}
	status, out := post("/v1/estimate", map[string]any{
		"query": "count(join(R1, R2, on a = a))", "synopsis": "main", "seed": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, out)
	}
	var resp struct {
		Estimate struct {
			Value float64 `json:"value"`
		} `json:"estimate"`
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("decoding %s: %v", out, err)
	}
	if resp.Estimate.Value <= 0 || resp.Partial {
		t.Fatalf("cluster estimate value=%v partial=%v", resp.Estimate.Value, resp.Partial)
	}

	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metricsResp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"relestd_shard_fanout_total", `shard="0"`, `shard="1"`} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail []string
	deadline := time.Now().Add(30 * time.Second)
	for scanner.Scan() {
		tail = append(tail, scanner.Text())
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not finish draining; output so far: %v", tail)
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v (output %v)", err, tail)
	}
	joined := strings.Join(tail, "\n")
	if !strings.Contains(joined, "relestd draining") || !strings.Contains(joined, "relestd stopped") {
		t.Errorf("drain messages missing from shutdown output: %v", tail)
	}
}
