package main

import "testing"

// TestFlagValidation pins the CLI contract: unknown flags and stray
// positional arguments fail with a usage error instead of being
// silently ignored (a mistyped `-exp T2 T6` used to run everything).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray arg", []string{"T2"}},
		{"flag then stray arg", []string{"-exp", "T2", "T6"}},
		{"stray after bool flag", []string{"-markdown", "tables"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Fatalf("run(%v) succeeded; want a usage error", tc.args)
			}
		})
	}
}
