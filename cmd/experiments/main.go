// Command experiments regenerates the evaluation tables and figures
// (DESIGN.md experiment index T1–T7, F1–F4). The full-scale run is what
// EXPERIMENTS.md records; the quick scale is sized for smoke runs.
//
// Usage:
//
//	experiments                # run everything, quick scale, plain tables
//	experiments -full          # full scale (minutes)
//	experiments -exp T2,T6     # a subset
//	experiments -markdown      # emit markdown (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"relest/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "comma-separated experiment ids (T1..T7, F1..F4) or 'all'")
	full := fs.Bool("full", false, "full scale (EXPERIMENTS.md sizes; takes minutes)")
	markdown := fs.Bool("markdown", false, "render markdown instead of plain tables")
	seed := fs.Int64("seed", 42, "root random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	scale := bench.Scale{Quick: !*full}
	type timing struct {
		id      string
		elapsed time.Duration
	}
	var timings []timing
	for _, id := range ids {
		e, err := bench.Lookup(id)
		if err != nil {
			return err
		}
		start := time.Now()
		tab := e.Run(*seed, scale)
		elapsed := time.Since(start).Round(10 * time.Millisecond)
		timings = append(timings, timing{id: id, elapsed: elapsed})
		if *markdown {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.Plain())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n\n", id, elapsed)
	}
	// Per-table timing summary: where the suite's time went, worst first.
	if len(timings) > 1 {
		sorted := append([]timing(nil), timings...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].elapsed > sorted[j].elapsed })
		total := time.Duration(0)
		fmt.Fprintln(os.Stderr, "timing summary:")
		for _, tm := range sorted {
			total += tm.elapsed
			fmt.Fprintf(os.Stderr, "  %-4s %10s\n", tm.id, tm.elapsed)
		}
		fmt.Fprintf(os.Stderr, "  %-4s %10s\n", "all", total.Round(10*time.Millisecond))
	}
	return nil
}
