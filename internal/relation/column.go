package relation

// Columnar storage: each column of a relation is one dense typed vector —
// []int64 for int columns, []float64 for float columns, a []uint32 code
// vector over an append-only string dictionary for string columns — plus a
// null bitmap. Row access gathers values across vectors by position.
//
// The immutability discipline every view and index relies on: entries
// [0, len) of a column vector, a null bitmap, and a dictionary are NEVER
// rewritten once appended. Appends only extend. A view therefore pins
// stable data by snapshotting the column slices clamped to the base's
// length at view-creation time (copy-on-write by construction: a later
// append to the base may grow or even reallocate the base's slices, but it
// cannot change any entry a live view can read).

// dict is an append-only string dictionary shared by a column and every
// view over it. Codes are assigned in first-appearance order; entry hashes
// (Value.Hash of the string) are cached so index builds hash string rows
// without rescanning bytes.
type dict struct {
	strs   []string
	hashes []uint64
	index  map[string]uint32
}

func newDict() *dict { return &dict{index: make(map[string]uint32)} }

// code interns s, returning its stable code.
func (d *dict) code(s string) uint32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.hashes = append(d.hashes, Str(s).Hash())
	d.index[s] = c
	return c
}

// codeWithHash interns s whose Value.Hash is already known (the cross-
// dictionary copy path), skipping the rescan of the string bytes. Codes
// are assigned in first-appearance order exactly as code does.
func (d *dict) codeWithHash(s string, h uint64) uint32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.hashes = append(d.hashes, h)
	d.index[s] = c
	return c
}

// bytes estimates the dictionary's resident size.
func (d *dict) bytes() int {
	b := len(d.strs)*16 + len(d.hashes)*8
	for _, s := range d.strs {
		b += len(s) * 2 // string bytes plus the interning map's key copy
	}
	b += len(d.strs) * 8 // map entry overhead (code + bucket slot), rough
	return b
}

// column is the typed storage of one column. Exactly one vector is
// populated, selected by kind; nulls carry a zero entry in the vector and a
// set bit in the bitmap. KindNull columns store only the bitmap.
type column struct {
	kind   Kind
	ints   []int64
	floats []float64
	codes  []uint32
	dict   *dict
	nulls  []uint64 // bit i set = row i is null; nil when no nulls so far
}

func newColumn(kind Kind) column {
	c := column{kind: kind}
	if kind == KindString {
		c.dict = newDict()
	}
	return c
}

// isNull reports whether row i is null.
func (c *column) isNull(i int) bool {
	w := i >> 6
	return w < len(c.nulls) && c.nulls[w]&(1<<(uint(i)&63)) != 0
}

// setNull marks row i null, growing the bitmap to cover it.
func (c *column) setNull(i int) {
	w := i >> 6
	for len(c.nulls) <= w {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[w] |= 1 << (uint(i) & 63)
}

// appendValue appends v (already validated: null or the column's kind).
func (c *column) appendValue(i int, v Value) {
	if v.IsNull() {
		c.setNull(i)
		switch c.kind {
		case KindInt:
			c.ints = append(c.ints, 0)
		case KindFloat:
			c.floats = append(c.floats, 0)
		case KindString:
			c.codes = append(c.codes, 0)
		}
		return
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, v.i)
	case KindFloat:
		c.floats = append(c.floats, v.f)
	case KindString:
		c.codes = append(c.codes, c.dict.code(v.s))
	}
}

// grow reserves capacity for extra more rows beyond the current length,
// so a bulk append of known size pays one reallocation instead of a
// doubling cascade.
func (c *column) grow(extra int) {
	switch c.kind {
	case KindInt:
		c.ints = growSlice(c.ints, extra)
	case KindFloat:
		c.floats = growSlice(c.floats, extra)
	case KindString:
		c.codes = growSlice(c.codes, extra)
	}
}

func growSlice[T any](s []T, extra int) []T {
	if cap(s)-len(s) >= extra {
		return s
	}
	out := make([]T, len(s), len(s)+extra)
	copy(out, s)
	return out
}

// appendFrom appends (physical) row si of src — a column of the same kind
// — as row i, copying typed storage directly: no Value is boxed, ints and
// floats copy straight across, and string rows copy dictionary codes when
// the dictionaries are shared or re-intern with the cached hash when not.
// Interning order matches the appendValue path exactly, so the resulting
// dictionary is identical either way.
func (c *column) appendFrom(i int, src *column, si int) {
	if src.isNull(si) {
		c.setNull(i)
		switch c.kind {
		case KindInt:
			c.ints = append(c.ints, 0)
		case KindFloat:
			c.floats = append(c.floats, 0)
		case KindString:
			c.codes = append(c.codes, 0)
		}
		return
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, src.ints[si])
	case KindFloat:
		c.floats = append(c.floats, src.floats[si])
	case KindString:
		code := src.codes[si]
		if c.dict != src.dict {
			code = c.dict.codeWithHash(src.dict.strs[code], src.dict.hashes[code])
		}
		c.codes = append(c.codes, code)
	}
}

// value gathers row i as a Value. Allocation-free: string values alias the
// dictionary entry.
func (c *column) value(i int) Value {
	if c.isNull(i) {
		return Value{}
	}
	switch c.kind {
	case KindInt:
		return Value{kind: KindInt, i: c.ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: c.floats[i]}
	case KindString:
		return Value{kind: KindString, s: c.dict.strs[c.codes[i]]}
	default: // KindNull column: every row is null
		return Value{}
	}
}

// hashAt returns Value.Hash of row i without constructing the Value's
// string header; string hashes come from the dictionary cache.
func (c *column) hashAt(i int) uint64 {
	if c.isNull(i) {
		return Value{}.Hash()
	}
	switch c.kind {
	case KindInt:
		return Value{kind: KindInt, i: c.ints[i]}.Hash()
	case KindFloat:
		return Value{kind: KindFloat, f: c.floats[i]}.Hash()
	case KindString:
		return c.dict.hashes[c.codes[i]]
	default:
		return Value{}.Hash()
	}
}

// equalRows reports whether rows i and j of the same column hold Equal
// values. Dictionary codes compare directly (the dictionary interns), so
// string equality is O(1).
func (c *column) equalRows(i, j int) bool {
	ni, nj := c.isNull(i), c.isNull(j)
	if ni || nj {
		return ni && nj // null equals only null (Compare semantics)
	}
	switch c.kind {
	case KindInt:
		return c.ints[i] == c.ints[j]
	case KindFloat:
		//lint:ignore floateq columnar fast path must agree exactly with Value.Equal, which compares floats with ==
		return c.floats[i] == c.floats[j]
	case KindString:
		return c.codes[i] == c.codes[j]
	default:
		return true
	}
}

// snapshot returns a copy of the column whose slices are clamped to the
// first n entries in both length and capacity, so appends to the original
// can never surface through the snapshot. The dictionary is shared: it is
// append-only and codes below the clamp stay valid forever.
func (c *column) snapshot(n int) column {
	out := column{kind: c.kind, dict: c.dict}
	switch c.kind {
	case KindInt:
		out.ints = c.ints[:n:n]
	case KindFloat:
		out.floats = c.floats[:n:n]
	case KindString:
		out.codes = c.codes[:n:n]
	}
	w := (n + 63) >> 6
	if w > len(c.nulls) {
		w = len(c.nulls)
	}
	out.nulls = c.nulls[:w:w]
	return out
}

// bytes estimates the column's resident size excluding the dictionary
// (counted once per relation).
func (c *column) bytes() int {
	return len(c.ints)*8 + len(c.floats)*8 + len(c.codes)*4 + len(c.nulls)*8
}
