package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ordersRelation builds a two-key fixture: (customer, item, qty).
func ordersRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("orders", MustSchema(
		Column{"customer", KindInt},
		Column{"item", KindString},
		Column{"qty", KindFloat},
	))
	r.MustAppend(Tuple{Int(1), Str("apple"), Float(2)})
	r.MustAppend(Tuple{Int(1), Str("pear"), Float(1)})
	r.MustAppend(Tuple{Int(2), Str("apple"), Float(5)})
	r.MustAppend(Tuple{Int(1), Str("apple"), Float(3)})
	r.MustAppend(Tuple{Null(), Str("apple"), Float(4)})
	return r
}

func TestIndexLookupValues(t *testing.T) {
	r := ordersRelation(t)
	ix := BuildIndex(r, []int{0, 1})

	if got := ix.LookupValues([]Value{Int(1), Str("apple")}); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("(1, apple) = %v, want [0 3]", got)
	}
	if got := ix.LookupValues([]Value{Int(2), Str("apple")}); len(got) != 1 || got[0] != 2 {
		t.Errorf("(2, apple) = %v, want [2]", got)
	}
	if got := ix.LookupValues([]Value{Int(9), Str("apple")}); got != nil {
		t.Errorf("miss returned %v", got)
	}
	// Null key values match other nulls, mirroring Value.Equal.
	if got := ix.LookupValues([]Value{Null(), Str("apple")}); len(got) != 1 || got[0] != 4 {
		t.Errorf("(null, apple) = %v, want [4]", got)
	}
	// Int/Float numeric equality crosses kinds, as Equal and Hash demand.
	fx := BuildIndex(r, []int{2})
	if got := fx.LookupValues([]Value{Int(2)}); len(got) != 1 || got[0] != 0 {
		t.Errorf("Float column probed with Int(2) = %v, want [0]", got)
	}
}

func TestIndexLookupRow(t *testing.T) {
	r := ordersRelation(t)
	ix := BuildIndex(r, []int{0, 1})

	// Probe relation lists key columns in a different order/position.
	probe := New("probe", MustSchema(Column{"item", KindString}, Column{"customer", KindInt}))
	probe.MustAppend(Tuple{Str("apple"), Int(1)})
	probe.MustAppend(Tuple{Str("pear"), Int(2)})
	if got := ix.LookupRow(probe, 0, []int{1, 0}); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("probe row 0 = %v, want [0 3]", got)
	}
	if got := ix.LookupRow(probe, 1, []int{1, 0}); got != nil {
		t.Errorf("probe miss returned %v", got)
	}
	// Tuple-probe compatibility path agrees.
	if got := ix.Lookup(Tuple{Str("apple"), Int(1)}, []int{1, 0}); len(got) != 2 {
		t.Errorf("Lookup(tuple) = %v, want 2 rows", got)
	}
}

func TestBuildIndexRows(t *testing.T) {
	r := ordersRelation(t)
	// Index only rows {3, 0} (in that order): candidate-list indexing.
	ix := BuildIndexRows(r, []int{1}, []int{3, 0})
	got := ix.LookupValues([]Value{Str("apple")})
	if len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Errorf("apple over rows [3 0] = %v, want [3 0] (insertion order)", got)
	}
	if got := ix.LookupValues([]Value{Str("pear")}); got != nil {
		t.Errorf("pear is outside the indexed rows, got %v", got)
	}
	if ix.Buckets() != 1 {
		t.Errorf("buckets = %d, want 1", ix.Buckets())
	}
}

func TestIndexOnView(t *testing.T) {
	r := ordersRelation(t)
	v := r.Subset("v", []int{4, 2, 0}) // rows in view positions 0,1,2
	ix := BuildIndex(v, []int{1})
	got := ix.LookupValues([]Value{Str("apple")})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("apple over view = %v, want [0 1 2] (view positions)", got)
	}
	// Positions are view-relative: resolve through the view's accessor.
	if q := v.Value(got[1], 2).Float64(); q != 5 {
		t.Errorf("view row %d qty = %v, want 5", got[1], q)
	}
}

func TestIndexBucketOrder(t *testing.T) {
	r := ordersRelation(t)
	ix := BuildIndex(r, []int{1})
	if ix.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", ix.Buckets())
	}
	// First-seen (ascending exemplar row) order: apple (row 0), pear (row 1).
	var names []string
	ix.EachBucket(func(ex Row, ps []int) bool {
		names = append(names, ex.Value(1).Text())
		return true
	})
	if len(names) != 2 || names[0] != "apple" || names[1] != "pear" {
		t.Errorf("bucket order %v, want [apple pear]", names)
	}
	// Early stop.
	calls := 0
	ix.EachBucket(func(ex Row, ps []int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d buckets", calls)
	}
}

// TestIndexCollisionChain exercises the chain-walk paths directly. Real
// 64-bit hash collisions between distinct keys cannot be crafted from the
// public API, so the test assembles an Index whose byHash entry points at a
// two-bucket chain and verifies every probe path disambiguates by typed
// comparison: the matching bucket is found mid-chain, and a probe that
// matches no bucket on the chain misses.
func TestIndexCollisionChain(t *testing.T) {
	r := testRelation(t) // rows: (1,a) (2,b) (3,a)
	ix := &Index{
		rel:    r,
		cols:   []int{1},
		byHash: map[uint64]int32{},
		groups: []bucket{
			{head: 1, rows: []int{1}, next: 1},     // "b", chained
			{head: 0, rows: []int{0, 2}, next: -1}, // "a", chain tail
		},
	}
	// Both probe hashes land on the same chain, simulating a collision.
	ix.byHash[valuesHash([]Value{Str("a")})] = 0
	ix.byHash[valuesHash([]Value{Str("zzz")})] = 0

	if got := ix.LookupValues([]Value{Str("a")}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("chained LookupValues = %v, want [0 2]", got)
	}
	if got := ix.LookupValues([]Value{Str("zzz")}); got != nil {
		t.Errorf("colliding miss = %v, want nil", got)
	}
	probe := New("p", MustSchema(Column{"name", KindString}))
	probe.MustAppend(Tuple{Str("a")})
	if got := ix.LookupRow(probe, 0, []int{0}); len(got) != 2 {
		t.Errorf("chained LookupRow = %v, want 2 rows", got)
	}
	if got := ix.Lookup(Tuple{Str("a")}, []int{0}); len(got) != 2 {
		t.Errorf("chained Lookup = %v, want 2 rows", got)
	}
}

// TestQuickIndexMatchesScan checks the index against the naive scan on
// random data: for every row's own key, lookup returns exactly the rows an
// Equal-based scan finds, in ascending order; and bucket counts match the
// number of distinct keys.
func TestQuickIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{"a", KindInt}, Column{"b", KindString}))
		n := 1 + rng.Intn(30)
		letters := []string{"", "a", "b", "ab"}
		for i := 0; i < n; i++ {
			// Small domains with nulls force duplicate keys and null==null
			// matches; kinds stay within each column's schema kind.
			a, b := Int(int64(rng.Intn(4))), Str(letters[rng.Intn(len(letters))])
			row := Tuple{a, b}
			if rng.Intn(5) == 0 {
				row[rng.Intn(2)] = Null()
			}
			r.MustAppend(row)
		}
		cols := []int{rng.Intn(2)}
		if rng.Intn(2) == 0 {
			cols = []int{0, 1}
		}
		ix := BuildIndex(r, cols)
		for i := 0; i < n; i++ {
			var want []int
			for j := 0; j < n; j++ {
				eq := true
				for _, c := range cols {
					if !r.Value(i, c).Equal(r.Value(j, c)) {
						eq = false
						break
					}
				}
				if eq {
					want = append(want, j)
				}
			}
			got := ix.LookupRow(r, i, cols)
			if len(got) != len(want) {
				return false
			}
			for k := range got {
				if got[k] != want[k] {
					return false
				}
			}
		}
		distinct := 0
		for i := 0; i < n; i++ {
			first := true
			for j := 0; j < i; j++ {
				eq := true
				for _, c := range cols {
					if !r.Value(i, c).Equal(r.Value(j, c)) {
						eq = false
						break
					}
				}
				if eq {
					first = false
					break
				}
			}
			if first {
				distinct++
			}
		}
		return ix.Buckets() == distinct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
