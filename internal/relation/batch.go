package relation

// This file provides the columnar batch format the streaming evaluator
// (internal/algebra) pulls through its operator pipelines. A batch is a
// zero-copy window over column storage: it never holds values, only row
// positions into source relations plus a column mapping, so a σ/⋈ pipeline
// moves fixed-size index vectors while every value read goes straight to
// the typed column vectors.

// BatchRows is the row capacity streaming operators target per batch: small
// enough that a pipeline's live batches stay cache-resident and its memory
// ceiling is independent of input size, large enough to amortize the
// per-batch dispatch.
const BatchRows = 1024

// BatchCol maps one output column of a batch to a column of one of its
// source relations.
type BatchCol struct {
	Src int // index into the batch's sources
	Col int // column position within that source's schema
}

// BatchSource is one source relation of a batch together with the logical
// row positions the batch's rows take from it (one entry per batch row).
type BatchSource struct {
	Rel  *Relation
	Rows []int
}

// Batch is a fixed-layout window of rows flowing through the streaming
// evaluator. Its layout — the source relations and the column mapping — is
// fixed for the lifetime of the emitting operator; only the row-index
// vectors change batch to batch. Row i of the batch reads column c as
// Srcs[Cols[c].Src].Rel.Value(Srcs[Cols[c].Src].Rows[i], Cols[c].Col): a
// join output is simply a batch with both operands as sources and no
// copied values.
//
// Invariant: every source's Rows vector has the same length, the batch's
// row count. A batch must have at least one source.
type Batch struct {
	Srcs []BatchSource
	Cols []BatchCol
}

// NewBatch creates an empty batch over the given source relations with the
// given column mapping, reserving BatchRows of row-index capacity per
// source.
func NewBatch(rels []*Relation, cols []BatchCol) *Batch {
	b := &Batch{Srcs: make([]BatchSource, len(rels)), Cols: cols}
	for i, r := range rels {
		b.Srcs[i] = BatchSource{Rel: r, Rows: make([]int, 0, BatchRows)}
	}
	return b
}

// Len returns the batch's row count.
func (b *Batch) Len() int { return len(b.Srcs[0].Rows) }

// Reset truncates the batch to zero rows, keeping capacity.
func (b *Batch) Reset() {
	for i := range b.Srcs {
		b.Srcs[i].Rows = b.Srcs[i].Rows[:0]
	}
}

// Truncate drops rows at positions >= n (used by operators that append a
// candidate row and then reject it).
func (b *Batch) Truncate(n int) {
	for i := range b.Srcs {
		b.Srcs[i].Rows = b.Srcs[i].Rows[:n]
	}
}

// Value reads column c of row i in place from the source column vector.
func (b *Batch) Value(i, c int) Value {
	bc := b.Cols[c]
	s := &b.Srcs[bc.Src]
	return s.Rel.Value(s.Rows[i], bc.Col)
}

// IsNull reports whether column c of row i is null.
func (b *Batch) IsNull(i, c int) bool {
	bc := b.Cols[c]
	s := &b.Srcs[bc.Src]
	return s.Rel.IsNull(s.Rows[i], bc.Col)
}

// AppendKey appends the self-delimiting key encoding of row i over the
// given batch column positions (nil cols keys every column) to buf and
// returns the extended buffer. Keys are Value-compatible with Tuple.Key and
// Row.Key: equal keys iff the projected values are pairwise Equal.
func (b *Batch) AppendKey(buf []byte, i int, cols []int) []byte {
	if cols == nil {
		for c := range b.Cols {
			buf = b.Value(i, c).appendKey(buf)
		}
		return buf
	}
	for _, c := range cols {
		buf = b.Value(i, c).appendKey(buf)
	}
	return buf
}

// AppendRowFrom appends row i of src to b. The batches must share the same
// layout (same sources in the same order); only row indices are copied.
func (b *Batch) AppendRowFrom(src *Batch, i int) {
	for j := range b.Srcs {
		b.Srcs[j].Rows = append(b.Srcs[j].Rows, src.Srcs[j].Rows[i])
	}
}

// HashRow computes the composite key hash of row i over the given batch
// column positions, consistent with Index/BatchIndex hashing: Equal values
// hash equally across batches and relations.
func (b *Batch) HashRow(i int, cols []int) uint64 {
	h := hashSeed
	for _, c := range cols {
		bc := b.Cols[c]
		s := &b.Srcs[bc.Src]
		h = combineHash(h, s.Rel.hashAt(s.Rows[i], bc.Col))
	}
	return h
}

// Bytes returns the heap footprint of the batch's row-index vectors (the
// only storage a batch owns — values stay in the source relations).
func (b *Batch) Bytes() int {
	n := 0
	for i := range b.Srcs {
		n += cap(b.Srcs[i].Rows) * 8
	}
	return n
}

// AppendBatchRow appends row i of the batch to the relation, copying
// column-wise from the batch's source vectors without materializing a
// tuple. The relation's schema must have the same layout as the batch's
// column mapping (the caller's responsibility, as with AppendFrom).
func (r *Relation) AppendBatchRow(b *Batch, i int) {
	if r.view != nil {
		panic("relation " + r.name + ": cannot append to a view")
	}
	for c := range r.cols {
		bc := b.Cols[c]
		s := &b.Srcs[bc.Src]
		r.cols[c].appendFrom(r.n, &s.Rel.cols[bc.Col], s.Rel.phys(s.Rows[i]))
	}
	r.n++
}

// BatchIndex is a typed hash index over the rows a growing build-side batch
// holds at build time — the build side of a streaming hash join. It mirrors
// Index (composite 64-bit hashes, typed verification against a bucket
// exemplar, collision chains), but keys may span several source relations
// of the batch.
type BatchIndex struct {
	b    *Batch
	cols []int

	byHash map[uint64]int32
	groups []batchBucket
}

type batchBucket struct {
	head int // exemplar batch row (first inserted)
	rows []int
	next int32
}

// BuildBatchIndex indexes every current row of b on the given batch column
// positions. The batch must not change afterwards (the streaming join
// drains its build side fully before probing).
func BuildBatchIndex(b *Batch, cols []int) *BatchIndex {
	n := b.Len()
	ix := &BatchIndex{
		b:      b,
		cols:   append([]int(nil), cols...),
		byHash: make(map[uint64]int32, n),
	}
	for i := 0; i < n; i++ {
		h := b.HashRow(i, ix.cols)
		first, exists := ix.byHash[h]
		if !exists {
			ix.byHash[h] = int32(len(ix.groups))
			ix.groups = append(ix.groups, batchBucket{head: i, rows: []int{i}, next: -1})
			continue
		}
		gi := first
		for {
			g := &ix.groups[gi]
			if ix.rowsEqual(g.head, i) {
				g.rows = append(g.rows, i)
				gi = -1
				break
			}
			if g.next < 0 {
				break
			}
			gi = g.next
		}
		if gi >= 0 {
			ni := int32(len(ix.groups))
			ix.groups = append(ix.groups, batchBucket{head: i, rows: []int{i}, next: -1})
			ix.groups[gi].next = ni
		}
	}
	return ix
}

func (ix *BatchIndex) rowsEqual(i, j int) bool {
	for _, c := range ix.cols {
		if !ix.b.Value(i, c).Equal(ix.b.Value(j, c)) {
			return false
		}
	}
	return true
}

// Lookup returns the build-side batch rows whose key columns Equal those of
// row pi of the probe batch at probeCols (positionally aligned with the
// index's column set). The returned slice is shared with the index and must
// not be modified. Allocation-free.
func (ix *BatchIndex) Lookup(probe *Batch, pi int, probeCols []int) []int {
	h := probe.HashRow(pi, probeCols)
	gi, ok := ix.byHash[h]
	for ok {
		g := &ix.groups[gi]
		match := true
		for k, c := range ix.cols {
			if !ix.b.Value(g.head, c).Equal(probe.Value(pi, probeCols[k])) {
				match = false
				break
			}
		}
		if match {
			return g.rows
		}
		if g.next < 0 {
			return nil
		}
		gi = g.next
	}
	return nil
}

// Bytes returns the approximate heap footprint of the index structures
// (buckets and hash map; the indexed batch is counted by Batch.Bytes).
func (ix *BatchIndex) Bytes() int {
	n := len(ix.byHash) * 12
	for i := range ix.groups {
		n += 32 + cap(ix.groups[i].rows)*8
	}
	return n
}
