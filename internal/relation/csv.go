package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ImportCSV reads a relation from CSV. The first record must be a header of
// column names. If schema is nil, column kinds are inferred by attempting
// int, then float, then string parses over every data row (empty cells are
// nulls and do not constrain inference). If schema is non-nil, its arity
// must match the header and cells are parsed with its kinds.
func ImportCSV(name string, r io.Reader, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV for %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: CSV for %s has no header", name)
	}
	header := records[0]
	data := records[1:]

	if schema == nil {
		kinds := inferKinds(header, data)
		cols := make([]Column, len(header))
		for i, h := range header {
			cols[i] = Column{Name: h, Kind: kinds[i]}
		}
		schema, err = NewSchema(cols...)
		if err != nil {
			return nil, err
		}
	} else if schema.Len() != len(header) {
		return nil, fmt.Errorf("relation: CSV for %s has %d columns, schema has %d", name, len(header), schema.Len())
	}

	rel := New(name, schema)
	for rowNum, rec := range data {
		t := make(Tuple, len(rec))
		for i, cell := range rec {
			v, err := ParseValue(cell, schema.Column(i).Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: %s row %d: %w", name, rowNum+2, err)
			}
			t[i] = v
		}
		if err := rel.Append(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// inferKinds picks the narrowest kind that parses every non-empty cell of
// each column: int ⊂ float ⊂ string. All-empty columns default to string.
func inferKinds(header []string, data [][]string) []Kind {
	kinds := make([]Kind, len(header))
	for c := range header {
		canInt, canFloat, nonEmpty := true, true, false
		for _, rec := range data {
			if c >= len(rec) || rec[c] == "" {
				continue
			}
			nonEmpty = true
			if canInt {
				if _, err := strconv.ParseInt(rec[c], 10, 64); err != nil {
					canInt = false
				}
			}
			if canFloat && !canInt {
				if _, err := strconv.ParseFloat(rec[c], 64); err != nil {
					canFloat = false
				}
			}
			if !canFloat {
				break
			}
		}
		switch {
		case !nonEmpty:
			kinds[c] = KindString
		case canInt:
			kinds[c] = KindInt
		case canFloat:
			kinds[c] = KindFloat
		default:
			kinds[c] = KindString
		}
	}
	return kinds
}

// ExportCSV writes the relation as CSV with a header row. Null values are
// written as empty cells.
func ExportCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header for %s: %w", rel.Name(), err)
	}
	rec := make([]string, rel.Schema().Len())
	var outerErr error
	rel.Each(func(i int, t Tuple) bool {
		for j, v := range t {
			rec[j] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			outerErr = fmt.Errorf("relation: writing CSV row %d for %s: %w", i, rel.Name(), err)
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	cw.Flush()
	return cw.Error()
}
