package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ImportOptions configures ImportCSVOptions.
type ImportOptions struct {
	// Schema fixes the column kinds. When nil, kinds are inferred (int ⊂
	// float ⊂ string over every non-empty cell), which requires buffering
	// the records for a second pass — bound that with MaxBytes.
	Schema *Schema
	// MaxBytes caps the raw CSV bytes read (0 = unlimited). Reads beyond the
	// cap fail with an error, making server uploads memory-bounded: with a
	// schema the import is single-pass straight into column storage, and
	// without one the inference buffer can never exceed the cap.
	MaxBytes int64
}

// ImportCSV reads a relation from CSV. The first record must be a header of
// column names. If schema is nil, column kinds are inferred; if non-nil,
// its arity must match the header and cells are parsed with its kinds.
// It is ImportCSVOptions without a size limit.
func ImportCSV(name string, r io.Reader, schema *Schema) (*Relation, error) {
	return ImportCSVOptions(name, r, ImportOptions{Schema: schema})
}

// limitedReader is io.LimitedReader with a distinguishable "limit exceeded"
// error instead of a silent EOF truncation.
type limitedReader struct {
	r    io.Reader
	left int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.left <= 0 {
		return 0, fmt.Errorf("relation: CSV input exceeds size limit")
	}
	if int64(len(p)) > l.left {
		p = p[:l.left]
	}
	n, err := l.r.Read(p)
	l.left -= int64(n)
	return n, err
}

// ImportCSVOptions reads a relation from CSV record-by-record. With a
// schema the import is a single streaming pass: each record is parsed and
// appended to column storage directly, so memory is bounded by the columnar
// result, never by a record buffer. Without a schema it is a bounded
// two-pass import: records are buffered (subject to MaxBytes) while kinds
// are inferred, then replayed into columns.
func ImportCSVOptions(name string, r io.Reader, opts ImportOptions) (*Relation, error) {
	if opts.MaxBytes > 0 {
		r = &limitedReader{r: r, left: opts.MaxBytes}
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("relation: CSV for %s has no header", name)
	}
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header for %s: %w", name, err)
	}
	header = append([]string(nil), header...)

	schema := opts.Schema
	if schema != nil {
		if schema.Len() != len(header) {
			return nil, fmt.Errorf("relation: CSV for %s has %d columns, schema has %d", name, len(header), schema.Len())
		}
		rel := New(name, schema)
		t := make(Tuple, schema.Len())
		rowNum := 2
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				return rel, nil
			}
			if err != nil {
				return nil, fmt.Errorf("relation: reading CSV for %s: %w", name, err)
			}
			for i, cell := range rec {
				v, err := ParseValue(cell, schema.Column(i).Kind)
				if err != nil {
					return nil, fmt.Errorf("relation: %s row %d: %w", name, rowNum, err)
				}
				t[i] = v
			}
			if err := rel.Append(t); err != nil {
				return nil, err
			}
			rowNum++
		}
	}

	// Inference path: buffer the records (bounded by MaxBytes via the
	// limited reader), infer kinds over the buffer, then build columns.
	var data [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV for %s: %w", name, err)
		}
		data = append(data, append([]string(nil), rec...))
	}
	kinds := inferKinds(header, data)
	cols := make([]Column, len(header))
	for i, h := range header {
		cols[i] = Column{Name: h, Kind: kinds[i]}
	}
	schema, err = NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	t := make(Tuple, schema.Len())
	for rowNum, rec := range data {
		for i, cell := range rec {
			v, err := ParseValue(cell, schema.Column(i).Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: %s row %d: %w", name, rowNum+2, err)
			}
			t[i] = v
		}
		if err := rel.Append(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// inferKinds picks the narrowest kind that parses every non-empty cell of
// each column: int ⊂ float ⊂ string. All-empty columns default to string.
func inferKinds(header []string, data [][]string) []Kind {
	kinds := make([]Kind, len(header))
	for c := range header {
		canInt, canFloat, nonEmpty := true, true, false
		for _, rec := range data {
			if c >= len(rec) || rec[c] == "" {
				continue
			}
			nonEmpty = true
			if canInt {
				if _, err := strconv.ParseInt(rec[c], 10, 64); err != nil {
					canInt = false
				}
			}
			if canFloat && !canInt {
				if _, err := strconv.ParseFloat(rec[c], 64); err != nil {
					canFloat = false
				}
			}
			if !canFloat {
				break
			}
		}
		switch {
		case !nonEmpty:
			kinds[c] = KindString
		case canInt:
			kinds[c] = KindInt
		case canFloat:
			kinds[c] = KindFloat
		default:
			kinds[c] = KindString
		}
	}
	return kinds
}

// ExportCSV writes the relation as CSV with a header row. Null values are
// written as empty cells.
func ExportCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header for %s: %w", rel.Name(), err)
	}
	rec := make([]string, rel.Schema().Len())
	for i := 0; i < rel.Len(); i++ {
		for j := range rec {
			rec[j] = rel.Value(i, j).String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing CSV row %d for %s: %w", i, rel.Name(), err)
		}
	}
	cw.Flush()
	return cw.Error()
}
