package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if Int(7).Int64() != 7 {
		t.Error("Int64")
	}
	if Float(2.5).Float64() != 2.5 {
		t.Error("Float64")
	}
	if Int(3).Float64() != 3.0 {
		t.Error("int widening")
	}
	if Str("ab").Text() != "ab" {
		t.Error("Text")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be null")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Str("x").Int64() },
		func() { Int(1).Text() },
		func() { Str("x").Float64() },
		func() { Null().Float64() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// null < numerics < strings; cross-kind numeric comparison.
	ordered := []Value{Null(), Float(-3.5), Int(-1), Int(0), Float(0.5), Int(2), Float(2.5), Str(""), Str("a"), Str("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCrossKindEquality(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2)")
	}
	if Int(2).Hash() != Float(2.0).Hash() {
		t.Error("equal values must hash identically")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Float(0.0).Hash() != Float(negZero()).Hash() {
		t.Error("-0 and +0 must hash identically")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestValueHashEqualConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Equal(vb) && va.Hash() != vb.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyEncodingInjective(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Float(0.5), Float(1),
		Str(""), Str("a"), Str("ab"), Str("b"),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka := string(a.appendKey(nil))
			kb := string(b.appendKey(nil))
			if a.Equal(b) != (ka == kb) {
				t.Errorf("key consistency broken for %v (%d) vs %v (%d)", a, i, b, j)
			}
		}
	}
	// Int(1) and Float(1) must share a key (they are Equal).
	if string(Int(1).appendKey(nil)) != string(Float(1).appendKey(nil)) {
		t.Error("Int(1) and Float(1) keys differ")
	}
}

func TestTupleKeyCompositeNoAmbiguity(t *testing.T) {
	// ("a", "bc") must not collide with ("ab", "c").
	t1 := Tuple{Str("a"), Str("bc")}
	t2 := Tuple{Str("ab"), Str("c")}
	if t1.Key(nil) == t2.Key(nil) {
		t.Error("composite keys collide across boundary shifts")
	}
	// Subset keys.
	t3 := Tuple{Int(1), Str("x"), Float(2)}
	if t3.Key([]int{0, 2}) != (Tuple{Int(1), Float(2)}).Key(nil) {
		t.Error("column-subset key mismatch")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", KindInt)
	if err != nil || v.Int64() != 42 {
		t.Errorf("parse int: %v %v", v, err)
	}
	v, err = ParseValue("2.5", KindFloat)
	if err != nil || v.Float64() != 2.5 {
		t.Errorf("parse float: %v %v", v, err)
	}
	v, err = ParseValue("hi", KindString)
	if err != nil || v.Text() != "hi" {
		t.Errorf("parse string: %v %v", v, err)
	}
	v, err = ParseValue("", KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("empty cell should be null: %v %v", v, err)
	}
	if _, err := ParseValue("abc", KindInt); err == nil {
		t.Error("expected parse error")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty name should fail")
	}
	s := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex")
	}
	if got := s.String(); got != "(a int, b string)" {
		t.Errorf("String() = %q", got)
	}
}

// TestParseSchemaRoundTrip pins ParseSchema to the String format: every
// schema survives the text round-trip, and malformed inputs fail loudly.
func TestParseSchemaRoundTrip(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"x", KindFloat}, Column{"name", KindString})
	got, err := ParseSchema(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Errorf("round-trip %q -> %q", s.String(), got.String())
	}
	for i := 0; i < s.Len(); i++ {
		if got.Column(i) != s.Column(i) {
			t.Errorf("column %d = %+v, want %+v", i, got.Column(i), s.Column(i))
		}
	}
	for _, bad := range []string{"", "a int", "(a int", "a int)", "(a)", "(a int extra)", "(a bool)", "(a int, a int)"} {
		if _, err := ParseSchema(bad); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", bad)
		}
	}
}

func TestSchemaProjectAndConcat(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString}, Column{"c", KindFloat})
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Column(0).Name != "c" || p.Column(1).Name != "a" {
		t.Errorf("projected schema %s", p)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection should fail")
	}
	t2 := MustSchema(Column{"a", KindInt}, Column{"d", KindInt})
	c, err := s.Concat(t2, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 || c.ColumnIndex("R2.a") != 3 || c.ColumnIndex("d") != 4 {
		t.Errorf("concat schema %s", c)
	}
}

func TestSchemaEqualLayout(t *testing.T) {
	a := MustSchema(Column{"x", KindInt}, Column{"y", KindString})
	b := MustSchema(Column{"p", KindInt}, Column{"q", KindString})
	c := MustSchema(Column{"p", KindInt})
	d := MustSchema(Column{"p", KindString}, Column{"q", KindInt})
	if !a.EqualLayout(b) {
		t.Error("a and b should have equal layout")
	}
	if a.EqualLayout(c) || a.EqualLayout(d) {
		t.Error("layout mismatches not detected")
	}
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("R", MustSchema(Column{"id", KindInt}, Column{"name", KindString}))
	r.MustAppend(Tuple{Int(1), Str("a")})
	r.MustAppend(Tuple{Int(2), Str("b")})
	r.MustAppend(Tuple{Int(3), Str("a")})
	return r
}

func TestRelationAppendValidation(t *testing.T) {
	r := testRelation(t)
	if err := r.Append(Tuple{Int(4)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := r.Append(Tuple{Str("x"), Str("y")}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := r.Append(Tuple{Null(), Null()}); err != nil {
		t.Errorf("nulls should be accepted: %v", err)
	}
	if r.Len() != 4 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestRelationSubsetAndClone(t *testing.T) {
	r := testRelation(t)
	s := r.Subset("S", []int{2, 0, 2})
	if s.Len() != 3 || s.Value(0, 0).Int64() != 3 || s.Value(2, 0).Int64() != 3 {
		t.Errorf("subset wrong: %v", s)
	}
	c := r.Clone("C")
	if c.Len() != r.Len() || c.Name() != "C" {
		t.Error("clone wrong")
	}
}

func TestRelationDistinctAndIsSet(t *testing.T) {
	r := New("R", MustSchema(Column{"x", KindInt}))
	for _, v := range []int64{1, 2, 1, 3, 2, 1} {
		r.MustAppend(Tuple{Int(v)})
	}
	if r.IsSet() {
		t.Error("r has duplicates")
	}
	d := r.Distinct("D")
	if d.Len() != 3 || !d.IsSet() {
		t.Errorf("distinct: %v", d)
	}
	// Order preserved: 1, 2, 3.
	if d.Value(0, 0).Int64() != 1 || d.Value(1, 0).Int64() != 2 || d.Value(2, 0).Int64() != 3 {
		t.Error("distinct order not preserved")
	}
}

func TestRelationSortAndEach(t *testing.T) {
	r := New("R", MustSchema(Column{"x", KindInt}))
	for _, v := range []int64{3, 1, 2} {
		r.MustAppend(Tuple{Int(v)})
	}
	r.Sort()
	var got []int64
	r.Each(func(i int, tp Tuple) bool {
		got = append(got, tp[0].Int64())
		return true
	})
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sorted order %v", got)
	}
	// Early stop.
	count := 0
	r.Each(func(i int, tp Tuple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestIndex(t *testing.T) {
	r := testRelation(t)
	ix := BuildIndex(r, []int{1}) // index on name
	hits := ix.Lookup(Tuple{Int(0), Str("a")}, []int{1})
	if len(hits) != 2 {
		t.Errorf("lookup 'a' returned %v", hits)
	}
	if got := ix.Lookup(Tuple{Int(0), Str("zzz")}, []int{1}); len(got) != 0 {
		t.Errorf("lookup miss returned %v", got)
	}
	if ix.Buckets() != 2 {
		t.Errorf("buckets = %d", ix.Buckets())
	}
	total := 0
	ix.EachBucket(func(ex Row, ps []int) bool {
		total += len(ps)
		return true
	})
	if total != 3 {
		t.Errorf("bucket positions total %d", total)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRelation(t)
	r.MustAppend(Tuple{Null(), Str("has,comma")})
	var buf bytes.Buffer
	if err := ExportCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV("R2", bytes.NewReader(buf.Bytes()), r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("round trip len %d != %d", got.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if !got.Materialize(i).Equal(r.Materialize(i)) {
			t.Errorf("row %d: %v != %v", i, got.Materialize(i), r.Materialize(i))
		}
	}
}

func TestCSVInference(t *testing.T) {
	csv := "id,score,label\n1,2.5,a\n2,3,b\n,,\n"
	r, err := ImportCSV("T", strings.NewReader(csv), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schema()
	if s.Column(0).Kind != KindInt || s.Column(1).Kind != KindFloat || s.Column(2).Kind != KindString {
		t.Errorf("inferred schema %s", s)
	}
	if r.Len() != 3 || !r.IsNull(2, 0) {
		t.Errorf("rows: %d, last: %v", r.Len(), r.Materialize(2))
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ImportCSV("E", strings.NewReader(""), nil); err == nil {
		t.Error("empty CSV should fail")
	}
	schema := MustSchema(Column{"a", KindInt})
	if _, err := ImportCSV("E", strings.NewReader("a,b\n1,2\n"), schema); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ImportCSV("E", strings.NewReader("a\nxyz\n"), schema); err == nil {
		t.Error("bad int cell should fail")
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{Int(1), Str("a")}
	b := Tuple{Int(1), Str("b")}
	c := Tuple{Int(1)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("tuple compare wrong")
	}
	if c.Compare(a) != -1 || a.Compare(c) != 1 {
		t.Error("prefix tuple should order first")
	}
	if a.Equal(c) || !a.Equal(Tuple{Float(1), Str("a")}) {
		t.Error("tuple equality wrong")
	}
}
