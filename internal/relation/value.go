// Package relation implements the in-memory row-store that the algebra,
// sampling and estimation layers operate on: typed values, schemas, tuples,
// relations, hash indexes, and CSV import/export.
//
// The design goals, in order: correctness of value semantics (comparison,
// hashing and null handling are used by every join and set operation above),
// cheap random access by row position (sampling addresses tuples by index),
// and zero dependencies beyond the standard library.
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL-style null value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding one typed datum. The zero Value
// is the null value. Values are immutable; all methods take value receivers.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value. The name Str avoids colliding with the
// fmt.Stringer method.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It panics if the kind is not KindInt.
func (v Value) Int64() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: Int64 on %s value", v.kind))
	}
	return v.i
}

// Float64 returns the numeric payload as a float64. Integers are widened.
// It panics for non-numeric kinds.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("relation: Float64 on %s value", v.kind))
	}
}

// Text returns the string payload. It panics if the kind is not KindString.
func (v Value) Text() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: Text on %s value", v.kind))
	}
	return v.s
}

// String renders the value for display and CSV export.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Equal reports value equality. Numeric values of different kinds compare
// numerically (Int(2) equals Float(2.0)); null equals only null. This is the
// equality used by joins, intersections and duplicate elimination, so it
// must agree with Compare and with Hash.
func (v Value) Equal(u Value) bool { return v.Compare(u) == 0 }

// Compare returns -1, 0 or +1 ordering v against u. The total order is:
// null < all numerics < all strings; numerics order numerically across
// kinds; strings order lexicographically. A deterministic total order across
// kinds keeps sort-based algorithms well defined even on mixed columns.
func (v Value) Compare(u Value) int {
	va, ub := v.class(), u.class()
	if va != ub {
		if va < ub {
			return -1
		}
		return 1
	}
	switch va {
	case 0: // both null
		return 0
	case 1: // both numeric
		// Compare exactly when both are ints to avoid float rounding.
		if v.kind == KindInt && u.kind == KindInt {
			switch {
			case v.i < u.i:
				return -1
			case v.i > u.i:
				return 1
			}
			return 0
		}
		a, b := v.Float64(), u.Float64()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default: // both string
		switch {
		case v.s < u.s:
			return -1
		case v.s > u.s:
			return 1
		}
		return 0
	}
}

// class buckets kinds into null(0) / numeric(1) / string(2) for Compare.
func (v Value) class() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// fnv64 constants for value hashing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a 64-bit hash of the value consistent with Equal: values
// that compare equal hash identically (in particular Int(2) and Float(2.0)).
func (v Value) Hash() uint64 {
	var h uint64 = fnvOffset
	mix := func(b byte) { h = (h ^ uint64(b)) * fnvPrime }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindInt, KindFloat:
		// Hash the numeric value through its float64 bits so that Int(k)
		// and Float(k) collide, as Equal demands. Fold -0 into +0.
		f := v.Float64()
		//lint:ignore floateq -0 folding: ==0 is exactly true for both IEEE zeros, rewriting -0 to +0 before hashing
		if f == 0 {
			f = 0
		}
		bits := math.Float64bits(f)
		mix(1)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KindString:
		mix(2)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	}
	return h
}

// AppendKey appends a self-delimiting encoding of the value to dst such
// that two values have identical encodings iff they are Equal. It lets hot
// probe loops build composite hash keys into a reusable buffer instead of
// allocating a string per lookup (Tuple.Key is the allocating form).
func (v Value) AppendKey(dst []byte) []byte { return v.appendKey(dst) }

// appendKey appends a self-delimiting encoding of the value to dst such
// that two values have identical encodings iff they are Equal. Used to
// build composite hash-join keys.
func (v Value) appendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0)
	case KindInt, KindFloat:
		f := v.Float64()
		//lint:ignore floateq -0 folding: ==0 is exactly true for both IEEE zeros, rewriting -0 to +0 before encoding
		if f == 0 {
			f = 0 // fold -0
		}
		bits := math.Float64bits(f)
		dst = append(dst, 1)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(bits>>(8*i)))
		}
		return dst
	default:
		dst = append(dst, 2)
		var lenbuf [4]byte
		n := len(v.s)
		lenbuf[0] = byte(n)
		lenbuf[1] = byte(n >> 8)
		lenbuf[2] = byte(n >> 16)
		lenbuf[3] = byte(n >> 24)
		dst = append(dst, lenbuf[:]...)
		return append(dst, v.s...)
	}
}

// ParseValue parses s into a Value of the given kind. Empty strings parse
// to null for every kind, matching the CSV convention used by Export.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parsing %q as int: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parsing %q as float: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return Str(s), nil
	case KindNull:
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("relation: unknown kind %v", k)
	}
}
