package relation

// Index is a hash index mapping a composite key over a fixed column set to
// the row positions holding that key. It is the access path used by the
// exact evaluator's hash joins and by the estimators' sample-side joins.
//
// Since the columnar refactor the index is typed: keys are 64-bit hashes
// combined from the column vectors (Value.Hash per column, so Int(2) and
// Float(2.0) collide exactly as Equal demands), with collision verification
// against a bucket's exemplar row — no per-row key string is ever
// materialized. Rows with Equal key values land in one bucket; distinct key
// values that merely share a hash live on a chain and are disambiguated by
// typed comparison at build and probe time.
type Index struct {
	rel  *Relation
	cols []int

	byHash map[uint64]int32 // combined hash → first bucket on the chain
	groups []bucket         // buckets in first-seen (ascending row) order
}

// bucket is one distinct composite key: its rows in insertion order, an
// exemplar row for typed verification, and the chain link to the next
// bucket sharing the same 64-bit hash (-1 = none).
type bucket struct {
	head int // exemplar row position (first inserted)
	rows []int
	next int32
}

// hashSeed and hashStep combine per-column Value hashes into one composite
// key hash. The combination is order-sensitive and shared by every probe
// path, so build- and probe-side hashes agree by construction.
const (
	hashSeed = uint64(fnvOffset)
	hashStep = uint64(fnvPrime)
)

func combineHash(h, valueHash uint64) uint64 { return (h ^ valueHash) * hashStep }

// rowHash computes the composite hash of row i over ix.cols.
func (ix *Index) rowHash(i int) uint64 {
	h := hashSeed
	for _, c := range ix.cols {
		h = combineHash(h, ix.rel.hashAt(i, c))
	}
	return h
}

// rowsEqual reports whether rows i and j agree on every key column (typed,
// allocation-free: dictionary codes compare directly).
func (ix *Index) rowsEqual(i, j int) bool {
	pi, pj := ix.rel.phys(i), ix.rel.phys(j)
	for _, c := range ix.cols {
		if !ix.rel.cols[c].equalRows(pi, pj) {
			return false
		}
	}
	return true
}

// BuildIndex indexes relation r on the given column positions.
func BuildIndex(r *Relation, cols []int) *Index {
	return buildIndex(r, cols, r.Len(), func(i int) int { return i })
}

// BuildIndexRows indexes only the given row positions of r (in the given
// order), the access path term evaluation uses to index candidate lists
// without copying them into a new relation.
func BuildIndexRows(r *Relation, cols []int, rows []int) *Index {
	return buildIndex(r, cols, len(rows), func(i int) int { return rows[i] })
}

func buildIndex(r *Relation, cols []int, n int, rowAt func(int) int) *Index {
	ix := &Index{
		rel:    r,
		cols:   append([]int(nil), cols...),
		byHash: make(map[uint64]int32, n),
	}
	for i := 0; i < n; i++ {
		row := rowAt(i)
		h := ix.rowHash(row)
		first, exists := ix.byHash[h]
		if !exists {
			ix.byHash[h] = int32(len(ix.groups))
			ix.groups = append(ix.groups, bucket{head: row, rows: []int{row}, next: -1})
			continue
		}
		// Walk the collision chain for the row's key; extend the chain when
		// the hash is shared by a new distinct key.
		gi := first
		for {
			g := &ix.groups[gi]
			if ix.rowsEqual(g.head, row) {
				g.rows = append(g.rows, row)
				gi = -1
				break
			}
			if g.next < 0 {
				break
			}
			gi = g.next
		}
		if gi >= 0 {
			ni := int32(len(ix.groups))
			ix.groups = append(ix.groups, bucket{head: row, rows: []int{row}, next: -1})
			ix.groups[gi].next = ni
		}
	}
	return ix
}

// valuesHash computes the composite hash of probe values via Value.Hash —
// consistent with rowHash for Equal values.
func valuesHash(vals []Value) uint64 {
	h := hashSeed
	for _, v := range vals {
		h = combineHash(h, v.Hash())
	}
	return h
}

// LookupValues returns the row positions whose key columns Equal the probe
// values (positionally aligned with the index's column set). The returned
// slice is shared with the index and must not be modified. Allocation-free.
func (ix *Index) LookupValues(vals []Value) []int {
	gi, ok := ix.byHash[valuesHash(vals)]
	for ok {
		g := &ix.groups[gi]
		if ix.headEqualsValues(g.head, vals) {
			return g.rows
		}
		if g.next < 0 {
			return nil
		}
		gi = g.next
	}
	return nil
}

func (ix *Index) headEqualsValues(head int, vals []Value) bool {
	for k, c := range ix.cols {
		if !ix.rel.Value(head, c).Equal(vals[k]) {
			return false
		}
	}
	return true
}

// LookupRow returns the row positions whose key columns Equal those of row
// probeRow of probe at probeCols. Allocation-free; the returned slice must
// not be modified.
func (ix *Index) LookupRow(probe *Relation, probeRow int, probeCols []int) []int {
	h := hashSeed
	for _, c := range probeCols {
		h = combineHash(h, probe.hashAt(probeRow, c))
	}
	gi, ok := ix.byHash[h]
	for ok {
		g := &ix.groups[gi]
		match := true
		for k, c := range ix.cols {
			if !ix.rel.Value(g.head, c).Equal(probe.Value(probeRow, probeCols[k])) {
				match = false
				break
			}
		}
		if match {
			return g.rows
		}
		if g.next < 0 {
			return nil
		}
		gi = g.next
	}
	return nil
}

// Lookup returns the row positions whose key columns equal those of probe
// (a materialized tuple from another relation) at probeCols. The returned
// slice must not be modified.
func (ix *Index) Lookup(probe Tuple, probeCols []int) []int {
	h := hashSeed
	for _, c := range probeCols {
		h = combineHash(h, probe[c].Hash())
	}
	gi, ok := ix.byHash[h]
	for ok {
		g := &ix.groups[gi]
		match := true
		for k, c := range ix.cols {
			if !ix.rel.Value(g.head, c).Equal(probe[probeCols[k]]) {
				match = false
				break
			}
		}
		if match {
			return g.rows
		}
		if g.next < 0 {
			return nil
		}
		gi = g.next
	}
	return nil
}

// Buckets returns the number of distinct composite keys in the index
// (hash collisions between distinct keys are counted separately, exactly).
func (ix *Index) Buckets() int { return len(ix.groups) }

// EachBucket iterates over the distinct keys in first-seen (ascending row)
// order, calling fn with an exemplar row holding the key and the positions
// of every row sharing it, stopping early if fn returns false. The
// deterministic order makes bucket-level reductions reproducible without
// sorting.
func (ix *Index) EachBucket(fn func(exemplar Row, positions []int) bool) {
	for gi := range ix.groups {
		g := &ix.groups[gi]
		if !fn(ix.rel.Row(g.head), g.rows) {
			return
		}
	}
}
