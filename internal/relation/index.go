package relation

// Index is a hash index mapping a composite key over a fixed column set to
// the row positions holding that key. It is the access path used by the
// exact evaluator's hash joins and by the estimators' sample-side joins.
type Index struct {
	cols    []int
	buckets map[string][]int
}

// BuildIndex indexes relation r on the given column positions.
func BuildIndex(r *Relation, cols []int) *Index {
	ix := &Index{
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]int, r.Len()),
	}
	r.Each(func(i int, t Tuple) bool {
		k := t.Key(ix.cols)
		ix.buckets[k] = append(ix.buckets[k], i)
		return true
	})
	return ix
}

// Lookup returns the row positions whose key columns equal those of probe
// (a tuple from another relation) at probeCols. The returned slice must not
// be modified.
func (ix *Index) Lookup(probe Tuple, probeCols []int) []int {
	return ix.buckets[probe.Key(probeCols)]
}

// LookupKey returns the row positions for a pre-built key.
func (ix *Index) LookupKey(key string) []int { return ix.buckets[key] }

// Buckets returns the number of distinct keys in the index.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// EachBucket iterates over (key, positions) pairs in unspecified order,
// stopping early if fn returns false.
func (ix *Index) EachBucket(fn func(key string, positions []int) bool) {
	for k, ps := range ix.buckets {
		if !fn(k, ps) {
			return
		}
	}
}
