package relation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the value and tuple invariants
// everything above this package depends on.

// randomValue draws an arbitrary Value from the generator's entropy.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Null()
	case 1:
		return Int(int64(rng.Intn(21) - 10))
	case 2:
		return Float(float64(rng.Intn(41)-20) / 4)
	default:
		letters := []string{"", "a", "b", "ab", "ba", "z"}
		return Str(letters[rng.Intn(len(letters))])
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rng), randomValue(rng), randomValue(rng)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Reflexivity.
		if a.Compare(a) != 0 {
			return false
		}
		// Transitivity (≤).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		// Equal ⇒ equal hashes and equal keys.
		if a.Compare(b) == 0 {
			if a.Hash() != b.Hash() {
				return false
			}
			if string(a.appendKey(nil)) != string(b.appendKey(nil)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyConsistentWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(3)
		a := make(Tuple, width)
		b := make(Tuple, width)
		for i := 0; i < width; i++ {
			a[i] = randomValue(rng)
			b[i] = randomValue(rng)
		}
		return a.Equal(b) == (a.Key(nil) == b.Key(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := MustSchema(
			Column{Name: "i", Kind: KindInt},
			Column{Name: "f", Kind: KindFloat},
			Column{Name: "s", Kind: KindString},
		)
		r := New("R", schema)
		n := rng.Intn(20)
		for k := 0; k < n; k++ {
			row := Tuple{Int(int64(rng.Intn(1000) - 500)), Float(rng.Float64() * 100), Str(csvSafeString(rng))}
			if rng.Intn(8) == 0 {
				row[rng.Intn(3)] = Null()
			}
			r.MustAppend(row)
		}
		var buf bytes.Buffer
		if err := ExportCSV(r, &buf); err != nil {
			return false
		}
		got, err := ImportCSV("R", bytes.NewReader(buf.Bytes()), schema)
		if err != nil {
			return false
		}
		if got.Len() != r.Len() {
			return false
		}
		for i := 0; i < r.Len(); i++ {
			if !got.Tuple(i).Equal(r.Tuple(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// csvSafeString avoids the one representational ambiguity of the CSV
// format: the empty string round-trips as null.
func csvSafeString(rng *rand.Rand) string {
	options := []string{"x", "hello", "with,comma", `with"quote`, "multi\nline", "späce"}
	return options[rng.Intn(len(options))]
}

func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{Name: "a", Kind: KindInt}))
		for k := 0; k < rng.Intn(30); k++ {
			r.MustAppend(Tuple{Int(int64(rng.Intn(5)))})
		}
		d1 := r.Distinct("d1")
		d2 := d1.Distinct("d2")
		if d1.Len() != d2.Len() {
			return false
		}
		return d1.IsSet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetPreservesTuples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{Name: "a", Kind: KindInt}))
		n := 1 + rng.Intn(20)
		for k := 0; k < n; k++ {
			r.MustAppend(Tuple{Int(int64(k))})
		}
		m := rng.Intn(n + 1)
		pos := make([]int, m)
		for i := range pos {
			pos[i] = rng.Intn(n)
		}
		s := r.Subset("S", pos)
		if s.Len() != m {
			return false
		}
		for i, p := range pos {
			if !s.Tuple(i).Equal(r.Tuple(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
