package relation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the value and tuple invariants
// everything above this package depends on.

// randomValue draws an arbitrary Value from the generator's entropy.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Null()
	case 1:
		return Int(int64(rng.Intn(21) - 10))
	case 2:
		return Float(float64(rng.Intn(41)-20) / 4)
	default:
		letters := []string{"", "a", "b", "ab", "ba", "z"}
		return Str(letters[rng.Intn(len(letters))])
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rng), randomValue(rng), randomValue(rng)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Reflexivity.
		if a.Compare(a) != 0 {
			return false
		}
		// Transitivity (≤).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		// Equal ⇒ equal hashes and equal keys.
		if a.Compare(b) == 0 {
			if a.Hash() != b.Hash() {
				return false
			}
			if string(a.appendKey(nil)) != string(b.appendKey(nil)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyConsistentWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(3)
		a := make(Tuple, width)
		b := make(Tuple, width)
		for i := 0; i < width; i++ {
			a[i] = randomValue(rng)
			b[i] = randomValue(rng)
		}
		return a.Equal(b) == (a.Key(nil) == b.Key(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := MustSchema(
			Column{Name: "i", Kind: KindInt},
			Column{Name: "f", Kind: KindFloat},
			Column{Name: "s", Kind: KindString},
		)
		r := New("R", schema)
		n := rng.Intn(20)
		for k := 0; k < n; k++ {
			row := Tuple{Int(int64(rng.Intn(1000) - 500)), Float(rng.Float64() * 100), Str(csvSafeString(rng))}
			if rng.Intn(8) == 0 {
				row[rng.Intn(3)] = Null()
			}
			r.MustAppend(row)
		}
		var buf bytes.Buffer
		if err := ExportCSV(r, &buf); err != nil {
			return false
		}
		got, err := ImportCSV("R", bytes.NewReader(buf.Bytes()), schema)
		if err != nil {
			return false
		}
		if got.Len() != r.Len() {
			return false
		}
		for i := 0; i < r.Len(); i++ {
			if !got.Materialize(i).Equal(r.Materialize(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// csvSafeString avoids the one representational ambiguity of the CSV
// format: the empty string round-trips as null.
func csvSafeString(rng *rand.Rand) string {
	options := []string{"x", "hello", "with,comma", `with"quote`, "multi\nline", "späce"}
	return options[rng.Intn(len(options))]
}

func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{Name: "a", Kind: KindInt}))
		for k := 0; k < rng.Intn(30); k++ {
			r.MustAppend(Tuple{Int(int64(rng.Intn(5)))})
		}
		d1 := r.Distinct("d1")
		d2 := d1.Distinct("d2")
		if d1.Len() != d2.Len() {
			return false
		}
		return d1.IsSet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetPreservesTuples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{Name: "a", Kind: KindInt}))
		n := 1 + rng.Intn(20)
		for k := 0; k < n; k++ {
			r.MustAppend(Tuple{Int(int64(k))})
		}
		m := rng.Intn(n + 1)
		pos := make([]int, m)
		for i := range pos {
			pos[i] = rng.Intn(n)
		}
		s := r.Subset("S", pos)
		if s.Len() != m {
			return false
		}
		for i, p := range pos {
			if !s.Materialize(i).Equal(r.Materialize(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomMixedRelation builds a random (int, float, string) relation with
// small domains (duplicates guaranteed) and occasional nulls.
func randomMixedRelation(rng *rand.Rand, name string, n int) *Relation {
	r := New(name, MustSchema(
		Column{Name: "i", Kind: KindInt},
		Column{Name: "f", Kind: KindFloat},
		Column{Name: "s", Kind: KindString},
	))
	letters := []string{"", "a", "b", "ab", "z"}
	for k := 0; k < n; k++ {
		row := Tuple{
			Int(int64(rng.Intn(6) - 3)),
			Float(float64(rng.Intn(9)-4) / 2),
			Str(letters[rng.Intn(len(letters))]),
		}
		if rng.Intn(6) == 0 {
			row[rng.Intn(3)] = Null()
		}
		r.MustAppend(row)
	}
	return r
}

// TestQuickRowRoundTripsMaterialize: for every row, the in-place accessors
// (Value, IsNull, Key) agree exactly with the materialized Tuple — the
// columnar storage and the escape hatch describe the same data.
func TestQuickRowRoundTripsMaterialize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomMixedRelation(rng, "R", rng.Intn(25))
		for i := 0; i < r.Len(); i++ {
			row := r.Row(i)
			tup := row.Materialize()
			if len(tup) != row.Len() {
				return false
			}
			for c := 0; c < row.Len(); c++ {
				if !tup[c].Equal(row.Value(c)) && !(tup[c].IsNull() && row.IsNull(c)) {
					return false
				}
				if tup[c].IsNull() != row.IsNull(c) {
					return false
				}
			}
			if tup.Key(nil) != row.Key(nil) {
				return false
			}
			// MaterializeInto over a reused buffer yields the same tuple.
			if !row.MaterializeInto(make(Tuple, 0, 3)).Equal(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortLayoutIndependent: sorting the same multiset of rows yields
// the same sequence whether the relation is a base (columns gathered into
// fresh storage) or a zero-copy view (index vector permuted) — and sorting
// a view leaves its base untouched.
func TestQuickSortLayoutIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomMixedRelation(rng, "R", 1+rng.Intn(25))
		pos := make([]int, base.Len())
		for i := range pos {
			pos[i] = i
		}
		rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })

		asBase := base.Compact("base") // appendable base layout
		asView := base.Subset("view", pos)
		wasFirst := base.Materialize(0)
		asBase.Sort()
		asView.Sort()
		if !asView.IsView() || asBase.IsView() {
			return false
		}
		if asBase.Len() != asView.Len() {
			return false
		}
		for i := 0; i < asBase.Len(); i++ {
			if !asBase.Materialize(i).Equal(asView.Materialize(i)) {
				return false
			}
		}
		// Sorting the view only permuted its index vector.
		return base.Materialize(0).Equal(wasFirst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
