package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Column names within a schema are
// unique (enforced by NewSchema).
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns, validating that names are
// non-empty and unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column name %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for use in tests and
// statically known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustColumnIndex is ColumnIndex that panics when the column is missing.
func (s *Schema) MustColumnIndex(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: no column %q in schema %s", name, s))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema containing the columns at the given
// positions, in that order. It errors on out-of-range positions or if the
// projection would duplicate a name.
func (s *Schema) Project(positions []int) (*Schema, error) {
	cols := make([]Column, len(positions))
	for i, p := range positions {
		if p < 0 || p >= len(s.cols) {
			return nil, fmt.Errorf("relation: projection position %d outside schema of %d columns", p, len(s.cols))
		}
		cols[i] = s.cols[p]
	}
	return NewSchema(cols...)
}

// Concat returns the schema of a cartesian product: s's columns followed by
// t's. Name collisions are disambiguated by prefixing the colliding column
// from t with the given prefix (typically the relation name) and a dot.
func (s *Schema) Concat(t *Schema, prefix string) (*Schema, error) {
	cols := s.Columns()
	for _, c := range t.cols {
		name := c.Name
		if s.ColumnIndex(name) >= 0 {
			name = prefix + "." + name
		}
		cols = append(cols, Column{Name: name, Kind: c.Kind})
	}
	return NewSchema(cols...)
}

// EqualLayout reports whether two schemas have the same column kinds in the
// same order (names may differ). Set operations require equal layouts.
func (s *Schema) EqualLayout(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i].Kind != t.cols[i].Kind {
			return false
		}
	}
	return true
}

// ParseKind maps a kind name ("int", "float", "string") back to its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	default:
		return 0, fmt.Errorf("relation: unknown column kind %q", name)
	}
}

// ParseSchema parses the exact format String renders — "(a int, id int)"
// — so a schema round-trips through its text form. The sharded tier leans
// on this: a coordinator pins each shard upload to the source relation's
// schema, keeping slices whose data would infer differently (an all-empty
// column, an all-integer prefix of a float column) layout-identical
// across shards.
func ParseSchema(s string) (*Schema, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(s), "(")
	if !ok {
		return nil, fmt.Errorf("relation: schema %q must start with '('", s)
	}
	body, ok = strings.CutSuffix(body, ")")
	if !ok {
		return nil, fmt.Errorf("relation: schema %q must end with ')'", s)
	}
	var cols []Column
	for _, part := range strings.Split(body, ",") {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("relation: schema column %q is not \"name kind\"", strings.TrimSpace(part))
		}
		kind, err := ParseKind(fields[1])
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: fields[0], Kind: kind})
	}
	return NewSchema(cols...)
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
