package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one materialized row: a slice of values positionally aligned
// with a schema. Since the columnar refactor, relations no longer store
// tuples — Tuple survives as the explicit materialization escape hatch
// (Relation.Materialize, Row.Materialize) and as the construction type for
// appends and stream payloads. Code on the estimator hot path reads column
// accessors (Relation.Value, Row) instead; the relestlint `tuplecopy` rule
// enforces that outside this package.
type Tuple []Value

// Equal reports whether two tuples have equal values position by position.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key returns a self-delimiting byte-string key over the given column
// positions, suitable for use as a map key: two tuples have equal keys over
// cols iff the projected values are pairwise Equal. Passing nil cols keys
// the whole tuple.
func (t Tuple) Key(cols []int) string {
	buf := make([]byte, 0, 16*max(1, len(cols)))
	return string(t.AppendKey(buf, cols))
}

// AppendKey appends the Key encoding of the given column positions to buf
// and returns the extended buffer; nil cols keys the whole tuple. It is the
// allocation-free companion of Key for hot probe loops that reuse a buffer.
func (t Tuple) AppendKey(buf []byte, cols []int) []byte {
	if cols == nil {
		for _, v := range t {
			buf = v.appendKey(buf)
		}
		return buf
	}
	for _, c := range cols {
		buf = t[c].appendKey(buf)
	}
	return buf
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is an in-memory bag of rows with a fixed schema and a name,
// stored column-wise: one typed vector per column (dictionary-encoded for
// strings) plus a null bitmap. Rows are addressable by dense position
// [0, Len), which is what the sampling layer relies on.
//
// A Relation is either a base relation (owns its column storage, grows by
// Append) or a view (an index vector over a snapshot of another relation's
// columns — see Subset). Views are zero-copy: they share column storage
// with their base and pin it against later appends, so a sample view can
// never observe stream mutation of its base (the copy-on-write rule; see
// column.go). A Relation is safe for concurrent reads after construction;
// appends are not synchronized.
type Relation struct {
	name   string
	schema *Schema
	cols   []column
	n      int
	// view maps logical row i to position view[i] of cols. nil means the
	// relation is a base: logical rows are storage rows [0, n).
	view []int
}

// New creates an empty base relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	cols := make([]column, schema.Len())
	for i := range cols {
		cols[i] = newColumn(schema.Column(i).Kind)
	}
	return &Relation{name: name, schema: schema, cols: cols}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of rows.
func (r *Relation) Len() int { return r.n }

// IsView reports whether the relation is a zero-copy view over another
// relation's column storage (Subset result) rather than an appendable base.
func (r *Relation) IsView() bool { return r.view != nil }

// phys maps a logical row position to its physical storage row.
func (r *Relation) phys(i int) int {
	if r.view != nil {
		return r.view[i]
	}
	return i
}

// Value returns the value at row i, column c. Allocation-free (string
// values alias the dictionary).
func (r *Relation) Value(i, c int) Value { return r.cols[c].value(r.phys(i)) }

// IsNull reports whether the value at row i, column c is null.
func (r *Relation) IsNull(i, c int) bool { return r.cols[c].isNull(r.phys(i)) }

// hashAt returns Value.Hash of the value at row i, column c without
// materializing it; used by the typed hash indexes.
func (r *Relation) hashAt(i, c int) uint64 { return r.cols[c].hashAt(r.phys(i)) }

// Row returns a lightweight handle on row i — the compact row-view API the
// layers above read through. The handle stays valid for the lifetime of the
// relation.
func (r *Relation) Row(i int) Row { return Row{r: r, i: i} }

// Row is a zero-allocation handle on one row of a relation: a (relation,
// position) pair whose accessors gather values from the column vectors on
// demand.
type Row struct {
	r *Relation
	i int
}

// Relation returns the relation the row belongs to.
func (w Row) Relation() *Relation { return w.r }

// Index returns the row's position within its relation.
func (w Row) Index() int { return w.i }

// Value returns the value of column c.
func (w Row) Value(c int) Value { return w.r.Value(w.i, c) }

// IsNull reports whether column c is null.
func (w Row) IsNull(c int) bool { return w.r.IsNull(w.i, c) }

// Len returns the row's arity.
func (w Row) Len() int { return w.r.schema.Len() }

// Key returns the Tuple.Key encoding of the given column positions (nil =
// all columns) without materializing the row.
func (w Row) Key(cols []int) string {
	buf := make([]byte, 0, 16*max(1, len(cols)))
	return string(w.AppendKey(buf, cols))
}

// AppendKey appends the Tuple.Key encoding of the given column positions
// (nil = all columns) to buf — the allocation-free companion of Key.
func (w Row) AppendKey(buf []byte, cols []int) []byte {
	if cols == nil {
		for c := 0; c < w.r.schema.Len(); c++ {
			buf = w.r.Value(w.i, c).appendKey(buf)
		}
		return buf
	}
	for _, c := range cols {
		buf = w.r.Value(w.i, c).appendKey(buf)
	}
	return buf
}

// Materialize copies the row out of column storage into a fresh Tuple —
// the explicit escape hatch for cold paths (export, display, stream
// payloads). Hot paths read Value/IsNull instead; relestlint's `tuplecopy`
// rule flags unannotated uses outside internal/relation.
func (w Row) Materialize() Tuple { return w.MaterializeInto(nil) }

// MaterializeInto appends the row's values to buf and returns it, letting
// loops reuse one buffer. Subject to the same `tuplecopy` discipline as
// Materialize.
func (w Row) MaterializeInto(buf Tuple) Tuple {
	for c := 0; c < w.r.schema.Len(); c++ {
		buf = append(buf, w.r.Value(w.i, c))
	}
	return buf
}

// String renders the row like Tuple.String, without materializing it.
func (w Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for c := 0; c < w.r.schema.Len(); c++ {
		if c > 0 {
			b.WriteString(", ")
		}
		b.WriteString(w.r.Value(w.i, c).String())
	}
	b.WriteByte(')')
	return b.String()
}

// Materialize copies row i into a fresh Tuple (Row(i).Materialize).
func (r *Relation) Materialize(i int) Tuple { return r.Row(i).Materialize() }

// Append adds a tuple after validating its arity and kinds against the
// schema (nulls are accepted in any column). Appending to a view fails:
// views pin immutable storage.
func (r *Relation) Append(t Tuple) error {
	if r.view != nil {
		return fmt.Errorf("relation %s: cannot append to a view", r.name)
	}
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.name, len(t), r.schema.Len())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if want := r.schema.Column(i).Kind; v.Kind() != want {
			return fmt.Errorf("relation %s: column %s expects %s, got %s",
				r.name, r.schema.Column(i).Name, want, v.Kind())
		}
	}
	for i, v := range t {
		r.cols[i].appendValue(r.n, v)
	}
	r.n++
	return nil
}

// MustAppend is Append that panics on error, for tests and generators whose
// tuples are constructed type-correct by design.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// AppendRow is a convenience wrapper building a tuple from values.
func (r *Relation) AppendRow(vals ...Value) error { return r.Append(Tuple(vals)) }

// AppendFrom appends row i of src, copying column-wise without
// materializing a tuple. The schemas must have equal layouts (the caller's
// responsibility — evaluator outputs are schema-checked at construction).
func (r *Relation) AppendFrom(src *Relation, i int) {
	if r.view != nil {
		panic(fmt.Sprintf("relation %s: cannot append to a view", r.name))
	}
	si := src.phys(i)
	for c := range r.cols {
		r.cols[c].appendFrom(r.n, &src.cols[c], si)
	}
	r.n++
}

// Grow reserves capacity for extra more rows, so a bulk append of known
// (or upper-bounded) size pays at most one reallocation per column
// instead of a doubling cascade. A hint only: appending past the reserved
// capacity stays correct.
func (r *Relation) Grow(extra int) {
	if r.view != nil || extra <= 0 {
		return
	}
	for c := range r.cols {
		r.cols[c].grow(extra)
	}
}

// AppendJoined appends the concatenation of row ai of a and row bi of b,
// copying column-wise (the join/product output path). a's arity plus b's
// arity must equal r's.
func (r *Relation) AppendJoined(a *Relation, ai int, b *Relation, bi int) {
	if r.view != nil {
		panic(fmt.Sprintf("relation %s: cannot append to a view", r.name))
	}
	la := a.schema.Len()
	pa, pb := a.phys(ai), b.phys(bi)
	for c := range r.cols {
		if c < la {
			r.cols[c].appendFrom(r.n, &a.cols[c], pa)
		} else {
			r.cols[c].appendFrom(r.n, &b.cols[c-la], pb)
		}
	}
	r.n++
}

// Each calls fn for every row position with the row materialized as a
// Tuple, stopping early if fn returns false. It allocates one Tuple per
// row; prefer EachRow (or direct Value access) everywhere throughput or
// memory matters — relestlint's `tuplecopy` rule flags Each outside this
// package.
func (r *Relation) Each(fn func(i int, t Tuple) bool) {
	for i := 0; i < r.n; i++ {
		if !fn(i, r.Row(i).Materialize()) {
			return
		}
	}
}

// EachRow calls fn for every row position and row handle, stopping early
// if fn returns false. No per-row allocation.
func (r *Relation) EachRow(fn func(i int, row Row) bool) {
	for i := 0; i < r.n; i++ {
		if !fn(i, Row{r: r, i: i}) {
			return
		}
	}
}

// snapshotCols returns the relation's columns pinned at the current length
// (see column.snapshot); for views the columns are already pinned.
func (r *Relation) snapshotCols() []column {
	if r.view != nil {
		return r.cols
	}
	out := make([]column, len(r.cols))
	for i := range r.cols {
		out[i] = r.cols[i].snapshot(r.n)
	}
	return out
}

// Subset returns a zero-copy view containing the rows at the given
// positions, in the given order. Positions may repeat. The view shares
// column storage with r (pinned at r's current length), so building it
// costs one index vector — this is how sample views reference base
// relations without copying tuples.
func (r *Relation) Subset(name string, positions []int) *Relation {
	view := make([]int, len(positions))
	for i, p := range positions {
		if p < 0 || p >= r.n {
			panic(fmt.Sprintf("relation %s: subset position %d outside [0, %d)", r.name, p, r.n))
		}
		view[i] = r.phys(p)
	}
	return &Relation{name: name, schema: r.schema, cols: r.snapshotCols(), n: len(view), view: view}
}

// Clone returns an independent read-only view of the relation's current
// rows (zero-copy). Use Compact for an appendable deep copy.
func (r *Relation) Clone(name string) *Relation {
	view := make([]int, r.n)
	for i := range view {
		view[i] = r.phys(i)
	}
	return &Relation{name: name, schema: r.schema, cols: r.snapshotCols(), n: r.n, view: view}
}

// Compact materializes the relation into fresh, dense column storage —
// a deep, appendable copy that drops any view indirection and unreferenced
// storage. Used to rewrite a view into a base relation.
func (r *Relation) Compact(name string) *Relation {
	out := New(name, r.schema)
	for i := 0; i < r.n; i++ {
		out.AppendFrom(r, i)
	}
	return out
}

// Distinct returns a new relation with duplicate rows removed, preserving
// first-occurrence order.
func (r *Relation) Distinct(name string) *Relation {
	positions := make([]int, 0, r.n)
	seen := make(map[string]struct{}, r.n)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.Row(i).AppendKey(buf[:0], nil)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		positions = append(positions, i)
	}
	return r.Subset(name, positions)
}

// IsSet reports whether the relation contains no duplicate rows.
func (r *Relation) IsSet() bool {
	seen := make(map[string]struct{}, r.n)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.Row(i).AppendKey(buf[:0], nil)
		if _, dup := seen[string(buf)]; dup {
			return false
		}
		seen[string(buf)] = struct{}{}
	}
	return true
}

// compareRows orders two logical rows lexicographically by Value.Compare,
// matching Tuple.Compare on the materialized rows.
func (r *Relation) compareRows(i, j int) int {
	for c := 0; c < r.schema.Len(); c++ {
		if cmp := r.Value(i, c).Compare(r.Value(j, c)); cmp != 0 {
			return cmp
		}
	}
	return 0
}

// Sort sorts the rows in place lexicographically; used to canonicalize
// relations in tests and display paths. The result is storage-layout
// independent: a base relation and any view holding the same rows sort to
// the same sequence.
func (r *Relation) Sort() {
	perm := make([]int, r.n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return r.compareRows(perm[a], perm[b]) < 0 })
	if r.view != nil {
		// Views reorder by permuting the index vector.
		old := r.view
		view := make([]int, r.n)
		for i, p := range perm {
			view[i] = old[p]
		}
		r.view = view
		return
	}
	// Base relations gather each column into fresh storage in sorted order,
	// staying an appendable base.
	sorted := New(r.name, r.schema)
	for _, p := range perm {
		sorted.AppendFrom(r, p)
	}
	r.cols = sorted.cols
}

// Bytes estimates the relation's resident storage in bytes: column vectors,
// null bitmaps and string dictionaries for base relations; the index vector
// for views (whose column storage is shared with, and accounted to, the
// base). It feeds the relest_relation_bytes / relest_synopsis_bytes gauges.
func (r *Relation) Bytes() int {
	if r.view != nil {
		return len(r.view) * 8
	}
	total := 0
	seenDict := map[*dict]bool{}
	for i := range r.cols {
		c := &r.cols[i]
		total += c.bytes()
		if c.dict != nil && !seenDict[c.dict] {
			seenDict[c.dict] = true
			total += c.dict.bytes()
		}
	}
	return total
}

// String renders a compact description, not the data.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, r.n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
