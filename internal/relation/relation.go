package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation: a slice of values positionally aligned
// with a schema. Tuples are treated as immutable once appended.
type Tuple []Value

// Equal reports whether two tuples have equal values position by position.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key returns a self-delimiting byte-string key over the given column
// positions, suitable for use as a map key in hash joins: two tuples have
// equal keys over cols iff the projected values are pairwise Equal.
// Passing nil cols keys the whole tuple.
func (t Tuple) Key(cols []int) string {
	buf := make([]byte, 0, 16*max(1, len(cols)))
	if cols == nil {
		for _, v := range t {
			buf = v.appendKey(buf)
		}
		return string(buf)
	}
	for _, c := range cols {
		buf = t[c].appendKey(buf)
	}
	return string(buf)
}

// AppendKey appends the Key encoding of the given column positions to buf
// and returns the extended buffer; nil cols keys the whole tuple. It is the
// allocation-free companion of Key for hot probe loops that reuse a buffer.
func (t Tuple) AppendKey(buf []byte, cols []int) []byte {
	if cols == nil {
		for _, v := range t {
			buf = v.appendKey(buf)
		}
		return buf
	}
	for _, c := range cols {
		buf = t[c].appendKey(buf)
	}
	return buf
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is an in-memory bag of tuples with a fixed schema and a name.
// Rows are addressable by dense position [0, Len), which is what the
// sampling layer relies on. A Relation is safe for concurrent reads after
// construction; appends are not synchronized.
type Relation struct {
	name   string
	schema *Schema
	rows   []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Tuple returns the row at position i. The returned slice must not be
// modified.
func (r *Relation) Tuple(i int) Tuple { return r.rows[i] }

// Append adds a tuple after validating its arity and kinds against the
// schema (nulls are accepted in any column).
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.name, len(t), r.schema.Len())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if want := r.schema.Column(i).Kind; v.Kind() != want {
			return fmt.Errorf("relation %s: column %s expects %s, got %s",
				r.name, r.schema.Column(i).Name, want, v.Kind())
		}
	}
	r.rows = append(r.rows, t)
	return nil
}

// MustAppend is Append that panics on error, for tests and generators whose
// tuples are constructed type-correct by design.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// AppendRow is a convenience wrapper building a tuple from values.
func (r *Relation) AppendRow(vals ...Value) error { return r.Append(Tuple(vals)) }

// Each calls fn for every row position and tuple, stopping early if fn
// returns false.
func (r *Relation) Each(fn func(i int, t Tuple) bool) {
	for i, t := range r.rows {
		if !fn(i, t) {
			return
		}
	}
}

// Subset returns a new relation containing the rows at the given positions,
// in the given order. Positions may repeat. It shares tuple storage with r.
func (r *Relation) Subset(name string, positions []int) *Relation {
	out := New(name, r.schema)
	out.rows = make([]Tuple, len(positions))
	for i, p := range positions {
		out.rows[i] = r.rows[p]
	}
	return out
}

// Clone returns a deep-enough copy: a new row slice over the same immutable
// tuples.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.schema)
	out.rows = append([]Tuple(nil), r.rows...)
	return out
}

// Distinct returns a new relation with duplicate tuples removed, preserving
// first-occurrence order.
func (r *Relation) Distinct(name string) *Relation {
	out := New(name, r.schema)
	seen := make(map[string]struct{}, len(r.rows))
	for _, t := range r.rows {
		k := t.Key(nil)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.rows = append(out.rows, t)
	}
	return out
}

// IsSet reports whether the relation contains no duplicate tuples.
func (r *Relation) IsSet() bool {
	seen := make(map[string]struct{}, len(r.rows))
	for _, t := range r.rows {
		k := t.Key(nil)
		if _, dup := seen[k]; dup {
			return false
		}
		seen[k] = struct{}{}
	}
	return true
}

// Sort sorts the rows in place lexicographically; used to canonicalize
// relations in tests.
func (r *Relation) Sort() {
	sort.Slice(r.rows, func(i, j int) bool { return r.rows[i].Compare(r.rows[j]) < 0 })
}

// String renders a compact description, not the data.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, len(r.rows))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
