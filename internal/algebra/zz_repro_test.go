package algebra

import (
	"testing"

	"relest/internal/relation"
)

func TestReproBuildSideOwnedMismatch(t *testing.T) {
	schema := func() *relation.Schema {
		return relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
		)
	}
	r := relation.New("R", schema())
	for i := 0; i < 8*relation.BatchRows; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(i % 16)), relation.Int(int64(i))})
	}
	s1 := relation.New("S1", schema())
	s2 := relation.New("S2", schema())
	for i := 0; i < 16; i++ {
		s1.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i * 10))})
		s2.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i*10 + 1))})
	}
	cat := MapCatalog{"R": r, "S1": s1, "S2": s2}
	u := Must(Union(BaseOf(s1), BaseOf(s2)))
	j := Must(Join(BaseOf(r), u, []On{{Left: "a", Right: "a"}}, nil, "u"))
	// Selection above the join reading a build-side column (colliding
	// right-side names are prefixed "u.": see Join's rightPrefix doc).
	e := Must(Select(j, Cmp{Col: "u.b", Op: GE, Val: relation.Int(0)}))

	want, err := Eval(e, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		n, err := StreamCountOpts(e, cat, StreamOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if n != int64(want.Len()) {
			t.Fatalf("workers=%d: got %d want %d", w, n, want.Len())
		}
	}
}
