package algebra

import (
	"fmt"

	"relest/internal/relation"
)

// Eval evaluates the expression exactly against the catalog and returns the
// result relation. It is the ground truth that every estimator in this
// repository is measured against: hash joins for equi-joins, key-set
// algorithms for the set operations, full duplicate elimination for π.
//
// Selections return zero-copy views over their input; joins, products,
// projections and set operations build fresh columnar relations by
// column-wise copy, never materializing intermediate tuples.
//
// Eval materializes every intermediate result, which makes it the oracle
// the streaming executor (stream.go) is validated against — and too
// expensive for anything but validation and small exports. Counting goes
// through Count/StreamCount instead; the relestlint `materialize` rule
// flags Eval calls outside this package so the escape hatch stays
// deliberate.
func Eval(e *Expr, cat Catalog) (*relation.Relation, error) {
	switch e.op {
	case OpBase:
		r, ok := cat.Relation(e.relName)
		if !ok {
			return nil, fmt.Errorf("algebra: no relation %q in catalog", e.relName)
		}
		if !r.Schema().EqualLayout(e.schema) {
			return nil, fmt.Errorf("algebra: relation %q layout %s does not match expression schema %s",
				e.relName, r.Schema(), e.schema)
		}
		return r, nil

	case OpSelect:
		child, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		var keep []int
		child.EachRow(func(i int, row relation.Row) bool {
			if e.pred.evalRow(row) {
				keep = append(keep, i)
			}
			return true
		})
		return child.Subset("σ("+child.Name()+")", keep), nil

	case OpProject:
		child, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		out := relation.New("π("+child.Name()+")", e.schema)
		seen := make(map[string]struct{}, child.Len())
		var keyBuf []byte
		proj := make(relation.Tuple, len(e.projCols))
		child.EachRow(func(i int, row relation.Row) bool {
			keyBuf = row.AppendKey(keyBuf[:0], e.projCols)
			if _, dup := seen[string(keyBuf)]; !dup {
				seen[string(keyBuf)] = struct{}{}
				for j, c := range e.projCols {
					proj[j] = row.Value(c)
				}
				out.MustAppend(proj)
			}
			return true
		})
		return out, nil

	case OpProduct:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		out := relation.New("×", e.schema)
		out.Grow(left.Len() * right.Len())
		for i := 0; i < left.Len(); i++ {
			for j := 0; j < right.Len(); j++ {
				out.AppendJoined(left, i, right, j)
			}
		}
		return out, nil

	case OpJoin:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		// Build on the smaller side; probe rows in storage order so the
		// output ordering matches the row-store evaluator exactly.
		out := relation.New("⋈", e.schema)
		theta := e.theta.eval
		var joined relation.Tuple
		emit := func(li, ri int) {
			if theta != nil {
				// The theta predicate is bound against the concatenated
				// schema; gather the pair into a reused buffer to test it.
				joined = joined[:0]
				//lint:ignore tuplecopy theta evaluation needs the concatenated pair; buffer is reused, never retained
				joined = left.Row(li).MaterializeInto(joined)
				//lint:ignore tuplecopy see above
				joined = right.Row(ri).MaterializeInto(joined)
				if !theta(joined) {
					return
				}
			}
			out.AppendJoined(left, li, right, ri)
		}
		// One lookup pass collects each probe row's bucket so the output
		// can reserve the exact (pre-theta) match count up front; the emit
		// pass then appends without a reallocation cascade.
		if right.Len() <= left.Len() {
			ix := relation.BuildIndex(right, e.joinRight)
			matches := make([][]int, left.Len())
			total := 0
			for i := 0; i < left.Len(); i++ {
				matches[i] = ix.LookupRow(left, i, e.joinLeft)
				total += len(matches[i])
			}
			out.Grow(total)
			for i, m := range matches {
				for _, j := range m {
					emit(i, j)
				}
			}
		} else {
			ix := relation.BuildIndex(left, e.joinLeft)
			matches := make([][]int, right.Len())
			total := 0
			for j := 0; j < right.Len(); j++ {
				matches[j] = ix.LookupRow(right, j, e.joinRight)
				total += len(matches[j])
			}
			out.Grow(total)
			for j, m := range matches {
				for _, i := range m {
					emit(i, j)
				}
			}
		}
		return out, nil

	case OpUnion, OpIntersect, OpDiff:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		return evalSetOp(e.op, e.schema, left, right), nil

	default:
		return nil, fmt.Errorf("algebra: cannot evaluate op %s", e.op)
	}
}

// Count evaluates COUNT(E) exactly through the streaming batch executor:
// σ/⋈/× pipelines are drained batch-by-batch without materializing
// intermediate relations, and set operations keep only their dedup state.
// Use StreamCountOpts directly to bound workers or record batch metrics.
func Count(e *Expr, cat Catalog) (int64, error) {
	return StreamCount(e, cat)
}

func evalSetOp(op Op, schema *relation.Schema, left, right *relation.Relation) *relation.Relation {
	out := relation.New(op.String(), schema)
	var keyBuf []byte
	rowKey := func(row relation.Row) []byte {
		keyBuf = row.AppendKey(keyBuf[:0], nil)
		return keyBuf
	}
	switch op {
	case OpUnion:
		seen := make(map[string]struct{}, left.Len()+right.Len())
		add := func(src *relation.Relation) {
			src.EachRow(func(i int, row relation.Row) bool {
				k := rowKey(row)
				if _, dup := seen[string(k)]; !dup {
					seen[string(k)] = struct{}{}
					out.AppendFrom(src, i)
				}
				return true
			})
		}
		add(left)
		add(right)
	case OpIntersect:
		rightKeys := make(map[string]struct{}, right.Len())
		right.EachRow(func(i int, row relation.Row) bool {
			rightKeys[string(rowKey(row))] = struct{}{}
			return true
		})
		emitted := make(map[string]struct{}, left.Len())
		left.EachRow(func(i int, row relation.Row) bool {
			k := rowKey(row)
			if _, in := rightKeys[string(k)]; in {
				if _, dup := emitted[string(k)]; !dup {
					emitted[string(k)] = struct{}{}
					out.AppendFrom(left, i)
				}
			}
			return true
		})
	case OpDiff:
		rightKeys := make(map[string]struct{}, right.Len())
		right.EachRow(func(i int, row relation.Row) bool {
			rightKeys[string(rowKey(row))] = struct{}{}
			return true
		})
		emitted := make(map[string]struct{}, left.Len())
		left.EachRow(func(i int, row relation.Row) bool {
			k := rowKey(row)
			if _, in := rightKeys[string(k)]; !in {
				if _, dup := emitted[string(k)]; !dup {
					emitted[string(k)] = struct{}{}
					out.AppendFrom(left, i)
				}
			}
			return true
		})
	}
	return out
}
