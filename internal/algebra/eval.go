package algebra

import (
	"fmt"

	"relest/internal/relation"
)

// Eval evaluates the expression exactly against the catalog and returns the
// result relation. It is the ground truth that every estimator in this
// repository is measured against: hash joins for equi-joins, key-set
// algorithms for the set operations, full duplicate elimination for π.
func Eval(e *Expr, cat Catalog) (*relation.Relation, error) {
	switch e.op {
	case OpBase:
		r, ok := cat.Relation(e.relName)
		if !ok {
			return nil, fmt.Errorf("algebra: no relation %q in catalog", e.relName)
		}
		if !r.Schema().EqualLayout(e.schema) {
			return nil, fmt.Errorf("algebra: relation %q layout %s does not match expression schema %s",
				e.relName, r.Schema(), e.schema)
		}
		return r, nil

	case OpSelect:
		child, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		out := relation.New("σ("+child.Name()+")", e.schema)
		child.Each(func(i int, t relation.Tuple) bool {
			if e.pred.eval(t) {
				out.MustAppend(t)
			}
			return true
		})
		return out, nil

	case OpProject:
		child, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		out := relation.New("π("+child.Name()+")", e.schema)
		seen := make(map[string]struct{}, child.Len())
		child.Each(func(i int, t relation.Tuple) bool {
			proj := make(relation.Tuple, len(e.projCols))
			for j, c := range e.projCols {
				proj[j] = t[c]
			}
			k := proj.Key(nil)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out.MustAppend(proj)
			}
			return true
		})
		return out, nil

	case OpProduct:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		out := relation.New("×", e.schema)
		left.Each(func(i int, lt relation.Tuple) bool {
			right.Each(func(j int, rt relation.Tuple) bool {
				out.MustAppend(concatTuples(lt, rt))
				return true
			})
			return true
		})
		return out, nil

	case OpJoin:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		// Build on the smaller side.
		out := relation.New("⋈", e.schema)
		if right.Len() <= left.Len() {
			ix := relation.BuildIndex(right, e.joinRight)
			left.Each(func(i int, lt relation.Tuple) bool {
				for _, j := range ix.Lookup(lt, e.joinLeft) {
					joined := concatTuples(lt, right.Tuple(j))
					if e.theta.eval == nil || e.theta.eval(joined) {
						out.MustAppend(joined)
					}
				}
				return true
			})
		} else {
			ix := relation.BuildIndex(left, e.joinLeft)
			right.Each(func(j int, rt relation.Tuple) bool {
				for _, i := range ix.Lookup(rt, e.joinRight) {
					joined := concatTuples(left.Tuple(i), rt)
					if e.theta.eval == nil || e.theta.eval(joined) {
						out.MustAppend(joined)
					}
				}
				return true
			})
		}
		return out, nil

	case OpUnion, OpIntersect, OpDiff:
		left, err := Eval(e.left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Eval(e.right, cat)
		if err != nil {
			return nil, err
		}
		return evalSetOp(e.op, e.schema, left, right), nil

	default:
		return nil, fmt.Errorf("algebra: cannot evaluate op %s", e.op)
	}
}

// Count evaluates COUNT(E) exactly. It materializes intermediate results;
// for the sizes used in this repository's experiments that is acceptable as
// ground truth (the estimators exist precisely so users don't have to do
// this).
func Count(e *Expr, cat Catalog) (int64, error) {
	r, err := Eval(e, cat)
	if err != nil {
		return 0, err
	}
	return int64(r.Len()), nil
}

func evalSetOp(op Op, schema *relation.Schema, left, right *relation.Relation) *relation.Relation {
	out := relation.New(op.String(), schema)
	switch op {
	case OpUnion:
		seen := make(map[string]struct{}, left.Len()+right.Len())
		add := func(t relation.Tuple) {
			k := t.Key(nil)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out.MustAppend(t)
			}
		}
		left.Each(func(i int, t relation.Tuple) bool { add(t); return true })
		right.Each(func(i int, t relation.Tuple) bool { add(t); return true })
	case OpIntersect:
		rightKeys := make(map[string]struct{}, right.Len())
		right.Each(func(i int, t relation.Tuple) bool {
			rightKeys[t.Key(nil)] = struct{}{}
			return true
		})
		emitted := make(map[string]struct{}, left.Len())
		left.Each(func(i int, t relation.Tuple) bool {
			k := t.Key(nil)
			if _, in := rightKeys[k]; in {
				if _, dup := emitted[k]; !dup {
					emitted[k] = struct{}{}
					out.MustAppend(t)
				}
			}
			return true
		})
	case OpDiff:
		rightKeys := make(map[string]struct{}, right.Len())
		right.Each(func(i int, t relation.Tuple) bool {
			rightKeys[t.Key(nil)] = struct{}{}
			return true
		})
		emitted := make(map[string]struct{}, left.Len())
		left.Each(func(i int, t relation.Tuple) bool {
			k := t.Key(nil)
			if _, in := rightKeys[k]; !in {
				if _, dup := emitted[k]; !dup {
					emitted[k] = struct{}{}
					out.MustAppend(t)
				}
			}
			return true
		})
	}
	return out
}

func concatTuples(a, b relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
