package algebra

import (
	"sort"
	"testing"

	"relest/internal/relation"
)

// fixtures builds a small catalog:
//
//	R(a, b): (1,10) (2,20) (3,30) (4,40)
//	S(a, b): (3,30) (4,99) (5,50)        — same layout as R
//	T(x)   : 10, 20, 20? no — set semantics: 10, 20, 50
func fixtures() (MapCatalog, *Expr, *Expr, *Expr) {
	rs := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}, relation.Column{Name: "b", Kind: relation.KindInt})
	r := relation.New("R", rs)
	for _, p := range [][2]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}} {
		r.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	ss := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}, relation.Column{Name: "b", Kind: relation.KindInt})
	s := relation.New("S", ss)
	for _, p := range [][2]int64{{3, 30}, {4, 99}, {5, 50}} {
		s.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	ts := relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindInt})
	tt := relation.New("T", ts)
	for _, v := range []int64{10, 20, 50} {
		tt.MustAppend(relation.Tuple{relation.Int(v)})
	}
	cat := MapCatalog{"R": r, "S": s, "T": tt}
	return cat, BaseOf(r), BaseOf(s), BaseOf(tt)
}

func mustCount(t *testing.T, e *Expr, cat Catalog) int64 {
	t.Helper()
	c, err := Count(e, cat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvalBase(t *testing.T) {
	cat, r, _, _ := fixtures()
	if got := mustCount(t, r, cat); got != 4 {
		t.Errorf("count(R) = %d", got)
	}
	// Missing relation.
	if _, err := Eval(Base("nope", r.Schema()), cat); err == nil {
		t.Error("missing relation should fail")
	}
	// Layout mismatch.
	bad := Base("T", r.Schema())
	if _, err := Eval(bad, cat); err == nil {
		t.Error("layout mismatch should fail")
	}
}

func TestEvalSelect(t *testing.T) {
	cat, r, _, _ := fixtures()
	sel := Must(Select(r, Cmp{Col: "a", Op: GE, Val: relation.Int(3)}))
	if got := mustCount(t, sel, cat); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	sel2 := Must(Select(r, And{
		Cmp{Col: "a", Op: GT, Val: relation.Int(1)},
		Cmp{Col: "b", Op: LT, Val: relation.Int(40)},
	}))
	if got := mustCount(t, sel2, cat); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	// Unknown column.
	if _, err := Select(r, Cmp{Col: "zz", Op: EQ, Val: relation.Int(0)}); err == nil {
		t.Error("unknown predicate column should fail")
	}
}

func TestEvalProject(t *testing.T) {
	cat, _, _, _ := fixtures()
	// Project R's b modulo duplicates: make a relation with dup b values.
	rs := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}, relation.Column{Name: "b", Kind: relation.KindInt})
	r := relation.New("R2", rs)
	for _, p := range [][2]int64{{1, 10}, {2, 10}, {3, 30}} {
		r.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	cat["R2"] = r
	pr := Must(Project(BaseOf(r), "b"))
	if got := mustCount(t, pr, cat); got != 2 {
		t.Errorf("count(π_b R2) = %d, want 2", got)
	}
	if pr.Schema().Len() != 1 || pr.Schema().Column(0).Name != "b" {
		t.Errorf("projected schema %s", pr.Schema())
	}
	if _, err := Project(BaseOf(r), "zz"); err == nil {
		t.Error("unknown projection column should fail")
	}
}

func TestEvalProduct(t *testing.T) {
	cat, r, _, tt := fixtures()
	pr := Must(Product(r, tt, "T"))
	if got := mustCount(t, pr, cat); got != 12 {
		t.Errorf("count(R×T) = %d, want 12", got)
	}
	if pr.Schema().Len() != 3 {
		t.Errorf("schema %s", pr.Schema())
	}
	// Self product disambiguates columns.
	pp := Must(Product(r, r, "R2"))
	if pp.Schema().ColumnIndex("R2.a") < 0 {
		t.Errorf("self product schema %s", pp.Schema())
	}
	if got := mustCount(t, pp, cat); got != 16 {
		t.Errorf("count(R×R) = %d, want 16", got)
	}
}

func TestEvalJoin(t *testing.T) {
	cat, r, s, _ := fixtures()
	j := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	if got := mustCount(t, j, cat); got != 2 { // a=3 and a=4
		t.Errorf("count(R⋈S on a) = %d, want 2", got)
	}
	// Join on two columns: only (3,30) matches both a and b.
	j2 := Must(Join(r, s, []On{{Left: "a", Right: "a"}, {Left: "b", Right: "b"}}, nil, "S"))
	if got := mustCount(t, j2, cat); got != 1 {
		t.Errorf("count(R⋈S on a,b) = %d, want 1", got)
	}
	// Theta-join: residual predicate on the concatenated schema.
	j3 := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, ColCmp{A: "b", Op: EQ, B: "S.b"}, "S"))
	if got := mustCount(t, j3, cat); got != 1 {
		t.Errorf("theta join count = %d, want 1", got)
	}
	// No conditions.
	if _, err := Join(r, s, nil, nil, "S"); err == nil {
		t.Error("join without conditions should fail")
	}
	// Unknown join column.
	if _, err := Join(r, s, []On{{Left: "zz", Right: "a"}}, nil, "S"); err == nil {
		t.Error("unknown left join column should fail")
	}
	if _, err := Join(r, s, []On{{Left: "a", Right: "zz"}}, nil, "S"); err == nil {
		t.Error("unknown right join column should fail")
	}
}

func TestEvalSetOps(t *testing.T) {
	cat, r, s, tt := fixtures()
	u := Must(Union(r, s))
	if got := mustCount(t, u, cat); got != 6 { // R has 4, S has 3, overlap {(3,30)}
		t.Errorf("count(R∪S) = %d, want 6", got)
	}
	i := Must(Intersect(r, s))
	if got := mustCount(t, i, cat); got != 1 {
		t.Errorf("count(R∩S) = %d, want 1", got)
	}
	d := Must(Diff(r, s))
	if got := mustCount(t, d, cat); got != 3 {
		t.Errorf("count(R−S) = %d, want 3", got)
	}
	d2 := Must(Diff(s, r))
	if got := mustCount(t, d2, cat); got != 2 {
		t.Errorf("count(S−R) = %d, want 2", got)
	}
	// Layout mismatch.
	if _, err := Union(r, tt); err == nil {
		t.Error("union layout mismatch should fail")
	}
}

func TestEvalComposite(t *testing.T) {
	cat, r, s, _ := fixtures()
	// (σ_{a≥2} R) − S  = {(2,20),(4,40)}; (3,30) removed by S.
	sel := Must(Select(r, Cmp{Col: "a", Op: GE, Val: relation.Int(2)}))
	d := Must(Diff(sel, s))
	if got := mustCount(t, d, cat); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	// Union with a join result.
	j := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	if j.Schema().Len() != 4 {
		t.Fatalf("join schema %s", j.Schema())
	}
	res, err := Eval(j, cat)
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	if res.Value(0, 0).Int64() != 3 || res.Value(1, 0).Int64() != 4 {
		t.Errorf("join rows wrong: %v %v", res.Materialize(0), res.Materialize(1))
	}
}

func TestPredicates(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}, relation.Column{Name: "b", Kind: relation.KindInt})
	tup := relation.Tuple{relation.Int(5), relation.Int(7)}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Cmp{Col: "a", Op: EQ, Val: relation.Int(5)}, true},
		{Cmp{Col: "a", Op: NE, Val: relation.Int(5)}, false},
		{Cmp{Col: "a", Op: LT, Val: relation.Int(6)}, true},
		{Cmp{Col: "a", Op: LE, Val: relation.Int(5)}, true},
		{Cmp{Col: "a", Op: GT, Val: relation.Int(5)}, false},
		{Cmp{Col: "a", Op: GE, Val: relation.Int(5)}, true},
		{ColCmp{A: "a", Op: LT, B: "b"}, true},
		{ColCmp{A: "a", Op: EQ, B: "b"}, false},
		{And{}, true},
		{Or{}, false},
		{And{Cmp{Col: "a", Op: EQ, Val: relation.Int(5)}, Cmp{Col: "b", Op: EQ, Val: relation.Int(7)}}, true},
		{Or{Cmp{Col: "a", Op: EQ, Val: relation.Int(0)}, Cmp{Col: "b", Op: EQ, Val: relation.Int(7)}}, true},
		{Not{Cmp{Col: "a", Op: EQ, Val: relation.Int(5)}}, false},
		{FuncOnCols{Cols: []string{"a", "b"}, Fn: func(v []relation.Value) bool {
			return v[0].Int64()+v[1].Int64() == 12
		}}, true},
	}
	for i, c := range cases {
		eval, err := c.p.bind(s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := eval(tup); got != c.want {
			t.Errorf("case %d (%v): got %v", i, c.p, got)
		}
	}
}

func TestPredicateNullSemantics(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	tup := relation.Tuple{relation.Null()}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		eval, err := Cmp{Col: "a", Op: op, Val: relation.Int(1)}.bind(s)
		if err != nil {
			t.Fatal(err)
		}
		if eval(tup) {
			t.Errorf("null %s 1 should be false", op)
		}
	}
}

func TestPredicateColumns(t *testing.T) {
	p := And{
		Cmp{Col: "a", Op: EQ, Val: relation.Int(1)},
		Or{Cmp{Col: "b", Op: EQ, Val: relation.Int(2)}, Cmp{Col: "a", Op: GT, Val: relation.Int(0)}},
	}
	got := p.Columns()
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Columns() = %v", got)
	}
}

func TestFuncOnColsNilFn(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	if _, err := (FuncOnCols{Cols: []string{"a"}}).bind(s); err == nil {
		t.Error("nil Fn should fail to bind")
	}
}

func TestExprIntrospection(t *testing.T) {
	cat, r, s, _ := fixtures()
	_ = cat
	j := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	u := Must(Union(r, s))
	names := j.BaseNames()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("BaseNames = %v", names)
	}
	if j.HasSetOp() || !u.HasSetOp() {
		t.Error("HasSetOp wrong")
	}
	pr := Must(Project(r, "a"))
	if !pr.HasProjection() || j.HasProjection() {
		t.Error("HasProjection wrong")
	}
	if j.Op() != OpJoin || j.Left() != r || j.Right() != s {
		t.Error("accessors wrong")
	}
	if r.BaseName() != "R" || j.BaseName() != "" {
		t.Error("BaseName wrong")
	}
	for _, e := range []*Expr{r, j, u, pr,
		Must(Select(r, Cmp{Col: "a", Op: EQ, Val: relation.Int(1)})),
		Must(Product(r, s, "S")),
		Must(Intersect(r, s)),
		Must(Diff(r, s))} {
		if e.String() == "" {
			t.Error("empty String()")
		}
	}
}
