package algebra

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"relest/internal/obs"
	"relest/internal/relation"
)

// overlapFixture builds the canonical CSE shape: a 3-way union of joins
// that differ only in the selection on their last relation,
//
//	(R ⋈ S ⋈ σ_p1 T) ∪ (R ⋈ S ⋈ σ_p2 T) ∪ (R ⋈ S ⋈ σ_p3 T),
//
// sized so every main term's plan enumerates R, then S, then T — the three
// terms share the [R, S] prefix. The p_i are pairwise disjoint ranges, so
// the union's pairwise-intersection terms have empty T candidate lists.
func overlapFixture() (MapCatalog, *Expr) {
	rs := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	ss := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "c", Kind: relation.KindInt},
	)
	ts := relation.MustSchema(
		relation.Column{Name: "b", Kind: relation.KindInt},
		relation.Column{Name: "x", Kind: relation.KindInt},
	)
	r := relation.New("R", rs)
	for i := 0; i < 20; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(i % 8)), relation.Int(int64(i % 12))})
	}
	s := relation.New("S", ss)
	for i := 0; i < 40; i++ {
		s.MustAppend(relation.Tuple{relation.Int(int64(i % 8)), relation.Int(int64(i))})
	}
	tt := relation.New("T", ts)
	for i := 0; i < 200; i++ {
		tt.MustAppend(relation.Tuple{relation.Int(int64(i % 12)), relation.Int(int64(i % 90))})
	}
	cat := MapCatalog{"R": r, "S": s, "T": tt}
	term := func(lo, hi int64) *Expr {
		rsJoin := Must(Join(BaseOf(r), BaseOf(s), []On{{Left: "a", Right: "a"}}, nil, "s_"))
		sel := Must(Select(BaseOf(tt), And{
			Cmp{Col: "x", Op: GE, Val: relation.Int(lo)},
			Cmp{Col: "x", Op: LT, Val: relation.Int(hi)},
		}))
		return Must(Join(rsJoin, sel, []On{{Left: "b", Right: "b"}}, nil, "t_"))
	}
	e := Must(Union(Must(Union(term(0, 30), term(30, 60))), term(60, 90)))
	return cat, e
}

// preparePair compiles every polynomial term twice: once into the cache
// (the plans AttachCSE will link) and once standalone (the plain oracle).
func preparePair(t *testing.T, poly Polynomial, cat Catalog, cache *PlanCache) (attached, plain []*PreparedTerm) {
	t.Helper()
	for i := range poly.Terms {
		tm := &poly.Terms[i]
		inst, err := BindInstances(tm, cat)
		if err != nil {
			t.Fatalf("term %d: bind: %v", i, err)
		}
		pt, err := cache.Prepare(tm, inst)
		if err != nil {
			t.Fatalf("term %d: prepare: %v", i, err)
		}
		pp, err := Prepare(tm, inst)
		if err != nil {
			t.Fatalf("term %d: prepare plain: %v", i, err)
		}
		attached, plain = append(attached, pt), append(plain, pp)
	}
	return attached, plain
}

// checkPlansBitIdentical compares an attached plan against its plain twin:
// per-part counts must match bit for bit and enumeration must visit the
// same assignments in the same order.
func checkPlansBitIdentical(t *testing.T, i int, attached, plain *PreparedTerm) {
	t.Helper()
	parts := attached.Parts()
	if pp := plain.Parts(); pp != parts {
		t.Fatalf("term %d: Parts %d (shared) != %d (plain)", i, parts, pp)
	}
	for part := 0; part < parts; part++ {
		a := attached.CountPart(part, parts)
		b := plain.CountPart(part, parts)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("term %d part %d/%d: shared count %v != plain %v (bits %x vs %x)",
				i, part, parts, a, b, math.Float64bits(a), math.Float64bits(b))
		}
	}
	var gotSeq, wantSeq [][]int
	attached.Enumerate(func(rows []int) bool {
		gotSeq = append(gotSeq, append([]int(nil), rows...))
		return true
	})
	plain.Enumerate(func(rows []int) bool {
		wantSeq = append(wantSeq, append([]int(nil), rows...))
		return true
	})
	if len(gotSeq) != len(wantSeq) {
		t.Fatalf("term %d: shared enumeration has %d assignments, plain %d", i, len(gotSeq), len(wantSeq))
	}
	for j := range gotSeq {
		for k := range gotSeq[j] {
			if gotSeq[j][k] != wantSeq[j][k] {
				t.Fatalf("term %d: assignment %d differs: %v vs %v", i, j, gotSeq[j], wantSeq[j])
			}
		}
	}
}

// TestAttachCSESharesAcrossTerms checks the canonical overlap shape: the
// three main union terms attach to one shared [R, S] prefix and every
// attached plan still counts and enumerates bit-identically to a plain
// plan.
func TestAttachCSESharesAcrossTerms(t *testing.T) {
	cat, e := overlapFixture()
	poly, err := Normalize(e)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewCollector()
	cache := NewPlanCacheRec(rec)
	attached, plain := preparePair(t, poly, cat, cache)
	shared := cache.AttachCSE(attached)
	if shared < 2 {
		t.Fatalf("AttachCSE shared %d plans, want >= 2 (three terms share the R⋈S prefix)", shared)
	}
	if cache.Subplans() == 0 {
		t.Fatal("no shared subplans registered")
	}
	if got := rec.Metrics().Counter(obs.MetricCSESubplansShared).Value(); got != float64(shared) {
		t.Errorf("shared-subplan counter = %v, want %v", got, shared)
	}
	for i := range attached {
		checkPlansBitIdentical(t, i, attached[i], plain[i])
	}
	if cache.SubplanBytes() == 0 {
		t.Error("no shared table materialized after evaluation")
	}
	if rec.Metrics().Gauge(obs.MetricCSESubplanBytes).Value() <= 0 {
		t.Error("subplan bytes gauge not recorded")
	}
	// Idempotence: re-attaching the same plans must not double-link.
	if again := cache.AttachCSE(attached); again != 0 {
		t.Errorf("second AttachCSE shared %d plans, want 0", again)
	}
}

// TestCSEBitIdenticalRandomized attaches shared prefixes across the terms
// of randomized polynomials and requires every attached plan to reproduce
// its plain twin bit for bit — counts per part and enumeration order.
func TestCSEBitIdenticalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sharedTotal := 0
	for trial := 0; trial < 80; trial++ {
		cat, bases := randomCatalog(rng)
		e := randomExpr(rng, bases, 3)
		poly, err := Normalize(e)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, e, err)
		}
		if poly.NumTerms() < 2 || poly.NumTerms() > 120 {
			continue
		}
		cache := NewPlanCache()
		attached, plain := preparePair(t, poly, cat, cache)
		sharedTotal += cache.AttachCSE(attached)
		for i := range attached {
			checkPlansBitIdentical(t, i, attached[i], plain[i])
		}
	}
	if sharedTotal == 0 {
		t.Error("randomized trials never shared a prefix; fixture has lost its CSE coverage")
	}
}

// TestSharedSubplanConcurrentConsumers streams one shared subplan into the
// three main overlap terms (plus the intersection terms) from concurrent
// goroutines — the -race check that lazy table materialization and
// replay are safe under concurrent consumption.
func TestSharedSubplanConcurrentConsumers(t *testing.T) {
	cat, e := overlapFixture()
	poly, err := Normalize(e)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	attached, plain := preparePair(t, poly, cat, cache)
	if shared := cache.AttachCSE(attached); shared < 2 {
		t.Fatalf("AttachCSE shared %d plans, want >= 2", shared)
	}
	want := make([]float64, len(plain))
	for i, pp := range plain {
		want[i] = pp.Count()
	}
	const goroutines = 4
	got := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]float64, len(attached))
			for i, pt := range attached {
				vals[i] = pt.Count()
				pt.Enumerate(func([]int) bool { return true })
			}
			got[g] = vals
		}(g)
	}
	wg.Wait()
	for g := range got {
		for i := range want {
			if math.Float64bits(got[g][i]) != math.Float64bits(want[i]) {
				t.Errorf("goroutine %d term %d: %v != plain %v", g, i, got[g][i], want[i])
			}
		}
	}
}

// TestPlanCacheKeyStructural feeds the structural key encoder the
// adversarial shapes that break separator-joined keys: component splits
// whose concatenations collide, and (term, instances) pairs that are
// prefixes, repetitions or permutations of one another.
func TestPlanCacheKeyStructural(t *testing.T) {
	encode := func(parts ...string) string {
		var buf []byte
		for _, p := range parts {
			buf = appendKeyPart(buf, p)
		}
		return string(buf)
	}
	splits := [][2][]string{
		{{"ab", "c"}, {"a", "bc"}},
		{{"abc"}, {"ab", "c"}},
		{{"", "x"}, {"x", ""}},
		{{"x", "", ""}, {"x", ""}},
		{{"a:b"}, {"a", "b"}},
		{{"a", ":b"}, {"a:", "b"}},
	}
	for _, c := range splits {
		if encode(c[0]...) == encode(c[1]...) {
			t.Errorf("encoder collision: %q vs %q", c[0], c[1])
		}
	}

	schema := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	t1, t2 := &Term{}, &Term{}
	r1, r2 := relation.New("R", schema), relation.New("R", schema)
	pairs := []struct {
		name string
		t    *Term
		inst Instances
	}{
		{"t1/none", t1, nil},
		{"t1/r1", t1, Instances{r1}},
		{"t1/r2", t1, Instances{r2}},
		{"t1/r1r1", t1, Instances{r1, r1}},
		{"t1/r1r2", t1, Instances{r1, r2}},
		{"t1/r2r1", t1, Instances{r2, r1}},
		{"t2/r1", t2, Instances{r1}},
		{"t2/r1r2", t2, Instances{r1, r2}},
	}
	seen := make(map[string]string, len(pairs))
	for _, p := range pairs {
		key := planCacheKey(p.t, p.inst)
		if prev, dup := seen[key]; dup {
			t.Errorf("planCacheKey collision: %s and %s encode identically", prev, p.name)
		}
		seen[key] = p.name
	}
}
