package algebra

import (
	"fmt"

	"relest/internal/relation"
)

// This file evaluates counting-polynomial terms over concrete relation
// instances. The same machinery serves two callers:
//
//   - the exact path: instances are the full base relations and every
//     satisfying assignment counts 1, reproducing COUNT(E);
//   - the estimation path: instances are per-relation SRSWOR samples and
//     each satisfying assignment is weighted by the falling-factorial
//     pattern weight supplied by the estimator.
//
// Evaluation plans a greedy join order over the term's occurrences, applies
// pushed-down local predicates first, uses composite-key hash indexes for
// every equality constraint that connects a new occurrence to already-bound
// ones, and enumerates assignments recursively. In pure counting mode,
// occurrences that are unconstrained from some point on are folded into a
// single multiplicative factor instead of being enumerated.

// Instances carries one relation instance per occurrence of a term,
// positionally aligned with Term.Occs. All occurrences of the same base
// relation must reference the same instance for pattern weights to be
// meaningful.
type Instances []*relation.Relation

// BindInstances builds the per-occurrence instance list for a term by
// looking each occurrence's relation up in the catalog.
func BindInstances(t *Term, cat Catalog) (Instances, error) {
	inst := make(Instances, len(t.Occs))
	for i, o := range t.Occs {
		r, ok := cat.Relation(o.RelName)
		if !ok {
			return nil, fmt.Errorf("algebra: no relation %q in catalog", o.RelName)
		}
		if !r.Schema().EqualLayout(o.Schema) {
			return nil, fmt.Errorf("algebra: relation %q layout %s does not match occurrence schema %s",
				o.RelName, r.Schema(), o.Schema)
		}
		inst[i] = r
	}
	return inst, nil
}

// termPlan is the compiled evaluation order for one term over fixed
// instances.
type termPlan struct {
	term *Term
	inst Instances

	order []int   // plan position → occurrence index
	pos   []int   // occurrence index → plan position
	cand  [][]int // per occurrence: candidate rows after local preds and intra-occurrence equalities

	steps []planStep
}

type planStep struct {
	occ int
	// probe describes the composite hash index for this step: the
	// occurrence's rows are indexed on keyCols, probed with values gathered
	// from boundRefs (aligned with keyCols). Empty keyCols means a full
	// scan of the candidate list.
	keyCols   []int
	boundRefs []ColRef
	index     map[string][]int
	// preds to evaluate once this step's occurrence is bound.
	preds []TermPred
	// independent marks a tail step with no constraints at or after it;
	// counting mode multiplies by len(cand) instead of recursing.
	independent bool
}

// compile builds the evaluation plan.
func compile(t *Term, inst Instances) (*termPlan, error) {
	m := len(t.Occs)
	if len(inst) != m {
		return nil, fmt.Errorf("algebra: term has %d occurrences, got %d instances", m, len(inst))
	}
	p := &termPlan{term: t, inst: inst}

	// Candidate rows: local predicates plus intra-occurrence equalities.
	intraEqs := make([][]EqCol, m)
	var crossEqs []EqCol
	for _, eq := range t.Eqs {
		if eq.A.Occ == eq.B.Occ {
			intraEqs[eq.A.Occ] = append(intraEqs[eq.A.Occ], eq)
		} else {
			crossEqs = append(crossEqs, eq)
		}
	}
	p.cand = make([][]int, m)
	for i := range t.Occs {
		r := inst[i]
		if !r.Schema().EqualLayout(t.Occs[i].Schema) {
			return nil, fmt.Errorf("algebra: instance %d layout %s does not match occurrence schema %s",
				i, r.Schema(), t.Occs[i].Schema)
		}
		rows := make([]int, 0, r.Len())
	scan:
		for ri := 0; ri < r.Len(); ri++ {
			tp := r.Tuple(ri)
			for _, lp := range t.Occs[i].LocalPreds {
				if !lp(tp) {
					continue scan
				}
			}
			for _, eq := range intraEqs[i] {
				if !tp[eq.A.Col].Equal(tp[eq.B.Col]) {
					continue scan
				}
			}
			rows = append(rows, ri)
		}
		p.cand[i] = rows
	}

	// Greedy order: smallest candidate list first, then prefer occurrences
	// connected by an equality to the bound set (so the step gets an
	// index), breaking ties by candidate count.
	bound := make([]bool, m)
	p.order = make([]int, 0, m)
	p.pos = make([]int, m)
	connected := func(occ int) bool {
		for _, eq := range crossEqs {
			if eq.A.Occ == occ && bound[eq.B.Occ] {
				return true
			}
			if eq.B.Occ == occ && bound[eq.A.Occ] {
				return true
			}
		}
		return false
	}
	for k := 0; k < m; k++ {
		best := -1
		bestConn := false
		for i := 0; i < m; i++ {
			if bound[i] {
				continue
			}
			conn := k > 0 && connected(i)
			if best < 0 ||
				(conn && !bestConn) ||
				(conn == bestConn && len(p.cand[i]) < len(p.cand[best])) {
				best, bestConn = i, conn
			}
		}
		bound[best] = true
		p.pos[best] = k
		p.order = append(p.order, best)
	}

	// Assign constraints to the plan step at which they become checkable.
	p.steps = make([]planStep, m)
	for k, occ := range p.order {
		p.steps[k].occ = occ
		_ = k
	}
	for _, eq := range crossEqs {
		// The equality is enforced at the later of its two occurrences.
		a, b := eq.A, eq.B
		if p.pos[a.Occ] < p.pos[b.Occ] {
			a, b = b, a
		}
		// a is bound later: index a's occurrence on a.Col, probe with b.
		st := &p.steps[p.pos[a.Occ]]
		st.keyCols = append(st.keyCols, a.Col)
		st.boundRefs = append(st.boundRefs, b)
	}
	for _, pr := range t.Preds {
		last := 0
		for _, ref := range pr.Refs {
			if p.pos[ref.Occ] > last {
				last = p.pos[ref.Occ]
			}
		}
		p.steps[last].preds = append(p.steps[last].preds, pr)
	}

	// Build indexes and mark the independent tail.
	for k := range p.steps {
		st := &p.steps[k]
		if len(st.keyCols) > 0 {
			st.index = make(map[string][]int, len(p.cand[st.occ]))
			r := inst[st.occ]
			key := make(relation.Tuple, len(st.keyCols))
			for _, ri := range p.cand[st.occ] {
				tp := r.Tuple(ri)
				for i, c := range st.keyCols {
					key[i] = tp[c]
				}
				ks := key.Key(nil)
				st.index[ks] = append(st.index[ks], ri)
			}
		}
	}
	for k := m - 1; k >= 0; k-- {
		st := &p.steps[k]
		if len(st.keyCols) == 0 && len(st.preds) == 0 {
			st.independent = true
		} else {
			break
		}
	}
	return p, nil
}

// candidatesAt returns the rows compatible with the bound prefix at step k.
func (p *termPlan) candidatesAt(k int, assign []int) []int {
	st := &p.steps[k]
	if st.index == nil {
		return p.cand[st.occ]
	}
	key := make(relation.Tuple, len(st.boundRefs))
	for i, ref := range st.boundRefs {
		key[i] = p.inst[ref.Occ].Tuple(assign[ref.Occ])[ref.Col]
	}
	return st.index[key.Key(nil)]
}

// predsHold evaluates the step's residual predicates on the assignment.
func (p *termPlan) predsHold(k int, assign []int) bool {
	for _, pr := range p.steps[k].preds {
		virt := make(relation.Tuple, pr.Width)
		for i, pos := range pr.ReadPos {
			ref := pr.Refs[i]
			virt[pos] = p.inst[ref.Occ].Tuple(assign[ref.Occ])[ref.Col]
		}
		if !pr.Eval(virt) {
			return false
		}
	}
	return true
}

// CountAssignments returns the number of occurrence-row assignments
// satisfying the term over the instances, as a float64 (counts can exceed
// int64 for product-heavy terms). Unconstrained tail occurrences are folded
// multiplicatively.
func (t *Term) CountAssignments(inst Instances) (float64, error) {
	p, err := compile(t, inst)
	if err != nil {
		return 0, err
	}
	// Determine the enumerated prefix and the multiplicative tail.
	m := len(p.steps)
	enumUpto := m
	tailFactor := 1.0
	for k := m - 1; k >= 0; k-- {
		if !p.steps[k].independent {
			break
		}
		tailFactor *= float64(len(p.cand[p.steps[k].occ]))
		enumUpto = k
	}
	if tailFactor == 0 {
		return 0, nil
	}
	assign := make([]int, m)
	var rec func(k int) float64
	rec = func(k int) float64 {
		if k == enumUpto {
			return 1
		}
		st := &p.steps[k]
		total := 0.0
		for _, ri := range p.candidatesAt(k, assign) {
			assign[st.occ] = ri
			if !p.predsHold(k, assign) {
				continue
			}
			total += rec(k + 1)
		}
		return total
	}
	return rec(0) * tailFactor, nil
}

// EnumerateAssignments invokes visit for every satisfying assignment (rows
// positionally aligned with Term.Occs). visit must not retain the slice.
// Enumeration stops early if visit returns false. Used by the
// pattern-weighted estimator, whose weights depend on the full assignment.
func (t *Term) EnumerateAssignments(inst Instances, visit func(rows []int) bool) error {
	p, err := compile(t, inst)
	if err != nil {
		return err
	}
	m := len(p.steps)
	assign := make([]int, m)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == m {
			return visit(assign)
		}
		st := &p.steps[k]
		for _, ri := range p.candidatesAt(k, assign) {
			assign[st.occ] = ri
			if !p.predsHold(k, assign) {
				continue
			}
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}

// CountStreaming computes COUNT(e) exactly without materializing
// intermediate results: π-free expressions go through the counting
// polynomial (assignments are enumerated and counted, never stored), and
// expressions with π fall back to the materializing evaluator. Prefer this
// over Count for large join trees — it trades memory for the same
// asymptotic time.
func CountStreaming(e *Expr, cat Catalog) (float64, error) {
	if e.HasProjection() {
		c, err := Count(e, cat)
		return float64(c), err
	}
	p, err := Normalize(e)
	if err != nil {
		return 0, err
	}
	return p.ExactCount(cat)
}

// ExactCount evaluates the polynomial with unit weights over the catalog's
// full relations: the result equals COUNT(E) for the normalized expression.
// It exists to validate the normalizer against the exact evaluator and to
// let tests cross-check term evaluation.
func (p Polynomial) ExactCount(cat Catalog) (float64, error) {
	total := 0.0
	for i := range p.Terms {
		t := &p.Terms[i]
		inst, err := BindInstances(t, cat)
		if err != nil {
			return 0, err
		}
		c, err := t.CountAssignments(inst)
		if err != nil {
			return 0, err
		}
		total += float64(t.Coef) * c
	}
	return total, nil
}
