package algebra

import (
	"encoding/binary"
	"fmt"
	"sync"

	"relest/internal/obs"
	"relest/internal/relation"
)

// This file evaluates counting-polynomial terms over concrete relation
// instances. The same machinery serves two callers:
//
//   - the exact path: instances are the full base relations and every
//     satisfying assignment counts 1, reproducing COUNT(E);
//   - the estimation path: instances are per-relation SRSWOR samples and
//     each satisfying assignment is weighted by the falling-factorial
//     pattern weight supplied by the estimator.
//
// Evaluation plans a greedy join order over the term's occurrences, applies
// pushed-down local predicates first, uses composite-key hash indexes for
// every equality constraint that connects a new occurrence to already-bound
// ones, and enumerates assignments recursively. In pure counting mode,
// occurrences that are unconstrained from some point on are folded into a
// single multiplicative factor instead of being enumerated.
//
// Compilation is separated from evaluation: Prepare (or a PlanCache)
// produces an immutable PreparedTerm whose candidate lists and hash indexes
// are built once, and every evaluation carries its own scratch state
// (termEval), so one plan can serve any number of concurrent evaluations.

// Instances carries one relation instance per occurrence of a term,
// positionally aligned with Term.Occs. All occurrences of the same base
// relation must reference the same instance for pattern weights to be
// meaningful.
type Instances []*relation.Relation

// BindInstances builds the per-occurrence instance list for a term by
// looking each occurrence's relation up in the catalog.
func BindInstances(t *Term, cat Catalog) (Instances, error) {
	inst := make(Instances, len(t.Occs))
	for i, o := range t.Occs {
		r, ok := cat.Relation(o.RelName)
		if !ok {
			return nil, fmt.Errorf("algebra: no relation %q in catalog", o.RelName)
		}
		if !r.Schema().EqualLayout(o.Schema) {
			return nil, fmt.Errorf("algebra: relation %q layout %s does not match occurrence schema %s",
				o.RelName, r.Schema(), o.Schema)
		}
		inst[i] = r
	}
	return inst, nil
}

// termPlan is the compiled evaluation order for one term over fixed
// instances.
//
// Plan reuse rules: a plan is immutable once compile returns — all mutable
// per-evaluation state (the assignment under construction, probe-key and
// virtual-tuple scratch) lives in termEval — so a single plan may be shared
// freely across goroutines. A cached plan remains valid exactly as long as
// (a) the Term's constraint structure is unchanged and (b) every bound
// instance still holds the same rows it held at compile time. Swapping an
// instance for a different *relation.Relation naturally misses the cache
// (keys include instance identity); mutating a relation in place behind a
// cached plan requires PlanCache.Invalidate.
type termPlan struct {
	term *Term
	inst Instances

	order []int   // plan position → occurrence index
	pos   []int   // occurrence index → plan position
	cand  [][]int // per occurrence: candidate rows after local preds and intra-occurrence equalities

	steps []planStep

	// enumUpto is the first plan position of the independent tail: counting
	// enumerates steps [0, enumUpto) and multiplies by tailFactor, the
	// product of the tail occurrences' candidate counts.
	enumUpto   int
	tailFactor float64

	// maxPredWidth sizes the per-evaluation virtual tuple for residual
	// predicates; maxProbeWidth sizes the probe-value scratch.
	maxPredWidth  int
	maxProbeWidth int

	// shared, when non-nil, is the cross-term CSE attachment: the plan's
	// first shared.upto steps enumerate identically to every other plan in
	// the sharing group, so Count/Enumerate read the group's materialized
	// assignment table instead of re-enumerating the prefix. Set by
	// PlanCache.AttachCSE before any evaluation; nil plans evaluate the
	// plain recursive paths. See cse.go.
	shared *subplanEntry
}

type planStep struct {
	occ int
	// probe describes the composite hash index for this step: the
	// occurrence's candidate rows are indexed on keyCols (typed composite
	// keys, see relation.Index), probed with values gathered from boundRefs
	// (aligned with keyCols). Empty keyCols means a full scan of the
	// candidate list.
	keyCols   []int
	boundRefs []ColRef
	index     *relation.Index
	// preds to evaluate once this step's occurrence is bound.
	preds []TermPred
	// independent marks a tail step with no constraints at or after it;
	// counting mode multiplies by len(cand) instead of recursing.
	independent bool
}

// compile builds the evaluation plan.
func compile(t *Term, inst Instances) (*termPlan, error) {
	m := len(t.Occs)
	if len(inst) != m {
		return nil, fmt.Errorf("algebra: term has %d occurrences, got %d instances", m, len(inst))
	}
	p := &termPlan{term: t, inst: inst}

	// Candidate rows: local predicates plus intra-occurrence equalities.
	intraEqs := make([][]EqCol, m)
	var crossEqs []EqCol
	for _, eq := range t.Eqs {
		if eq.A.Occ == eq.B.Occ {
			intraEqs[eq.A.Occ] = append(intraEqs[eq.A.Occ], eq)
		} else {
			crossEqs = append(crossEqs, eq)
		}
	}
	p.cand = make([][]int, m)
	for i := range t.Occs {
		r := inst[i]
		if !r.Schema().EqualLayout(t.Occs[i].Schema) {
			return nil, fmt.Errorf("algebra: instance %d layout %s does not match occurrence schema %s",
				i, r.Schema(), t.Occs[i].Schema)
		}
		rows := make([]int, 0, r.Len())
	scan:
		for ri := 0; ri < r.Len(); ri++ {
			row := r.Row(ri)
			for _, lp := range t.Occs[i].LocalPreds {
				if !lp(row) {
					continue scan
				}
			}
			for _, eq := range intraEqs[i] {
				if !r.Value(ri, eq.A.Col).Equal(r.Value(ri, eq.B.Col)) {
					continue scan
				}
			}
			rows = append(rows, ri)
		}
		p.cand[i] = rows
	}

	// Greedy order: smallest candidate list first, then prefer occurrences
	// connected by an equality to the bound set (so the step gets an
	// index), breaking ties by candidate count.
	bound := make([]bool, m)
	p.order = make([]int, 0, m)
	p.pos = make([]int, m)
	connected := func(occ int) bool {
		for _, eq := range crossEqs {
			if eq.A.Occ == occ && bound[eq.B.Occ] {
				return true
			}
			if eq.B.Occ == occ && bound[eq.A.Occ] {
				return true
			}
		}
		return false
	}
	for k := 0; k < m; k++ {
		best := -1
		bestConn := false
		for i := 0; i < m; i++ {
			if bound[i] {
				continue
			}
			conn := k > 0 && connected(i)
			if best < 0 ||
				(conn && !bestConn) ||
				(conn == bestConn && len(p.cand[i]) < len(p.cand[best])) {
				best, bestConn = i, conn
			}
		}
		bound[best] = true
		p.pos[best] = k
		p.order = append(p.order, best)
	}

	// Assign constraints to the plan step at which they become checkable.
	p.steps = make([]planStep, m)
	for k, occ := range p.order {
		p.steps[k].occ = occ
	}
	for _, eq := range crossEqs {
		// The equality is enforced at the later of its two occurrences.
		a, b := eq.A, eq.B
		if p.pos[a.Occ] < p.pos[b.Occ] {
			a, b = b, a
		}
		// a is bound later: index a's occurrence on a.Col, probe with b.
		st := &p.steps[p.pos[a.Occ]]
		st.keyCols = append(st.keyCols, a.Col)
		st.boundRefs = append(st.boundRefs, b)
	}
	for _, pr := range t.Preds {
		last := 0
		for _, ref := range pr.Refs {
			if p.pos[ref.Occ] > last {
				last = p.pos[ref.Occ]
			}
		}
		p.steps[last].preds = append(p.steps[last].preds, pr)
		if pr.Width > p.maxPredWidth {
			p.maxPredWidth = pr.Width
		}
	}

	// Build indexes and mark the independent tail. Candidate lists are
	// ascending, so bucket rows keep ascending (enumeration) order.
	for k := range p.steps {
		st := &p.steps[k]
		if len(st.keyCols) > 0 {
			st.index = relation.BuildIndexRows(inst[st.occ], st.keyCols, p.cand[st.occ])
			if len(st.boundRefs) > p.maxProbeWidth {
				p.maxProbeWidth = len(st.boundRefs)
			}
		}
	}
	p.enumUpto = m
	p.tailFactor = 1.0
	for k := m - 1; k >= 0; k-- {
		st := &p.steps[k]
		if len(st.keyCols) == 0 && len(st.preds) == 0 {
			st.independent = true
			p.tailFactor *= float64(len(p.cand[st.occ]))
			p.enumUpto = k
		} else {
			break
		}
	}
	return p, nil
}

// termEval is the per-evaluation scratch over an immutable plan: the
// assignment under construction, the probe-value buffer and the virtual
// tuple for residual predicates. Hoisting these out of the innermost
// enumeration loops removes the per-probe/per-check allocations, and
// keeping them off the plan lets concurrent evaluations share one plan
// safely.
type termEval struct {
	p      *termPlan
	assign []int
	vals   []relation.Value
	virt   relation.Tuple
}

func (p *termPlan) newEval() *termEval {
	return &termEval{
		p:      p,
		assign: make([]int, len(p.steps)),
		vals:   make([]relation.Value, p.maxProbeWidth),
		virt:   make(relation.Tuple, p.maxPredWidth),
	}
}

// candidatesAt returns the rows compatible with the bound prefix at step k.
func (ev *termEval) candidatesAt(k int) []int {
	p := ev.p
	st := &p.steps[k]
	if st.index == nil {
		return p.cand[st.occ]
	}
	vals := ev.vals[:len(st.boundRefs)]
	for i, ref := range st.boundRefs {
		vals[i] = p.inst[ref.Occ].Value(ev.assign[ref.Occ], ref.Col)
	}
	return st.index.LookupValues(vals) // typed probe, allocation-free
}

// predsHold evaluates the step's residual predicates on the assignment.
func (ev *termEval) predsHold(k int) bool {
	p := ev.p
	for _, pr := range p.steps[k].preds {
		virt := ev.virt[:pr.Width]
		for i, pos := range pr.ReadPos {
			ref := pr.Refs[i]
			virt[pos] = p.inst[ref.Occ].Value(ev.assign[ref.Occ], ref.Col)
		}
		if !pr.Eval(virt) {
			return false
		}
	}
	return true
}

// Partitioned evaluation: the first enumerated step's candidate list is
// split into a fixed number of contiguous chunks so independent workers can
// evaluate chunks concurrently. The chunk count is a function of the plan
// alone — never of the worker count — so summing per-chunk results in chunk
// order yields bit-identical floats no matter how many workers ran them.
const (
	// partitionMinRows is the first-step candidate count below which a term
	// is evaluated in a single part (small terms keep the exact historical
	// summation order; partition overhead isn't worth it anyway).
	partitionMinRows = 4096
	// partitionParts is the fixed chunk count for partitioned terms.
	partitionParts = 16
)

// PreparedTerm is a compiled, reusable evaluation plan for one term over
// fixed instances. It is immutable and safe for concurrent use; obtain one
// from Prepare or a PlanCache.
type PreparedTerm struct {
	p *termPlan
}

// Prepare compiles an evaluation plan for the term over the instances.
func Prepare(t *Term, inst Instances) (*PreparedTerm, error) {
	p, err := compile(t, inst)
	if err != nil {
		return nil, err
	}
	return &PreparedTerm{p: p}, nil
}

// Term returns the term this plan evaluates.
func (pt *PreparedTerm) Term() *Term { return pt.p.term }

// Instances returns the instances the plan was compiled over.
func (pt *PreparedTerm) Instances() Instances { return pt.p.inst }

// FoldedTail reports whether counting mode folds an unconstrained tail of
// occurrences into a multiplicative factor instead of enumerating it. When
// true, full enumeration visits (possibly vastly) more assignments than
// Count computes — callers choosing between counting and enumeration-based
// algorithms use this to avoid blowing up cross-product-heavy terms.
func (pt *PreparedTerm) FoldedTail() bool { return pt.p.enumUpto < len(pt.p.steps) }

// TailOnly reports whether the plan folds every occurrence: nothing is
// enumerated and the count is the pure product of the candidate-list sizes
// (the shape of bare |R| and |σR×σS| polynomial terms).
func (pt *PreparedTerm) TailOnly() bool { return pt.p.enumUpto == 0 }

// Candidates returns the candidate row list of the given occurrence — the
// instance rows passing the occurrence's local predicates and
// intra-occurrence equalities. The slice is shared with the plan and must
// not be modified.
func (pt *PreparedTerm) Candidates(occ int) []int { return pt.p.cand[occ] }

// Parts returns the deterministic partition count for this plan: CountPart
// and EnumeratePart accept parts in [0, Parts()). The count depends only on
// the plan, so partitioned reductions are reproducible across worker
// counts.
func (pt *PreparedTerm) Parts() int {
	p := pt.p
	if p.enumUpto == 0 {
		return 1 // pure multiplicative tail: nothing to enumerate
	}
	if len(p.cand[p.steps[0].occ]) < partitionMinRows {
		return 1
	}
	return partitionParts
}

// chunk returns the [lo, hi) bounds of chunk part of parts over n rows.
func chunk(n, part, parts int) (int, int) {
	return n * part / parts, n * (part + 1) / parts
}

// Count returns the number of occurrence-row assignments satisfying the
// term, as a float64 (counts can exceed int64 for product-heavy terms).
// Unconstrained tail occurrences are folded multiplicatively. Count is
// defined as the part-ordered sum of CountPart over Parts() chunks, so it
// matches any parallel part-wise evaluation bit for bit.
func (pt *PreparedTerm) Count() float64 {
	parts := pt.Parts()
	total := 0.0
	for part := 0; part < parts; part++ {
		total += pt.CountPart(part, parts)
	}
	return total
}

// CountPart counts the satisfying assignments whose first-step candidate
// lies in chunk `part` of `parts` (see Parts).
func (pt *PreparedTerm) CountPart(part, parts int) float64 {
	p := pt.p
	//lint:ignore floateq exact sentinel: a zero tail factor means an empty folded tail, so the term contributes nothing
	if p.tailFactor == 0 {
		return 0
	}
	if p.enumUpto == 0 {
		if part != 0 {
			return 0
		}
		return p.tailFactor
	}
	if p.shared != nil {
		return p.countPartShared(part, parts)
	}
	ev := p.newEval()
	var rec func(k int) float64
	rec = func(k int) float64 {
		if k == p.enumUpto {
			return 1
		}
		st := &p.steps[k]
		cands := ev.candidatesAt(k)
		if k == 0 {
			lo, hi := chunk(len(cands), part, parts)
			cands = cands[lo:hi]
		}
		total := 0.0
		for _, ri := range cands {
			ev.assign[st.occ] = ri
			if !ev.predsHold(k) {
				continue
			}
			total += rec(k + 1)
		}
		return total
	}
	return rec(0) * p.tailFactor
}

// Enumerate invokes visit for every satisfying assignment (rows positionally
// aligned with Term.Occs). visit must not retain the slice. Enumeration
// stops early if visit returns false. Used by the pattern-weighted
// estimator, whose weights depend on the full assignment.
func (pt *PreparedTerm) Enumerate(visit func(rows []int) bool) {
	pt.EnumeratePart(0, 1, visit)
}

// EnumeratePart enumerates the satisfying assignments whose first-step
// candidate lies in chunk `part` of `parts` (see Parts). Distinct parts
// visit disjoint assignment sets whose union is the full enumeration, which
// is what lets workers enumerate one term concurrently with per-part
// accumulators.
func (pt *PreparedTerm) EnumeratePart(part, parts int, visit func(rows []int) bool) {
	p := pt.p
	if p.shared != nil {
		p.enumeratePartShared(part, parts, visit)
		return
	}
	m := len(p.steps)
	ev := p.newEval()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == m {
			return visit(ev.assign)
		}
		st := &p.steps[k]
		cands := ev.candidatesAt(k)
		if k == 0 {
			lo, hi := chunk(len(cands), part, parts)
			cands = cands[lo:hi]
		}
		for _, ri := range cands {
			ev.assign[st.occ] = ri
			if !ev.predsHold(k) {
				continue
			}
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// PlanCache caches compiled term plans keyed by (term identity, instance
// identities). One CountWithOptions call with replication-based variance
// evaluates the same (term, instances) pairs many times — the point
// estimate plus every replicate that leaves a relation untouched — and the
// cache makes each pair compile exactly once. It is safe for concurrent
// use; concurrent Prepare calls for the same key compile once and share the
// plan.
//
// The cache holds plans for as long as it lives, so callers scope it to an
// evaluation (the estimator builds one engine per top-level call) or call
// Invalidate after mutating any relation a cached plan was compiled over.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// subplans holds the shared enumeration prefixes AttachCSE registered,
	// keyed by canonical prefix encoding (cse.go); their assignment tables
	// materialize lazily on first evaluation.
	subplans map[string]*subplanEntry
	rec      obs.Recorder
}

type cacheEntry struct {
	once sync.Once
	pt   *PreparedTerm
	err  error
}

// Plan-compilation metrics: a Prepare that finds no entry compiles a plan
// (built); one that finds an entry shares it (hit). The hit rate is the
// direct measure of what the cache buys a replication-heavy call.
const (
	mPlanBuilt = "relest_plan_built_total"
	mPlanHit   = "relest_plan_cache_hit_total"
)

// NewPlanCache creates an empty plan cache.
func NewPlanCache() *PlanCache {
	return NewPlanCacheRec(nil)
}

// NewPlanCacheRec creates an empty plan cache reporting compilations and
// hits to the recorder (nil = no reporting).
func NewPlanCacheRec(rec obs.Recorder) *PlanCache {
	return &PlanCache{
		entries:  make(map[string]*cacheEntry),
		subplans: make(map[string]*subplanEntry),
		rec:      obs.Or(rec),
	}
}

// planCacheKey identifies a (term, instances) pair by pointer identity,
// encoded structurally: every component is length-prefixed and the instance
// count is explicit, so no concatenation of distinct (term, instances)
// pairs can produce the same byte string. (Naive separator-joined keys
// collide whenever a component can contain the separator or a boundary can
// shift — the adversarial cases TestPlanCacheKeyStructural feeds the
// encoder.)
func planCacheKey(t *Term, inst Instances) string {
	buf := make([]byte, 0, 20+20*len(inst))
	buf = appendKeyPart(buf, fmt.Sprintf("%p", t))
	buf = binary.AppendUvarint(buf, uint64(len(inst)))
	for _, r := range inst {
		buf = appendKeyPart(buf, fmt.Sprintf("%p", r))
	}
	return string(buf)
}

// appendKeyPart appends one length-prefixed component to a structural key.
// Length-prefixing makes the encoding injective: part boundaries are
// explicit, so ("ab","c") and ("a","bc") encode differently even though
// their concatenations are equal.
func appendKeyPart(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Prepare returns the cached plan for (t, inst), compiling it on first use.
func (c *PlanCache) Prepare(t *Term, inst Instances) (*PreparedTerm, error) {
	key := planCacheKey(t, inst)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.rec.Add(mPlanHit, 1)
	} else {
		c.rec.Add(mPlanBuilt, 1)
	}
	e.once.Do(func() { e.pt, e.err = Prepare(t, inst) })
	return e.pt, e.err
}

// Invalidate drops every cached plan. Call it after mutating a relation
// that cached plans were compiled over.
func (c *PlanCache) Invalidate() {
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.subplans = make(map[string]*subplanEntry)
	c.mu.Unlock()
}

// Len returns the number of cached (term, instances) entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CountAssignments returns the number of occurrence-row assignments
// satisfying the term over the instances. It compiles a throwaway plan; use
// Prepare/PlanCache when the same term and instances are evaluated more
// than once.
func (t *Term) CountAssignments(inst Instances) (float64, error) {
	pt, err := Prepare(t, inst)
	if err != nil {
		return 0, err
	}
	return pt.Count(), nil
}

// EnumerateAssignments invokes visit for every satisfying assignment (rows
// positionally aligned with Term.Occs). visit must not retain the slice.
// Enumeration stops early if visit returns false. It compiles a throwaway
// plan; use Prepare/PlanCache for repeated evaluation.
func (t *Term) EnumerateAssignments(inst Instances, visit func(rows []int) bool) error {
	pt, err := Prepare(t, inst)
	if err != nil {
		return err
	}
	pt.Enumerate(visit)
	return nil
}

// CountStreaming computes COUNT(e) exactly without materializing
// intermediate results: π-free expressions go through the counting
// polynomial (assignments are enumerated and counted, never stored), and
// expressions with π fall back to the materializing evaluator. Prefer this
// over Count for large join trees — it trades memory for the same
// asymptotic time.
func CountStreaming(e *Expr, cat Catalog) (float64, error) {
	if e.HasProjection() {
		c, err := Count(e, cat)
		return float64(c), err
	}
	p, err := Normalize(e)
	if err != nil {
		return 0, err
	}
	return p.ExactCount(cat)
}

// ExactCount evaluates the polynomial with unit weights over the catalog's
// full relations: the result equals COUNT(E) for the normalized expression.
// It exists to validate the normalizer against the exact evaluator and to
// let tests cross-check term evaluation.
func (p Polynomial) ExactCount(cat Catalog) (float64, error) {
	total := 0.0
	for i := range p.Terms {
		t := &p.Terms[i]
		inst, err := BindInstances(t, cat)
		if err != nil {
			return 0, err
		}
		c, err := t.CountAssignments(inst)
		if err != nil {
			return 0, err
		}
		total += float64(t.Coef) * c
	}
	return total, nil
}
