package algebra

import (
	"fmt"
	"sync/atomic"

	"relest/internal/relation"
)

// Predicate is a boolean condition over the tuples of some schema. Concrete
// predicates reference columns by name; they are resolved to positions when
// the enclosing expression node is constructed. Structured predicates
// (comparisons and boolean combinators) expose their column sets, which lets
// the normalizer push single-relation conditions down to the base-relation
// occurrence they constrain.
//
// Each predicate binds twice: bind produces a Tuple evaluator (used on
// virtual tuples that term evaluation assembles across occurrences), and
// bindRow produces a Row evaluator that reads column storage directly
// without materializing anything — the hot path for selections and pushed-
// down local predicates.
type Predicate interface {
	// Columns returns the column names the predicate reads.
	Columns() []string
	// bind resolves names against a schema and returns the tuple evaluator.
	bind(s *relation.Schema) (func(relation.Tuple) bool, error)
	// bindRow resolves names against a schema and returns the row evaluator.
	bindRow(s *relation.Schema) (func(relation.Row) bool, error)
}

// boundPred is a predicate resolved against a specific schema.
type boundPred struct {
	eval    func(relation.Tuple) bool
	evalRow func(relation.Row) bool
	cols    []int // positions read, for pushdown analysis
	src     Predicate
	// id is a process-unique serial identifying this binding. A predicate
	// binds once per expression node, and normalization shallow-copies the
	// binding into every term it reaches, so two term predicates carry the
	// same id exactly when they are the same closure applied the same way —
	// the identity the cross-term CSE planner fingerprints sub-plans with.
	// (Comparing closure code pointers would wrongly merge distinct
	// predicates that share a function body but not captured state.)
	id uint64
}

// predSerial feeds boundPred.id; 0 is reserved as "no fingerprint".
var predSerial atomic.Uint64

func bindPredicate(p Predicate, s *relation.Schema) (boundPred, error) {
	eval, err := p.bind(s)
	if err != nil {
		return boundPred{}, err
	}
	evalRow, err := p.bindRow(s)
	if err != nil {
		return boundPred{}, err
	}
	names := p.Columns()
	cols := make([]int, len(names))
	for i, n := range names {
		c := s.ColumnIndex(n)
		if c < 0 {
			return boundPred{}, fmt.Errorf("predicate column %q not in schema %s", n, s)
		}
		cols[i] = c
	}
	return boundPred{eval: eval, evalRow: evalRow, cols: cols, src: p, id: predSerial.Add(1)}, nil
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators for Cmp predicates.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL-ish spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(o))
	}
}

// holds applies op to a three-way comparison result.
func (o CmpOp) holds(cmp int) bool {
	switch o {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	default:
		return false
	}
}

// Cmp compares a column against a constant: col op val. Comparisons
// involving null are false (SQL three-valued logic collapsed to false).
type Cmp struct {
	Col string
	Op  CmpOp
	Val relation.Value
}

// Columns implements Predicate.
func (c Cmp) Columns() []string { return []string{c.Col} }

func (c Cmp) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	pos := s.ColumnIndex(c.Col)
	if pos < 0 {
		return nil, fmt.Errorf("no column %q in schema %s", c.Col, s)
	}
	op, val := c.Op, c.Val
	return func(t relation.Tuple) bool {
		v := t[pos]
		if v.IsNull() || val.IsNull() {
			return false
		}
		return op.holds(v.Compare(val))
	}, nil
}

func (c Cmp) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	pos := s.ColumnIndex(c.Col)
	if pos < 0 {
		return nil, fmt.Errorf("no column %q in schema %s", c.Col, s)
	}
	op, val := c.Op, c.Val
	if val.IsNull() {
		return func(relation.Row) bool { return false }, nil
	}
	return func(row relation.Row) bool {
		v := row.Value(pos)
		if v.IsNull() {
			return false
		}
		return op.holds(v.Compare(val))
	}, nil
}

// String renders the comparison.
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Val) }

// ColCmp compares two columns of the same schema: a op b. Used mainly as a
// theta condition over a concatenated join schema. Null comparisons are
// false.
type ColCmp struct {
	A  string
	Op CmpOp
	B  string
}

// Columns implements Predicate.
func (c ColCmp) Columns() []string { return []string{c.A, c.B} }

func (c ColCmp) resolve(s *relation.Schema) (pa, pb int, err error) {
	pa, pb = s.ColumnIndex(c.A), s.ColumnIndex(c.B)
	if pa < 0 {
		return 0, 0, fmt.Errorf("no column %q in schema %s", c.A, s)
	}
	if pb < 0 {
		return 0, 0, fmt.Errorf("no column %q in schema %s", c.B, s)
	}
	return pa, pb, nil
}

func (c ColCmp) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	pa, pb, err := c.resolve(s)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(t relation.Tuple) bool {
		a, b := t[pa], t[pb]
		if a.IsNull() || b.IsNull() {
			return false
		}
		return op.holds(a.Compare(b))
	}, nil
}

func (c ColCmp) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	pa, pb, err := c.resolve(s)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(row relation.Row) bool {
		a, b := row.Value(pa), row.Value(pb)
		if a.IsNull() || b.IsNull() {
			return false
		}
		return op.holds(a.Compare(b))
	}, nil
}

// And is the conjunction of its parts; an empty And is true.
type And []Predicate

// Columns implements Predicate.
func (a And) Columns() []string { return unionColumns(a) }

func (a And) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	evals := make([]func(relation.Tuple) bool, len(a))
	for i, p := range a {
		e, err := p.bind(s)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	return func(t relation.Tuple) bool {
		for _, e := range evals {
			if !e(t) {
				return false
			}
		}
		return true
	}, nil
}

func (a And) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	evals := make([]func(relation.Row) bool, len(a))
	for i, p := range a {
		e, err := p.bindRow(s)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	return func(row relation.Row) bool {
		for _, e := range evals {
			if !e(row) {
				return false
			}
		}
		return true
	}, nil
}

// Or is the disjunction of its parts; an empty Or is false.
type Or []Predicate

// Columns implements Predicate.
func (o Or) Columns() []string { return unionColumns(o) }

func (o Or) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	evals := make([]func(relation.Tuple) bool, len(o))
	for i, p := range o {
		e, err := p.bind(s)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	return func(t relation.Tuple) bool {
		for _, e := range evals {
			if e(t) {
				return true
			}
		}
		return false
	}, nil
}

func (o Or) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	evals := make([]func(relation.Row) bool, len(o))
	for i, p := range o {
		e, err := p.bindRow(s)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	return func(row relation.Row) bool {
		for _, e := range evals {
			if e(row) {
				return true
			}
		}
		return false
	}, nil
}

// Not negates a predicate.
type Not struct{ P Predicate }

// Columns implements Predicate.
func (n Not) Columns() []string { return n.P.Columns() }

func (n Not) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	e, err := n.P.bind(s)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool { return !e(t) }, nil
}

func (n Not) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	e, err := n.P.bindRow(s)
	if err != nil {
		return nil, err
	}
	return func(row relation.Row) bool { return !e(row) }, nil
}

// FuncOnCols is the escape hatch: an arbitrary function over the values of
// the named columns, in the given order. The function must be pure.
type FuncOnCols struct {
	Cols []string
	Fn   func(vals []relation.Value) bool
}

// Columns implements Predicate.
func (f FuncOnCols) Columns() []string { return append([]string(nil), f.Cols...) }

func (f FuncOnCols) resolve(s *relation.Schema) ([]int, error) {
	if f.Fn == nil {
		return nil, fmt.Errorf("FuncOnCols has nil Fn")
	}
	pos := make([]int, len(f.Cols))
	for i, c := range f.Cols {
		p := s.ColumnIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("no column %q in schema %s", c, s)
		}
		pos[i] = p
	}
	return pos, nil
}

func (f FuncOnCols) bind(s *relation.Schema) (func(relation.Tuple) bool, error) {
	pos, err := f.resolve(s)
	if err != nil {
		return nil, err
	}
	fn := f.Fn
	return func(t relation.Tuple) bool {
		vals := make([]relation.Value, len(pos))
		for i, p := range pos {
			vals[i] = t[p]
		}
		return fn(vals)
	}, nil
}

func (f FuncOnCols) bindRow(s *relation.Schema) (func(relation.Row) bool, error) {
	pos, err := f.resolve(s)
	if err != nil {
		return nil, err
	}
	fn := f.Fn
	// A fresh vals slice per call keeps the user function free to retain
	// its argument, mirroring the Tuple binding.
	return func(row relation.Row) bool {
		vals := make([]relation.Value, len(pos))
		for i, p := range pos {
			vals[i] = row.Value(p)
		}
		return fn(vals)
	}, nil
}

// unionColumns merges the column sets of several predicates, preserving
// first-occurrence order.
func unionColumns(ps []Predicate) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, p := range ps {
		for _, c := range p.Columns() {
			if _, dup := seen[c]; !dup {
				seen[c] = struct{}{}
				out = append(out, c)
			}
		}
	}
	return out
}
