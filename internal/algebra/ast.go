// Package algebra implements the relational algebra layer: typed expression
// trees over named base relations, structured predicates, an exact
// (hash-join based) evaluator used as ground truth, and the normalization of
// COUNT(E) into a counting polynomial — the ±1-weighted sum of conjunctive
// terms that the paper's estimators are defined over.
//
// Expressions use set semantics: base relations are assumed duplicate-free
// where set operations are involved, σ/×/⋈ of sets are sets, and π
// eliminates duplicates. The estimator layer documents exactly which
// fragment each of its estimators supports.
package algebra

import (
	"fmt"

	"relest/internal/relation"
)

// Catalog resolves base-relation names to stored relations. The exact
// evaluator reads full relations through it; the estimators substitute
// sampled relations under the same names.
type Catalog interface {
	// Relation returns the relation registered under name.
	Relation(name string) (*relation.Relation, bool)
}

// MapCatalog is the trivial map-backed Catalog.
type MapCatalog map[string]*relation.Relation

// Relation implements Catalog.
func (m MapCatalog) Relation(name string) (*relation.Relation, bool) {
	r, ok := m[name]
	return r, ok
}

// Op identifies an expression node type.
type Op uint8

// Expression node types.
const (
	OpBase Op = iota
	OpSelect
	OpProject
	OpProduct
	OpJoin
	OpUnion
	OpIntersect
	OpDiff
)

// String returns the operator's conventional name.
func (o Op) String() string {
	switch o {
	case OpBase:
		return "base"
	case OpSelect:
		return "select"
	case OpProject:
		return "project"
	case OpProduct:
		return "product"
	case OpJoin:
		return "join"
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpDiff:
		return "diff"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Expr is a relational algebra expression node. Expressions are immutable
// after construction and carry their output schema.
type Expr struct {
	op     Op
	schema *relation.Schema

	// base
	relName string

	// children
	left, right *Expr

	// select
	pred boundPred

	// project
	projCols []int // positions in left's schema

	// join
	joinLeft, joinRight []int     // equi-join column positions in left/right schemas
	theta               boundPred // optional residual predicate over the concatenated schema
}

// Op returns the node's operator.
func (e *Expr) Op() Op { return e.op }

// Schema returns the node's output schema.
func (e *Expr) Schema() *relation.Schema { return e.schema }

// BaseName returns the base relation name for OpBase nodes, "" otherwise.
func (e *Expr) BaseName() string { return e.relName }

// Left and Right return the child expressions (nil when absent).
func (e *Expr) Left() *Expr  { return e.left }
func (e *Expr) Right() *Expr { return e.right }

// BaseNames returns the multiset of base relation names appearing in the
// expression, in left-to-right occurrence order.
func (e *Expr) BaseNames() []string {
	var out []string
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x == nil {
			return
		}
		if x.op == OpBase {
			out = append(out, x.relName)
			return
		}
		walk(x.left)
		walk(x.right)
	}
	walk(e)
	return out
}

// HasProjection reports whether the expression contains a π node anywhere.
// Projection (duplicate elimination) is the operator that separates the
// unbiased counting-polynomial estimators from the distinct-count
// estimators.
func (e *Expr) HasProjection() bool {
	if e == nil {
		return false
	}
	if e.op == OpProject {
		return true
	}
	return e.left.HasProjection() || e.right.HasProjection()
}

// HasSetOp reports whether the expression contains ∪, ∩ or −. Set
// operations require duplicate-free base relations for the counting
// identities to be exact.
func (e *Expr) HasSetOp() bool {
	if e == nil {
		return false
	}
	switch e.op {
	case OpUnion, OpIntersect, OpDiff:
		return true
	}
	return e.left.HasSetOp() || e.right.HasSetOp()
}

// String renders the expression tree in functional notation.
func (e *Expr) String() string {
	switch e.op {
	case OpBase:
		return e.relName
	case OpSelect:
		return fmt.Sprintf("select(%s)", e.left)
	case OpProject:
		names := make([]string, len(e.projCols))
		for i, c := range e.projCols {
			names[i] = e.left.schema.Column(c).Name
		}
		return fmt.Sprintf("project%v(%s)", names, e.left)
	case OpProduct:
		return fmt.Sprintf("product(%s, %s)", e.left, e.right)
	case OpJoin:
		return fmt.Sprintf("join(%s, %s)", e.left, e.right)
	case OpUnion:
		return fmt.Sprintf("union(%s, %s)", e.left, e.right)
	case OpIntersect:
		return fmt.Sprintf("intersect(%s, %s)", e.left, e.right)
	case OpDiff:
		return fmt.Sprintf("diff(%s, %s)", e.left, e.right)
	default:
		return e.op.String()
	}
}

// Base creates a leaf referencing the named base relation with the given
// schema. The schema must match the relation registered in the catalog at
// evaluation time (layout is verified by the evaluator).
func Base(name string, schema *relation.Schema) *Expr {
	return &Expr{op: OpBase, relName: name, schema: schema}
}

// BaseOf creates a leaf for a stored relation.
func BaseOf(r *relation.Relation) *Expr { return Base(r.Name(), r.Schema()) }

// Select creates σ_p(child). The predicate's columns are resolved against
// the child's schema at construction.
func Select(child *Expr, p Predicate) (*Expr, error) {
	bp, err := bindPredicate(p, child.schema)
	if err != nil {
		return nil, fmt.Errorf("algebra: select: %w", err)
	}
	return &Expr{op: OpSelect, schema: child.schema, left: child, pred: bp}, nil
}

// Project creates π_cols(child) with duplicate elimination (set semantics).
func Project(child *Expr, cols ...string) (*Expr, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := child.schema.ColumnIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("algebra: project: no column %q in %s", c, child.schema)
		}
		positions[i] = p
	}
	ps, err := child.schema.Project(positions)
	if err != nil {
		return nil, fmt.Errorf("algebra: project: %w", err)
	}
	return &Expr{op: OpProject, schema: ps, left: child, projCols: positions}, nil
}

// Product creates the cartesian product left × right. Column-name
// collisions in the right schema are prefixed with rightPrefix and a dot.
func Product(left, right *Expr, rightPrefix string) (*Expr, error) {
	s, err := left.schema.Concat(right.schema, rightPrefix)
	if err != nil {
		return nil, fmt.Errorf("algebra: product: %w", err)
	}
	return &Expr{op: OpProduct, schema: s, left: left, right: right}, nil
}

// On is one equi-join condition: left.Left = right.Right.
type On struct {
	Left, Right string
}

// Join creates the equi-join left ⋈ right on the given column pairs, with
// an optional residual theta predicate over the concatenated schema (pass
// nil for a pure equi-join). Column-name collisions from the right schema
// are prefixed with rightPrefix and a dot. At least one equi condition is
// required; for arbitrary theta joins use Product followed by Select.
func Join(left, right *Expr, on []On, theta Predicate, rightPrefix string) (*Expr, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("algebra: join requires at least one equi condition")
	}
	s, err := left.schema.Concat(right.schema, rightPrefix)
	if err != nil {
		return nil, fmt.Errorf("algebra: join: %w", err)
	}
	jl := make([]int, len(on))
	jr := make([]int, len(on))
	for i, c := range on {
		jl[i] = left.schema.ColumnIndex(c.Left)
		if jl[i] < 0 {
			return nil, fmt.Errorf("algebra: join: no column %q in left schema %s", c.Left, left.schema)
		}
		jr[i] = right.schema.ColumnIndex(c.Right)
		if jr[i] < 0 {
			return nil, fmt.Errorf("algebra: join: no column %q in right schema %s", c.Right, right.schema)
		}
	}
	e := &Expr{op: OpJoin, schema: s, left: left, right: right, joinLeft: jl, joinRight: jr}
	if theta != nil {
		bp, err := bindPredicate(theta, s)
		if err != nil {
			return nil, fmt.Errorf("algebra: join theta: %w", err)
		}
		e.theta = bp
	}
	return e, nil
}

// Union creates left ∪ right (set semantics). Schemas must have equal
// layouts; the output schema is the left schema.
func Union(left, right *Expr) (*Expr, error) { return setOp(OpUnion, left, right) }

// Intersect creates left ∩ right (set semantics).
func Intersect(left, right *Expr) (*Expr, error) { return setOp(OpIntersect, left, right) }

// Diff creates left − right (set semantics).
func Diff(left, right *Expr) (*Expr, error) { return setOp(OpDiff, left, right) }

func setOp(op Op, left, right *Expr) (*Expr, error) {
	if !left.schema.EqualLayout(right.schema) {
		return nil, fmt.Errorf("algebra: %s: schema layouts differ: %s vs %s", op, left.schema, right.schema)
	}
	return &Expr{op: op, schema: left.schema, left: left, right: right}, nil
}

// Must unwraps an (Expr, error) pair, panicking on error; for tests and
// statically correct expression literals.
func Must(e *Expr, err error) *Expr {
	if err != nil {
		panic(err)
	}
	return e
}
