package algebra

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"relest/internal/obs"
	"relest/internal/relation"
)

// rowBag returns the relation's rows as sorted key encodings — a canonical
// bag representation that is order-insensitive but duplicate-preserving, so
// it can compare the streaming executor's probe-left output order against
// Eval's size-based build-side order.
func rowBag(r *relation.Relation) []string {
	keys := make([]string, 0, r.Len())
	var buf []byte
	for i := 0; i < r.Len(); i++ {
		buf = r.Row(i).AppendKey(buf[:0], nil)
		keys = append(keys, string(buf))
	}
	sort.Strings(keys)
	return keys
}

func equalBags(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkStreamAgainstEval is the oracle check: StreamEval's bag equals
// Eval's, and StreamCount at several worker counts equals Eval's
// cardinality.
func checkStreamAgainstEval(t *testing.T, label string, e *Expr, cat Catalog) {
	t.Helper()
	want, werr := Eval(e, cat)
	got, gerr := StreamEval(e, cat)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%s: Eval err=%v, StreamEval err=%v", label, werr, gerr)
	}
	if werr != nil {
		if werr.Error() != gerr.Error() {
			t.Fatalf("%s: error mismatch: Eval %q, StreamEval %q", label, werr, gerr)
		}
		return
	}
	if !equalBags(rowBag(want), rowBag(got)) {
		t.Fatalf("%s: StreamEval bag (%d rows) != Eval bag (%d rows)", label, got.Len(), want.Len())
	}
	for _, workers := range []int{1, 4} {
		n, err := StreamCountOpts(e, cat, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatalf("%s: StreamCountOpts(workers=%d): %v", label, workers, err)
		}
		if n != int64(want.Len()) {
			t.Fatalf("%s: StreamCount(workers=%d) = %d, Eval has %d rows", label, workers, n, want.Len())
		}
	}
}

// TestStreamMatchesEvalRandomized is the streaming executor's property
// test: on randomized π-free expressions the streaming Count and the
// drained stream agree with the materializing evaluator.
func TestStreamMatchesEvalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		cat, bases := randomCatalog(rng)
		e := randomExpr(rng, bases, 3)
		checkStreamAgainstEval(t, e.String(), e, cat)
	}
}

// TestStreamMatchesEvalProjected covers the π path (randomExpr is π-free):
// projections over joins and set operations dedup identically.
func TestStreamMatchesEvalProjected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		cat, bases := randomCatalog(rng)
		inner := randomExpr(rng, bases, 2)
		cols := inner.Schema().Columns()
		name := cols[rng.Intn(len(cols))].Name
		e := Must(Project(inner, name))
		checkStreamAgainstEval(t, e.String(), e, cat)
	}
}

// TestStreamMatchesEvalFuzzCorpus replays the committed FuzzNormalize
// corpus through the streaming-vs-materializing oracle, reusing the fuzz
// decoder so the corpus keeps covering both evaluators.
func TestStreamMatchesEvalFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzNormalize")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[1], "[]byte(") {
			t.Fatalf("%s: unexpected corpus format", ent.Name())
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		data, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: unquote corpus payload: %v", ent.Name(), err)
		}
		cat := fuzzCatalog()
		e := (&exprReader{data: []byte(data)}).expr(cat, 4)
		checkStreamAgainstEval(t, ent.Name()+": "+e.String(), e, cat)
	}
}

// streamFixture builds a σ/⋈ pipeline whose probe side has n rows: a large
// scan filtered and hash-joined against a fixed 64-row build side. The
// pipeline's live state is its operator batches plus that build side, so
// its memory ceiling must not grow with n.
func streamFixture(n int) (*Expr, MapCatalog) {
	schema := func() *relation.Schema {
		return relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
		)
	}
	r := relation.New("R", schema())
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(i % 64)), relation.Int(int64(i))})
	}
	s := relation.New("S", schema())
	for i := 0; i < 64; i++ {
		s.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i * 100))})
	}
	cat := MapCatalog{"R": r, "S": s}
	sel := Must(Select(BaseOf(r), Cmp{Col: "b", Op: GE, Val: relation.Int(0)}))
	e := Must(Join(sel, BaseOf(s), []On{{Left: "a", Right: "a"}}, nil, "s"))
	return e, cat
}

// streamPeakBytes runs a streaming count and returns the executor's peak
// working-set gauge.
func streamPeakBytes(t *testing.T, e *Expr, cat Catalog, workers int) float64 {
	t.Helper()
	col := obs.NewCollector()
	if _, err := StreamCountOpts(e, cat, StreamOptions{Workers: workers, Rec: col}); err != nil {
		t.Fatal(err)
	}
	peak := col.Metrics().Gauge(obs.MetricStreamPeakBytes).Value()
	if peak <= 0 {
		t.Fatal("stream peak gauge not recorded")
	}
	if col.Metrics().Counter(obs.MetricStreamBatches).Value() <= 0 {
		t.Fatal("stream batch counter not recorded")
	}
	return peak
}

// TestStreamMemoryCeiling is the constant-memory regression gate: growing
// the probe relation 10x must leave the pipeline's peak working set flat
// (same batches, same build side — only the number of batches grows).
func TestStreamMemoryCeiling(t *testing.T) {
	smallE, smallCat := streamFixture(4 * relation.BatchRows)
	largeE, largeCat := streamFixture(40 * relation.BatchRows)
	for _, workers := range []int{1, 4} {
		small := streamPeakBytes(t, smallE, smallCat, workers)
		large := streamPeakBytes(t, largeE, largeCat, workers)
		if large > 1.5*small {
			t.Errorf("workers=%d: peak working set grew with input: %v bytes at 10x vs %v bytes at 1x",
				workers, large, small)
		}
	}
}

// TestStreamCountErrors verifies the executor reports the materializing
// evaluator's exact errors for invalid trees.
func TestStreamCountErrors(t *testing.T) {
	cat := MapCatalog{}
	e := Base("missing", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	_, werr := Eval(e, cat)
	_, gerr := StreamCount(e, cat)
	if werr == nil || gerr == nil || werr.Error() != gerr.Error() {
		t.Fatalf("error mismatch: Eval %v, StreamCount %v", werr, gerr)
	}
}
