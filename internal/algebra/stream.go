package algebra

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"relest/internal/obs"
	"relest/internal/parallel"
	"relest/internal/relation"
)

// This file is the pull-based streaming evaluator: operators exchange
// fixed-size columnar batches (relation.Batch) of row indices over the
// source relations' column vectors, so σ/⋈/× pipelines never materialize an
// intermediate relation — the live state of a pipeline is its operators'
// batches plus the hash-join build sides, independent of probe-side input
// size. Set operations and π are pipeline breakers: they deduplicate, so
// they materialize their (deduplicated) output incrementally into an owned
// relation and stream batches over it.
//
// Operator contract (see DESIGN.md §11):
//
//   - next() returns the operator's next non-empty batch, or nil at end of
//     stream. The batch is owned by the operator and valid only until the
//     next call; its row indices, however, point into source relations and
//     stay valid indefinitely (consumers may buffer indices, never batches).
//   - An operator's batch layout (source relations + column mapping) is
//     fixed across its lifetime and known at construction, so a join can
//     gather its build side zero-copy into one growable batch.
//   - Join and product always drain the right operand into the build side
//     and stream the left operand as the probe, giving a canonical output
//     order independent of operand sizes (Eval, the materializing ground
//     truth, picks the build side by size instead, so row order — never
//     content — may differ between the two).
//
// Counting pipelines parallelize: when the probe spine is partitionable
// (σ/⋈/× over a leftmost base scan), StreamCount splits the driving scan
// into per-worker chunks that share the lazily-built build sides, and sums
// the per-chunk integer counts — bit-identical for every worker count.

// stream is one operator of a running pipeline.
type stream interface {
	// next returns the next non-empty batch, or nil at end of stream.
	next() *relation.Batch
	// bytes returns the live heap footprint of this operator and its
	// children: batches, build sides, dedup state. It is the streaming
	// executor's memory ceiling when sampled at end of drain.
	bytes() int
}

// streamExec compiles one expression into pipelines. Partitioned pipelines
// from the same exec share build sides (each built exactly once) and a
// batch counter.
type streamExec struct {
	cat Catalog

	mu     sync.Mutex
	builds map[buildKey]*buildSide

	batches atomic.Int64
}

// buildSide is the fully drained right operand of a streaming join or
// product: a growable batch of row indices plus, for equi-joins, a typed
// hash index over the join key columns. Built once under the sync.Once and
// shared read-only by every probe partition.
// buildKey identifies a build side by its expression node AND its index
// signature: the same sub-expression probed as an equi-join build (indexed
// on specific key columns) and as a product operand (no index) are distinct
// build sides, as are equi-joins on different key columns.
type buildKey struct {
	e    *Expr
	keys string // "" for products, encoded key columns for equi-joins
}

func newBuildKey(e *Expr, equi bool, keyCols []int) buildKey {
	k := buildKey{e: e}
	if equi {
		var buf []byte
		for _, c := range keyCols {
			buf = binary.AppendVarint(buf, int64(c))
		}
		k.keys = "k" + string(buf)
	}
	return k
}

type buildSide struct {
	once sync.Once
	b    *relation.Batch
	ix   *relation.BatchIndex
	cols []relation.BatchCol
	size int
	err  error
}

func newStreamExec(e *Expr, cat Catalog) (*streamExec, error) {
	if err := validateStreamTree(e, cat); err != nil {
		return nil, err
	}
	return &streamExec{cat: cat, builds: make(map[buildKey]*buildSide)}, nil
}

// validateStreamTree resolves every base relation up front so pipeline
// construction and draining are infallible, with the same errors the
// materializing evaluator reports.
func validateStreamTree(e *Expr, cat Catalog) error {
	switch e.op {
	case OpBase:
		r, ok := cat.Relation(e.relName)
		if !ok {
			return fmt.Errorf("algebra: no relation %q in catalog", e.relName)
		}
		if !r.Schema().EqualLayout(e.schema) {
			return fmt.Errorf("algebra: relation %q layout %s does not match expression schema %s",
				e.relName, r.Schema(), e.schema)
		}
		return nil
	case OpSelect, OpProject:
		return validateStreamTree(e.left, cat)
	case OpJoin, OpProduct, OpUnion, OpIntersect, OpDiff:
		if err := validateStreamTree(e.left, cat); err != nil {
			return err
		}
		return validateStreamTree(e.right, cat)
	default:
		return fmt.Errorf("algebra: cannot evaluate op %s", e.op)
	}
}

// identityCols is the column mapping of a single-source batch whose columns
// are the source's own.
func identityCols(n int) []relation.BatchCol {
	cols := make([]relation.BatchCol, n)
	for i := range cols {
		cols[i] = relation.BatchCol{Src: 0, Col: i}
	}
	return cols
}

// shiftCols re-sources a right operand's column mapping behind a left
// operand's nl sources.
func shiftCols(cols []relation.BatchCol, nl int) []relation.BatchCol {
	out := make([]relation.BatchCol, len(cols))
	for i, c := range cols {
		out[i] = relation.BatchCol{Src: c.Src + nl, Col: c.Col}
	}
	return out
}

// pipeline builds the operator tree for chunk `part` of `parts` of the
// probe spine (partitioning applies to the leftmost scan; parts must be 1
// for non-partitionable trees). It returns the root operator and its fixed
// batch layout.
func (x *streamExec) pipeline(e *Expr, part, parts int) (stream, []*relation.Relation, []relation.BatchCol) {
	switch e.op {
	case OpBase:
		r, _ := x.cat.Relation(e.relName) // validated up front
		lo, hi := chunk(r.Len(), part, parts)
		cols := identityCols(e.schema.Len())
		rels := []*relation.Relation{r}
		return &scanOp{x: x, rel: r, pos: lo, hi: hi, out: relation.NewBatch(rels, cols)}, rels, cols

	case OpSelect:
		child, rels, cols := x.pipeline(e.left, part, parts)
		op := &selectOp{
			x:     x,
			child: child,
			pred:  e.pred,
			out:   relation.NewBatch(rels, cols),
			virt:  make(relation.Tuple, e.left.schema.Len()),
		}
		op.fast = len(rels) == 1 && len(cols) == rels[0].Schema().Len()
		if op.fast {
			for i, c := range cols {
				if c.Src != 0 || c.Col != i {
					op.fast = false
					break
				}
			}
		}
		return op, rels, cols

	case OpJoin, OpProduct:
		left, lrels, lcols := x.pipeline(e.left, part, parts)
		bs, brels, bcols := x.buildSideFor(e.right, e.op == OpJoin, e.joinRight)
		rels := append(append([]*relation.Relation{}, lrels...), brels...)
		cols := append(append([]relation.BatchCol{}, lcols...), shiftCols(bcols, len(lrels))...)
		op := &joinOp{
			x:     x,
			left:  left,
			build: bs,
			nl:    len(lrels),
			out:   relation.NewBatch(rels, cols),
		}
		if e.op == OpJoin {
			op.probeCols = e.joinLeft
			if e.theta.eval != nil {
				op.theta = e.theta.eval
				op.thetaCols = e.theta.cols
				op.virt = make(relation.Tuple, e.schema.Len())
			}
		}
		return op, rels, cols

	case OpProject:
		child, _, ccols := x.pipeline(e.left, part, parts)
		pcols := make([]relation.BatchCol, len(e.projCols))
		for i, c := range e.projCols {
			pcols[i] = ccols[c]
		}
		owned := relation.New("π", e.schema)
		op := &dedupOp{
			x:        x,
			owned:    owned,
			out:      relation.NewBatch([]*relation.Relation{owned}, identityCols(e.schema.Len())),
			seen:     make(map[string]struct{}),
			children: []dedupInput{{s: child, keyCols: e.projCols, cols: pcols}},
		}
		return op, []*relation.Relation{owned}, op.out.Cols

	case OpUnion, OpIntersect, OpDiff:
		left, _, lcols := x.pipeline(e.left, part, parts)
		right, _, rcols := x.pipeline(e.right, part, parts)
		owned := relation.New(e.op.String(), e.schema)
		op := &dedupOp{
			x:     x,
			owned: owned,
			out:   relation.NewBatch([]*relation.Relation{owned}, identityCols(e.schema.Len())),
			seen:  make(map[string]struct{}),
		}
		_, _ = lcols, rcols // children's columns are already the output columns
		switch e.op {
		case OpUnion:
			op.children = []dedupInput{{s: left}, {s: right}}
		case OpIntersect:
			op.children = []dedupInput{{s: left}}
			op.filter, op.filterIn = right, true
		case OpDiff:
			op.children = []dedupInput{{s: left}}
			op.filter, op.filterIn = right, false
		}
		return op, []*relation.Relation{owned}, op.out.Cols
	}
	panic("algebra: unreachable op in validated stream tree")
}

// buildSideFor drains e's pipeline into the shared build side for this
// exec, building it on first use.
func (x *streamExec) buildSideFor(e *Expr, equi bool, keyCols []int) (*buildSide, []*relation.Relation, []relation.BatchCol) {
	bk := newBuildKey(e, equi, keyCols)
	x.mu.Lock()
	bs, ok := x.builds[bk]
	if !ok {
		bs = &buildSide{}
		x.builds[bk] = bs
	}
	x.mu.Unlock()
	// The right pipeline is never partitioned: every partition must probe
	// the complete build side.
	child, rels, cols := x.pipeline(e, 0, 1)
	bs.once.Do(func() {
		g := relation.NewBatch(rels, cols)
		for b := child.next(); b != nil; b = child.next() {
			for i := 0; i < b.Len(); i++ {
				g.AppendRowFrom(b, i)
			}
		}
		bs.b = g
		bs.cols = cols
		bs.size = g.Bytes() + child.bytes()
		if equi {
			bs.ix = relation.BuildBatchIndex(g, keyCols)
			bs.size += bs.ix.Bytes()
		}
	})
	// Every partition after the first constructed its own child pipeline
	// above, and pipeline-breaking subtrees (∪/∩/−/π) mint a fresh owned
	// relation per construction — but the drained row indices in bs.b point
	// into the relations of the pipeline that won the once. Adopt the
	// winner's sources as the batch layout, or probe output batches would
	// read build columns from an empty owned relation.
	rels = make([]*relation.Relation, len(bs.b.Srcs))
	for i := range bs.b.Srcs {
		rels[i] = bs.b.Srcs[i].Rel
	}
	return bs, rels, bs.cols
}

// scanOp streams a base relation's rows in storage order over [pos, hi).
type scanOp struct {
	x       *streamExec
	rel     *relation.Relation
	pos, hi int
	out     *relation.Batch
}

func (s *scanOp) next() *relation.Batch {
	if s.pos >= s.hi {
		return nil
	}
	s.out.Reset()
	n := s.hi - s.pos
	if n > relation.BatchRows {
		n = relation.BatchRows
	}
	rows := s.out.Srcs[0].Rows
	for i := 0; i < n; i++ {
		rows = append(rows, s.pos+i)
	}
	s.out.Srcs[0].Rows = rows
	s.pos += n
	s.x.batches.Add(1)
	return s.out
}

func (s *scanOp) bytes() int { return s.out.Bytes() }

// selectOp filters its child's batches. Surviving row indices accumulate
// across child batches (indices stay valid; batches don't) until the output
// batch is full.
type selectOp struct {
	x     *streamExec
	child stream
	pred  boundPred
	out   *relation.Batch
	virt  relation.Tuple
	fast  bool // single-source identity layout: evaluate via the Row binding

	cur    *relation.Batch
	curPos int
}

func (s *selectOp) next() *relation.Batch {
	s.out.Reset()
	for s.out.Len() < relation.BatchRows {
		if s.cur == nil || s.curPos >= s.cur.Len() {
			s.cur = s.child.next()
			s.curPos = 0
			if s.cur == nil {
				break
			}
		}
		b := s.cur
		if s.fast {
			rel := b.Srcs[0].Rel
			for ; s.curPos < b.Len() && s.out.Len() < relation.BatchRows; s.curPos++ {
				if s.pred.evalRow(rel.Row(b.Srcs[0].Rows[s.curPos])) {
					s.out.AppendRowFrom(b, s.curPos)
				}
			}
			continue
		}
		for ; s.curPos < b.Len() && s.out.Len() < relation.BatchRows; s.curPos++ {
			for _, pos := range s.pred.cols {
				s.virt[pos] = b.Value(s.curPos, pos)
			}
			if s.pred.eval(s.virt) {
				s.out.AppendRowFrom(b, s.curPos)
			}
		}
	}
	if s.out.Len() == 0 {
		return nil
	}
	s.x.batches.Add(1)
	return s.out
}

func (s *selectOp) bytes() int { return s.out.Bytes() + s.child.bytes() }

// joinOp streams the left operand against the drained build side: a typed
// hash probe per left row for equi-joins, the full build side for products.
// The output batch concatenates the left batch's sources with the build
// side's, copying only row indices.
type joinOp struct {
	x     *streamExec
	left  stream
	build *buildSide
	nl    int // number of left sources

	probeCols []int // equi-join probe columns in the left batch; nil = product
	theta     func(relation.Tuple) bool
	thetaCols []int
	virt      relation.Tuple

	out *relation.Batch

	cur     *relation.Batch
	curPos  int
	matches []int // pending build rows for the current left row
	mi      int
	all     []int // cached [0, buildLen) for product iteration
}

// emit appends (left row li of cur, build row bi) to out, then applies the
// theta condition (bound against the concatenated schema) on the appended
// row, dropping it on failure.
func (j *joinOp) emit(li, bi int) {
	n := j.out.Len()
	for s := 0; s < j.nl; s++ {
		j.out.Srcs[s].Rows = append(j.out.Srcs[s].Rows, j.cur.Srcs[s].Rows[li])
	}
	for s := range j.build.b.Srcs {
		j.out.Srcs[j.nl+s].Rows = append(j.out.Srcs[j.nl+s].Rows, j.build.b.Srcs[s].Rows[bi])
	}
	if j.theta != nil {
		for _, pos := range j.thetaCols {
			j.virt[pos] = j.out.Value(n, pos)
		}
		if !j.theta(j.virt) {
			j.out.Truncate(n)
		}
	}
}

func (j *joinOp) next() *relation.Batch {
	j.out.Reset()
	for j.out.Len() < relation.BatchRows {
		if j.matches != nil && j.mi < len(j.matches) {
			for ; j.mi < len(j.matches) && j.out.Len() < relation.BatchRows; j.mi++ {
				j.emit(j.curPos, j.matches[j.mi])
			}
			continue
		}
		j.curPos++
		if j.cur == nil || j.curPos >= j.cur.Len() {
			j.cur = j.left.next()
			j.curPos = 0
			if j.cur == nil {
				break
			}
		}
		if j.probeCols != nil {
			j.matches = j.build.ix.Lookup(j.cur, j.curPos, j.probeCols)
		} else {
			j.matches = j.allBuildRows()
		}
		j.mi = 0
	}
	if j.out.Len() == 0 {
		return nil
	}
	j.x.batches.Add(1)
	return j.out
}

// allBuildRows returns [0, buildLen) for product iteration (cached).
func (j *joinOp) allBuildRows() []int {
	if j.all == nil {
		n := j.build.b.Len()
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		j.all = rows
	}
	return j.all
}

func (j *joinOp) bytes() int {
	return j.out.Bytes() + j.left.bytes() + j.build.size + cap(j.all)*8
}

// dedupOp is the pipeline breaker behind π and the set operations: it
// deduplicates rows by full-row (or projected) key, materializes survivors
// into an owned relation, and streams batches of owned-relation rows. For ∩
// and −, the filter stream is drained into a key set before the first
// output batch, mirroring the materializing evaluator's key-set algorithm
// (and its output order) exactly.
type dedupOp struct {
	x     *streamExec
	owned *relation.Relation
	out   *relation.Batch

	children []dedupInput
	ci       int

	// filter is the right operand of ∩/−: membership in its key set is
	// required (filterIn) or forbidden (!filterIn).
	filter     stream
	filterIn   bool
	filterKeys map[string]struct{}

	seen    map[string]struct{}
	keyBuf  []byte
	emitted int // owned rows already streamed out
	started bool
}

// dedupInput is one input stream with the key columns (in the input batch's
// column space) and the output column mapping used to materialize a row.
type dedupInput struct {
	s       stream
	keyCols []int               // nil = whole row
	cols    []relation.BatchCol // nil = input columns are the output columns
}

func (d *dedupOp) next() *relation.Batch {
	if !d.started {
		d.started = true
		if d.filter != nil {
			d.filterKeys = make(map[string]struct{})
			for b := d.filter.next(); b != nil; b = d.filter.next() {
				for i := 0; i < b.Len(); i++ {
					d.keyBuf = b.AppendKey(d.keyBuf[:0], i, nil)
					d.filterKeys[string(d.keyBuf)] = struct{}{}
				}
			}
		}
	}
	for d.owned.Len()-d.emitted < relation.BatchRows && d.ci < len(d.children) {
		in := &d.children[d.ci]
		b := in.s.next()
		if b == nil {
			d.ci++
			continue
		}
		proj := b
		if in.cols != nil {
			proj = &relation.Batch{Srcs: b.Srcs, Cols: in.cols}
		}
		for i := 0; i < b.Len(); i++ {
			d.keyBuf = b.AppendKey(d.keyBuf[:0], i, in.keyCols)
			if d.filterKeys != nil {
				if _, member := d.filterKeys[string(d.keyBuf)]; member != d.filterIn {
					continue
				}
			}
			if _, dup := d.seen[string(d.keyBuf)]; dup {
				continue
			}
			d.seen[string(d.keyBuf)] = struct{}{}
			d.owned.AppendBatchRow(proj, i)
		}
	}
	if d.emitted == d.owned.Len() {
		return nil
	}
	d.out.Reset()
	hi := d.emitted + relation.BatchRows
	if hi > d.owned.Len() {
		hi = d.owned.Len()
	}
	rows := d.out.Srcs[0].Rows
	for r := d.emitted; r < hi; r++ {
		rows = append(rows, r)
	}
	d.out.Srcs[0].Rows = rows
	d.emitted = hi
	d.x.batches.Add(1)
	return d.out
}

func (d *dedupOp) bytes() int {
	n := d.out.Bytes() + d.owned.Bytes() + len(d.seen)*48 + len(d.filterKeys)*48
	for i := range d.children {
		n += d.children[i].s.bytes()
	}
	if d.filter != nil {
		n += d.filter.bytes()
	}
	return n
}

// partitionableStream reports whether the probe spine is a σ/⋈/× chain over
// a leftmost base scan, so the driving scan can be split across workers
// (the right operands become shared build sides either way).
func partitionableStream(e *Expr) bool {
	switch e.op {
	case OpBase:
		return true
	case OpSelect, OpJoin, OpProduct:
		return partitionableStream(e.left)
	default:
		return false
	}
}

// StreamOptions configures a streaming evaluation.
type StreamOptions struct {
	// Workers bounds probe-side parallelism: 0 resolves to the process
	// default, 1 forces a single pipeline. Counts are identical for every
	// setting (integer partial counts, part-ordered reduction).
	Workers int
	// Rec receives relest_stream_batches_total and the peak working-set
	// gauge; nil disables recording.
	Rec obs.Recorder
}

// StreamCount evaluates COUNT(E) through the streaming executor with
// default options. It is exact and never materializes σ/⋈/× intermediates;
// see StreamCountOpts.
func StreamCount(e *Expr, cat Catalog) (int64, error) {
	return StreamCountOpts(e, cat, StreamOptions{})
}

// StreamCountOpts evaluates COUNT(E) by draining the streaming pipeline
// and summing batch lengths. Partitionable probe spines fan out across
// opts.Workers with shared build sides; the result is the same integer for
// every worker count.
func StreamCountOpts(e *Expr, cat Catalog, opts StreamOptions) (int64, error) {
	x, err := newStreamExec(e, cat)
	if err != nil {
		return 0, err
	}
	parts := 1
	if w := parallel.Resolve(opts.Workers); w > 1 && partitionableStream(e) {
		parts = w
	}
	counts := make([]int64, parts)
	peaks := make([]int, parts)
	parallel.For(parts, parts, func(part int) {
		s, _, _ := x.pipeline(e, part, parts)
		var n int64
		for b := s.next(); b != nil; b = s.next() {
			n += int64(b.Len())
		}
		counts[part] = n
		peaks[part] = s.bytes()
	})
	var total int64
	peak := 0
	for i, c := range counts {
		total += c
		if peaks[i] > peak {
			peak = peaks[i]
		}
	}
	if obs.Live(opts.Rec) {
		opts.Rec.Add(obs.MetricStreamBatches, float64(x.batches.Load()))
		opts.Rec.Set(obs.MetricStreamPeakBytes, float64(peak))
	}
	return total, nil
}

// StreamEval drains the streaming pipeline into a fresh materialized
// relation — the validation and export path (the pipeline itself stays
// constant-memory; the output is whatever the query produces). Output rows
// follow the executor's canonical probe-left order, which may differ from
// Eval's size-based build-side choice; the bags are always equal.
func StreamEval(e *Expr, cat Catalog) (*relation.Relation, error) {
	x, err := newStreamExec(e, cat)
	if err != nil {
		return nil, err
	}
	s, _, _ := x.pipeline(e, 0, 1)
	out := relation.New("stream("+e.op.String()+")", e.Schema())
	for b := s.next(); b != nil; b = s.next() {
		for i := 0; i < b.Len(); i++ {
			out.AppendBatchRow(b, i)
		}
	}
	return out, nil
}
