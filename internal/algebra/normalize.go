package algebra

import (
	"fmt"

	"relest/internal/relation"
)

// This file implements the reduction of COUNT(E) to a counting polynomial:
//
//	COUNT(E) = Σ_j coef_j · T_j,   coef_j ∈ {+1, −1},
//
// where each term T_j sums a conjunctive 0/1 indicator over the cross
// product of a multiset of base-relation occurrences:
//
//	T_j = Σ_{(t_1..t_m) ∈ R_{a1} × … × R_{am}} ψ_j(t_1..t_m).
//
// ψ_j is a conjunction of per-occurrence selection predicates, column
// equality constraints (from equi-joins and from the tuple-identity
// equalities that ∩ expands into), and residual multi-occurrence
// predicates. The rewrite uses
//
//	|A ∪ B| = |A| + |B| − |A ∩ B|
//	|A − B| = |A| − |A ∩ B|
//	|A ∩ B| = Σ_{t∈A, u∈B} 1[t = u]
//
// applied recursively; the pairing of ∩ distributes over the operand
// polynomials because the pointwise multiplicity of every π-free
// set-semantics expression is 0/1 and decomposes linearly over its terms.
//
// The polynomial is exact: evaluated over the full relations with unit
// weights it reproduces COUNT(E) (tested against the exact evaluator).
// Evaluated over SRSWOR samples with the falling-factorial pattern weights
// (package estimator) it yields the paper's unbiased estimator.

// ColRef identifies one column of one occurrence within a term.
type ColRef struct {
	Occ int // occurrence index within the term
	Col int // column position within that occurrence's base schema
}

// Occurrence is one use of a base relation inside a term. LocalPreds are
// selection conditions that constrain this occurrence alone and can be
// applied before any joining; they read rows of the occurrence's instance
// directly from column storage. LocalFps, aligned with LocalPreds, carries a
// semantic fingerprint of each pushed-down closure: two occurrences with
// equal fingerprint sequences filter identically, which is what lets the
// cross-term CSE planner treat them as the same sub-plan step. A zero
// fingerprint (e.g. on hand-built terms) marks the closure opaque and
// excludes the term from sharing.
type Occurrence struct {
	RelName    string
	Schema     *relation.Schema
	LocalPreds []func(relation.Row) bool
	LocalFps   []uint64
}

// EqCol is an equality constraint between two occurrence columns.
type EqCol struct {
	A, B ColRef
}

// TermPred is a residual predicate spanning multiple occurrences. Eval
// expects a virtual tuple of Width values in which (at least) the positions
// listed in ReadPos are populated; Refs maps each read position to the
// occurrence column providing its value.
type TermPred struct {
	Eval    func(relation.Tuple) bool
	Width   int
	ReadPos []int
	Refs    []ColRef // aligned with ReadPos
	// Fp identifies the Eval closure (the serial of the predicate binding it
	// was built from): equal Fp means the same closure with the same captured
	// state. Zero marks the closure opaque to the CSE planner.
	Fp uint64
}

// Term is one conjunctive summand of a counting polynomial.
type Term struct {
	Coef  int
	Occs  []Occurrence
	Eqs   []EqCol
	Preds []TermPred
	// Out maps the (virtual) output columns of the originating
	// subexpression to occurrence columns; ∩-pairing consumes it.
	Out []ColRef
}

// Polynomial is a ±1-weighted sum of conjunctive terms.
type Polynomial struct {
	Terms []Term
}

// NumTerms returns the number of terms.
func (p Polynomial) NumTerms() int { return len(p.Terms) }

// RelationNames returns the set of base relations used by any term.
func (p Polynomial) RelationNames() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, t := range p.Terms {
		for _, o := range t.Occs {
			if _, dup := seen[o.RelName]; !dup {
				seen[o.RelName] = struct{}{}
				out = append(out, o.RelName)
			}
		}
	}
	return out
}

// MaxOccurrences returns the largest number of occurrences of a single
// relation within one term — the degree of the U-statistic correction the
// estimator will need.
func (p Polynomial) MaxOccurrences() int {
	m := 0
	for _, t := range p.Terms {
		byRel := map[string]int{}
		for _, o := range t.Occs {
			byRel[o.RelName]++
			if byRel[o.RelName] > m {
				m = byRel[o.RelName]
			}
		}
	}
	return m
}

// Normalize rewrites COUNT(e) into a counting polynomial. It fails for
// expressions containing π (projection/duplicate elimination), whose counts
// are distinct-counts and are handled by the dedicated distinct estimators.
func Normalize(e *Expr) (Polynomial, error) {
	if e.HasProjection() {
		return Polynomial{}, fmt.Errorf("algebra: COUNT over π is a distinct-count; use the distinct estimators")
	}
	return normalize(e)
}

func normalize(e *Expr) (Polynomial, error) {
	switch e.op {
	case OpBase:
		out := make([]ColRef, e.schema.Len())
		for i := range out {
			out[i] = ColRef{Occ: 0, Col: i}
		}
		return Polynomial{Terms: []Term{{
			Coef: 1,
			Occs: []Occurrence{{RelName: e.relName, Schema: e.schema}},
			Out:  out,
		}}}, nil

	case OpSelect:
		child, err := normalize(e.left)
		if err != nil {
			return Polynomial{}, err
		}
		for i := range child.Terms {
			attachPredicate(&child.Terms[i], e.pred, e.left.schema.Len())
		}
		return child, nil

	case OpProduct, OpJoin:
		left, err := normalize(e.left)
		if err != nil {
			return Polynomial{}, err
		}
		right, err := normalize(e.right)
		if err != nil {
			return Polynomial{}, err
		}
		var terms []Term
		for _, lt := range left.Terms {
			for _, rt := range right.Terms {
				t := combineTerms(lt, rt)
				if e.op == OpJoin {
					shift := len(lt.Occs)
					for i := range e.joinLeft {
						t.Eqs = append(t.Eqs, EqCol{
							A: lt.Out[e.joinLeft[i]],
							B: shiftRef(rt.Out[e.joinRight[i]], shift),
						})
					}
					if e.theta.eval != nil {
						attachPredicate(&t, e.theta, e.schema.Len())
					}
				}
				terms = append(terms, t)
			}
		}
		return Polynomial{Terms: terms}, nil

	case OpUnion:
		left, err := normalize(e.left)
		if err != nil {
			return Polynomial{}, err
		}
		right, err := normalize(e.right)
		if err != nil {
			return Polynomial{}, err
		}
		inter := intersectPoly(left, right)
		terms := append(append([]Term{}, left.Terms...), right.Terms...)
		terms = append(terms, negate(inter).Terms...)
		return Polynomial{Terms: terms}, nil

	case OpDiff:
		left, err := normalize(e.left)
		if err != nil {
			return Polynomial{}, err
		}
		right, err := normalize(e.right)
		if err != nil {
			return Polynomial{}, err
		}
		inter := intersectPoly(left, right)
		terms := append([]Term{}, left.Terms...)
		terms = append(terms, negate(inter).Terms...)
		return Polynomial{Terms: terms}, nil

	case OpIntersect:
		left, err := normalize(e.left)
		if err != nil {
			return Polynomial{}, err
		}
		right, err := normalize(e.right)
		if err != nil {
			return Polynomial{}, err
		}
		return intersectPoly(left, right), nil

	default:
		return Polynomial{}, fmt.Errorf("algebra: cannot normalize op %s", e.op)
	}
}

// combineTerms concatenates two terms into a cross-product term, shifting
// the right term's occurrence indices. All constraint slices are copied so
// terms remain independent.
func combineTerms(l, r Term) Term {
	shift := len(l.Occs)
	t := Term{Coef: l.Coef * r.Coef}
	t.Occs = append(append([]Occurrence{}, l.Occs...), r.Occs...)
	t.Eqs = append([]EqCol{}, l.Eqs...)
	for _, eq := range r.Eqs {
		t.Eqs = append(t.Eqs, EqCol{A: shiftRef(eq.A, shift), B: shiftRef(eq.B, shift)})
	}
	t.Preds = append([]TermPred{}, l.Preds...)
	for _, p := range r.Preds {
		np := p
		np.Refs = shiftRefs(p.Refs, shift)
		t.Preds = append(t.Preds, np)
	}
	t.Out = append([]ColRef{}, l.Out...)
	t.Out = append(t.Out, shiftRefs(r.Out, shift)...)
	return t
}

// intersectPoly builds the polynomial for |A ∩ B| from the operand
// polynomials: every pair of terms is combined and the output columns are
// pairwise equated (the tuple-identity constraint 1[t = u]).
func intersectPoly(a, b Polynomial) Polynomial {
	var terms []Term
	for _, at := range a.Terms {
		for _, bt := range b.Terms {
			t := combineTerms(at, bt)
			shift := len(at.Occs)
			for i := range at.Out {
				t.Eqs = append(t.Eqs, EqCol{A: at.Out[i], B: shiftRef(bt.Out[i], shift)})
			}
			// The two halves are constrained equal; expose the left half as
			// the output so nested set operations keep working.
			t.Out = t.Out[:len(at.Out)]
			terms = append(terms, t)
		}
	}
	return Polynomial{Terms: terms}
}

// negate flips the sign of every term.
func negate(p Polynomial) Polynomial {
	terms := make([]Term, len(p.Terms))
	for i, t := range p.Terms {
		terms[i] = t
		terms[i].Coef = -t.Coef
	}
	return Polynomial{Terms: terms}
}

// attachPredicate adds a bound selection predicate (over the subexpression
// output of the given width) to the term. If every column the predicate
// reads maps to a single occurrence, the predicate is pushed down as a
// local filter on that occurrence; otherwise it is kept as a residual
// term predicate.
func attachPredicate(t *Term, bp boundPred, width int) {
	refs := make([]ColRef, len(bp.cols))
	sameOcc := true
	for i, c := range bp.cols {
		refs[i] = t.Out[c]
		if refs[i].Occ != refs[0].Occ {
			sameOcc = false
		}
	}
	if len(bp.cols) > 0 && sameOcc {
		occ := refs[0].Occ
		eval := bp.eval
		readPos := append([]int{}, bp.cols...)
		// The virtual tuple is allocated per call: one closure may be shared
		// by concurrent plan compilations over different instances.
		local := func(row relation.Row) bool {
			virt := make(relation.Tuple, width)
			for i, p := range readPos {
				virt[p] = row.Value(refs[i].Col)
			}
			return eval(virt)
		}
		t.Occs[occ].LocalPreds = append(t.Occs[occ].LocalPreds, local)
		t.Occs[occ].LocalFps = append(t.Occs[occ].LocalFps, localPredFp(bp.id, width, readPos, refs))
		return
	}
	t.Preds = append(t.Preds, TermPred{
		Eval:    bp.eval,
		Width:   width,
		ReadPos: append([]int{}, bp.cols...),
		Refs:    refs,
		Fp:      bp.id,
	})
}

// localPredFp fingerprints a pushed-down local closure: the binding serial
// plus everything else the closure captured — virtual-tuple width, read
// positions, and the occurrence columns feeding them. Two closures with
// equal fingerprints accept exactly the same rows.
func localPredFp(id uint64, width int, readPos []int, refs []ColRef) uint64 {
	if id == 0 {
		return 0
	}
	h := fnvMix(fnvOffset, id)
	h = fnvMix(h, uint64(width))
	for i := range readPos {
		h = fnvMix(h, uint64(readPos[i]))
		h = fnvMix(h, uint64(refs[i].Col))
	}
	if h == 0 {
		h = 1 // keep 0 reserved for "opaque"
	}
	return h
}

const fnvOffset = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

func shiftRef(r ColRef, by int) ColRef { return ColRef{Occ: r.Occ + by, Col: r.Col} }

func shiftRefs(rs []ColRef, by int) []ColRef {
	out := make([]ColRef, len(rs))
	for i, r := range rs {
		out[i] = shiftRef(r, by)
	}
	return out
}
