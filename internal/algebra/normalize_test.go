package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"relest/internal/relation"
)

func TestNormalizeBase(t *testing.T) {
	_, r, _, _ := fixtures()
	p, err := Normalize(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTerms() != 1 || p.Terms[0].Coef != 1 || len(p.Terms[0].Occs) != 1 {
		t.Fatalf("base polynomial: %+v", p)
	}
	if p.Terms[0].Occs[0].RelName != "R" {
		t.Errorf("occ relation %q", p.Terms[0].Occs[0].RelName)
	}
	if len(p.Terms[0].Out) != 2 {
		t.Errorf("out mapping %v", p.Terms[0].Out)
	}
}

func TestNormalizeShapes(t *testing.T) {
	_, r, s, _ := fixtures()
	join := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	cases := []struct {
		name  string
		e     *Expr
		terms int
	}{
		{"join", join, 1},
		{"union", Must(Union(r, s)), 3},
		{"diff", Must(Diff(r, s)), 2},
		{"intersect", Must(Intersect(r, s)), 1},
		{"product", Must(Product(r, s, "S")), 1},
		// Nested: (R ∪ S) − R = |R∪S| terms (3) + paired-intersection terms (3·1).
		{"nested", Must(Diff(Must(Union(r, s)), r)), 6},
	}
	for _, c := range cases {
		p, err := Normalize(c.e)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.NumTerms() != c.terms {
			t.Errorf("%s: %d terms, want %d", c.name, p.NumTerms(), c.terms)
		}
	}
}

func TestNormalizeRejectsProjection(t *testing.T) {
	_, r, _, _ := fixtures()
	pr := Must(Project(r, "a"))
	if _, err := Normalize(pr); err == nil {
		t.Error("π should not normalize")
	}
}

func TestNormalizePredPushdown(t *testing.T) {
	_, r, s, _ := fixtures()
	// Single-occurrence predicate on a join must be pushed to the occurrence.
	j := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	sel := Must(Select(j, Cmp{Col: "b", Op: GT, Val: relation.Int(15)}))
	p, err := Normalize(sel)
	if err != nil {
		t.Fatal(err)
	}
	term := p.Terms[0]
	if len(term.Preds) != 0 {
		t.Errorf("single-column predicate not pushed down: %d residual preds", len(term.Preds))
	}
	total := 0
	for _, o := range term.Occs {
		total += len(o.LocalPreds)
	}
	if total != 1 {
		t.Errorf("expected 1 local pred, got %d", total)
	}
	// Multi-occurrence predicate must remain a term predicate.
	sel2 := Must(Select(j, ColCmp{A: "b", Op: LT, B: "S.b"}))
	p2, err := Normalize(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Terms[0].Preds) != 1 {
		t.Errorf("cross-occurrence predicate should stay residual, got %d", len(p2.Terms[0].Preds))
	}
}

func TestPolynomialIntrospection(t *testing.T) {
	_, r, s, _ := fixtures()
	u := Must(Union(r, s))
	p, err := Normalize(u)
	if err != nil {
		t.Fatal(err)
	}
	names := p.RelationNames()
	if len(names) != 2 {
		t.Errorf("RelationNames = %v", names)
	}
	if p.MaxOccurrences() != 1 {
		t.Errorf("MaxOccurrences = %d", p.MaxOccurrences())
	}
	// Self-intersection has two occurrences of R in one term.
	ii := Must(Intersect(r, r))
	p2, _ := Normalize(ii)
	if p2.MaxOccurrences() != 2 {
		t.Errorf("self-intersect MaxOccurrences = %d", p2.MaxOccurrences())
	}
}

// TestPolynomialMatchesExactEvaluator is the load-bearing equivalence test:
// for a fixed zoo of expressions plus randomly generated ones, the counting
// polynomial evaluated with unit weights over the full relations must equal
// the exact evaluator's COUNT.
func TestPolynomialMatchesExactEvaluator(t *testing.T) {
	cat, r, s, _ := fixtures()
	exprs := []*Expr{
		r,
		Must(Select(r, Cmp{Col: "a", Op: GE, Val: relation.Int(2)})),
		Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S")),
		Must(Product(r, s, "S")),
		Must(Union(r, s)),
		Must(Intersect(r, s)),
		Must(Diff(r, s)),
		Must(Diff(s, r)),
		Must(Union(Must(Select(r, Cmp{Col: "a", Op: GE, Val: relation.Int(2)})), s)),
		Must(Diff(Must(Union(r, s)), Must(Intersect(r, s)))), // symmetric difference
		Must(Intersect(Must(Union(r, s)), r)),
		Must(Diff(r, Must(Diff(r, s)))), // = R ∩ S
		Must(Select(Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S")), ColCmp{A: "b", Op: NE, B: "S.b"})),
		Must(Intersect(r, r)), // self: |R|
		Must(Diff(r, r)),      // empty
		Must(Union(r, r)),     // |R|
	}
	for i, e := range exprs {
		want, err := Count(e, cat)
		if err != nil {
			t.Fatalf("expr %d (%s): eval: %v", i, e, err)
		}
		p, err := Normalize(e)
		if err != nil {
			t.Fatalf("expr %d (%s): normalize: %v", i, e, err)
		}
		got, err := p.ExactCount(cat)
		if err != nil {
			t.Fatalf("expr %d (%s): exact count: %v", i, e, err)
		}
		if got != float64(want) {
			t.Errorf("expr %d (%s): polynomial %v != exact %d", i, e, got, want)
		}
	}
}

// randomCatalog builds small random duplicate-free relations with matching
// layouts so set operations are always applicable between them.
func randomCatalog(rng *rand.Rand) (MapCatalog, []*Expr) {
	schema := func() *relation.Schema {
		return relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
		)
	}
	cat := MapCatalog{}
	var bases []*Expr
	for _, name := range []string{"A", "B", "C"} {
		r := relation.New(name, schema())
		seen := map[[2]int64]bool{}
		n := 3 + rng.Intn(6)
		for len(seen) < n {
			k := [2]int64{int64(rng.Intn(5)), int64(rng.Intn(5) * 10)}
			if !seen[k] {
				seen[k] = true
				r.MustAppend(relation.Tuple{relation.Int(k[0]), relation.Int(k[1])})
			}
		}
		cat[name] = r
		bases = append(bases, BaseOf(r))
	}
	return cat, bases
}

// prefixCounter hands out unique disambiguation prefixes for nested
// joins/products in the random generator.
var prefixCounter int

func nextPrefix(base string) string {
	prefixCounter++
	return fmt.Sprintf("%s%d", base, prefixCounter)
}

// randomExpr generates a random π-free expression. All base relations share
// a layout, and joins/products double the width, so set operations are only
// generated between subexpressions of equal width.
func randomExpr(rng *rand.Rand, bases []*Expr, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return bases[rng.Intn(len(bases))]
	}
	switch rng.Intn(6) {
	case 0: // select
		child := randomExpr(rng, bases, depth-1)
		col := child.Schema().Column(rng.Intn(child.Schema().Len())).Name
		ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
		v := relation.Int(int64(rng.Intn(5)))
		if rng.Intn(2) == 0 {
			v = relation.Int(int64(rng.Intn(5) * 10))
		}
		return Must(Select(child, Cmp{Col: col, Op: ops[rng.Intn(len(ops))], Val: v}))
	case 1: // join on a random column pair of equal position class
		l := randomExpr(rng, bases, depth-1)
		rr := randomExpr(rng, bases, depth-1)
		lc := l.Schema().Column(rng.Intn(l.Schema().Len())).Name
		rc := rr.Schema().Column(rng.Intn(rr.Schema().Len())).Name
		return Must(Join(l, rr, []On{{Left: lc, Right: rc}}, nil, nextPrefix("j")))
	case 2: // product
		l := randomExpr(rng, bases, depth-1)
		rr := randomExpr(rng, bases, depth-1)
		return Must(Product(l, rr, nextPrefix("p")))
	default: // set ops between equal-layout children
		l := randomExpr(rng, bases, depth-1)
		rr := randomExpr(rng, bases, depth-1)
		if !l.Schema().EqualLayout(rr.Schema()) {
			// Fall back to a base-vs-base set op, always compatible.
			l = bases[rng.Intn(len(bases))]
			rr = bases[rng.Intn(len(bases))]
		}
		switch rng.Intn(3) {
		case 0:
			return Must(Union(l, rr))
		case 1:
			return Must(Intersect(l, rr))
		default:
			return Must(Diff(l, rr))
		}
	}
}

func TestPolynomialMatchesExactRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		cat, bases := randomCatalog(rng)
		e := randomExpr(rng, bases, 3)
		p, err := Normalize(e)
		if err != nil {
			t.Fatalf("trial %d (%s): normalize: %v", trial, e, err)
		}
		if p.NumTerms() > 200 {
			continue // pathological nesting; skip for test speed
		}
		want, err := Count(e, cat)
		if err != nil {
			t.Fatalf("trial %d (%s): eval: %v", trial, e, err)
		}
		got, err := p.ExactCount(cat)
		if err != nil {
			t.Fatalf("trial %d (%s): exact count: %v", trial, e, err)
		}
		if got != float64(want) {
			t.Errorf("trial %d (%s): polynomial %v != exact %d", trial, e, got, want)
		}
	}
}

func TestEnumerateAssignments(t *testing.T) {
	cat, r, s, _ := fixtures()
	j := Must(Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S"))
	p, err := Normalize(j)
	if err != nil {
		t.Fatal(err)
	}
	term := &p.Terms[0]
	inst, err := BindInstances(term, cat)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	err = term.EnumerateAssignments(inst, func(rows []int) bool {
		if len(rows) != 2 {
			t.Fatalf("assignment width %d", len(rows))
		}
		// The joined tuples must actually agree on column a.
		a0 := inst[0].Value(rows[0], 0)
		a1 := inst[1].Value(rows[1], 0)
		if !a0.Equal(a1) {
			t.Fatalf("assignment violates join: %v vs %v", a0, a1)
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("enumerated %d assignments, want 2", count)
	}
	// Early stop.
	count = 0
	_ = term.EnumerateAssignments(inst, func(rows []int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop enumerated %d", count)
	}
}

func TestCountAssignmentsProductTail(t *testing.T) {
	cat, r, s, _ := fixtures()
	// Pure product: the tail optimization must multiply, not enumerate;
	// verify it produces the right number anyway.
	pr := Must(Product(r, s, "S"))
	p, err := Normalize(pr)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := BindInstances(&p.Terms[0], cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Terms[0].CountAssignments(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("product count %v, want 12", got)
	}
}

func TestBindInstancesErrors(t *testing.T) {
	cat, r, _, _ := fixtures()
	p, _ := Normalize(r)
	term := &p.Terms[0]
	if _, err := BindInstances(term, MapCatalog{}); err == nil {
		t.Error("missing relation should fail")
	}
	// Wrong layout under the same name.
	bad := relation.New("R", relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindString}))
	if _, err := BindInstances(term, MapCatalog{"R": bad}); err == nil {
		t.Error("layout mismatch should fail")
	}
	_ = cat
}
