package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relest/internal/relation"
)

// Property-based tests (testing/quick) for the algebra layer.

// TestQuickPredicateLaws checks boolean algebra laws of the predicate
// combinators on random tuples: De Morgan, double negation, and the
// identity elements of And/Or.
func TestQuickPredicateLaws(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tup := relation.Tuple{relation.Int(int64(rng.Intn(10))), relation.Int(int64(rng.Intn(10)))}
		p := Cmp{Col: "a", Op: LT, Val: relation.Int(int64(rng.Intn(10)))}
		q := Cmp{Col: "b", Op: GE, Val: relation.Int(int64(rng.Intn(10)))}
		eval := func(pred Predicate) bool {
			fn, err := pred.bind(schema)
			if err != nil {
				t.Fatal(err)
			}
			return fn(tup)
		}
		// De Morgan: ¬(p ∧ q) == (¬p ∨ ¬q)
		if eval(Not{And{p, q}}) != eval(Or{Not{p}, Not{q}}) {
			return false
		}
		// Double negation.
		if eval(Not{Not{p}}) != eval(p) {
			return false
		}
		// Identity elements.
		if eval(And{p}) != eval(p) || eval(Or{q}) != eval(q) {
			return false
		}
		// Empty And is true; empty Or is false.
		if !eval(And{}) || eval(Or{}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSetOpAlgebra checks classic set identities through the exact
// evaluator on random relations: |A∪B| + |A∩B| = |A| + |B| and
// |A−B| + |A∩B| = |A|.
func TestQuickSetOpAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat, bases := randomCatalog(rng)
		a, b := bases[0], bases[1]
		count := func(e *Expr) int64 {
			c, err := Count(e, cat)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		union := count(Must(Union(a, b)))
		inter := count(Must(Intersect(a, b)))
		diff := count(Must(Diff(a, b)))
		na, nb := count(a), count(b)
		if union+inter != na+nb {
			return false
		}
		if diff+inter != na {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountStreamingMatchesCount: the non-materializing count must
// agree with the materializing evaluator on random π-free expressions.
func TestQuickCountStreamingMatchesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat, bases := randomCatalog(rng)
		e := randomExpr(rng, bases, 2)
		want, err := Count(e, cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountStreaming(e, cat)
		if err != nil {
			t.Fatal(err)
		}
		return got == float64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinCommutative: |L ⋈ R| == |R ⋈ L| through both evaluation
// paths.
func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat, bases := randomCatalog(rng)
		l, r := bases[0], bases[1]
		lr := Must(Join(l, r, []On{{Left: "a", Right: "a"}}, nil, "x"))
		rl := Must(Join(r, l, []On{{Left: "a", Right: "a"}}, nil, "y"))
		c1, err := Count(lr, cat)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Count(rl, cat)
		if err != nil {
			t.Fatal(err)
		}
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
