package algebra

import (
	"fmt"
	"testing"

	"relest/internal/relation"
)

// The fuzzers below drive the predicate-binding and normalization paths
// with machine-built inputs: a byte string is decoded into an expression
// (or predicate) tree, then normalized and exactly evaluated. The
// properties checked are the ones the estimator engine depends on:
// no panics on any tree shape, structurally well-formed polynomials
// (occurrence references in range, nonzero coefficients), and — this
// repo's core invariant — bit-identical results when the same input is
// normalized twice.

// fuzzCatalog returns two tiny joinable relations plus one with a
// different schema, so set-op schema checks exercise both branches.
func fuzzCatalog() MapCatalog {
	ab := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	r := relation.New("R", ab)
	for _, p := range [][2]int64{{1, 10}, {2, 20}, {3, 30}, {3, 31}} {
		r.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	s := relation.New("S", ab)
	for _, p := range [][2]int64{{2, 20}, {3, 30}, {5, 50}} {
		s.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	t := relation.New("T", relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.KindFloat},
	))
	t.MustAppend(relation.Tuple{relation.Float(0.5)})
	return MapCatalog{"R": r, "S": s, "T": t}
}

// exprReader decodes fuzz bytes into algebra expressions. Every decode
// consumes input left to right; constructor errors (schema mismatches,
// unknown columns) make the op a no-op, so any byte string decodes to
// some well-formed expression.
type exprReader struct {
	data []byte
	pos  int
}

func (r *exprReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// pred decodes a predicate tree of bounded depth.
func (r *exprReader) pred(depth int) Predicate {
	cols := []string{"a", "b", "x", "nope"}
	op := CmpOp(r.byte() % 6)
	if depth <= 0 {
		return Cmp{Col: cols[int(r.byte())%len(cols)], Op: op, Val: relation.Int(int64(r.byte()) % 8)}
	}
	switch r.byte() % 5 {
	case 0:
		return Cmp{Col: cols[int(r.byte())%len(cols)], Op: op, Val: relation.Int(int64(r.byte()) % 8)}
	case 1:
		return ColCmp{A: cols[int(r.byte())%len(cols)], Op: op, B: cols[int(r.byte())%len(cols)]}
	case 2:
		return And{r.pred(depth - 1), r.pred(depth - 1)}
	case 3:
		return Or{r.pred(depth - 1), r.pred(depth - 1)}
	default:
		return Not{P: r.pred(depth - 1)}
	}
}

// expr decodes an expression tree of bounded depth over the fuzz catalog.
func (r *exprReader) expr(cat MapCatalog, depth int) *Expr {
	if depth <= 0 || r.byte()%4 == 0 {
		names := []string{"R", "S", "T"}
		name := names[int(r.byte())%len(names)]
		rel, _ := cat.Relation(name)
		return Base(name, rel.Schema())
	}
	left := r.expr(cat, depth-1)
	switch r.byte() % 7 {
	case 0:
		if e, err := Select(left, r.pred(2)); err == nil {
			return e
		}
	case 1:
		cols := left.Schema().Columns()
		if e, err := Project(left, cols[int(r.byte())%len(cols)].Name); err == nil {
			return e
		}
	case 2:
		if e, err := Product(left, r.expr(cat, depth-1), fmt.Sprintf("p%d_", r.pos)); err == nil {
			return e
		}
	case 3:
		if e, err := Join(left, r.expr(cat, depth-1), []On{{Left: "a", Right: "a"}}, nil, fmt.Sprintf("j%d_", r.pos)); err == nil {
			return e
		}
	case 4:
		if e, err := Union(left, r.expr(cat, depth-1)); err == nil {
			return e
		}
	case 5:
		if e, err := Intersect(left, r.expr(cat, depth-1)); err == nil {
			return e
		}
	default:
		if e, err := Diff(left, r.expr(cat, depth-1)); err == nil {
			return e
		}
	}
	return left
}

// FuzzNormalize decodes an expression, normalizes it, and checks the
// polynomial invariants plus normalize-twice determinism and agreement
// of exact evaluation across both calls.
func FuzzNormalize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 1, 2, 0, 3})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
	f.Add([]byte{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5, 2, 3})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return // bound tree size; depth is already capped
		}
		cat := fuzzCatalog()
		e := (&exprReader{data: data}).expr(cat, 4)
		p1, err1 := Normalize(e)
		p2, err2 := Normalize(e)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("normalize determinism: err1=%v err2=%v", err1, err2)
		}
		if err1 != nil {
			return // rejection is allowed; panics and flip-flops are not
		}
		if p1.NumTerms() != p2.NumTerms() {
			t.Fatalf("normalize determinism: %d terms then %d", p1.NumTerms(), p2.NumTerms())
		}
		for i := range p1.Terms {
			term := &p1.Terms[i]
			if term.Coef == 0 {
				t.Fatalf("term %d has zero coefficient", i)
			}
			for _, ref := range term.Out {
				if ref.Occ < 0 || ref.Occ >= len(term.Occs) {
					t.Fatalf("term %d output ref occurrence %d out of range [0,%d)", i, ref.Occ, len(term.Occs))
				}
			}
		}
		if got, err := Count(e, cat); err == nil {
			if again, err2 := Count(e, cat); err2 != nil || again != got {
				t.Fatalf("exact count not reproducible: %d (err %v) vs %d", again, err2, got)
			}
		}
	})
}

// FuzzPredicate decodes a predicate tree, binds it through Select against
// each catalog schema, and evaluates the selection exactly: binding may
// reject unknown columns but must never panic, and accepted predicates
// must evaluate to the same count twice.
func FuzzPredicate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 0, 1, 3, 1, 2, 4, 0, 0, 2, 2, 2})
	f.Add([]byte{4, 4, 4, 4, 1, 0, 3, 2, 1, 0, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			return
		}
		cat := fuzzCatalog()
		p := (&exprReader{data: data}).pred(4)
		for _, name := range []string{"R", "T"} {
			rel, _ := cat.Relation(name)
			sel, err := Select(Base(name, rel.Schema()), p)
			if err != nil {
				continue // unknown column; rejection is the contract
			}
			n1, err1 := Count(sel, cat)
			n2, err2 := Count(sel, cat)
			if err1 != nil || err2 != nil {
				t.Fatalf("bound predicate failed to evaluate: %v / %v", err1, err2)
			}
			if n1 != n2 {
				t.Fatalf("selection count not reproducible: %d vs %d", n1, n2)
			}
			if n1 < 0 || n1 > int64(rel.Len()) {
				t.Fatalf("selection count %d outside [0,%d]", n1, rel.Len())
			}
		}
	})
}
