package algebra

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"relest/internal/obs"
)

// Cross-term common-subexpression elimination.
//
// The counting-polynomial rewrite routinely produces terms that begin with
// the same work: |A ∪ B| expands A, B and A∩B terms that all join the same
// base relations on the same keys, and every ∩-pairing duplicates its
// operands' join prefixes. Each term's plan enumerates its occurrence
// assignments independently, so without sharing the common prefix is
// re-joined once per term.
//
// AttachCSE removes that duplication at the plan level. Two plans share an
// enumeration prefix of length p when steps [0, p) are structurally
// identical: same relation instances, same pushed-down local predicates,
// same intra-occurrence equalities, same probe keys against the same
// earlier plan positions, and same residual predicates over the same
// positions. Such prefixes enumerate exactly the same assignment sequence,
// so the group materializes it once — a flat table of candidate rows in
// enumeration order, segmented by first-step candidate — and every consumer
// replays the table instead of re-probing its indexes.
//
// Bit-identity contract. The estimator's results must not move when CSE is
// toggled, so replaying a table has to reproduce the plain recursion's
// float semantics exactly:
//
//   - CountPart groups additions by candidate subtree (`total += rec(k+1)`
//     at every level). The replay reconstructs that grouping from the flat
//     table: within a fixed prefix, step k enumerates distinct candidates
//     in order, so grouping adjacent-equal level-k values splits a segment
//     exactly at the plain recursion's subtree boundaries.
//   - Prefix paths that die before completing the prefix contribute an
//     exact +0.0 in the plain recursion; they have no table rows and are
//     skipped in the replay. Counting totals are never −0.0 (they start at
//     +0.0 and accumulate non-negative subtree counts), so skipping a +0.0
//     addition is bitwise free.
//   - Partitioning chunks the first-step candidate list by position in both
//     paths, so CountPart(part, parts) agrees chunk by chunk at any parts.
//
// Fingerprints make "same predicate" decidable: normalization stamps every
// pushed-down closure and residual predicate with the serial of the
// predicate binding it came from (see boundPred.id). A zero fingerprint
// marks a hand-built term whose closures are opaque; such terms simply
// never share.

// subplanEntry is one shared enumeration prefix: the canonical key's step
// count plus the lazily materialized assignment table. The table lists, in
// enumeration order, every assignment of the first upto plan steps that
// satisfies all prefix constraints: row r holds the upto candidate rows at
// rows[r*upto ... r*upto+upto-1], and starts[ci] is the first table row
// whose step-0 candidate is at position ci of the (common) step-0 candidate
// list. Built once under the sync.Once by the first evaluating consumer —
// every consumer would build the identical table.
type subplanEntry struct {
	upto int

	once   sync.Once
	rows   []int32
	starts []int

	rec obs.Recorder
}

// maxSharedRows caps a shared instance's row count so candidate rows fit
// int32 table cells.
const maxSharedRows = math.MaxInt32

// prefixKey canonically encodes the plan's first upto steps. Two plans with
// equal keys enumerate identical assignment sequences over those steps. The
// second return is false when the prefix cannot be fingerprinted (opaque
// predicates) or safely tabulated, which excludes the plan from sharing.
func (p *termPlan) prefixKey(upto int) (string, bool) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(upto))
	for k := 0; k < upto; k++ {
		st := &p.steps[k]
		occ := st.occ
		o := &p.term.Occs[occ]
		if len(o.LocalFps) != len(o.LocalPreds) {
			return "", false // fingerprints missing: hand-built occurrence
		}
		if p.inst[occ].Len() > maxSharedRows {
			return "", false
		}
		// The candidate list: instance identity, local-predicate
		// fingerprints, intra-occurrence equalities.
		buf = appendKeyPart(buf, fmt.Sprintf("%p", p.inst[occ]))
		buf = appendKeyPart(buf, o.RelName)
		buf = binary.AppendUvarint(buf, uint64(len(o.LocalFps)))
		for _, fp := range o.LocalFps {
			if fp == 0 {
				return "", false
			}
			buf = binary.AppendUvarint(buf, fp)
		}
		nIntra := 0
		for _, eq := range p.term.Eqs {
			if eq.A.Occ == occ && eq.B.Occ == occ {
				nIntra++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(nIntra))
		for _, eq := range p.term.Eqs {
			if eq.A.Occ == occ && eq.B.Occ == occ {
				buf = binary.AppendUvarint(buf, uint64(eq.A.Col))
				buf = binary.AppendUvarint(buf, uint64(eq.B.Col))
			}
		}
		// The step's probe: key columns and the earlier plan positions
		// providing the probe values. Occurrence indices are term-local, so
		// refs are canonicalized to plan positions; every ref at a step
		// inside the prefix points at an earlier step by construction.
		buf = binary.AppendUvarint(buf, uint64(len(st.keyCols)))
		for i, c := range st.keyCols {
			ref := st.boundRefs[i]
			buf = binary.AppendUvarint(buf, uint64(c))
			buf = binary.AppendUvarint(buf, uint64(p.pos[ref.Occ]))
			buf = binary.AppendUvarint(buf, uint64(ref.Col))
		}
		// Residual predicates checked at this step.
		buf = binary.AppendUvarint(buf, uint64(len(st.preds)))
		for _, pr := range st.preds {
			if pr.Fp == 0 {
				return "", false
			}
			buf = binary.AppendUvarint(buf, pr.Fp)
			buf = binary.AppendUvarint(buf, uint64(pr.Width))
			buf = binary.AppendUvarint(buf, uint64(len(pr.ReadPos)))
			for i, rp := range pr.ReadPos {
				ref := pr.Refs[i]
				buf = binary.AppendUvarint(buf, uint64(rp))
				buf = binary.AppendUvarint(buf, uint64(p.pos[ref.Occ]))
				buf = binary.AppendUvarint(buf, uint64(ref.Col))
			}
		}
	}
	return string(buf), true
}

// AttachCSE detects shared enumeration prefixes across the given prepared
// terms and attaches each group to one shared subplan entry, so the group's
// prefix assignments are computed once per cache lifetime and replayed by
// every consumer. Call it after preparing a polynomial's terms and before
// evaluating any of them (attachment mutates the plans); it is idempotent
// per plan. Returns the number of plans that attached to a prefix another
// plan also uses (the per-call increment of relest_cse_subplans_shared_total).
func (c *PlanCache) AttachCSE(plans []*PreparedTerm) int {
	maxUpto := 0
	for _, pt := range plans {
		if pt != nil && pt.p.shared == nil && pt.p.enumUpto > maxUpto {
			maxUpto = pt.p.enumUpto
		}
	}
	shared := 0
	// Longest prefixes first: each round groups the still-unattached plans
	// whose first `upto` steps agree, so a plan always attaches at the
	// longest prefix it shares with at least one other plan.
	for upto := maxUpto; upto >= 2; upto-- {
		groups := make(map[string][]*termPlan)
		for _, pt := range plans {
			if pt == nil || pt.p.shared != nil || pt.p.enumUpto < upto {
				continue
			}
			if key, ok := pt.p.prefixKey(upto); ok {
				groups[key] = append(groups[key], pt.p)
			}
		}
		for key, g := range groups {
			if len(g) < 2 {
				continue
			}
			c.mu.Lock()
			e, ok := c.subplans[key]
			if !ok {
				e = &subplanEntry{upto: upto, rec: c.rec}
				c.subplans[key] = e
			}
			c.mu.Unlock()
			for _, p := range g {
				p.shared = e
			}
			shared += len(g) - 1
		}
	}
	if shared > 0 {
		c.rec.Add(obs.MetricCSESubplansShared, float64(shared))
	}
	return shared
}

// SubplanBytes returns the resident bytes of the materialized shared
// assignment tables (zero until consumers evaluate).
func (c *PlanCache) SubplanBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.subplans {
		n += len(e.rows)*4 + len(e.starts)*8
	}
	return n
}

// Subplans returns the number of registered shared prefixes.
func (c *PlanCache) Subplans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subplans)
}

// materialize builds the assignment table, using whichever consumer plan
// evaluates first: every plan in the group enumerates the prefix
// identically, so the table is the same regardless of the builder.
func (e *subplanEntry) materialize(p *termPlan) {
	e.once.Do(func() {
		sp := e.upto
		cand0 := p.cand[p.steps[0].occ]
		starts := make([]int, len(cand0)+1)
		var rows []int32
		ev := p.newEval()
		var rec func(k int)
		rec = func(k int) {
			if k == sp {
				for j := 0; j < sp; j++ {
					rows = append(rows, int32(ev.assign[p.steps[j].occ]))
				}
				return
			}
			st := &p.steps[k]
			for _, ri := range ev.candidatesAt(k) {
				ev.assign[st.occ] = ri
				if !ev.predsHold(k) {
					continue
				}
				rec(k + 1)
			}
		}
		st0 := &p.steps[0]
		for ci, ri := range cand0 {
			starts[ci] = len(rows) / sp
			ev.assign[st0.occ] = ri
			if !ev.predsHold(0) {
				continue
			}
			rec(1)
		}
		starts[len(cand0)] = len(rows) / sp
		e.rows, e.starts = rows, starts
		e.rec.Set(obs.MetricCSESubplanBytes, float64(len(rows)*4+len(starts)*8))
	})
}

// countPartShared is CountPart over a plan with an attached shared prefix:
// steps [0, upto) replay the materialized table, steps [upto, enumUpto)
// recurse as usual. The replay reconstructs the plain recursion's nested
// addition grouping (see the file comment), so the result is bit-identical
// to the unshared path.
func (p *termPlan) countPartShared(part, parts int) float64 {
	sh := p.shared
	sh.materialize(p)
	sp := sh.upto
	rows, starts := sh.rows, sh.starts
	cand0 := p.cand[p.steps[0].occ]
	lo, hi := chunk(len(cand0), part, parts)
	ev := p.newEval()

	// Plain recursion for the plan's own suffix.
	var rec func(k int) float64
	rec = func(k int) float64 {
		if k == p.enumUpto {
			return 1
		}
		st := &p.steps[k]
		total := 0.0
		for _, ri := range ev.candidatesAt(k) {
			ev.assign[st.occ] = ri
			if !ev.predsHold(k) {
				continue
			}
			total += rec(k + 1)
		}
		return total
	}

	// walk sums table rows [a, b), all sharing their first k candidate
	// values, grouping by the level-k value to mirror rec's per-candidate
	// subtree additions.
	var walk func(k, a, b int) float64
	walk = func(k, a, b int) float64 {
		if k == sp {
			// [a, b) is a single complete prefix assignment (candidate
			// lists hold distinct rows); continue into the suffix.
			return rec(sp)
		}
		st := &p.steps[k]
		total := 0.0
		for a < b {
			v := rows[a*sp+k]
			j := a + 1
			for j < b && rows[j*sp+k] == v {
				j++
			}
			ev.assign[st.occ] = int(v)
			total += walk(k+1, a, j)
			a = j
		}
		return total
	}

	total := 0.0
	st0 := &p.steps[0]
	for ci := lo; ci < hi; ci++ {
		a, b := starts[ci], starts[ci+1]
		if a == b {
			continue
		}
		ev.assign[st0.occ] = int(rows[a*sp])
		total += walk(1, a, b)
	}
	return total * p.tailFactor
}

// enumeratePartShared is EnumeratePart over a plan with an attached shared
// prefix: each table row binds the prefix assignment directly and the
// suffix recursion proceeds as usual, visiting assignments in exactly the
// plain enumeration order.
func (p *termPlan) enumeratePartShared(part, parts int, visit func(rows []int) bool) {
	sh := p.shared
	sh.materialize(p)
	sp := sh.upto
	rows, starts := sh.rows, sh.starts
	cand0 := p.cand[p.steps[0].occ]
	lo, hi := chunk(len(cand0), part, parts)
	m := len(p.steps)
	ev := p.newEval()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == m {
			return visit(ev.assign)
		}
		st := &p.steps[k]
		for _, ri := range ev.candidatesAt(k) {
			ev.assign[st.occ] = ri
			if !ev.predsHold(k) {
				continue
			}
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	for r := starts[lo]; r < starts[hi]; r++ {
		for k := 0; k < sp; k++ {
			ev.assign[p.steps[k].occ] = int(rows[r*sp+k])
		}
		if !rec(sp) {
			return
		}
	}
}
