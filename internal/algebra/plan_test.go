package algebra

import (
	"sort"
	"sync"
	"testing"
)

// joinTermFixture returns the single term of R ⋈ S on a, with its bound
// instances.
func joinTermFixture(t *testing.T) (*Term, Instances) {
	t.Helper()
	cat, r, s, _ := fixtures()
	j, err := Join(r, s, []On{{Left: "a", Right: "a"}}, nil, "S")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Normalize(j)
	if err != nil {
		t.Fatal(err)
	}
	term := &p.Terms[0]
	inst, err := BindInstances(term, cat)
	if err != nil {
		t.Fatal(err)
	}
	return term, inst
}

func TestPreparedCountMatchesTerm(t *testing.T) {
	term, inst := joinTermFixture(t)
	want, err := term.CountAssignments(inst)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.Count(); got != want {
		t.Errorf("Prepared.Count() = %v, CountAssignments = %v", got, want)
	}
	// Counting twice from the same plan must not disturb it.
	if got := pt.Count(); got != want {
		t.Errorf("second Count() = %v, want %v", got, want)
	}
	if pt.Term() != term {
		t.Error("Term() does not round-trip")
	}
}

// TestCountPartsPartitionExactly checks that for every parts choice, the
// per-part counts add up to the full count and the per-part enumerations
// visit each assignment exactly once.
func TestCountPartsPartitionExactly(t *testing.T) {
	term, inst := joinTermFixture(t)
	pt, err := Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := pt.Count()
	var full [][]int
	pt.Enumerate(func(rows []int) bool {
		full = append(full, append([]int(nil), rows...))
		return true
	})
	if len(full) != int(want) {
		t.Fatalf("enumerated %d assignments, count says %v", len(full), want)
	}
	for _, parts := range []int{1, 2, 3, 7} {
		sum := 0.0
		var seen [][]int
		for p := 0; p < parts; p++ {
			sum += pt.CountPart(p, parts)
			pt.EnumeratePart(p, parts, func(rows []int) bool {
				seen = append(seen, append([]int(nil), rows...))
				return true
			})
		}
		if sum != want {
			t.Errorf("parts=%d: Σ CountPart = %v, want %v", parts, sum, want)
		}
		if len(seen) != len(full) {
			t.Fatalf("parts=%d: enumerated %d assignments, want %d", parts, len(seen), len(full))
		}
		sortAssignments(seen)
		sorted := append([][]int(nil), full...)
		sortAssignments(sorted)
		for i := range sorted {
			for j := range sorted[i] {
				if seen[i][j] != sorted[i][j] {
					t.Fatalf("parts=%d: assignment sets differ at %d: %v vs %v", parts, i, seen[i], sorted[i])
				}
			}
		}
	}
}

func sortAssignments(a [][]int) {
	sort.Slice(a, func(i, j int) bool {
		for k := range a[i] {
			if a[i][k] != a[j][k] {
				return a[i][k] < a[j][k]
			}
		}
		return false
	})
}

func TestPreparedFoldedTail(t *testing.T) {
	cat, r, s, _ := fixtures()
	// Pure product: the unconstrained tail is folded into a multiplier.
	p, err := Normalize(Must(Product(r, s, "S")))
	if err != nil {
		t.Fatal(err)
	}
	term := &p.Terms[0]
	inst, err := BindInstances(term, cat)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.FoldedTail() {
		t.Error("product term should fold its tail")
	}
	if got := pt.Count(); got != 12 {
		t.Errorf("folded count %v, want 12", got)
	}
	// A join term enumerates every occurrence.
	jt, jinst := joinTermFixture(t)
	jpt, err := Prepare(jt, jinst)
	if err != nil {
		t.Fatal(err)
	}
	if jpt.FoldedTail() {
		t.Error("join term should not fold")
	}
}

func TestPlanCacheReusesAndInvalidates(t *testing.T) {
	term, inst := joinTermFixture(t)
	c := NewPlanCache()
	pt1, err := c.Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := c.Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	if pt1 != pt2 {
		t.Error("same (term, instances) should hit the cache")
	}
	if c.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", c.Len())
	}
	// A different instance identity (same contents) is a different plan.
	inst2 := append(Instances(nil), inst...)
	inst2[0] = inst[0].Clone(inst[0].Name())
	pt3, err := c.Prepare(term, inst2)
	if err != nil {
		t.Fatal(err)
	}
	if pt3 == pt1 {
		t.Error("cloned instance must not share the cached plan")
	}
	if c.Len() != 2 {
		t.Errorf("cache Len = %d, want 2", c.Len())
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Errorf("cache Len after Invalidate = %d, want 0", c.Len())
	}
	pt4, err := c.Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	if pt4 == pt1 {
		t.Error("Invalidate should force a fresh plan")
	}
}

// TestPreparedTermConcurrentUse hammers one shared plan from many
// goroutines; run under -race this verifies plans are read-only after
// compilation and all mutable state is per-evaluation.
func TestPreparedTermConcurrentUse(t *testing.T) {
	term, inst := joinTermFixture(t)
	pt, err := Prepare(term, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := pt.Count()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := pt.Count(); got != want {
					errs <- "Count mismatch"
					return
				}
				n := 0
				pt.Enumerate(func([]int) bool { n++; return true })
				if n != int(want) {
					errs <- "Enumerate mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
