package lint

import (
	"go/ast"
	"strings"
)

// RawGo flags `go` statements everywhere except the internal/parallel
// package. The estimation engine's determinism contract (bit-identical
// estimates for every -workers setting) holds because all fan-out runs
// through parallel.For/ForErr, whose callers write results into
// index-addressed slots and reduce them in index order. Ad-hoc goroutines
// bypass that contract.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "concurrency must flow through the internal/parallel worker pool",
	Run:  runRawGo,
}

// goAllowedPkg is the package suffix allowed to spawn goroutines.
const goAllowedPkg = "internal/parallel"

func runRawGo(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, goAllowedPkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "go statement outside %s; use parallel.For/ForErr so results reduce in index order and estimates stay bit-identical across worker counts", goAllowedPkg)
			}
			return true
		})
	}
}
