package lint

import (
	"go/ast"
	"strings"
)

// RawGo flags `go` statements everywhere except an explicit allowlist of
// packages. The estimation engine's determinism contract (bit-identical
// estimates for every -workers setting) holds because all estimation
// fan-out runs through parallel.For/ForErr, whose callers write results
// into index-addressed slots and reduce them in index order. Ad-hoc
// goroutines bypass that contract.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "concurrency must flow through the internal/parallel worker pool",
	Run:  runRawGo,
}

// goAllowedPkgs are the package suffixes allowed to spawn goroutines.
//
//   - internal/parallel: the deterministic worker pool every estimate
//     reduction runs through.
//   - internal/server: request-level concurrency (accept loop, bounded
//     worker pool, per-request timeouts). Each request still computes its
//     estimate through the parallel pool, so serving concurrency never
//     touches the reduction order; keeping all goroutine spawning inside
//     this package is what lets cmd/relestd and the examples stay free of
//     raw `go` statements.
//   - internal/workload: the load-harness driver's client goroutines
//     (Fanout), which only issue HTTP requests against a live relestd and
//     write disjoint per-trial result slots. They never touch estimate
//     reductions — those run on the server, through the parallel pool —
//     and the static round-robin job assignment keeps collected results
//     independent of goroutine completion order.
//   - internal/cluster: the coordinator's accept loop plus its
//     scatter-gather fanouts (via workload.Fanout), which write disjoint
//     per-shard outcome slots. Estimation itself happens on the shard
//     nodes through internal/parallel; the coordinator only merges
//     already-computed partials, in shard-index order, so cluster
//     estimates stay bit-identical across fanout scheduling.
var goAllowedPkgs = []string{"internal/parallel", "internal/server", "internal/workload", "internal/cluster"}

func runRawGo(p *Pass) {
	for _, allowed := range goAllowedPkgs {
		if strings.HasSuffix(p.Pkg.Path, allowed) {
			return
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "go statement outside %s; use parallel.For/ForErr so results reduce in index order and estimates stay bit-identical across worker counts", strings.Join(goAllowedPkgs, ", "))
			}
			return true
		})
	}
}
