package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between float-typed operands. Exact float
// equality is brittle in an estimator codebase: two mathematically equal
// quantities compare unequal after any change in accumulation order, and
// "equal" branches silently change behaviour. Comparisons should go
// through an epsilon helper or be restructured (<, >, three-way compare).
// The x != x NaN idiom is recognized and allowed; deliberate exact
// comparisons (sentinels, exact-zero checks proven safe) are suppressed
// with //lint:ignore floateq <reason>.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact float equality is order-sensitive; use epsilon comparisons",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			// x != x (or x == x) is the standard NaN check: exact by design.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			p.Reportf(be.Pos(), "%s compares floats exactly; use an epsilon comparison or restructure the branch (suppress with //lint:ignore floateq <reason> if exactness is deliberate)", types.ExprString(be))
			return true
		})
	}
}
