// Package lint is relest's in-tree static-analysis framework. It loads and
// type-checks every package in the module using only the standard library
// (go/parser + go/types + go/importer "source" — the module has zero
// external dependencies and must stay that way) and runs a set of
// repo-specific analyzers that machine-check the invariants the estimation
// engine depends on:
//
//   - estimates must be bit-reproducible across runs and worker counts, so
//     float accumulation must never depend on randomized map iteration
//     order (maprange-float) and all concurrency must flow through the
//     index-ordered reductions of internal/parallel (rawgo);
//   - experiments must be replayable, so all randomness must derive from
//     the explicitly seeded generators in internal/sampling (rawrand);
//   - float comparisons must be deliberate (floateq) and errors must not
//     be silently discarded (errdrop).
//
// Findings are suppressed site-by-site with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a directive without one does not suppress anything
// and is itself reported (rule "bad-ignore").
//
// Test files (*_test.go) are not loaded: tests construct seeded generators
// freely and report failures through *testing.T, so the production-code
// rules do not apply to them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named rule: either a per-package syntactic check (Run)
// or a module-wide interprocedural one (RunModule), which sees every
// loaded package at once and shares the call-graph/taint artifacts built
// for the run.
type Analyzer struct {
	// Name is the rule name used in output ("[name]") and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded package set at once.
	RunModule func(pass *ModulePass)
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapRangeFloat, MapRangeRand, RawRand, RawGo, FloatEq, ErrDrop, TupleCopy, Materialize,
		DetFlow, ViewEscape, CtxFlow, WorkerPurity, Deprecated,
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	report   func(Finding)
}

// Reportf records a finding at pos under the pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:  p.Fset.Position(pos),
		Rule: p.analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e in the pass's package, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// ModulePass carries a module analyzer's view of the whole loaded package
// set, plus lazily-built shared artifacts (call graph, taint summaries)
// every module analyzer in the run reuses.
type ModulePass struct {
	Fset *token.FileSet
	Pkgs []*Package

	analyzer *Analyzer
	report   func(Finding)
	art      *artifacts
}

// artifacts holds the per-Run interprocedural state shared across module
// analyzers.
type artifacts struct {
	graph *CallGraph
	taint *TaintEngine
}

// Graph returns the call graph over the pass's packages, building it on
// first use.
func (m *ModulePass) Graph() *CallGraph {
	if m.art.graph == nil {
		m.art.graph = BuildCallGraph(m.Pkgs)
	}
	return m.art.graph
}

// Taint returns the taint engine (summaries at fixpoint) over the pass's
// call graph, building it on first use.
func (m *ModulePass) Taint() *TaintEngine {
	if m.art.taint == nil {
		m.art.taint = NewTaintEngine(m.Graph())
	}
	return m.art.taint
}

// Reportf records a finding at pos under the pass's rule.
func (m *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	m.report(Finding{
		Pos:  m.Fset.Position(pos),
		Rule: m.analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String formats the finding as "file:line:col: [rule] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rules  []string // rule names this directive suppresses
	reason string   // mandatory free-text justification
	line   int      // line the comment sits on
	file   string   // file the comment sits in (set by Run)
	used   bool     // suppressed at least one finding this run
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from a file.
// Malformed directives (no rule, or no reason) are returned as findings so
// they cannot silently suppress anything.
func parseIgnores(fset *token.FileSet, file *ast.File) ([]ignoreDirective, []Finding) {
	var dirs []ignoreDirective
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignorefoo — not ours
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Pos:  pos,
					Rule: "bad-ignore",
					Msg:  "//lint:ignore needs a rule name and a reason: //lint:ignore <rule>[,<rule>] <reason>",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				rules:  strings.Split(fields[0], ","),
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
			})
		}
	}
	return dirs, bad
}

// suppresses reports whether d covers rule at the given line: the
// directive applies to its own line (trailing comment) and to the line
// directly below it (comment-above style).
func (d ignoreDirective) suppresses(rule string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages and returns unsuppressed
// findings sorted by file, line, column, rule. Malformed //lint:ignore
// directives are reported as "bad-ignore" findings; directives that
// suppressed nothing, even though every rule they name ran, are reported
// as "stale-ignore" findings so dead suppressions cannot accumulate.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	// Parse every file's directives up front: module analyzers report
	// across package boundaries, so suppression needs a global index.
	ignoresByFile := map[string][]*ignoreDirective{}
	var allDirs []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			dirs, bad := parseIgnores(pkg.Fset, f)
			findings = append(findings, bad...)
			for i := range dirs {
				d := &dirs[i]
				d.file = name
				ignoresByFile[name] = append(ignoresByFile[name], d)
				allDirs = append(allDirs, d)
			}
		}
	}
	report := func(f Finding) {
		for _, d := range ignoresByFile[f.Pos.Filename] {
			if d.suppresses(f.Rule, f.Pos.Line) {
				d.used = true
				return
			}
		}
		findings = append(findings, f)
	}
	art := &artifacts{}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: a, report: report})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		a.RunModule(&ModulePass{
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			analyzer: a,
			report:   report,
			art:      art,
		})
	}
	// Stale-ignore audit: a directive is dead when every rule it names ran
	// in this invocation and it still suppressed nothing. Directives naming
	// a rule outside the run (e.g. under -rules) are left alone — they may
	// be live for the full set.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, d := range allDirs {
		if d.used {
			continue
		}
		checkable := true
		for _, r := range d.rules {
			if !ran[r] {
				checkable = false
				break
			}
		}
		if checkable {
			findings = append(findings, Finding{
				Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
				Rule: "stale-ignore",
				Msg: fmt.Sprintf("//lint:ignore %s suppresses nothing on this line or the one below; delete the directive (or fix the rule name)",
					strings.Join(d.rules, ",")),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}

// Relativize rewrites finding filenames relative to root (best-effort; the
// absolute path is kept when root does not contain the file).
func Relativize(findings []Finding, root string) {
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}

// --- shared type helpers ---

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// carriesFloat reports whether t is float-typed or is a struct with at
// least one float-typed field (e.g. an Estimate or GroupEstimate record).
func carriesFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	if isFloat(t) {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if isFloat(s.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isInteger reports whether t's underlying type is an integer basic type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isErrorType reports whether t is the built-in error interface type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the called function object of a call expression, or
// nil for calls through function-typed values and built-ins.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
