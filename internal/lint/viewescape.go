package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ViewEscape statically guards the storage engine's copy-on-write
// invariant. relation.Row values and the *Relation views minted by
// Subset/Clone are zero-copy: they read the base relation's column vectors
// in place, snapshot-clamped at creation time. That is exactly what makes
// sampling cheap — and exactly what makes a retained view dangerous: a
// view outliving the statement that made it can silently diverge from (or
// race with) its base. Outside internal/relation the rule flags:
//
//   - a Row or freshly-minted Subset/Clone view stored into a struct
//     field (composite literal or field assignment): the field pins the
//     base's columns and, after a base Sort or incremental rebuild, reads
//     remapped rows;
//   - a Row or view captured by a goroutine closure (`go` statements and
//     worker closures handed to internal/parallel): the closure reads the
//     view concurrently with whatever the spawner does next;
//   - an append-family call (Append, MustAppend, AppendRow, AppendFrom,
//     AppendJoined, Grow) on a base that already has a live view in the
//     same function: the capacity-clamped view cannot see the appended
//     rows, so downstream code silently computes on a stale prefix;
//   - a Row returned by an exported function: public APIs hand out
//     owned data (Materialize / Compact), not aliases into column storage.
//
// Deliberate retention (the synopsis sample views are the design) carries
// //lint:ignore viewescape with the justification.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc:  "zero-copy Row/Subset views must not outlive their statement: no struct fields, goroutine captures, appends past a live view, or exported Row returns",
	Run:  runViewEscape,
}

// viewMethods are the *Relation methods that mint zero-copy views.
var viewMethods = map[string]bool{"Subset": true, "Clone": true}

// appendMethods are the *Relation methods that grow the base in place.
var appendMethods = map[string]bool{
	"Append": true, "MustAppend": true, "AppendRow": true,
	"AppendFrom": true, "AppendJoined": true, "Grow": true,
}

func runViewEscape(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, relationPkgSuffix) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkViewEscapes(p, fd)
		}
	}
}

// viewLocal records one view-typed local: where it was created and which
// object it is a view of.
type viewLocal struct {
	pos  token.Pos
	base types.Object // base relation object, nil when unknown
	expr string       // rendered creation expression for messages
	uses []token.Pos  // every later read of the view object
}

// checkViewEscapes runs all four checks over one function body.
func checkViewEscapes(p *Pass, fd *ast.FuncDecl) {
	views := map[types.Object]*viewLocal{} // view-provenance locals
	// Pass 1: collect view locals (x := base.Subset(...) / Clone) and every
	// use position, including Row-typed objects (params and locals).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isViewCall(p, call) {
					continue
				}
				id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := p.ObjectOf(id); obj != nil {
					views[obj] = &viewLocal{
						pos:  call.Pos(),
						base: viewCallBase(p, call),
						expr: types.ExprString(rhs),
					}
				}
			}
		case *ast.Ident:
			if obj := p.ObjectOf(x); obj != nil {
				if v, ok := views[obj]; ok && x.Pos() > v.pos {
					v.uses = append(v.uses, x.Pos())
				}
			}
		}
		return true
	})

	isView := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && isViewCall(p, call) {
			return types.ExprString(e), true
		}
		if isRowType(p.TypeOf(e)) {
			return types.ExprString(e), true
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.ObjectOf(id); obj != nil {
				if v, ok := views[obj]; ok {
					return v.expr, true
				}
			}
		}
		return "", false
	}

	// Pass 2: the escape checks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if _, ok := p.TypeOf(x).Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if src, ok := isView(val); ok {
					p.Reportf(val.Pos(), "zero-copy view %s stored in a struct field outlives its base's snapshot; Compact it or re-derive the view at use (suppress with //lint:ignore viewescape <why retention is safe>)", src)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
					continue
				}
				if !isFieldWrite(p, lhs) {
					continue
				}
				if src, ok := isView(x.Rhs[i]); ok {
					p.Reportf(x.Rhs[i].Pos(), "zero-copy view %s stored in struct field %s outlives its base's snapshot; Compact it or re-derive the view at use (suppress with //lint:ignore viewescape <why retention is safe>)", src, types.ExprString(lhs))
				}
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				reportViewCaptures(p, lit, views, "goroutine closure")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(p, x); fn != nil && fn.Pkg() != nil &&
				strings.HasSuffix(fn.Pkg().Path(), "internal/parallel") && len(x.Args) > 0 {
				if lit, ok := ast.Unparen(x.Args[len(x.Args)-1]).(*ast.FuncLit); ok {
					reportViewCaptures(p, lit, views, "parallel worker closure")
				}
			}
			// Append past a live view of the same base.
			if fn := calleeFunc(p, x); fn != nil && fn.Pkg() != nil &&
				strings.HasSuffix(fn.Pkg().Path(), relationPkgSuffix) && appendMethods[fn.Name()] {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if baseID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						base := p.ObjectOf(baseID)
						for _, v := range views {
							if v.base != nil && v.base == base && v.pos < x.Pos() && usedAfter(v, x.Pos()) {
								p.Reportf(x.Pos(), "%s on %s happens after the zero-copy view %s was taken and the view is read again later; the capacity-clamped view cannot see appended rows — append first, or Compact the view", fn.Name(), baseID.Name, v.expr)
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if !fd.Name.IsExported() {
				return true
			}
			for _, res := range x.Results {
				if isRowType(p.TypeOf(res)) {
					p.Reportf(res.Pos(), "exported %s returns a relation.Row view aliasing column storage; return row.Materialize() (owned) instead", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// usedAfter reports whether the view is read at any position after pos.
func usedAfter(v *viewLocal, pos token.Pos) bool {
	for _, u := range v.uses {
		if u > pos {
			return true
		}
	}
	return false
}

// reportViewCaptures flags view-typed free variables referenced inside a
// concurrently-executed closure.
func reportViewCaptures(p *Pass, lit *ast.FuncLit, views map[types.Object]*viewLocal, what string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.ObjectOf(id)
		if obj == nil || reported[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the closure (params included)
		}
		_, isViewLocal := views[obj]
		if isViewLocal || isRowType(obj.Type()) {
			reported[obj] = true
			p.Reportf(id.Pos(), "zero-copy view %s captured by a %s; the closure reads column storage concurrently with the spawner — pass an owned copy (Materialize/Compact) instead", id.Name, what)
		}
		return true
	})
}

// isRowType reports whether t is relation.Row.
func isRowType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Row" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), relationPkgSuffix)
}

// isViewCall reports whether call mints a zero-copy view (Relation.Subset
// or Relation.Clone).
func isViewCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), relationPkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return viewMethods[fn.Name()]
}

// viewCallBase resolves the receiver object of a view-minting call
// (base.Subset(...) → base), or nil for chained receivers.
func viewCallBase(p *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.ObjectOf(id)
}

// isFieldWrite reports whether lhs selects a struct field (as opposed to a
// package-level name qualified by a package ident).
func isFieldWrite(p *Pass, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Pkg.Info.Selections[sel]; ok {
		return s.Kind() == types.FieldVal
	}
	return false
}
