package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeRand flags `for range` over a map whose body consumes a stateful
// random stream (*rand.Rand, rand.Source, rand.Zipf). Map iteration order
// is randomized, so draws taken inside such a loop land on different keys
// each run and every downstream estimate inherits that wobble — the same
// order-dependence bug class as maprange-float, but through the RNG
// rather than float addition. Iterate keys in sorted order, or give each
// key its own substream (sampling.Source.Rand(i) is per-index state and
// safe in any order).
var MapRangeRand = &Analyzer{
	Name: "maprange-rand",
	Doc:  "consuming a shared random stream inside randomized map iteration makes draws order-dependent",
	Run:  runMapRangeRand,
}

func runMapRangeRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if use := randStreamUse(p, rs.Body); use != "" {
				p.Reportf(rs.Pos(), "map iteration order is randomized but the loop body consumes the random stream %s; iterate keys in sorted order or use a per-key substream (or suppress with //lint:ignore maprange-rand <why order-insensitive>)", use)
			}
			return true
		})
	}
}

// randStreamUse returns the expression text of the first use of a stateful
// math/rand stream inside body, or "" when there is none. Idents and field
// selectors are enough: any draw, and any hand-off of the stream into a
// callee, names the stream through one of those forms.
func randStreamUse(p *Pass, body *ast.BlockStmt) string {
	use := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if use != "" {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if isRandStream(p.TypeOf(n.(ast.Expr))) {
			use = types.ExprString(n.(ast.Expr))
			return false
		}
		return true
	})
	return use
}

// isRandStream reports whether t is (a pointer to) a stateful stream type
// from math/rand or math/rand/v2.
func isRandStream(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64", "Zipf", "ChaCha8", "PCG":
		return true
	}
	return false
}
