package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: a call
// used as a statement (plain, deferred, or go'd) where the function's
// last result is an error. In an estimator library a swallowed error
// usually means an estimate built from a partially-loaded or
// partially-written dataset. Explicit discards (`_ = f()`) remain legal —
// they are visible in review — and the fmt print family plus the
// never-failing strings.Builder/bytes.Buffer writers are exempt.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error returns must be handled or explicitly discarded",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || !returnsError(p, call) || errExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "result of %s contains an error that is dropped; handle it or discard explicitly with _ =", calleeLabel(p, call))
			return true
		})
	}
}

// returnsError reports whether the call's last result is an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		return tup.Len() > 0 && isErrorType(tup.At(tup.Len()-1).Type())
	}
	return isErrorType(t)
}

// errExempt reports whether the callee is on the always-allowed list:
// fmt's print family and the error-for-interface-only writers of
// strings.Builder and bytes.Buffer.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	case "strings", "bytes":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			name := recvTypeName(recv.Type())
			if name == "Builder" || name == "Buffer" {
				return strings.HasPrefix(fn.Name(), "Write")
			}
		}
	}
	return false
}

// recvTypeName returns the named type a method receiver points at.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// calleeLabel renders the callee for a finding message.
func calleeLabel(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return "(" + recv.Type().String() + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return types.ExprString(call.Fun)
}
