package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// RawRand keeps all randomness flowing through the seeded substream
// derivation in internal/sampling/rng.go so every experiment is
// replayable from one root seed. It flags, anywhere else in the tree:
//
//   - calls to math/rand package-level draw functions (rand.Intn,
//     rand.Float64, rand.Perm, rand.Seed, ...), which use the shared
//     process-global source and make results depend on call interleaving;
//   - calls to rand.New / rand.NewSource, which mint generators outside
//     the Source substream discipline (time-based seeding included).
//
// Code that needs randomness takes a *rand.Rand parameter or derives one
// via sampling.Source.Rand / sampling.Seeded.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc:  "randomness must derive from the seeded generators in internal/sampling",
	Run:  runRawRand,
}

// rngFile is the one file allowed to construct math/rand generators.
const rngFile = "internal/sampling/rng.go"

func runRawRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on *rand.Rand etc. are how callers should draw
			}
			switch fn.Name() {
			case "New", "NewSource", "NewChaCha8", "NewPCG":
				file := filepath.ToSlash(p.Fset.Position(call.Pos()).Filename)
				if !strings.HasSuffix(file, rngFile) {
					p.Reportf(call.Pos(), "constructs a math/rand generator outside %s; derive a substream via sampling.Source.Rand or sampling.Seeded so experiments replay from one root seed", rngFile)
				}
			case "NewZipf":
				// takes an already-seeded *rand.Rand; fine anywhere
			default:
				p.Reportf(call.Pos(), "calls math/rand global %s, which draws from the shared process-global source; take a *rand.Rand from sampling.Source instead", fn.Name())
			}
			return true
		})
	}
}
