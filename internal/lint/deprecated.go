package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Deprecated keeps the repo off its own legacy surface: once an entry
// point's doc comment carries a "Deprecated:" paragraph (the standard Go
// convention), no in-repo production code may call it. The facade's own
// thin wrappers are the sanctioned exceptions — the deprecated free
// functions in relest.go forward to the Estimator handle and to each
// other, so calls made from relest.go or from inside a function that is
// itself deprecated are exempt. Everything else must use the replacement
// the doc comment names; without this rule, migrated call sites quietly
// regress back to the legacy spellings and the deprecation can never be
// retired.
var Deprecated = &Analyzer{
	Name:      "deprecated",
	Doc:       "in-repo code must not call deprecated entry points outside relest.go and deprecated wrappers",
	RunModule: runDeprecated,
}

func runDeprecated(mp *ModulePass) {
	// Pass 1: every in-module function or method whose doc comment has a
	// "Deprecated:" paragraph, keyed by the defining identifier's position
	// (positions are stable across packages under the shared FileSet,
	// which is how a use in one package matches a def in another).
	deprecated := map[token.Pos]string{}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDeprecatedDoc(fd.Doc) {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					deprecated[obj.Pos()] = obj.Name()
				}
			}
		}
	}
	if len(deprecated) == 0 {
		return
	}
	// Pass 2: flag calls that resolve to the deprecated set, skipping the
	// facade file and the bodies of deprecated functions (wrapper chains).
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			if filepath.Base(mp.Fset.Position(f.Pos()).Filename) == "relest.go" {
				continue
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && hasDeprecatedDoc(fd.Doc) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var id *ast.Ident
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						id = fun
					case *ast.SelectorExpr:
						id = fun.Sel
					default:
						return true
					}
					fn, _ := pkg.Info.Uses[id].(*types.Func)
					if fn == nil {
						return true
					}
					if name, ok := deprecated[fn.Pos()]; ok {
						mp.Reportf(call.Pos(), "call to deprecated %s; use the replacement named in its doc comment", name)
					}
					return true
				})
			}
		}
	}
}

// hasDeprecatedDoc reports whether a doc comment carries a "Deprecated:"
// paragraph per the standard Go convention.
func hasDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}
