package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadEngineFixture loads one package from testdata/engine (fixtures for
// the callgraph/taint machinery itself, which have no want.txt and are
// not golden-rule packages).
func loadEngineFixture(t *testing.T, name string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir("engine/"+name, filepath.Join("testdata", "engine", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// edgeStrings renders a graph's call edges as "caller -> callee [kind]"
// lines, sorted, with containment edges included (they carry closure
// reachability).
func edgeStrings(g *CallGraph) []string {
	kind := map[EdgeKind]string{
		EdgeStatic:   "static",
		EdgeCHA:      "cha",
		EdgeLit:      "lit",
		EdgeContains: "contains",
		EdgeDynamic:  "dynamic",
	}
	var out []string
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			callee := "?"
			if e.Callee != nil {
				callee = e.Callee.Name()
			}
			out = append(out, fmt.Sprintf("%s -> %s [%s]", n.Name(), callee, kind[e.Kind]))
		}
	}
	sort.Strings(out)
	return out
}

// TestCallGraphEdges pins the resolver on the hand-computed fixture: every
// edge kind appears, and the resolved set matches exactly — a missing CHA
// edge means the interprocedural rules silently stop seeing code.
func TestCallGraphEdges(t *testing.T) {
	pkgs := loadEngineFixture(t, "callgraph")
	g := BuildCallGraph(pkgs)
	want := []string{
		"callgraph.Immediate -> callgraph.Immediate$lit1 [contains]",
		"callgraph.Immediate -> callgraph.Immediate$lit1 [lit]",
		"callgraph.Immediate$lit1 -> callgraph.Helper [static]",
		"callgraph.Top -> ? [dynamic]",
		"callgraph.Top -> callgraph.Top$lit1 [contains]",
		"callgraph.Top -> callgraph.Total [static]",
		"callgraph.Top$lit1 -> callgraph.Helper [static]",
		"callgraph.Total -> callgraph.(Circle).Area [cha]",
		"callgraph.Total -> callgraph.(Square).Area [cha]",
	}
	got := edgeStrings(g)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("edge set mismatch\n got:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestCallGraphReachable checks closure-inclusive reachability: from Top
// the whole fixture except Immediate's subgraph is live.
func TestCallGraphReachable(t *testing.T) {
	pkgs := loadEngineFixture(t, "callgraph")
	g := BuildCallGraph(pkgs)
	var top *CGNode
	for _, n := range g.Nodes {
		if n.Name() == "callgraph.Top" {
			top = n
		}
	}
	if top == nil {
		t.Fatal("fixture node callgraph.Top not found")
	}
	reach := g.Reachable([]*CGNode{top})
	var got []string
	for n := range reach {
		got = append(got, n.Name())
	}
	sort.Strings(got)
	want := []string{
		"callgraph.(Circle).Area",
		"callgraph.(Square).Area",
		"callgraph.Helper",
		"callgraph.Top",
		"callgraph.Top$lit1",
		"callgraph.Total",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("reachable set mismatch\n got:  %v\nwant: %v", got, want)
	}
}
