package lint

import (
	"fmt"
	"go/token"
)

// DetFlow is the interprocedural generalization of maprange-float: a
// forward taint analysis (see taint.go) that follows values derived from
// map iteration order, the wall clock, the process-global rand source, and
// pointer identity through assignments and across call boundaries, and
// reports when one reaches a determinism-critical sink:
//
//   - a float accumulation (`s += v`, `s = s + v`), whether the
//     accumulation sits next to the source or three helpers away — the
//     call-site report fires where the nondeterministic argument enters
//     the accumulating callee;
//   - the return value of an exported float-carrying function (an
//     estimate leaving the package must be bit-reproducible);
//   - an obs metric or span name (a nondeterministic name mints an
//     unbounded, run-dependent set of series).
//
// Sorting is the sanitizer: sort.X(s) / slices.Sort(s) launder map-order
// taint, which is exactly the sorted-map-merge idiom the per-package
// maprange rules steer code toward. Control dependence is out of scope by
// design (the deadline estimator's wall-clock round budget is documented
// behavior, not a bug).
var DetFlow = &Analyzer{
	Name:      "detflow",
	Doc:       "nondeterministic values must not flow into float accumulations, estimate returns, or metric names",
	RunModule: runDetFlow,
}

func runDetFlow(mp *ModulePass) {
	graph := mp.Graph()
	eng := mp.Taint()
	// The same sink can be hit on several taint paths (and the reporting
	// pass may evaluate an expression twice); report each (pos, message)
	// once.
	seen := map[string]bool{}
	emit := func(pos token.Pos, format string, args ...any) {
		key := fmt.Sprintf("%v:%s", mp.Fset.Position(pos), fmt.Sprintf(format, args...))
		if seen[key] {
			return
		}
		seen[key] = true
		mp.Reportf(pos, format, args...)
	}
	for _, n := range graph.Nodes {
		if n.Fn == nil {
			continue
		}
		eng.Report(n, &taintHooks{
			accSink: func(pos token.Pos, kinds SrcKind, via string) {
				emit(pos, "value derived from %s reaches the float accumulation %s; the result differs between runs (sort first, or suppress with //lint:ignore detflow <why deterministic>)", kinds, via)
			},
			labelSink: func(pos token.Pos, kinds SrcKind, via string) {
				emit(pos, "metric name passed to %s derives from %s; nondeterministic names mint run-dependent series", via, kinds)
			},
			exportedReturn: func(pos token.Pos, kinds SrcKind, fn string) {
				emit(pos, "exported %s returns a float derived from %s; estimates must be bit-reproducible across runs", fn, kinds)
			},
		})
	}
}
