package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow protects the cancellation contract: a caller that hands an
// entry point its context.Context must stay able to cancel everything the
// call does (the relestd request path aborts estimates between sampling
// rounds on client disconnect; substituting a fresh context anywhere on
// that path silently breaks it). The rule reports:
//
//   - a call passing context.Background() or context.TODO() inside any
//     function that already holds a caller's context — a ctx parameter or
//     an *http.Request (whose Context() carries the client's) — the
//     substitution detaches the callee from the caller's lifetime;
//   - an exported function or method that takes a context.Context but
//     never references it, while its call-graph-reachable callees include
//     context-aware module functions: the signature promises cancellation
//     that the body cannot deliver.
//
// Functions WITHOUT a ctx parameter are free to mint Background — that is
// how deprecated non-context wrappers and main() entry points are supposed
// to work. Interface-compat parameters that are deliberately unused carry
// //lint:ignore ctxflow with the justification.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "entry points holding a caller's context must thread it: no Background substitution, no dropped ctx parameters",
	RunModule: runCtxFlow,
}

func runCtxFlow(mp *ModulePass) {
	graph := mp.Graph()
	for _, n := range graph.Nodes {
		if n.Fn == nil {
			continue
		}
		pkg := n.Pkg
		ctxParam := contextParam(n.Type())
		holdsCaller := ctxParam != nil || hasRequestParam(n.Type())
		if holdsCaller {
			// Background/TODO substitution anywhere in the body, nested
			// literals included (they share the enclosing ctx).
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := contextMint(pkg, call); ok {
					mp.Reportf(call.Pos(), "context.%s() inside %s, which already holds the caller's context; thread the caller's ctx so cancellation reaches this call", name, n.Name())
				}
				return true
			})
		}
		// Dropped ctx: exported, has a ctx param, never reads it, yet
		// reaches context-aware module code it could have forwarded to.
		if ctxParam == nil || !n.Fn.Exported() {
			continue
		}
		if usesObject(pkg, n.Decl.Body, ctxParam) {
			continue
		}
		if fwd := reachableCtxAware(graph, n); fwd != "" {
			mp.Reportf(n.Decl.Pos(), "exported %s accepts a context.Context but never uses it, while reaching the context-aware %s; thread the ctx through (or drop the parameter) so callers can cancel", n.Name(), fwd)
		}
	}
}

// contextParam returns the first parameter (receiver excluded) of type
// context.Context, or nil.
func contextParam(sig *types.Signature) *types.Var {
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasRequestParam reports whether the signature takes a *http.Request
// (an HTTP handler shape: the caller's context rides on the request).
func hasRequestParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		ptr, ok := sig.Params().At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

// contextMint reports whether call is context.Background() or
// context.TODO().
func contextMint(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// usesObject reports whether body references obj.
func usesObject(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// reachableCtxAware returns the name of the first (in graph order)
// context-taking module function reachable from n — its forwarding
// opportunity — or "". Graph order keeps the finding text stable.
func reachableCtxAware(graph *CallGraph, n *CGNode) string {
	reach := graph.Reachable([]*CGNode{n})
	for _, m := range graph.Nodes {
		if m == n || m.Fn == nil || !reach[m] {
			continue
		}
		if contextParam(m.Type()) != nil {
			return m.Name()
		}
	}
	return ""
}
