package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked (non-test) package.
type Package struct {
	// Path is the package's import path ("relest/internal/estimator").
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset is the file set all positions resolve through.
	Fset *token.FileSet
	// Files are the package's non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
}

// Loader parses and type-checks the module's packages from source. Module
// internal imports resolve by mapping the import path under the module
// root; standard-library imports resolve through go/importer's "source"
// importer, so no compiled export data (and no external tooling) is
// needed.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// NewLoader creates a loader for the module containing dir: it walks up
// from dir to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModuleRoot returns the absolute path of the module root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer: module-internal paths load (and
// type-check) from source under the module root, everything else falls
// through to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its source directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// loadPath loads the importable (non-main) package at a module-internal
// import path, memoized.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkgs, err := l.LoadDir(path, l.dirFor(path))
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		if pkg.Types.Name() != "main" {
			return pkg, nil
		}
	}
	return nil, fmt.Errorf("lint: no importable package at %s", path)
}

// LoadDir parses and type-checks every non-test package rooted at dir
// (non-recursive), registering importable ones under importPath. It is
// exported so tests can load fixture packages from testdata, which the
// module walk skips.
func (l *Loader) LoadDir(importPath, dir string) ([]*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		// Already type-checked via import recursion; re-checking would mint
		// a second *types.Package and break type identity for later importers.
		return []*Package{pkg}, nil
	}
	astPkgs, err := parser.ParseDir(l.fset, dir, func(fi os.FileInfo) bool {
		return strings.HasSuffix(fi.Name(), ".go") && !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: parse %s: %w", dir, err)
	}
	names := make([]string, 0, len(astPkgs))
	for name := range astPkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Package
	for _, name := range names {
		apkg := astPkgs[name]
		fileNames := make([]string, 0, len(apkg.Files))
		for fn := range apkg.Files {
			fileNames = append(fileNames, fn)
		}
		sort.Strings(fileNames)
		files := make([]*ast.File, 0, len(fileNames))
		for _, fn := range fileNames {
			files = append(files, apkg.Files[fn])
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(importPath, l.fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
		}
		pkg := &Package{
			Path:  importPath,
			Dir:   dir,
			Fset:  l.fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		}
		if name != "main" {
			l.pkgs[importPath] = pkg
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadAll discovers every package directory under the module root
// (skipping testdata, vendor, and hidden/underscore directories), loads
// each, and returns the packages sorted by import path (main packages
// included).
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs, err := l.LoadDir(importPath, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
