package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TupleCopy protects the storage engine's zero-copy discipline. Since the
// columnar refactor, relations store typed column vectors and hot paths
// read rows in place (Relation.Value, Row.Value, EachRow); materializing a
// row as a Tuple allocates a boxed []Value and is reserved for cold paths
// (export, display, stream payloads). The rule flags, outside
// internal/relation itself, every call to the materializing escape hatches
// declared there:
//
//   - Relation.Materialize / Row.Materialize / Row.MaterializeInto,
//     which copy a stored row out of column storage;
//   - Relation.Each, which materializes one Tuple per visited row
//     (EachRow is the allocation-free iteration).
//
// Constructing fresh Tuples (generators, stream payloads, Append calls) is
// not flagged — only copies out of storage are. Deliberate cold-path uses
// carry a //lint:ignore tuplecopy directive with the justification.
var TupleCopy = &Analyzer{
	Name: "tuplecopy",
	Doc:  "rows must be read in place from column storage; Tuple materialization is an annotated escape hatch",
	Run:  runTupleCopy,
}

// relationPkgSuffix identifies the storage-engine package, which is free
// to materialize (it owns the representation).
const relationPkgSuffix = "internal/relation"

// tupleCopyMethods are the materializing escape hatches by method name.
var tupleCopyMethods = map[string]string{
	"Materialize":     "copies the row out of column storage",
	"MaterializeInto": "copies the row out of column storage",
	"Each":            "materializes one Tuple per visited row; iterate with EachRow instead",
}

func runTupleCopy(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, relationPkgSuffix) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !strings.HasSuffix(fn.Pkg().Path(), relationPkgSuffix) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			why, hatch := tupleCopyMethods[fn.Name()]
			if !hatch {
				return true
			}
			p.Reportf(call.Pos(), "%s.%s %s; hot paths read values in place (Value/IsNull/Key on a Row)",
				recvTypeName(sig.Recv().Type()), fn.Name(), why)
			return true
		})
	}
}
