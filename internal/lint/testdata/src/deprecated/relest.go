package deprecated

// LegacyCount stands in for the facade's wrapper file: relest.go is where
// the deprecated free functions forward through, so its calls are exempt
// wholesale.
func LegacyCount(n int) int { return OldCount(n) } // ok: facade file
