// Package deprecated exercises the deprecated-call rule: calls to
// functions whose doc comment carries a "Deprecated:" paragraph are
// flagged, except in relest.go (the facade's own wrapper file) and inside
// functions that are themselves deprecated (wrapper chains).
package deprecated

// OldCount is the legacy spelling.
//
// Deprecated: use NewCount.
func OldCount(n int) int { return NewCount(n) }

// NewCount is the supported replacement.
func NewCount(n int) int { return n }

// OlderCount predates even OldCount; deprecated wrappers may chain into
// each other without findings.
//
// Deprecated: use NewCount.
func OlderCount(n int) int { return OldCount(n) } // ok: caller is itself deprecated

type handle struct{}

// Old is a legacy method.
//
// Deprecated: use Run.
func (handle) Old() int { return 0 }

// Run is the supported method.
func (handle) Run() int { return 0 }

func user() int {
	a := OldCount(1) // want: deprecated function call
	var h handle
	b := h.Old() // want: deprecated method call
	return a + b + NewCount(2) + h.Run()
}

var fromInitializer = OldCount(3) // want: package-level initializers count too

func suppressed() int {
	//lint:ignore deprecated migration to NewCount is scheduled with the next schema change
	return OldCount(4)
}
