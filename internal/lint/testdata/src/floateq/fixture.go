// Package floateq is a deliberately-broken fixture for the floateq
// analyzer.
package floateq

// weight is a named float type; comparisons through it are still flagged.
type weight float64

// eq compares float64 exactly: finding.
func eq(a, b float64) bool { return a == b }

// neq compares float32 exactly: finding.
func neq(a, b float32) bool { return a != b }

// namedEq compares a named float type exactly: finding.
func namedEq(a, b weight) bool { return a == b }

// zeroCmp compares against an untyped zero constant: finding (deliberate
// sentinels are suppressed, not silently allowed).
func zeroCmp(x float64) bool { return x == 0 }

// isNaN uses the x != x idiom: exact by design, no finding.
func isNaN(x float64) bool { return x != x }

// ints compares integers: no finding.
func ints(a, b int) bool { return a == b }

// epsilon is how float comparisons should look: no finding.
func epsilon(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(x float64) bool {
	//lint:ignore floateq fixture: exercising the suppression path
	return x == 1
}
