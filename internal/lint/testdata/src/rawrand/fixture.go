// Package rawrand is a deliberately-broken fixture for the rawrand
// analyzer.
package rawrand

import (
	"math/rand"
	"time"
)

// globalDraw uses the process-global source: finding.
func globalDraw() int {
	return rand.Intn(10)
}

// globalShuffle uses the process-global source: finding.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// timeSeeded constructs a generator outside the rng file, seeded from the
// wall clock: two findings (rand.New and rand.NewSource).
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// methodDraw draws from an injected generator: no finding.
func methodDraw(r *rand.Rand) float64 {
	return r.Float64()
}

// zipf builds a derived distribution from an injected generator: no
// finding (rand.NewZipf takes an already-seeded *rand.Rand).
func zipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.5, 1, 100)
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed() int64 {
	//lint:ignore rawrand fixture: exercising the suppression path
	return rand.NewSource(42).Int63()
}
