// Package maprangerand is a deliberately-broken fixture for the
// maprange-rand analyzer. The want.txt next to it lists the findings the
// analyzer must report.
package maprangerand

import "math/rand"

// drawPerKey draws from a shared stream in map order: finding.
func drawPerKey(m map[string]int, rng *rand.Rand) int {
	total := 0
	for range m {
		total += rng.Intn(10)
	}
	return total
}

// sampler mimics a synopsis that draws through a held stream.
type sampler struct {
	rng *rand.Rand
}

func (s *sampler) draw(n int) int { return s.rng.Intn(n) }

// handOff passes the stream to a callee in map order: finding (the
// stream is named as an argument even though the draw happens inside).
func handOff(m map[string]int, rng *rand.Rand) int {
	total := 0
	s := &sampler{}
	for _, v := range m {
		s.rng = rng
		total += s.draw(v + 1)
	}
	return total
}

// sourceDraw consumes a raw Source in map order: finding.
func sourceDraw(m map[string]int, src rand.Source) int64 {
	var total int64
	for range m {
		total ^= src.Int63()
	}
	return total
}

// sliceDraw draws inside a slice range: order is fixed, no finding.
func sliceDraw(keys []string, rng *rand.Rand) int {
	total := 0
	for range keys {
		total += rng.Intn(10)
	}
	return total
}

// sortedDraw iterates a map without touching any stream: no finding.
func sortedDraw(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(m map[string]int, rng *rand.Rand) int {
	total := 0
	//lint:ignore maprange-rand fixture: exercising the suppression path
	for range m {
		total += rng.Intn(10)
	}
	return total
}
