// Package detflow is the golden fixture for the interprocedural
// determinism-taint rule: nondeterministic values flowing into float
// accumulations, exported estimate returns, and metric names.
package detflow

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"relest/internal/obs"
)

// mapOrderSum accumulates in map iteration order — the intraprocedural
// base case.
func mapOrderSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want: map iteration order reaches accumulation
	}
	return s
}

// globalRandSum folds draws from the process-global source.
func globalRandSum(n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		total += rand.Float64() // want: rand source reaches accumulation
	}
	return total
}

// meter is an accumulator two hops from the nondeterminism.
type meter struct{ total float64 }

func (m *meter) add(v float64) { m.total += v } // sink on a clean param: no report here

// viaHelper routes map-order taint through meter.add — the report fires
// at the call site, not inside the helper.
func viaHelper(m map[string]float64) float64 {
	mt := &meter{}
	for _, v := range m {
		mt.add(v) // want: interprocedural accumulation
	}
	return mt.total
}

func jitter() float64 { return rand.Float64() } // unexported: no return-sink here

// Estimate returns a value derived from the global rand source — an
// exported estimate must be bit-reproducible.
func Estimate() float64 {
	return jitter() // want: exported return of rand-derived float
}

var epoch = time.Now()

// Elapsed leaks the wall clock through an exported float return.
func Elapsed() float64 {
	d := time.Since(epoch)
	return d.Seconds() // want: exported return of wall-clock-derived float
}

// record mints a metric name from pointer identity: every run gets a
// fresh series.
func record(rec obs.Recorder, trackID *int) {
	rec.Add(fmt.Sprintf("track-%p", trackID), 1) // want: pointer identity in metric name
}

// SortedSum is the sanctioned idiom: collect, sort, then fold — the sort
// launders the map-order taint, so this is clean.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// suppressed documents a deliberate exception.
func suppressed(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //lint:ignore detflow fixture: suppression coverage for the taint rule
	}
	return s
}
