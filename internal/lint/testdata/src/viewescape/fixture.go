// Package viewescape is the golden fixture for the zero-copy view escape
// rule: Rows and Subset/Clone views must not outlive their statement.
package viewescape

import (
	"relest/internal/parallel"
	"relest/internal/relation"
)

// cache retains relation state across calls.
type cache struct {
	rows *relation.Relation
	row  relation.Row
}

// buildCache pins a zero-copy view in a struct field via composite
// literal.
func buildCache(r *relation.Relation) *cache {
	v := r.Subset("v", []int{0})
	return &cache{rows: v} // want: view stored in struct field
}

// stashRow stores a Row alias through a field assignment.
func stashRow(c *cache, r *relation.Relation) {
	c.row = r.Row(1) // want: Row stored in struct field
}

// stashClone stores a fresh Clone view through a field assignment.
func stashClone(c *cache, r *relation.Relation) {
	c.rows = r.Clone("copy") // want: view stored in struct field
}

// spawn hands a view to a goroutine that reads it concurrently with the
// spawner.
func spawn(r *relation.Relation, done chan int) {
	v := r.Subset("v", nil)
	go func() {
		done <- v.Len() // want: view captured by goroutine
	}()
}

// fanOut captures a Row inside a parallel worker closure.
func fanOut(r *relation.Relation, out []float64) {
	row := r.Row(0)
	parallel.For(len(out), 2, func(i int) {
		out[i] = float64(row.Index()) // want: Row captured by worker
	})
}

// appendPastView grows the base while a capacity-clamped view is still
// live — the view silently misses the appended rows.
func appendPastView(r *relation.Relation, t relation.Tuple) int {
	v := r.Subset("v", nil)
	r.MustAppend(t) // want: append past live view
	return v.Len()
}

// Peek hands an alias into column storage across the package boundary.
func Peek(r *relation.Relation) relation.Row {
	return r.Row(0) // want: exported Row return
}

// Take is the sanctioned shape: materialize before returning.
func Take(r *relation.Relation) relation.Tuple {
	return r.Row(0).Materialize()
}

// scratchView is the legal pattern: the view lives and dies inside one
// statement sequence, append happens after its last use.
func scratchView(r *relation.Relation, t relation.Tuple) int {
	v := r.Subset("v", nil)
	n := v.Len()
	r.MustAppend(t)
	return n
}

// retained documents a deliberate long-lived sample view.
func retained(c *cache, r *relation.Relation) {
	//lint:ignore viewescape fixture: deliberate retention with justification
	c.rows = r.Subset("sample", nil)
}
