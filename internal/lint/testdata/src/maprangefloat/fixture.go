// Package maprangefloat is a deliberately-broken fixture for the
// maprange-float analyzer. The want.txt next to it lists the findings the
// analyzer must report.
package maprangefloat

// Estimate mimics a float-carrying result record.
type Estimate struct {
	Name  string
	Value float64
}

// sumValues accumulates a float total in map order: finding.
func sumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// buildEstimates appends to a float-carrying slice in map order: finding.
func buildEstimates(m map[string]float64) []Estimate {
	var out []Estimate
	for k, v := range m {
		out = append(out, Estimate{Name: k, Value: v})
	}
	return out
}

// selfAssign accumulates via x = x + v instead of +=: finding.
func selfAssign(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t = t + v
	}
	return t
}

// countKeys accumulates an int: order-insensitive, no finding.
func countKeys(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// collectKeys builds a non-float slice: no finding.
func collectKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(m map[string]float64) float64 {
	total := 0.0
	//lint:ignore maprange-float fixture: exercising the suppression path
	for _, v := range m {
		total += v
	}
	return total
}
