// Package badignore checks that a malformed //lint:ignore (missing the
// mandatory reason) suppresses nothing and is itself reported.
package badignore

import "errors"

func fail() error { return errors.New("boom") }

func f() {
	//lint:ignore errdrop
	fail()
}
