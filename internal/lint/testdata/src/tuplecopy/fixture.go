// Package tuplecopy is a deliberately-broken fixture for the tuplecopy
// analyzer.
package tuplecopy

import (
	"relest/internal/relation"
)

// materializeRelation copies a stored row out of the relation: finding.
func materializeRelation(r *relation.Relation) relation.Tuple {
	return r.Materialize(0)
}

// eachTuples iterates by materializing one Tuple per row: finding.
func eachTuples(r *relation.Relation) int {
	n := 0
	r.Each(func(i int, t relation.Tuple) bool {
		n += len(t)
		return true
	})
	return n
}

// materializeRow copies the row view out of column storage: two findings
// (Materialize and MaterializeInto).
func materializeRow(row relation.Row, buf relation.Tuple) relation.Tuple {
	buf = row.MaterializeInto(buf)
	_ = buf
	return row.Materialize()
}

// inPlace reads values directly from column storage: no finding.
func inPlace(r *relation.Relation) int64 {
	var sum int64
	r.EachRow(func(i int, row relation.Row) bool {
		if !row.IsNull(0) {
			sum += row.Value(0).Int64()
		}
		return true
	})
	return sum
}

// freshTuple constructs a new Tuple (not a copy out of storage): no
// finding — the rule targets materialization, not Tuple construction.
func freshTuple() relation.Tuple {
	return relation.Tuple{relation.Int(1), relation.Str("a")}
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(r *relation.Relation) relation.Tuple {
	//lint:ignore tuplecopy fixture: exercising the suppression path
	return r.Materialize(0)
}
