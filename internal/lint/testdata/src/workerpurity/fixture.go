// Package workerpurity is the golden fixture for the worker-purity
// rule: parallel workers write only index-addressed slots.
package workerpurity

import (
	"sync"

	"relest/internal/parallel"
)

var total float64

// bump mutates process-global state; reachable from reduceSlots's worker.
func bump(v float64) {
	total = total + v // want: package-level write
}

var hits int

// work is a named worker function: same rules apply.
func work(i int) {
	hits++ // want: package-level write
}

func namedWorker(n int) {
	parallel.For(n, 2, work)
}

// reduceRace accumulates into captured locals from inside the workers.
func reduceRace(xs []float64) float64 {
	var sum float64
	var last int
	counts := map[int]int{}
	parallel.For(len(xs), 2, func(i int) {
		sum += xs[i]  // want: captured accumulation
		last = i      // want: captured assignment
		counts[i] = i // want: captured map write
	})
	_ = last
	return sum + float64(counts[0])
}

// tally is shared mutable state.
type tally struct{ n int }

func fieldRace(xs []float64, t *tally, p *float64) {
	parallel.For(len(xs), 2, func(i int) {
		t.n++      // want: field write
		*p = xs[i] // want: pointer store
	})
}

// reduceSlots is the sanctioned pattern: per-task slots, index-ordered
// reduction after the join.
func reduceSlots(xs []float64) float64 {
	slots := make([]float64, len(xs))
	parallel.For(len(xs), 2, func(i int) {
		slots[i] = xs[i] * 2 // clean: index-addressed slot
		bump(xs[i])
	})
	var sum float64
	for _, v := range slots {
		sum += v
	}
	return sum
}

// guarded is race-free behind a mutex; the deliberate exception carries
// its justification.
func guarded(xs []float64, mu *sync.Mutex) float64 {
	var sum float64
	parallel.For(len(xs), 2, func(i int) {
		mu.Lock()
		//lint:ignore workerpurity fixture: mutex-guarded accumulation, race-free by construction
		sum += xs[i]
		mu.Unlock()
	})
	return sum
}
