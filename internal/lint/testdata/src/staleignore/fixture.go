// Package staleignore is the golden fixture for the stale-ignore audit:
// a directive that suppresses nothing, while its rule ran, is dead.
package staleignore

func eq(a, b float64) bool {
	//lint:ignore floateq fixture: live suppression
	return a == b
}

func lt(a, b float64) bool {
	//lint:ignore floateq fixture: stale, the comparison below is ordered not equality
	return a < b
}

func unrelated(a, b float64) bool {
	//lint:ignore rawgo fixture: names a rule outside this run, left alone
	return a < b
}
