// Package materialize is a deliberately-broken fixture for the
// materialize analyzer.
package materialize

import (
	"relest/internal/algebra"
	"relest/internal/relation"
)

// materializingCount evaluates the whole tree into a relation just to
// take its length: finding.
func materializingCount(e *algebra.Expr, cat algebra.Catalog) (int64, error) {
	r, err := algebra.Eval(e, cat)
	if err != nil {
		return 0, err
	}
	return int64(r.Len()), nil
}

// streamingCount counts through the streaming executor: no finding.
func streamingCount(e *algebra.Expr, cat algebra.Catalog) (int64, error) {
	return algebra.StreamCount(e, cat)
}

// streamingRows drains the pipeline batch by batch: no finding — the
// result relation is the caller's, not a materialized intermediate.
func streamingRows(e *algebra.Expr, cat algebra.Catalog) (*relation.Relation, error) {
	return algebra.StreamEval(e, cat)
}

// methodEval calls an unrelated method that happens to be named Eval:
// no finding — the rule targets the package-level evaluator only.
type evaluator struct{}

func (evaluator) Eval() int { return 1 }

func methodEval() int {
	var ev evaluator
	return ev.Eval()
}

// localEval shadows the name in another package entirely: no finding.
func localEval(e *algebra.Expr, cat algebra.Catalog) error {
	eval := func(e *algebra.Expr, cat algebra.Catalog) error { return nil }
	return eval(e, cat)
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(e *algebra.Expr, cat algebra.Catalog) (*relation.Relation, error) {
	//lint:ignore materialize fixture: exercising the suppression path
	return algebra.Eval(e, cat)
}
