// Package errdrop is a deliberately-broken fixture for the errdrop
// analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error            { return errors.New("boom") }
func failPair() (int, error) { return 0, errors.New("boom") }

// drops discards errors in statement position: findings.
func drops() {
	fail()
	failPair()
	defer fail()
}

// handled covers the legal shapes: no findings.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	_ = fail() // explicit discard is visible in review
	fmt.Println("print family is exempt")
	var sb strings.Builder
	sb.WriteString("Builder writers never fail")
	return nil
}

// suppressed carries a reasoned ignore directive: no finding.
func suppressed() {
	//lint:ignore errdrop fixture: exercising the suppression path
	fail()
}
