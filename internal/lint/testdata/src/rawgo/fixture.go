// Package rawgo is a deliberately-broken fixture for the rawgo analyzer.
package rawgo

// spawn starts ad-hoc goroutines outside internal/parallel: findings.
func spawn(ch chan int) {
	go func() { ch <- 1 }()
	go send(ch)
}

func send(ch chan int) { ch <- 2 }

// suppressed carries a reasoned ignore directive: no finding.
func suppressed(done chan struct{}) {
	//lint:ignore rawgo fixture: exercising the suppression path
	go close(done)
}
