// Package ctxflow is the golden fixture for the cancellation-contract
// rule: Background substitution and dropped ctx parameters.
package ctxflow

import (
	"context"
	"net/http"
)

// run is the context-aware leaf every entry point should thread into.
func run(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n
}

// step is a context-free helper on the path from Dropped to run; the
// Background here is legal (step holds no caller context).
func step(n int) int {
	return run(context.Background(), n)
}

// Detached holds the caller's ctx but hands its callee a fresh one.
func Detached(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return run(context.Background(), n) // want: Background substitution
}

// handle carries the client's context on the request yet mints its own.
func handle(w http.ResponseWriter, r *http.Request) {
	run(context.TODO(), 1) // want: TODO substitution
}

// Dropped promises cancellation it cannot deliver: the ctx goes unused
// while context-aware code sits two calls away.
func Dropped(ctx context.Context, n int) int { // want: dropped ctx
	return step(n)
}

// Threaded is the sanctioned shape.
func Threaded(ctx context.Context, n int) int {
	return run(ctx, n)
}

// Leaf keeps an unused ctx but reaches nothing context-aware: an
// interface-compat signature, left alone.
func Leaf(ctx context.Context) int {
	return 42
}

//lint:ignore ctxflow fixture: interface compatibility requires the parameter
func Compat(ctx context.Context, n int) int {
	return step(n)
}
