// Package ctxflow is the golden fixture for the cancellation-contract
// rule: Background substitution and dropped ctx parameters.
package ctxflow

import (
	"context"
	"net/http"
)

// run is the context-aware leaf every entry point should thread into.
func run(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n
}

// step is a context-free helper on the path from Dropped to run; the
// Background here is legal (step holds no caller context).
func step(n int) int {
	return run(context.Background(), n)
}

// Detached holds the caller's ctx but hands its callee a fresh one.
func Detached(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return run(context.Background(), n) // want: Background substitution
}

// handle carries the client's context on the request yet mints its own.
func handle(w http.ResponseWriter, r *http.Request) {
	run(context.TODO(), 1) // want: TODO substitution
}

// Dropped promises cancellation it cannot deliver: the ctx goes unused
// while context-aware code sits two calls away.
func Dropped(ctx context.Context, n int) int { // want: dropped ctx
	return step(n)
}

// Threaded is the sanctioned shape.
func Threaded(ctx context.Context, n int) int {
	return run(ctx, n)
}

// Leaf keeps an unused ctx but reaches nothing context-aware: an
// interface-compat signature, left alone.
func Leaf(ctx context.Context) int {
	return 42
}

//lint:ignore ctxflow fixture: interface compatibility requires the parameter
func Compat(ctx context.Context, n int) int {
	return step(n)
}

// scatterJob is the coordinator-fanout shape: one shard sub-request,
// context-aware so a shard deadline can cut it short.
func scatterJob(ctx context.Context, shard int) int {
	return run(ctx, shard)
}

// FanoutDetached scatters to shards but severs every sub-request from
// the caller's deadline: a coordinator that can never degrade on time.
func FanoutDetached(ctx context.Context, shards int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for s := 0; s < shards; s++ {
		total += scatterJob(context.Background(), s) // want: Background substitution
	}
	return total
}

// FanoutDropped takes the request ctx yet fans out through the
// context-free step helper, so no shard sub-request can be cancelled.
func FanoutDropped(ctx context.Context, shards int) int { // want: dropped ctx
	total := 0
	for s := 0; s < shards; s++ {
		total += step(s)
	}
	return total
}

// FanoutThreaded is the sanctioned scatter-gather: every shard
// sub-request carries the request context.
func FanoutThreaded(ctx context.Context, shards int) int {
	total := 0
	for s := 0; s < shards; s++ {
		total += scatterJob(ctx, s)
	}
	return total
}
