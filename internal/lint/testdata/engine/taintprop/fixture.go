// Package taintprop exercises the taint engine's interprocedural
// summaries: parameter flow, source kinds, sanitizers, and sink
// parameters.
package taintprop

import (
	"math/rand"
	"sort"
	"time"
)

// Identity returns its argument: result derives from param 0.
func Identity(x float64) float64 { return x }

// Second returns only its second argument.
func Second(a, b float64) float64 { return b }

// Clock derives its result from the wall clock.
func Clock() float64 { return float64(time.Now().UnixNano()) }

// Draw derives its result from the process-global rand source.
func Draw() float64 { return rand.Float64() }

// Chain routes Draw through Identity: the source kind survives two calls.
func Chain() float64 { return Identity(Draw()) }

// KeySum folds map keys in iteration order: the result carries both the
// map parameter and the map-order source, and the parameter reaches a
// float accumulation.
func KeySum(m map[float64]bool) float64 {
	var s float64
	for k := range m {
		s += k
	}
	return s
}

// Sorted collects, sorts, then folds: the sort launders the map-order
// taint, so the summary is clean.
func Sorted(m map[float64]bool) float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	var s float64
	for _, k := range keys {
		s += k
	}
	return s
}

// Accumulate folds v into *acc: parameter 1 reaches a float accumulation.
func Accumulate(acc *float64, v float64) { *acc += v }

// CountValues sums map values into an int: the exact commutative fold is
// order-independent, so the map-order taint is laundered (and an integer
// target is no accumulation sink).
func CountValues(m map[string]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// Rekey rebuilds one map from another: the element stores launder the
// map-order taint because the result is the same map in any order.
func Rekey(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}
