// Package callgraph is the hand-computed fixture for the call-graph
// resolver: callgraph_test.go asserts the resolved edge set of this file
// matches the expectation exactly (static, CHA, literal, containment, and
// dynamic edges).
package callgraph

// Shape is dispatched through an interface so the CHA resolver has to
// fan the call out to both implementations.
type Shape interface{ Area() float64 }

type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

type Square struct{ S float64 }

func (s Square) Area() float64 { return s.S * s.S }

// Total's s.Area() call must resolve to Circle.Area and Square.Area.
func Total(shapes []Shape) float64 {
	t := 0.0
	for _, s := range shapes {
		t += s.Area()
	}
	return t
}

func Helper(x float64) float64 { return x + 1 }

// Top exercises a static call, a closure containment edge, and a dynamic
// call through a function-typed variable.
func Top(shapes []Shape) float64 {
	f := func(v float64) float64 { return Helper(v) }
	total := Total(shapes)
	return f(total)
}

// Immediate exercises the immediately-invoked literal edge.
func Immediate() float64 {
	return func() float64 { return Helper(2) }()
}
