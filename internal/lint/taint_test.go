package lint

import (
	"go/types"
	"testing"
)

// TestTaintPropagation pins the engine's fixpoint summaries on the
// taintprop fixture: which parameters flow to the result, which source
// kinds survive which call chains, where sorting launders taint, and
// which parameters reach a float-accumulation sink.
func TestTaintPropagation(t *testing.T) {
	pkgs := loadEngineFixture(t, "taintprop")
	g := BuildCallGraph(pkgs)
	eng := NewTaintEngine(g)

	byName := map[string]*types.Func{}
	for _, n := range g.Nodes {
		if n.Fn != nil {
			byName[n.Fn.Name()] = n.Fn
		}
	}

	cases := []struct {
		fn            string
		resultParams  uint64  // Results[0].Params; 0 when no results
		resultKinds   SrcKind // Results[0].Kinds
		accSinkParams uint64
	}{
		{"Identity", 1 << 0, 0, 0},
		{"Second", 1 << 1, 0, 0},
		{"Clock", 0, SrcTime, 0},
		{"Draw", 0, SrcRand, 0},
		{"Chain", 0, SrcRand, 0},
		{"KeySum", 1 << 0, SrcMapOrder, 1 << 0},
		{"Sorted", 0, 0, 0},
		{"Accumulate", 0, 0, 1 << 1},
		{"CountValues", 1 << 0, 0, 0},
		{"Rekey", 1 << 0, 0, 0},
	}
	for _, c := range cases {
		fn, ok := byName[c.fn]
		if !ok {
			t.Errorf("%s: not in the call graph", c.fn)
			continue
		}
		sum := eng.Summary(fn)
		if sum == nil {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		var got Taint
		if len(sum.Results) > 0 {
			got = sum.Results[0]
		}
		if got.Params != c.resultParams || got.Kinds != c.resultKinds {
			t.Errorf("%s: result taint = {Params:%b Kinds:%v}, want {Params:%b Kinds:%v}",
				c.fn, got.Params, got.Kinds, c.resultParams, c.resultKinds)
		}
		if sum.AccSinkParams != c.accSinkParams {
			t.Errorf("%s: AccSinkParams = %b, want %b", c.fn, sum.AccSinkParams, c.accSinkParams)
		}
	}
}

// TestSrcKindString pins the finding vocabulary.
func TestSrcKindString(t *testing.T) {
	if got := (SrcMapOrder | SrcRand).String(); got != "map iteration order and the process-global rand source" {
		t.Errorf("SrcKind string = %q", got)
	}
	if got := SrcKind(0).String(); got != "a deterministic value" {
		t.Errorf("zero SrcKind string = %q", got)
	}
}
