package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeFloat flags `for range` over a map whose body accumulates into
// floating-point state or appends to a float-bearing slice. Go randomizes
// map iteration order, and float addition is not associative, so such
// loops produce run-dependent estimates — the exact bug class PR 1 fixed
// in the estimator engine. Order-insensitive sites (e.g. a per-key merge
// where each destination key receives exactly one contribution per source
// map) are suppressed with //lint:ignore maprange-float <reason>.
var MapRangeFloat = &Analyzer{
	Name: "maprange-float",
	Doc:  "float accumulation inside randomized map iteration breaks bit-reproducibility",
	Run:  runMapRangeFloat,
}

func runMapRangeFloat(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if desc := floatAccumulation(p, rs.Body); desc != "" {
				p.Reportf(rs.Pos(), "map iteration order is randomized but the loop body %s; iterate keys in sorted order (or suppress with //lint:ignore maprange-float <why order-insensitive>)", desc)
			}
			return true
		})
	}
}

// floatAccumulation describes the first order-sensitive float operation in
// a map-range body, or "" when there is none. It looks for compound
// arithmetic assignment to a float lvalue, the explicit x = x + ... form,
// and append onto a slice whose elements carry floats.
func floatAccumulation(p *Pass, body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(p.TypeOf(lhs)) {
					desc = "accumulates into float state " + types.ExprString(lhs)
					return false
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && as.Tok == token.ASSIGN && selfReferentialFloat(p, as.Lhs[i], rhs) {
					desc = "reassigns float state " + types.ExprString(as.Lhs[i]) + " from itself"
					return false
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(p, call) {
					if sl, ok := p.TypeOf(call).Underlying().(*types.Slice); ok && carriesFloat(sl.Elem()) {
						desc = "appends to the float-carrying slice " + types.ExprString(as.Lhs[i])
						return false
					}
				}
			}
		}
		return true
	})
	return desc
}

// selfReferentialFloat reports whether lhs is float-typed and rhs reads
// the same object (x = x + w style accumulation).
func selfReferentialFloat(p *Pass, lhs, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || !isFloat(p.TypeOf(lhs)) {
		return false
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if rid, ok := n.(*ast.Ident); ok && p.ObjectOf(rid) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append built-in.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
