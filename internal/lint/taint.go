package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the forward taint engine behind detflow. "Taint" here means
// "this value can differ between two runs on the same inputs and seed":
// the engine marks values derived from the nondeterminism sources below
// and follows them through assignments, expressions, and — via per-function
// summaries iterated to a fixpoint over the call graph — through calls, so
// a nondeterministic value that crosses three helpers before reaching a
// float accumulation is still caught.
//
// The lattice element is a pair (Params, Kinds): Kinds is the set of
// nondeterminism sources the value definitely derives from, Params the set
// of the enclosing function's parameters it derives from. Union is bitwise
// or; the empty pair is "deterministic". Summaries record, per function,
// the taint of each result (with Params expressed in the callee's own
// parameter space, substituted at call sites) and the parameter sets that
// reach a float-accumulation or metric-name sink inside the function —
// which is what makes a call like acc.Add(v) a reportable sink when v
// came out of a map range two frames up.
//
// The analysis is data-flow only: control dependence (a loop whose trip
// count depends on time.Now, e.g. the deadline estimator's round budget)
// is deliberately out of scope — wall-clock-bounded estimation is the
// documented contract there, and tracking control taint would drown the
// signal. Sorting is the sanitizer: sort.X(s) / slices.Sort(s) erase s's
// map-order taint, which is exactly the repo's sorted-map-merge idiom.

// SrcKind is a bitset of nondeterminism sources.
type SrcKind uint8

const (
	// SrcMapOrder marks values bound by ranging over a map (and
	// maps.Keys/Values iterators): the binding order is randomized per run.
	SrcMapOrder SrcKind = 1 << iota
	// SrcTime marks wall-clock reads (time.Now/Since/Until).
	SrcTime
	// SrcRand marks draws from the process-global math/rand source.
	SrcRand
	// SrcPtr marks pointer-identity formatting (%p and friends): addresses
	// differ between runs.
	SrcPtr
)

// String renders the source set for findings.
func (k SrcKind) String() string {
	var parts []string
	if k&SrcMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if k&SrcTime != 0 {
		parts = append(parts, "wall-clock time")
	}
	if k&SrcRand != 0 {
		parts = append(parts, "the process-global rand source")
	}
	if k&SrcPtr != 0 {
		parts = append(parts, "pointer identity")
	}
	if len(parts) == 0 {
		return "a deterministic value"
	}
	return strings.Join(parts, " and ")
}

// Taint is the lattice element: the parameter set and source set a value
// derives from. The zero Taint is "deterministic".
type Taint struct {
	// Params is a bitmask over the enclosing function's parameters
	// (receiver first for methods; indexes clamp at 63).
	Params uint64
	// Kinds is the set of nondeterminism sources.
	Kinds SrcKind
}

// Empty reports whether t carries no taint.
func (t Taint) Empty() bool { return t.Params == 0 && t.Kinds == 0 }

// Union joins two lattice elements.
func (t Taint) Union(u Taint) Taint {
	return Taint{Params: t.Params | u.Params, Kinds: t.Kinds | u.Kinds}
}

// FuncSummary is one function's interprocedural behavior.
type FuncSummary struct {
	// Results holds the taint of each result, Params in the function's own
	// parameter space.
	Results []Taint
	// AccSinkParams are the parameters that (transitively) reach a float
	// accumulation inside the function.
	AccSinkParams uint64
	// LabelSinkParams are the parameters that (transitively) become an obs
	// metric name inside the function.
	LabelSinkParams uint64
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if o == nil || len(s.Results) != len(o.Results) ||
		s.AccSinkParams != o.AccSinkParams || s.LabelSinkParams != o.LabelSinkParams {
		return false
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// taintHooks receives sink events during a reporting pass. Any hook may be
// nil.
type taintHooks struct {
	// accSink: a value tainted by kinds reaches the float accumulation
	// described by via (an lvalue or a callee name) at pos.
	accSink func(pos token.Pos, kinds SrcKind, via string)
	// labelSink: a metric-name string tainted by kinds is registered at pos.
	labelSink func(pos token.Pos, kinds SrcKind, via string)
	// exportedReturn: an exported function returns a float-carrying value
	// tainted by kinds.
	exportedReturn func(pos token.Pos, kinds SrcKind, fn string)
}

// TaintEngine computes and serves per-function summaries over a call
// graph.
type TaintEngine struct {
	graph *CallGraph
	sums  map[*types.Func]*FuncSummary
}

// maxEngineIters bounds the interprocedural fixpoint; deep call chains in
// this module converge in a handful of rounds, and a cycle that somehow
// oscillates must not hang the linter.
const maxEngineIters = 20

// NewTaintEngine builds summaries for every declared function in the
// graph, iterating to a fixpoint so taint flows through arbitrarily deep
// call chains (and recursion).
func NewTaintEngine(g *CallGraph) *TaintEngine {
	e := &TaintEngine{graph: g, sums: map[*types.Func]*FuncSummary{}}
	for iter := 0; iter < maxEngineIters; iter++ {
		changed := false
		for _, n := range g.Nodes {
			if n.Fn == nil {
				continue // literals are analyzed inline with their enclosers
			}
			sum := e.analyze(n, nil)
			if !sum.equal(e.sums[n.Fn]) {
				e.sums[n.Fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// Summary returns fn's summary, or nil for functions outside the graph.
func (e *TaintEngine) Summary(fn *types.Func) *FuncSummary { return e.sums[fn] }

// Report re-analyzes one declared function with hooks attached, firing a
// sink event wherever taint with a concrete source reaches a sink.
func (e *TaintEngine) Report(n *CGNode, hooks *taintHooks) {
	if n.Fn != nil {
		e.analyze(n, hooks)
	}
}

// frame is one lexical function body under analysis: the declared function
// or an inline-analyzed literal.
type frame struct {
	node    *CGNode
	params  map[types.Object]int // param object → index (receiver = 0)
	results []types.Object       // named result objects (nil entries when unnamed)
	sig     *types.Signature
	top     bool
}

// taintState is one analyze() invocation's mutable state. env is shared
// across frames: objects are globally unique, and closures genuinely share
// their captured variables with the enclosing body.
type taintState struct {
	eng   *TaintEngine
	pkg   *Package
	env   map[types.Object]Taint
	sum   *FuncSummary
	hooks *taintHooks
	dirty bool // env grew this pass
}

// analyze runs the intraprocedural analysis on n (a declared function),
// returning its summary. With hooks set, a final pass fires sink events
// after the local fixpoint settles.
func (e *TaintEngine) analyze(n *CGNode, hooks *taintHooks) *FuncSummary {
	sig := n.Type()
	st := &taintState{
		eng: e,
		pkg: n.Pkg,
		env: map[types.Object]Taint{},
		sum: &FuncSummary{Results: make([]Taint, sig.Results().Len())},
	}
	fr := st.newFrame(n, sig, true)
	// Local fixpoint: loop-carried taint needs a second pass; a third
	// catches taint that loops through a closure. Passes are cheap.
	for pass := 0; pass < 3; pass++ {
		st.dirty = false
		st.block(fr, n.Body())
		if !st.dirty {
			break
		}
	}
	if hooks != nil {
		st.hooks = hooks
		st.block(fr, n.Body())
	}
	return st.sum
}

// newFrame seeds a frame's parameter objects: env[param i] = {Params: bit i}.
// Literal frames get no parameter bits (their arguments are unknown), but
// their captured variables keep whatever taint the enclosing frame built.
func (st *taintState) newFrame(n *CGNode, sig *types.Signature, top bool) *frame {
	fr := &frame{node: n, params: map[types.Object]int{}, sig: sig, top: top}
	idx := 0
	if recv := sig.Recv(); recv != nil {
		fr.params[recv] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fr.params[sig.Params().At(i)] = idx
		idx++
	}
	if top {
		for obj, i := range fr.params {
			if _, ok := st.env[obj]; !ok {
				st.env[obj] = Taint{Params: paramBit(i)}
			}
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" && r.Name() != "_" {
			fr.results = append(fr.results, r)
		} else {
			fr.results = append(fr.results, nil)
		}
	}
	return fr
}

func paramBit(i int) uint64 {
	if i > 63 {
		i = 63
	}
	return 1 << uint(i)
}

// set updates obj's taint. Strong updates replace (last write wins within
// a pass); weak updates union in.
func (st *taintState) set(obj types.Object, t Taint, strong bool) {
	if obj == nil {
		return
	}
	old, had := st.env[obj]
	if !strong {
		t = t.Union(old)
	}
	if !had && t.Empty() && strong {
		return
	}
	if t != old {
		// Only growth forces another pass; a strong update shrinking taint
		// is already stable (same result every pass).
		if t.Union(old) != old {
			st.dirty = true
		}
		st.env[obj] = t
	}
}

// --- statements ---

func (st *taintState) block(fr *frame, b *ast.BlockStmt) {
	for _, s := range b.List {
		st.stmt(fr, s)
	}
}

func (st *taintState) stmt(fr *frame, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		st.block(fr, x)
	case *ast.ExprStmt:
		st.expr(fr, x.X)
	case *ast.AssignStmt:
		st.assign(fr, x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				ts := st.tupleValues(fr, vs.Values, len(vs.Names))
				for i, name := range vs.Names {
					if i < len(ts) {
						st.set(st.pkg.Info.Defs[name], ts[i], true)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		st.ret(fr, x)
	case *ast.IfStmt:
		if x.Init != nil {
			st.stmt(fr, x.Init)
		}
		st.expr(fr, x.Cond)
		st.block(fr, x.Body)
		if x.Else != nil {
			st.stmt(fr, x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st.stmt(fr, x.Init)
		}
		if x.Cond != nil {
			st.expr(fr, x.Cond)
		}
		st.block(fr, x.Body)
		if x.Post != nil {
			st.stmt(fr, x.Post)
		}
	case *ast.RangeStmt:
		st.rangeStmt(fr, x)
	case *ast.SwitchStmt:
		if x.Init != nil {
			st.stmt(fr, x.Init)
		}
		if x.Tag != nil {
			st.expr(fr, x.Tag)
		}
		st.block(fr, x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st.stmt(fr, x.Init)
		}
		st.stmt(fr, x.Assign)
		st.block(fr, x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			st.expr(fr, e)
		}
		for _, s := range x.Body {
			st.stmt(fr, s)
		}
	case *ast.SelectStmt:
		st.block(fr, x.Body)
	case *ast.CommClause:
		if x.Comm != nil {
			st.stmt(fr, x.Comm)
		}
		for _, s := range x.Body {
			st.stmt(fr, s)
		}
	case *ast.GoStmt:
		st.call(fr, x.Call)
	case *ast.DeferStmt:
		st.call(fr, x.Call)
	case *ast.SendStmt:
		st.expr(fr, x.Chan)
		st.expr(fr, x.Value)
	case *ast.LabeledStmt:
		st.stmt(fr, x.Stmt)
	}
}

// assign handles every AssignStmt form, including the two float
// accumulation sink shapes: `x op= v` and `x = x + v`.
func (st *taintState) assign(fr *frame, a *ast.AssignStmt) {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		ts := st.tupleValues(fr, a.Rhs, len(a.Lhs))
		if a.Tok == token.ASSIGN && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			st.checkSelfAccum(fr, a.Lhs[0], a.Rhs[0])
		}
		for i, lhs := range a.Lhs {
			if i < len(ts) {
				st.assignTo(fr, lhs, ts[i])
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		l := st.expr(fr, a.Lhs[0])
		r := st.expr(fr, a.Rhs[0])
		lt := st.pkg.Info.TypeOf(a.Lhs[0])
		if isFloat(lt) {
			st.sinkAcc(a.Pos(), r, types.ExprString(a.Lhs[0]))
		} else if isInteger(lt) && a.Tok != token.QUO_ASSIGN {
			// Exact commutative folds (integer +=, -=, *=) are determined
			// by the multiset of operands, not their order: summing map
			// values into an int launders map-iteration-order taint (the
			// float case above is the opposite — rounding makes the order
			// observable, which is the whole point of the sink).
			l.Kinds &^= SrcMapOrder
			r.Kinds &^= SrcMapOrder
		}
		st.assignTo(fr, a.Lhs[0], l.Union(r))
	default: // remaining op= forms (%=, &=, <<=...): propagate only
		l := st.expr(fr, a.Lhs[0])
		r := st.expr(fr, a.Rhs[0])
		st.assignTo(fr, a.Lhs[0], l.Union(r))
	}
}

// checkSelfAccum catches the explicit accumulation form `x = x + v` on a
// float x: the sink value is the taint of the non-x operands.
func (st *taintState) checkSelfAccum(fr *frame, lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || !isFloat(st.pkg.Info.TypeOf(lhs)) {
		return
	}
	obj := st.obj(id)
	if obj == nil {
		return
	}
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return
	}
	selfRead := false
	var other Taint
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		e = ast.Unparen(e)
		if rid, ok := e.(*ast.Ident); ok && st.obj(rid) == obj {
			selfRead = true
			return
		}
		if b, ok := e.(*ast.BinaryExpr); ok {
			scan(b.X)
			scan(b.Y)
			return
		}
		other = other.Union(st.expr(fr, e))
	}
	scan(be.X)
	scan(be.Y)
	if selfRead {
		st.sinkAcc(be.Pos(), other, types.ExprString(lhs))
	}
}

// sinkAcc registers taint arriving at a float accumulation: concrete
// sources fire the hook; parameter-derived taint flows into the summary so
// callers report at their call sites.
func (st *taintState) sinkAcc(pos token.Pos, t Taint, via string) {
	if t.Kinds != 0 && st.hooks != nil && st.hooks.accSink != nil {
		st.hooks.accSink(pos, t.Kinds, via)
	}
	st.sum.AccSinkParams |= t.Params
}

// sinkLabel is sinkAcc for obs metric names.
func (st *taintState) sinkLabel(pos token.Pos, t Taint, via string) {
	if t.Kinds != 0 && st.hooks != nil && st.hooks.labelSink != nil {
		st.hooks.labelSink(pos, t.Kinds, via)
	}
	st.sum.LabelSinkParams |= t.Params
}

// assignTo writes taint through an lvalue: plain identifiers get strong
// updates, everything else (fields, elements, derefs) taints the root
// object weakly — we cannot prove the rest of the aggregate is clean.
func (st *taintState) assignTo(fr *frame, lhs ast.Expr, t Taint) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		st.set(st.obj(x), t, true)
	default:
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if mt := st.pkg.Info.TypeOf(idx.X); mt != nil {
				if _, isMap := mt.Underlying().(*types.Map); isMap {
					// A map is an unordered container: rebuilding one map
					// from another (`for k, v := range m { out[k] = f(v) }`)
					// yields the same map whatever order the range took, so
					// the store launders map-order taint. (Colliding keys
					// with order-dependent overwrites would defeat this;
					// the keyed-by-range-key shape that dominates real code
					// has unique keys.)
					t.Kinds &^= SrcMapOrder
				}
			}
		}
		if !t.Empty() {
			st.set(rootObj(st.pkg, lhs), t, false)
		}
	}
}

// rootObj finds the base object of an lvalue chain (s.f[i].g → s).
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ret folds a return statement into the summary and fires the
// exported-estimate hook when a sourced float leaves a public entry point.
func (st *taintState) ret(fr *frame, r *ast.ReturnStmt) {
	var ts []Taint
	if len(r.Results) == 0 {
		ts = make([]Taint, len(fr.results))
		for i, obj := range fr.results {
			if obj != nil {
				ts[i] = st.env[obj]
			}
		}
	} else {
		ts = st.tupleValues(fr, r.Results, fr.sig.Results().Len())
	}
	if !fr.top {
		return // a literal's returns flow through dynamic call sites, not the summary
	}
	for i, t := range ts {
		if i >= len(st.sum.Results) {
			break
		}
		st.sum.Results[i] = st.sum.Results[i].Union(t)
		if t.Kinds != 0 && st.hooks != nil && st.hooks.exportedReturn != nil &&
			fr.node.Fn != nil && fr.node.Fn.Exported() &&
			carriesFloat(fr.sig.Results().At(i).Type()) {
			st.hooks.exportedReturn(r.Pos(), t.Kinds, fr.node.Fn.Name())
		}
	}
}

// rangeStmt binds the iteration variables: ranging over a map adds the
// map-order source; ranging over a tainted container propagates its taint
// to the element (index variables over slices stay clean — 0..n-1 is
// deterministic).
func (st *taintState) rangeStmt(fr *frame, r *ast.RangeStmt) {
	t := st.expr(fr, r.X)
	var keyT, valT Taint
	switch st.pkg.Info.TypeOf(r.X).Underlying().(type) {
	case *types.Map:
		keyT = t.Union(Taint{Kinds: SrcMapOrder})
		valT = keyT
	case *types.Slice, *types.Array, *types.Pointer:
		valT = t
	case *types.Chan:
		keyT = t
	case *types.Basic: // string or go1.22 range-over-int
		keyT, valT = Taint{}, t
	default:
		keyT, valT = t, t
	}
	if r.Key != nil {
		st.assignTo(fr, r.Key, keyT)
	}
	if r.Value != nil {
		st.assignTo(fr, r.Value, valT)
	}
	st.block(fr, r.Body)
}

// tupleValues evaluates an Rhs list that may be a single multi-result
// call feeding several Lhs slots.
func (st *taintState) tupleValues(fr *frame, rhs []ast.Expr, want int) []Taint {
	if len(rhs) == 1 && want > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			return pad(st.call(fr, call), want)
		}
		// v, ok := m[k] / x.(T) / <-ch: both slots get the source's taint.
		t := st.expr(fr, rhs[0])
		ts := make([]Taint, want)
		for i := range ts {
			ts[i] = t
		}
		return ts
	}
	ts := make([]Taint, 0, len(rhs))
	for _, e := range rhs {
		ts = append(ts, st.expr(fr, e))
	}
	return pad(ts, want)
}

func pad(ts []Taint, want int) []Taint {
	for len(ts) < want {
		ts = append(ts, Taint{})
	}
	return ts
}

// --- expressions ---

func (st *taintState) obj(id *ast.Ident) types.Object {
	if o := st.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return st.pkg.Info.Defs[id]
}

// expr returns the taint of a single-valued expression, walking nested
// calls for their sink side effects.
func (st *taintState) expr(fr *frame, e ast.Expr) Taint {
	switch x := e.(type) {
	case *ast.Ident:
		return st.env[st.obj(x)]
	case *ast.BasicLit:
		return Taint{}
	case *ast.FuncLit:
		// Analyze the literal inline: captured variables share env with
		// this frame, so taint flows in and out of the closure; the
		// literal's own params carry no bits.
		if lit := st.eng.graph.ByLit[x]; lit != nil {
			st.block(st.newFrame(lit, lit.Type(), false), lit.Body())
		}
		return Taint{}
	case *ast.CallExpr:
		ts := st.call(fr, x)
		if len(ts) > 0 {
			return ts[0]
		}
		return Taint{}
	case *ast.BinaryExpr:
		return st.expr(fr, x.X).Union(st.expr(fr, x.Y))
	case *ast.UnaryExpr:
		return st.expr(fr, x.X)
	case *ast.ParenExpr:
		return st.expr(fr, x.X)
	case *ast.StarExpr:
		return st.expr(fr, x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := st.obj(id).(*types.PkgName); isPkg {
				return Taint{} // qualified identifier; globals are not tracked
			}
		}
		return st.expr(fr, x.X)
	case *ast.IndexExpr:
		return st.expr(fr, x.X).Union(st.expr(fr, x.Index))
	case *ast.IndexListExpr:
		return st.expr(fr, x.X)
	case *ast.SliceExpr:
		t := st.expr(fr, x.X)
		for _, ix := range []ast.Expr{x.Low, x.High, x.Max} {
			if ix != nil {
				t = t.Union(st.expr(fr, ix))
			}
		}
		return t
	case *ast.CompositeLit:
		var t Taint
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t = t.Union(st.expr(fr, kv.Value))
				continue
			}
			t = t.Union(st.expr(fr, elt))
		}
		return t
	case *ast.TypeAssertExpr:
		return st.expr(fr, x.X)
	case *ast.KeyValueExpr:
		return st.expr(fr, x.Value)
	default:
		return Taint{}
	}
}

// call evaluates a call expression: sources, sanitizers, summary
// substitution, sink parameters, and the conservative fallback for
// everything the resolver cannot see into.
func (st *taintState) call(fr *frame, call *ast.CallExpr) []Taint {
	info := st.pkg.Info
	// Type conversion: taint passes through unchanged.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []Taint{st.expr(fr, call.Args[0])}
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := st.obj(id).(*types.Builtin); isB {
			return st.builtin(fr, id.Name, call)
		}
	}
	// Evaluate arguments once (receiver of a method call is arg slot 0).
	fn := calleeFuncInfo(info, call)
	var argT []Taint
	if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			argT = append(argT, st.expr(fr, sel.X))
		} else {
			argT = append(argT, Taint{}) // method value call; receiver unknown
		}
	} else {
		// Calls through arbitrary expressions still need their Fun walked
		// (e.g. an immediately-invoked literal).
		st.expr(fr, call.Fun)
	}
	for _, a := range call.Args {
		argT = append(argT, st.expr(fr, a))
	}
	allArgs := Taint{}
	for _, t := range argT {
		allArgs = allArgs.Union(t)
	}
	nres := 1
	if sig, ok := info.TypeOf(call).(*types.Tuple); ok {
		nres = sig.Len()
	}
	if fn == nil {
		return uniform(allArgs, nres) // dynamic call: anything the args carry may come back
	}

	// External sources, sanitizers, and the obs label sink.
	if ts, handled := st.special(fr, fn, call, argT, allArgs, nres); handled {
		return ts
	}

	// Module callee(s): substitute summaries. Interface calls union every
	// CHA-resolved implementation.
	sums := st.calleeSummaries(fn)
	if len(sums) == 0 {
		return uniform(allArgs, nres) // no body in view: conservative propagate
	}
	out := make([]Taint, nres)
	var acc, label uint64
	for _, sum := range sums {
		for i := 0; i < nres && i < len(sum.Results); i++ {
			out[i] = out[i].Union(st.substitute(sum.Results[i], argT))
		}
		acc |= sum.AccSinkParams
		label |= sum.LabelSinkParams
	}
	st.callSinks(fn, call, argT, acc, label)
	return out
}

// substitute maps a callee-space taint into the caller: source kinds pass
// through, parameter bits pull in the corresponding argument taints.
func (st *taintState) substitute(t Taint, argT []Taint) Taint {
	out := Taint{Kinds: t.Kinds}
	for i, at := range argT {
		if t.Params&paramBit(i) != 0 {
			out = out.Union(at)
		}
	}
	// Arguments beyond bit 63 (or variadic overflow) fold into the last bit.
	if len(argT) > 64 && t.Params&paramBit(63) != 0 {
		for _, at := range argT[63:] {
			out = out.Union(at)
		}
	}
	return out
}

// callSinks fires/propagates the callee's sink parameters against the
// actual arguments.
func (st *taintState) callSinks(fn *types.Func, call *ast.CallExpr, argT []Taint, acc, label uint64) {
	for i, at := range argT {
		if at.Empty() {
			continue
		}
		if acc&paramBit(i) != 0 {
			st.sinkAcc(call.Pos(), at, fn.Name())
		}
		if label&paramBit(i) != 0 {
			st.sinkLabel(call.Pos(), at, fn.Name())
		}
	}
}

// calleeSummaries resolves a callee to its summary set: one for a static
// module call, the CHA union for interface methods, none for externals.
func (st *taintState) calleeSummaries(fn *types.Func) []*FuncSummary {
	if n := st.eng.graph.ByFunc[fn]; n != nil {
		if s := st.eng.sums[fn]; s != nil {
			return []*FuncSummary{s}
		}
		return []*FuncSummary{{}} // first iteration: optimistic empty summary
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			var out []*FuncSummary
			for _, impl := range st.eng.graph.implementers(iface, fn.Name()) {
				if s := st.eng.sums[impl.Fn]; s != nil {
					out = append(out, s)
				}
			}
			return out
		}
	}
	return nil
}

// special handles well-known external callees: nondeterminism sources,
// sort sanitizers, and the obs metric-name sink. Returns handled=false for
// everything else.
func (st *taintState) special(fr *frame, fn *types.Func, call *ast.CallExpr, argT []Taint, allArgs Taint, nres int) ([]Taint, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil, false
	}
	path := pkg.Path()
	recv := fn.Type().(*types.Signature).Recv()
	switch path {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return uniform(allArgs.Union(Taint{Kinds: SrcTime}), nres), true
		}
	case "math/rand", "math/rand/v2":
		if recv == nil {
			switch fn.Name() {
			case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
				// Constructors: rawrand polices these; the value itself is a
				// seeded generator, not a draw.
			default:
				return uniform(allArgs.Union(Taint{Kinds: SrcRand}), nres), true
			}
		}
	case "sort", "slices":
		if recv == nil && len(call.Args) > 0 && isSortName(fn.Name()) {
			// Sorting establishes a deterministic order: cleanse the sorted
			// container's object.
			if obj := rootObj(st.pkg, call.Args[0]); obj != nil {
				st.set(obj, Taint{}, true)
			}
			return uniform(Taint{}, nres), true
		}
	case "maps":
		switch fn.Name() {
		case "Keys", "Values":
			return uniform(allArgs.Union(Taint{Kinds: SrcMapOrder}), nres), true
		}
	case "fmt":
		if recv == nil && (strings.HasPrefix(fn.Name(), "Sprint") || strings.HasPrefix(fn.Name(), "Append")) {
			t := allArgs
			if formatsPointer(st.pkg, call) {
				t = t.Union(Taint{Kinds: SrcPtr})
			}
			return uniform(t, nres), true
		}
	}
	if strings.HasSuffix(path, "internal/obs") {
		if idx, ok := obsNameArg(fn); ok && idx < len(argT) {
			st.sinkLabel(call.Pos(), argT[idx], fn.Name())
		}
	}
	return nil, false
}

// isSortName matches the sort/slices entry points that impose an order.
func isSortName(name string) bool {
	switch name {
	case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable",
		"SortFunc", "SortStableFunc":
		return true
	}
	return false
}

// obsNameArg returns the index (in receiver-first arg space) of the metric
// or span name parameter of an internal/obs entry point.
func obsNameArg(fn *types.Func) (int, bool) {
	sig := fn.Type().(*types.Signature)
	switch fn.Name() {
	case "Add", "Set", "Observe", "Span", "Counter", "Gauge", "Histogram":
		if sig.Params().Len() > 0 && types.Identical(sig.Params().At(0).Type(), types.Typ[types.String]) {
			if sig.Recv() != nil {
				return 1, true
			}
			return 0, true
		}
	}
	return 0, false
}

// formatsPointer reports whether a fmt call renders pointer identity: a %p
// verb, or a bare pointer/func/channel operand (printed as an address).
func formatsPointer(pkg *Package, call *ast.CallExpr) bool {
	for i, a := range call.Args {
		if i == 0 {
			if lit, ok := ast.Unparen(a).(*ast.BasicLit); ok && lit.Kind == token.STRING &&
				strings.Contains(lit.Value, "%p") {
				return true
			}
		}
		switch pkg.Info.TypeOf(a).Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Signature:
			return true
		}
	}
	return false
}

// builtin models the builtins that matter for flow.
func (st *taintState) builtin(fr *frame, name string, call *ast.CallExpr) []Taint {
	switch name {
	case "len", "cap", "make", "new", "delete", "clear", "close", "panic", "recover", "print", "println":
		for _, a := range call.Args {
			st.expr(fr, a) // walk for nested call side effects
		}
		return []Taint{{}}
	case "copy":
		if len(call.Args) == 2 {
			src := st.expr(fr, call.Args[1])
			if !src.Empty() {
				st.set(rootObj(st.pkg, call.Args[0]), src, false)
			}
		}
		return []Taint{{}}
	default: // append, min, max, complex, real, imag...
		var t Taint
		for _, a := range call.Args {
			t = t.Union(st.expr(fr, a))
		}
		return []Taint{t}
	}
}

// uniform returns n copies of t.
func uniform(t Taint, n int) []Taint {
	if n <= 0 {
		n = 1
	}
	ts := make([]Taint, n)
	for i := range ts {
		ts[i] = t
	}
	return ts
}

// calleeFuncInfo resolves a call's static callee from a types.Info (the
// Pass-independent version of calleeFunc).
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
