package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WorkerPurity is the static complement to `go test -race` for the
// estimation engine's determinism contract: closures handed to the
// internal/parallel pool run concurrently, and the pool's README is
// explicit — each task writes its result into an index-addressed slot and
// the caller reduces the slots in index order. The rule finds every
// worker closure passed to parallel.For/ForErr/ForRec/ForErrRec and
// reports:
//
//   - a write to a captured variable that is not an element store into a
//     captured slice/array (the blessed slot pattern): plain assignments,
//     compound assignments, x++/x--, field writes, pointer stores, and
//     map element stores from inside a worker all race with sibling
//     workers or make the result depend on scheduling order;
//   - an assignment to a package-level variable anywhere in the functions
//     reachable from a worker closure through the call graph — shared
//     process state mutated from inside a fan-out, however many calls
//     deep. Mutation of shared state belongs in sync/atomic values (whose
//     updates are method calls, not assignments) or after the fan-out
//     joins.
//
// Receiver-field mutation behind a callee's own mutex is out of static
// scope (that is what the -race gate is for); the rule aims at the
// scheduling-order bug class -race cannot see: racy-but-unsynchronized
// float reductions that happen to survive the detector.
var WorkerPurity = &Analyzer{
	Name:      "workerpurity",
	Doc:       "parallel worker closures mutate shared state only via index-addressed slots or sync/atomic",
	RunModule: runWorkerPurity,
}

// poolEntryPoints are the internal/parallel fan-out functions whose last
// argument is the worker closure.
var poolEntryPoints = map[string]bool{"For": true, "ForErr": true, "ForRec": true, "ForErrRec": true}

func runWorkerPurity(mp *ModulePass) {
	graph := mp.Graph()
	var roots []*CGNode
	// Find every worker closure: a function literal passed as the worker
	// argument of a pool entry point (the pool package itself excluded —
	// it owns the scheduling).
	for _, n := range graph.Nodes {
		if strings.HasSuffix(n.Pkg.Path, parallelPkgSuffix) {
			continue
		}
		inspectOwn(n.Body(), func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFuncInfo(n.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), parallelPkgSuffix) ||
				!poolEntryPoints[fn.Name()] || len(call.Args) == 0 {
				return
			}
			switch arg := ast.Unparen(call.Args[len(call.Args)-1]).(type) {
			case *ast.FuncLit:
				if lit := graph.ByLit[arg]; lit != nil {
					roots = append(roots, lit)
					checkWorkerBody(mp, lit)
				}
			case *ast.Ident:
				if fnObj, ok := n.Pkg.Info.Uses[arg].(*types.Func); ok {
					if node := graph.ByFunc[fnObj]; node != nil {
						roots = append(roots, node)
					}
				}
			}
		})
	}
	if len(roots) == 0 {
		return
	}
	// Interprocedural half: package-level state mutated anywhere reachable
	// from a worker. Writes lexically inside a worker literal are already
	// covered (with more specific messages) by checkWorkerBody, so nodes
	// contained in a root literal are skipped. Index stores into
	// package-level slices stay allowed for shape-consistency with the slot
	// pattern; map stores and direct/field/pointer writes are not.
	reach := graph.Reachable(roots)
	insideRoot := func(pos token.Pos) bool {
		for _, r := range roots {
			if r.Lit != nil && pos >= r.Lit.Pos() && pos <= r.Lit.End() {
				return true
			}
		}
		return false
	}
	seen := map[token.Pos]bool{}
	for _, n := range graph.Nodes {
		if !reach[n] || insideRoot(n.Pos()) {
			continue
		}
		inspectOwn(n.Body(), func(x ast.Node) {
			var lhs []ast.Expr
			switch s := x.(type) {
			case *ast.AssignStmt:
				lhs = s.Lhs
			case *ast.IncDecStmt:
				lhs = []ast.Expr{s.X}
			default:
				return
			}
			for _, l := range lhs {
				if seen[l.Pos()] {
					continue
				}
				if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if t := n.Pkg.Info.TypeOf(idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); !isMap {
							continue // slice/array slot store
						}
					}
				}
				obj := rootObj(n.Pkg, l)
				if obj == nil {
					continue
				}
				if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
					seen[l.Pos()] = true
					mp.Reportf(l.Pos(), "package-level %s is assigned inside %s, which is reachable from a parallel worker closure; move the write outside the fan-out or use a sync/atomic value", obj.Name(), n.Name())
				}
			}
		})
	}
}

// checkWorkerBody flags impure writes lexically inside one worker closure
// (nested literals included — they run on the worker's goroutine).
func checkWorkerBody(mp *ModulePass, root *CGNode) {
	pkg := root.Pkg
	captured := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
			return true
		}
		return obj.Pos() < root.Lit.Pos() || obj.Pos() > root.Lit.End()
	}
	ast.Inspect(root.Lit.Body, func(x ast.Node) bool {
		var targets []ast.Expr
		var what string
		switch s := x.(type) {
		case *ast.AssignStmt:
			targets = s.Lhs
			what = "assigned"
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				what = "accumulated into"
			}
		case *ast.IncDecStmt:
			targets = []ast.Expr{s.X}
			what = "accumulated into"
		default:
			return true
		}
		for _, l := range targets {
			switch lv := ast.Unparen(l).(type) {
			case *ast.Ident:
				if obj := objectOfInfo(pkg, lv); captured(obj) && lv.Name != "_" {
					mp.Reportf(l.Pos(), "captured variable %s is %s inside a parallel worker; workers write results into index-addressed slots (slot[i] = ...) and the caller reduces in index order", lv.Name, what)
				}
			case *ast.IndexExpr:
				obj := rootObj(pkg, lv.X)
				if !captured(obj) {
					continue
				}
				if t := pkg.Info.TypeOf(lv.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						mp.Reportf(l.Pos(), "captured map %s is written inside a parallel worker; concurrent map writes race — write into an index-addressed slice slot and merge after the join", types.ExprString(lv.X))
					}
					// Slice/array element stores are the blessed slot
					// pattern.
				}
			case *ast.SelectorExpr:
				if obj := rootObj(pkg, lv); captured(obj) && isFieldSelector(pkg, lv) {
					mp.Reportf(l.Pos(), "field %s of a captured value is %s inside a parallel worker; shared-struct mutation races with sibling workers — use a per-task slot or sync/atomic", types.ExprString(lv), what)
				}
			case *ast.StarExpr:
				if obj := rootObj(pkg, lv.X); captured(obj) {
					mp.Reportf(l.Pos(), "captured pointer %s is stored through inside a parallel worker; give each task its own slot instead", types.ExprString(lv.X))
				}
			}
		}
		return true
	})
}

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isFieldSelector reports whether sel selects a struct field.
func isFieldSelector(pkg *Package, sel *ast.SelectorExpr) bool {
	if s, ok := pkg.Info.Selections[sel]; ok {
		return s.Kind() == types.FieldVal
	}
	return false
}

// objectOfInfo resolves an identifier in pkg (uses, then defs).
func objectOfInfo(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// parallelPkgSuffix identifies the worker pool package.
const parallelPkgSuffix = "internal/parallel"
