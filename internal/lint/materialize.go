package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Materialize protects the executor's streaming discipline. Since the
// streaming batch executor landed, σ/⋈ pipelines count and drain through
// StreamCount / StreamCountOpts / StreamEval, which hold at most one
// batch per operator plus hash build sides; algebra.Eval materializes
// every intermediate relation and is kept as the executor's oracle and
// as the escape hatch for callers that genuinely need a fully
// materialized result they will index repeatedly. The rule flags, outside
// internal/algebra itself, every call to that materializing entry point.
//
// Deliberate uses (exact-answer export paths, oracles) carry a
// //lint:ignore materialize directive with the justification.
var Materialize = &Analyzer{
	Name: "materialize",
	Doc:  "relational results stream through StreamCount/StreamEval; materializing Eval is an annotated escape hatch",
	Run:  runMaterialize,
}

// algebraPkgSuffix identifies the executor package, which owns both
// evaluators and is free to call the materializing one (the streaming
// property tests depend on it as the oracle).
const algebraPkgSuffix = "internal/algebra"

func runMaterialize(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, algebraPkgSuffix) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Name() != "Eval" {
				return true
			}
			if !strings.HasSuffix(fn.Pkg().Path(), algebraPkgSuffix) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			p.Reportf(call.Pos(), "algebra.Eval materializes every intermediate relation; stream with StreamCount/StreamCountOpts (cardinalities) or StreamEval (rows)")
			return true
		})
	}
}
