package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (detflow, ctxflow, workerpurity) run over. Nodes are function
// bodies — declared functions and methods plus function literals — and
// edges are resolved call sites. Resolution is deliberately conservative:
//
//   - direct calls to module functions resolve statically;
//   - interface method calls resolve CHA-style to every concrete method in
//     the module whose receiver type implements the interface (class
//     hierarchy analysis: no points-to information, so every implementer
//     is a possible callee);
//   - an immediately-invoked function literal resolves to that literal;
//   - calls through plain function values stay unresolved (Dynamic edge
//     with a nil callee) — analyzers treat them as "anything may run";
//   - a literal nested inside a body is linked to its enclosing node with
//     a containment edge, so reachability over the graph includes closures
//     a reachable function may hand out.
//
// The graph is a whole-run artifact: lint.Run builds it once over the
// loaded package set and every module analyzer shares it.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared module function.
	EdgeStatic EdgeKind = iota
	// EdgeCHA is an interface method call resolved by class hierarchy
	// analysis to one possible concrete method.
	EdgeCHA
	// EdgeLit is an immediately-invoked function literal.
	EdgeLit
	// EdgeContains links an enclosing body to a literal declared in it.
	EdgeContains
	// EdgeDynamic is a call through a function value the resolver cannot
	// name; Callee is nil.
	EdgeDynamic
)

// CGEdge is one resolved call site.
type CGEdge struct {
	Kind   EdgeKind
	Site   *ast.CallExpr // nil for EdgeContains
	Callee *CGNode       // nil for EdgeDynamic
}

// CGNode is one function body in the call graph.
type CGNode struct {
	// Fn is the declared function or method, nil for literals.
	Fn *types.Func
	// Decl is the declaration, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the function literal, nil for declared functions.
	Lit *ast.FuncLit
	// Parent is the node lexically enclosing a literal, nil otherwise.
	Parent *CGNode
	// Pkg is the package the body lives in.
	Pkg *Package
	// Out are the node's resolved call sites in source order.
	Out []CGEdge
}

// Body returns the node's statement body.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Type returns the node's signature.
func (n *CGNode) Type() *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	if t, ok := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature); ok {
		return t
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// Pos returns the body's source position.
func (n *CGNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Name renders a stable human-readable label: "pkg.Func",
// "pkg.(Recv).Method", or "<enclosing>$litN" for literals.
func (n *CGNode) Name() string {
	if n.Lit != nil {
		idx := 0
		for _, e := range n.Parent.Out {
			if e.Kind != EdgeContains {
				continue
			}
			if e.Callee == n {
				break
			}
			idx++
		}
		return fmt.Sprintf("%s$lit%d", n.Parent.Name(), idx+1)
	}
	name := n.Fn.Name()
	if recv := n.Type().Recv(); recv != nil {
		name = "(" + recvTypeName(recv.Type()) + ")." + name
	}
	short := n.Pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	return short + "." + name
}

// CallGraph is the module-wide graph over a loaded package set.
type CallGraph struct {
	// Nodes lists every body in deterministic (package, position) order.
	Nodes []*CGNode
	// ByFunc maps declared module functions with bodies to their nodes.
	ByFunc map[*types.Func]*CGNode
	// ByLit maps function literals to their nodes.
	ByLit map[*ast.FuncLit]*CGNode

	chaCache map[chaKey][]*CGNode
	named    []types.Type // module named types, CHA candidate receivers
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// BuildCallGraph constructs the graph over pkgs. It never fails: whatever
// the resolver cannot name becomes a Dynamic edge.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		ByFunc:   map[*types.Func]*CGNode{},
		ByLit:    map[*ast.FuncLit]*CGNode{},
		chaCache: map[chaKey][]*CGNode{},
	}
	// Pass 1: one node per declared body, plus the CHA candidate set (every
	// package-level named type could be an interface call's receiver).
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				g.named = append(g.named, tn.Type())
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes = append(g.Nodes, node)
				g.ByFunc[fn] = node
			}
		}
	}
	// Pass 2a: register every nested literal (node + Parent link +
	// containment edge) so call resolution can name them.
	for _, node := range append([]*CGNode(nil), g.Nodes...) {
		g.registerLits(node)
	}
	// Pass 2b: resolve each body's own call sites (nested literals own
	// theirs).
	for _, node := range g.Nodes {
		g.resolveCalls(node)
	}
	return g
}

// registerLits creates nodes for the literals directly nested in node's
// body, recursively.
func (g *CallGraph) registerLits(node *CGNode) {
	inspectOwn(node.Body(), func(n ast.Node) {
		if x, ok := n.(*ast.FuncLit); ok {
			lit := &CGNode{Lit: x, Parent: node, Pkg: node.Pkg}
			g.Nodes = append(g.Nodes, lit)
			g.ByLit[x] = lit
			node.Out = append(node.Out, CGEdge{Kind: EdgeContains, Callee: lit})
			g.registerLits(lit)
		}
	})
}

// resolveCalls adds edges for the call sites lexically owned by node (not
// those inside nested literals).
func (g *CallGraph) resolveCalls(node *CGNode) {
	inspectOwn(node.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			node.Out = append(node.Out, g.resolve(node.Pkg, call)...)
		}
	})
}

// inspectOwn visits body's nodes without descending into nested function
// literals (each literal's subtree belongs to the literal's own node) —
// except a literal's declaration expression itself, which is visited.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		fn(n)
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// resolve maps one call site to its edges.
func (g *CallGraph) resolve(pkg *Package, call *ast.CallExpr) []CGEdge {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Registered as a containment edge when the walk reaches the
		// literal; the invocation edge is added here.
		if lit, ok := g.ByLit[fun]; ok {
			return []CGEdge{{Kind: EdgeLit, Site: call, Callee: lit}}
		}
		// Literal not yet walked (it is our own subtree); defer to the
		// containment edge for reachability.
		return nil
	case *ast.Ident:
		obj := pkg.Info.Uses[fun]
		switch o := obj.(type) {
		case *types.Func:
			if callee, ok := g.ByFunc[o]; ok {
				return []CGEdge{{Kind: EdgeStatic, Site: call, Callee: callee}}
			}
			return nil // stdlib or bodiless
		case *types.Builtin, *types.TypeName, nil:
			return nil
		default:
			// A variable of function type.
			return []CGEdge{{Kind: EdgeDynamic, Site: call}}
		}
	case *ast.SelectorExpr:
		obj := pkg.Info.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			if _, isVar := obj.(*types.Var); isVar {
				return []CGEdge{{Kind: EdgeDynamic, Site: call}}
			}
			return nil
		}
		if callee, ok := g.ByFunc[fn]; ok {
			return []CGEdge{{Kind: EdgeStatic, Site: call, Callee: callee}}
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return nil
		}
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			var edges []CGEdge
			for _, impl := range g.implementers(iface, fn.Name()) {
				edges = append(edges, CGEdge{Kind: EdgeCHA, Site: call, Callee: impl})
			}
			if edges == nil {
				edges = []CGEdge{{Kind: EdgeDynamic, Site: call}}
			}
			return edges
		}
		return nil // method on a non-module concrete type (stdlib)
	default:
		// Call through an arbitrary expression (map lookup, field read of
		// function type, immediately-called result...).
		if t := pkg.Info.TypeOf(call.Fun); t != nil {
			if _, ok := t.Underlying().(*types.Signature); ok {
				return []CGEdge{{Kind: EdgeDynamic, Site: call}}
			}
		}
		return nil
	}
}

// implementers resolves an interface method CHA-style: every module named
// type (or pointer to one) that implements iface contributes its concrete
// method, memoized per (interface, method).
func (g *CallGraph) implementers(iface *types.Interface, method string) []*CGNode {
	key := chaKey{iface, method}
	if nodes, ok := g.chaCache[key]; ok {
		return nodes
	}
	var nodes []*CGNode
	for _, t := range g.named {
		var recv types.Type
		switch {
		case types.Implements(t, iface):
			recv = t
		case types.Implements(types.NewPointer(t), iface):
			recv = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			if node, ok := g.ByFunc[fn]; ok {
				nodes = append(nodes, node)
			}
		}
	}
	g.chaCache[key] = nodes
	return nodes
}

// Reachable returns the closure of roots over call and containment edges.
// Dynamic edges contribute nothing (the analyzers that need "anything may
// run" semantics check for them explicitly).
func (g *CallGraph) Reachable(roots []*CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{}
	var visit func(n *CGNode)
	visit = func(n *CGNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Out {
			if e.Callee != nil {
				visit(e.Callee)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
