package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// fixtureAnalyzers maps each golden-fixture package under testdata/src to
// the analyzers that must reproduce its want.txt exactly.
var fixtureAnalyzers = map[string][]*Analyzer{
	"maprangefloat": {MapRangeFloat},
	"maprangerand":  {MapRangeRand},
	"rawrand":       {RawRand},
	"rawgo":         {RawGo},
	"floateq":       {FloatEq},
	"errdrop":       {ErrDrop},
	"badignore":     {ErrDrop},
	"tuplecopy":     {TupleCopy},
	"materialize":   {Materialize},
	"detflow":       {DetFlow},
	"viewescape":    {ViewEscape},
	"ctxflow":       {CtxFlow},
	"workerpurity":  {WorkerPurity},
	"staleignore":   {FloatEq},
	"deprecated":    {Deprecated},
}

// TestFixtures loads every deliberately-broken package under testdata/src
// and checks that its analyzer reports exactly the findings in want.txt —
// no more (false positives on the legal shapes), no fewer (missed bugs),
// and none at suppressed sites.
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != len(fixtureAnalyzers) {
		t.Errorf("testdata/src has %d fixture dirs, fixtureAnalyzers lists %d; keep them in sync", len(dirs), len(fixtureAnalyzers))
	}
	for _, d := range dirs {
		name := d.Name()
		t.Run(name, func(t *testing.T) {
			analyzers, ok := fixtureAnalyzers[name]
			if !ok {
				t.Fatalf("no analyzer registered for fixture %q", name)
			}
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := loader.LoadDir("fixture/"+name, dir)
			if err != nil {
				t.Fatal(err)
			}
			got := formatFindings(Run(pkgs, analyzers))
			want := readWant(t, filepath.Join(dir, "want.txt"))
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("findings mismatch\n got:\n  %s\nwant:\n  %s",
					strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}
		})
	}
}

// formatFindings renders findings as "basename:line: rule" for comparison
// against want.txt.
func formatFindings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)
	}
	sort.Strings(out)
	return out
}

// readWant parses a want.txt: one "file:line: rule" per line.
func readWant(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	return lines
}

// TestRepoClean type-checks the entire module and asserts that every
// analyzer is clean: the invariants the rules encode hold on the real
// tree (with suppressions only at sites whose comments justify them).
// This is the regression test that keeps `make lint` green.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("LoadAll found only %d packages; the module walk is broken", len(pkgs))
	}
	findings := Run(pkgs, All())
	Relativize(findings, loader.ModuleRoot())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestLintRuntimeBudget asserts the full lint run (module load, call
// graph, taint fixpoint, all thirteen rules) stays inside a wall-clock
// budget. The interprocedural engine must remain cheap enough to sit in
// `make check` on every change; a blowup here means the CHA resolver or
// the taint fixpoint stopped converging quickly and the framework — not
// the budget — is what needs fixing.
func TestLintRuntimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	const budget = 30 * time.Second
	start := time.Now()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	Run(pkgs, All())
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("full lint run took %s, over the %s budget", elapsed.Round(time.Millisecond), budget)
	} else {
		t.Logf("full lint run: %s (budget %s)", elapsed.Round(time.Millisecond), budget)
	}
}

// TestAnalyzerSet pins the shipped rule set: thirteen analyzers, stable
// names, non-empty docs, and exactly one of Run / RunModule each.
func TestAnalyzerSet(t *testing.T) {
	want := []string{
		"maprange-float", "maprange-rand", "rawrand", "rawgo", "floateq", "errdrop", "tuplecopy", "materialize",
		"detflow", "viewescape", "ctxflow", "workerpurity", "deprecated",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q must have a doc line", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must have exactly one of Run and RunModule", a.Name)
		}
	}
}

// TestSuppression covers the directive grammar directly.
func TestSuppression(t *testing.T) {
	cases := []struct {
		d    ignoreDirective
		rule string
		line int
		want bool
	}{
		{ignoreDirective{rules: []string{"floateq"}, line: 10}, "floateq", 10, true},  // same line
		{ignoreDirective{rules: []string{"floateq"}, line: 10}, "floateq", 11, true},  // line below
		{ignoreDirective{rules: []string{"floateq"}, line: 10}, "floateq", 12, false}, // too far
		{ignoreDirective{rules: []string{"floateq"}, line: 10}, "rawgo", 11, false},   // wrong rule
		{ignoreDirective{rules: []string{"floateq", "rawgo"}, line: 10}, "rawgo", 11, true},
	}
	for i, c := range cases {
		if got := c.d.suppresses(c.rule, c.line); got != c.want {
			t.Errorf("case %d: suppresses(%q, %d) = %v, want %v", i, c.rule, c.line, got, c.want)
		}
	}
}
