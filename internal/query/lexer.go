// Package query implements the small functional query language the
// cmd/relest CLI exposes over the algebra:
//
//	count(join(select(orders, amount > 100), customers, on cust = id))
//	count(except(R, S))
//	distinct(employees.dept_id)
//
// Grammar (case-insensitive keywords):
//
//	query    := "count" "(" relexpr ")"
//	          | "distinct" "(" ident "." ident { "," ident } ")"
//	relexpr  := ident
//	          | "select"    "(" relexpr "," cond ")"
//	          | "project"   "(" relexpr "," ident { "," ident } ")"
//	          | "join"      "(" relexpr "," relexpr "," "on" eq { "," eq } ")"
//	          | "product"   "(" relexpr "," relexpr ")"
//	          | "union"     "(" relexpr "," relexpr ")"
//	          | "intersect" "(" relexpr "," relexpr ")"
//	          | "except"    "(" relexpr "," relexpr ")"
//	eq       := ident "=" ident
//	cond     := cmp { "and" cmp }
//	cmp      := ident op (literal | ident)
//	op       := "=" | "!=" | "<" | "<=" | ">" | ">="
//	literal  := INT | FLOAT | 'string'
//
// A cmp whose right side is an identifier compares two columns; otherwise
// it compares a column with the literal.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // comparison operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '=' || c == '<' || c == '>' || c == '!':
			j := i + 1
			if j < len(input) && input[j] == '=' {
				j++
			}
			op := input[i:j]
			switch op {
			case "=", "!=", "<", "<=", ">", ">=":
				toks = append(toks, token{tokOp, op, i})
			default:
				return nil, fmt.Errorf("query: bad operator %q at offset %d", op, i)
			}
			i = j
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			isFloat := false
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				if input[j] == '.' {
					if isFloat {
						break
					}
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// keyword reports whether an identifier token matches the keyword
// (case-insensitive).
func keyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
