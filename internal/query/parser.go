package query

import (
	"fmt"
	"strconv"
	"strings"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// Statement is a parsed query: a COUNT/SUM/AVG over a bound algebra
// expression, or a DISTINCT over columns of a base relation.
type Statement struct {
	// Agg is "count", "sum" or "avg" for aggregate queries; "" for
	// distinct queries.
	Agg string
	// Expr is the bound expression for aggregate queries.
	Expr *algebra.Expr
	// AggCol is the aggregated output column for sum/avg.
	AggCol string
	// DistinctRel and DistinctCols are set for distinct(R.a, b, ...) queries.
	DistinctRel  string
	DistinctCols []string
}

// IsDistinct reports whether the statement is a distinct-count query.
func (s *Statement) IsDistinct() bool { return s.Expr == nil }

// SchemaProvider resolves base relation names to schemas at parse time.
// Both algebra.Catalog implementations and estimator synopses satisfy it
// via small adapters; cmd/relest uses the loaded CSV relations.
type SchemaProvider interface {
	Schema(name string) (*relation.Schema, bool)
}

// CatalogSchemas adapts an algebra.Catalog into a SchemaProvider.
type CatalogSchemas struct{ Cat algebra.Catalog }

// Schema implements SchemaProvider.
func (c CatalogSchemas) Schema(name string) (*relation.Schema, bool) {
	r, ok := c.Cat.Relation(name)
	if !ok {
		return nil, false
	}
	return r.Schema(), true
}

// Parse parses and binds a query against the provider's schemas.
func Parse(input string, schemas SchemaProvider) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, schemas: schemas}
	st, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input starting at %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks    []token
	pos     int
	schemas SchemaProvider
	joinSeq int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("query: expected %s, got %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Statement, error) {
	t := p.next()
	switch {
	case keyword(t, "count"):
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		e, err := p.parseRelExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &Statement{Agg: "count", Expr: e}, nil
	case keyword(t, "sum"), keyword(t, "avg"), keyword(t, "group"):
		agg := strings.ToLower(t.text)
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		e, err := p.parseRelExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if e.Schema().ColumnIndex(col.text) < 0 {
			return nil, fmt.Errorf("query: no column %q in expression schema %s", col.text, e.Schema())
		}
		return &Statement{Agg: agg, Expr: e, AggCol: col.text}, nil
	case keyword(t, "distinct"):
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		rel, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		cols := []string{col.text}
		for p.peek().kind == tokComma {
			p.next()
			c, err := p.expect(tokIdent, "column name")
			if err != nil {
				return nil, err
			}
			cols = append(cols, c.text)
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		schema, ok := p.schemas.Schema(rel.text)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", rel.text)
		}
		for _, c := range cols {
			if schema.ColumnIndex(c) < 0 {
				return nil, fmt.Errorf("query: no column %q in relation %q", c, rel.text)
			}
		}
		return &Statement{DistinctRel: rel.text, DistinctCols: cols}, nil
	default:
		return nil, fmt.Errorf("query: expected count, sum, avg or distinct, got %s", t)
	}
}

func (p *parser) parseRelExpr() (*algebra.Expr, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("query: expected relation or operator, got %s at offset %d", t, t.pos)
	}
	lower := strings.ToLower(t.text)
	switch lower {
	case "select", "project", "join", "product", "union", "intersect", "except":
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		switch lower {
		case "select":
			child, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			pred, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return algebra.Select(child, pred)
		case "project":
			child, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			var cols []string
			for p.peek().kind == tokComma {
				p.next()
				c, err := p.expect(tokIdent, "column name")
				if err != nil {
					return nil, err
				}
				cols = append(cols, c.text)
			}
			if len(cols) == 0 {
				return nil, fmt.Errorf("query: project needs at least one column")
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return algebra.Project(child, cols...)
		case "join":
			left, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			right, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			on, err := p.expect(tokIdent, "'on'")
			if err != nil {
				return nil, err
			}
			if !keyword(on, "on") {
				return nil, fmt.Errorf("query: expected 'on', got %s", on)
			}
			var conds []algebra.On
			for {
				l, err := p.expect(tokIdent, "left join column")
				if err != nil {
					return nil, err
				}
				op, err := p.expect(tokOp, "'='")
				if err != nil {
					return nil, err
				}
				if op.text != "=" {
					return nil, fmt.Errorf("query: join conditions must use '=', got %q", op.text)
				}
				r, err := p.expect(tokIdent, "right join column")
				if err != nil {
					return nil, err
				}
				conds = append(conds, algebra.On{Left: l.text, Right: r.text})
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			p.joinSeq++
			return algebra.Join(left, right, conds, nil, fmt.Sprintf("r%d", p.joinSeq))
		case "product":
			left, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			right, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			p.joinSeq++
			return algebra.Product(left, right, fmt.Sprintf("r%d", p.joinSeq))
		default: // union, intersect, except
			left, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			right, err := p.parseRelExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			switch lower {
			case "union":
				return algebra.Union(left, right)
			case "intersect":
				return algebra.Intersect(left, right)
			default:
				return algebra.Diff(left, right)
			}
		}
	default:
		// Base relation reference.
		schema, ok := p.schemas.Schema(t.text)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", t.text)
		}
		return algebra.Base(t.text, schema), nil
	}
}

// parseCondition parses an and-chain of comparisons. It is contextual: the
// column names are validated later by algebra.Select's binding.
func (p *parser) parseCondition() (algebra.Predicate, error) {
	var parts algebra.And
	for {
		cmp, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		parts = append(parts, cmp)
		if keyword(p.peek(), "and") {
			p.next()
			continue
		}
		break
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return parts, nil
}

func (p *parser) parseCmp() (algebra.Predicate, error) {
	col, err := p.expect(tokIdent, "column name")
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	var op algebra.CmpOp
	switch opTok.text {
	case "=":
		op = algebra.EQ
	case "!=":
		op = algebra.NE
	case "<":
		op = algebra.LT
	case "<=":
		op = algebra.LE
	case ">":
		op = algebra.GT
	case ">=":
		op = algebra.GE
	}
	rhs := p.next()
	switch rhs.kind {
	case tokInt:
		v, err := strconv.ParseInt(rhs.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad integer %q: %v", rhs.text, err)
		}
		return algebra.Cmp{Col: col.text, Op: op, Val: relation.Int(v)}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(rhs.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad float %q: %v", rhs.text, err)
		}
		return algebra.Cmp{Col: col.text, Op: op, Val: relation.Float(v)}, nil
	case tokString:
		return algebra.Cmp{Col: col.text, Op: op, Val: relation.Str(rhs.text)}, nil
	case tokIdent:
		if keyword(rhs, "null") {
			return algebra.Cmp{Col: col.text, Op: op, Val: relation.Null()}, nil
		}
		return algebra.ColCmp{A: col.text, Op: op, B: rhs.text}, nil
	default:
		return nil, fmt.Errorf("query: expected literal or column after %q, got %s", opTok.text, rhs)
	}
}
