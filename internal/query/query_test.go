package query

import (
	"strings"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
)

func testCatalog() algebra.MapCatalog {
	rs := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	r := relation.New("R", rs)
	for _, p := range [][2]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}} {
		r.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	ss := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	s := relation.New("S", ss)
	for _, p := range [][2]int64{{3, 30}, {4, 99}, {5, 50}} {
		s.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	ts := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "x", Kind: relation.KindFloat},
	)
	tt := relation.New("T", ts)
	tt.MustAppend(relation.Tuple{relation.Str("hi"), relation.Float(0.5)})
	tt.MustAppend(relation.Tuple{relation.Str("lo"), relation.Float(2.5)})
	return algebra.MapCatalog{"R": r, "S": s, "T": tt}
}

// parseCount parses a count query and returns its exact value.
func parseCount(t *testing.T, q string) int64 {
	t.Helper()
	cat := testCatalog()
	st, err := Parse(q, CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	if st.IsDistinct() {
		t.Fatalf("%q parsed as distinct", q)
	}
	got, err := algebra.Count(st.Expr, cat)
	if err != nil {
		t.Fatalf("eval %q: %v", q, err)
	}
	return got
}

func TestParseCountQueries(t *testing.T) {
	cases := []struct {
		q    string
		want int64
	}{
		{"count(R)", 4},
		{"COUNT(R)", 4},
		{"count(select(R, a >= 2))", 3},
		{"count(select(R, a >= 2 and b < 40))", 2},
		{"count(select(R, a = b))", 0},
		{"count(join(R, S, on a = a))", 2},
		{"count(join(R, S, on a = a, b = b))", 1},
		{"count(product(R, S))", 12},
		{"count(union(R, S))", 6},
		{"count(intersect(R, S))", 1},
		{"count(except(R, S))", 3},
		{"count(except(union(R, S), intersect(R, S)))", 5},
		{"count(select(T, name = 'hi'))", 1},
		{"count(select(T, x < 1.0))", 1},
		{"count(project(R, b))", 4},
		{"count(join(select(R, a > 1), select(S, b != 99), on a = a))", 1},
	}
	for _, c := range cases {
		if got := parseCount(t, c.q); got != c.want {
			t.Errorf("%q = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestParseSumAvg(t *testing.T) {
	cat := testCatalog()
	st, err := Parse("sum(select(R, a >= 2), b)", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "sum" || st.AggCol != "b" || st.IsDistinct() {
		t.Errorf("statement %+v", st)
	}
	st, err = Parse("AVG(R, a)", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "avg" || st.AggCol != "a" {
		t.Errorf("statement %+v", st)
	}
	st, err = Parse("group(join(R, S, on a = a), b)", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "group" || st.AggCol != "b" {
		t.Errorf("statement %+v", st)
	}
	// Aggregated column must exist in the expression's output schema.
	if _, err := Parse("sum(R, zz)", CatalogSchemas{Cat: cat}); err == nil {
		t.Error("unknown aggregate column should fail")
	}
	if _, err := Parse("sum(R)", CatalogSchemas{Cat: cat}); err == nil {
		t.Error("sum without column should fail")
	}
}

func TestParseDistinct(t *testing.T) {
	cat := testCatalog()
	st, err := Parse("distinct(R.a, b)", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDistinct() || st.DistinctRel != "R" || len(st.DistinctCols) != 2 {
		t.Errorf("statement %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"",
		"count",
		"count(R",
		"count(R))",
		"count(nope)",
		"count(select(R))",
		"count(select(R, zz > 1))",
		"count(join(R, S))",
		"count(join(R, S, on a < a))",
		"count(join(R, S, on zz = a))",
		"count(union(R, T))",
		"select(R, a > 1)",
		"count(project(R))",
		"distinct(R)",
		"distinct(R.zz)",
		"distinct(nope.a)",
		"count(select(R, a > ))",
		"count(select(R, a $ 1))",
		"count(select(T, name = 'unterminated))",
		"count(select(R, a >> 1))",
	}
	for _, q := range bad {
		if _, err := Parse(q, CatalogSchemas{Cat: cat}); err == nil {
			t.Errorf("%q should fail to parse", q)
		}
	}
}

func TestParseColumnComparison(t *testing.T) {
	got := parseCount(t, "count(select(R, b > a))")
	if got != 4 {
		t.Errorf("b > a count %d, want 4", got)
	}
	// Null literal.
	got = parseCount(t, "count(select(R, a = null))")
	if got != 0 {
		t.Errorf("null comparison count %d, want 0", got)
	}
}

func TestParseNestedJoinPrefixes(t *testing.T) {
	// Nested joins must not collide on generated column prefixes.
	q := "count(join(join(R, S, on a = a), S, on a = a))"
	if got := parseCount(t, q); got != 2 {
		t.Errorf("%q = %d, want 2", q, got)
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex("select 'hello world' 1.5 -3 <=")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tokIdent, tokString, tokFloat, tokInt, tokOp, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: kind %d, want %d", i, kinds[i], want[i])
		}
	}
	if toks[1].text != "hello world" {
		t.Errorf("string token %q", toks[1].text)
	}
}

func TestStatementEstimable(t *testing.T) {
	// Parsed count queries without π normalize; with π they do not (the
	// CLI routes them to the distinct estimators instead).
	cat := testCatalog()
	st, err := Parse("count(join(R, S, on a = a))", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algebra.Normalize(st.Expr); err != nil {
		t.Errorf("join query should normalize: %v", err)
	}
	st, err = Parse("count(project(R, b))", CatalogSchemas{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algebra.Normalize(st.Expr); err == nil {
		t.Error("π query should not normalize")
	}
	if !strings.Contains(st.Expr.String(), "project") {
		t.Errorf("expr string %q", st.Expr.String())
	}
}
