package query

import "testing"

// FuzzParse drives the lexer and parser with arbitrary strings against
// the fixed test catalog. Malformed queries must be rejected with an
// error — never a panic — and accepted queries must produce a
// well-formed, reparse-stable statement.
func FuzzParse(f *testing.F) {
	f.Add("count(R)")
	f.Add("count(R join S on a)")
	f.Add("sum(b, R where a >= 2)")
	f.Add("avg(x, T)")
	f.Add("group(R, a)")
	f.Add("count((R union S) minus (R intersect S))")
	f.Add("count(R x S where R.a = S.a)")
	f.Add("distinct(R.a, b)")
	f.Add("count(R where a = 1 and (b > 10 or not b < 5))")
	f.Add("count(")
	f.Add("count(R where )")
	f.Add("distinct(R.)")
	f.Add("count(R join S on )\x00\xff")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			return // bound parser work per exec
		}
		cat := testCatalog()
		st, err := Parse(input, CatalogSchemas{Cat: cat})
		if err != nil {
			return // rejection is the contract for malformed input
		}
		if st == nil {
			t.Fatal("Parse returned nil statement and nil error")
		}
		if st.IsDistinct() {
			if st.DistinctRel == "" || len(st.DistinctCols) == 0 {
				t.Fatalf("distinct statement missing relation/columns: %+v", st)
			}
		} else {
			switch st.Agg {
			case "count", "sum", "avg", "group":
			default:
				t.Fatalf("aggregate statement has unknown Agg %q", st.Agg)
			}
			if st.Expr == nil {
				t.Fatal("aggregate statement has nil Expr")
			}
			if st.Agg != "count" && st.AggCol == "" {
				t.Fatalf("%s statement has empty AggCol", st.Agg)
			}
		}
		// Reparse determinism: the same input must bind to the same
		// statement shape (the engine caches plans by expression
		// identity, so parse output may not wobble).
		st2, err2 := Parse(input, CatalogSchemas{Cat: cat})
		if err2 != nil {
			t.Fatalf("reparse of accepted input failed: %v", err2)
		}
		if st.IsDistinct() != st2.IsDistinct() || st.Agg != st2.Agg || st.AggCol != st2.AggCol {
			t.Fatalf("reparse mismatch: %+v vs %+v", st, st2)
		}
		if !st.IsDistinct() && st.Expr.String() != st2.Expr.String() {
			t.Fatalf("reparse expression mismatch: %s vs %s", st.Expr, st2.Expr)
		}
	})
}
