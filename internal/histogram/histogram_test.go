package histogram

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuildEquiWidth(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := Build(EquiWidth, vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	bs := h.Buckets()
	if len(bs) != 5 {
		t.Fatalf("buckets %d", len(bs))
	}
	var total float64
	for _, b := range bs {
		if b.Hi-b.Lo != 1 {
			t.Errorf("bucket [%d,%d] not width 2", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != 10 || h.Total() != 10 {
		t.Errorf("counts: %v / %v", total, h.Total())
	}
	if h.Size() != 20 {
		t.Errorf("size %d", h.Size())
	}
}

func TestBuildEquiWidthMoreBucketsThanSpan(t *testing.T) {
	h, err := Build(EquiWidth, []int64{5, 5, 6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets()) != 2 {
		t.Errorf("buckets %d, want clamped to span 2", len(h.Buckets()))
	}
}

func TestBuildEquiDepth(t *testing.T) {
	// 100 values: value v repeated v times-ish; equal values must not
	// straddle bucket boundaries.
	var vals []int64
	for v := int64(1); v <= 13; v++ {
		for i := int64(0); i < v; i++ {
			vals = append(vals, v)
		}
	}
	h, err := Build(EquiDepth, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	bs := h.Buckets()
	for i := 1; i < len(bs); i++ {
		if bs[i].Lo <= bs[i-1].Hi {
			t.Errorf("buckets overlap: [%d,%d] then [%d,%d]", bs[i-1].Lo, bs[i-1].Hi, bs[i].Lo, bs[i].Hi)
		}
	}
	var total float64
	for _, b := range bs {
		total += b.Count
	}
	if total != float64(len(vals)) {
		t.Errorf("total %v != %d", total, len(vals))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(EquiWidth, []int64{1}, 0); err == nil {
		t.Error("zero buckets should fail")
	}
	h, err := Build(EquiDepth, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 || h.EstimateRange(0, 100) != 0 {
		t.Error("empty histogram should estimate 0")
	}
	if _, err := Build(Kind(99), []int64{1}, 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestEstimateRangeExactOnUniform(t *testing.T) {
	var vals []int64
	for v := int64(0); v < 100; v++ {
		vals = append(vals, v)
	}
	h, _ := Build(EquiWidth, vals, 10)
	if got := h.EstimateRange(0, 99); math.Abs(got-100) > 1e-9 {
		t.Errorf("full range %v", got)
	}
	if got := h.EstimateRange(10, 19); math.Abs(got-10) > 1e-9 {
		t.Errorf("aligned range %v", got)
	}
	if got := h.EstimateRange(15, 24); math.Abs(got-10) > 1e-9 {
		t.Errorf("straddling range %v (uniform spread should still be exact)", got)
	}
	if got := h.EstimateRange(200, 300); got != 0 {
		t.Errorf("out of range %v", got)
	}
	if got := h.EstimateRange(50, 40); got != 0 {
		t.Errorf("inverted range %v", got)
	}
}

func TestEstimateEqual(t *testing.T) {
	vals := []int64{1, 1, 1, 2, 3, 3}
	h, _ := Build(EquiWidth, vals, 1)
	// One bucket: count 6, distinct 3 ⇒ per-value estimate 2.
	if got := h.EstimateEqual(2); math.Abs(got-2) > 1e-9 {
		t.Errorf("equal estimate %v", got)
	}
	if got := h.EstimateEqual(99); got != 0 {
		t.Errorf("missing value estimate %v", got)
	}
}

func TestEstimateJoinUniformIsExact(t *testing.T) {
	// Uniform attributes with identical domains: the histogram join
	// estimate under containment is exact.
	var a, b []int64
	for v := int64(0); v < 50; v++ {
		a = append(a, v, v) // each value twice
		b = append(b, v)    // each value once
	}
	ha, _ := Build(EquiWidth, a, 10)
	hb, _ := Build(EquiWidth, b, 10)
	// True join size: Σ 2·1 = 100.
	got := EstimateJoin(ha, hb)
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("uniform join estimate %v, want 100", got)
	}
}

func TestEstimateJoinSkewReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	freq := func(z float64, n, domain int) map[int64]int64 {
		// crude zipf via rejection on rank probabilities
		probs := make([]float64, domain)
		var sum float64
		for i := range probs {
			probs[i] = 1 / math.Pow(float64(i+1), z)
			sum += probs[i]
		}
		out := map[int64]int64{}
		for i := 0; i < n; i++ {
			u := rng.Float64() * sum
			acc := 0.0
			for r, p := range probs {
				acc += p
				if u <= acc {
					out[int64(r)]++
					break
				}
			}
		}
		return out
	}
	fa := freq(1.0, 5000, 100)
	fb := freq(0.5, 5000, 100)
	var va, vb []int64
	var want float64
	for v, c := range fa {
		for i := int64(0); i < c; i++ {
			va = append(va, v)
		}
		want += float64(c) * float64(fb[v])
	}
	for v, c := range fb {
		for i := int64(0); i < c; i++ {
			vb = append(vb, v)
		}
	}
	ha, _ := Build(EquiDepth, va, 20)
	hb, _ := Build(EquiDepth, vb, 20)
	got := EstimateJoin(ha, hb)
	if got <= 0 {
		t.Fatalf("join estimate %v", got)
	}
	if got < want/5 || got > want*5 {
		t.Errorf("skewed join estimate %v too far from %v", got, want)
	}
}

func TestKindString(t *testing.T) {
	if EquiWidth.String() == "" || EquiDepth.String() == "" || Kind(9).String() == "" {
		t.Error("empty kind names")
	}
}
