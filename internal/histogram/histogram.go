// Package histogram implements classical one-dimensional equi-width and
// equi-depth histograms over integer attribute domains, with the
// System-R-era selection and join estimates (uniform spread within buckets,
// attribute-value independence across relations). It is the second baseline
// the sampling estimators are compared against: the synopsis a 1988-vintage
// optimizer would actually have had.
package histogram

import (
	"fmt"
	"sort"
)

// Kind selects the bucketing strategy.
type Kind int

// Histogram kinds.
const (
	// EquiWidth buckets split the value range into equal-width intervals.
	EquiWidth Kind = iota
	// EquiDepth buckets hold (approximately) equal tuple counts.
	EquiDepth
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EquiWidth:
		return "equi-width"
	case EquiDepth:
		return "equi-depth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bucket summarizes one value interval [Lo, Hi] (inclusive, integer
// domain): the number of tuples and the number of distinct values falling
// in it.
type Bucket struct {
	Lo, Hi   int64
	Count    float64
	Distinct float64
}

// Width returns the number of integer values the bucket spans.
func (b Bucket) Width() float64 { return float64(b.Hi - b.Lo + 1) }

// Histogram is a 1-D histogram over an integer attribute.
type Histogram struct {
	kind    Kind
	buckets []Bucket
	total   float64
}

// Build constructs a histogram with the given number of buckets from the
// attribute values. Values may repeat (they are tuple occurrences).
func Build(kind Kind, values []int64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: bucket count %d < 1", buckets)
	}
	if len(values) == 0 {
		return &Histogram{kind: kind}, nil
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var bs []Bucket
	switch kind {
	case EquiWidth:
		lo, hi := sorted[0], sorted[len(sorted)-1]
		span := hi - lo + 1
		if int64(buckets) > span {
			buckets = int(span)
		}
		width := span / int64(buckets)
		rem := span % int64(buckets)
		cur := lo
		for i := 0; i < buckets; i++ {
			w := width
			if int64(i) < rem {
				w++
			}
			bs = append(bs, Bucket{Lo: cur, Hi: cur + w - 1})
			cur += w
		}
		bi := 0
		var prev int64
		first := true
		for _, v := range sorted {
			for v > bs[bi].Hi {
				bi++
			}
			bs[bi].Count++
			if first || v != prev {
				bs[bi].Distinct++
			}
			prev, first = v, false
		}
	case EquiDepth:
		per := len(sorted) / buckets
		if per == 0 {
			per = 1
		}
		i := 0
		for i < len(sorted) {
			j := i + per
			if j > len(sorted) {
				j = len(sorted)
			}
			// Extend the bucket so equal values never straddle a boundary.
			for j < len(sorted) && sorted[j] == sorted[j-1] {
				j++
			}
			b := Bucket{Lo: sorted[i], Hi: sorted[j-1]}
			b.Count = float64(j - i)
			d := 1.0
			for k := i + 1; k < j; k++ {
				if sorted[k] != sorted[k-1] {
					d++
				}
			}
			b.Distinct = d
			bs = append(bs, b)
			i = j
		}
	default:
		return nil, fmt.Errorf("histogram: unknown kind %v", kind)
	}
	h := &Histogram{kind: kind, buckets: bs, total: float64(len(values))}
	return h, nil
}

// Kind returns the bucketing strategy.
func (h *Histogram) Kind() Kind { return h.kind }

// Buckets returns the bucket list (not to be modified).
func (h *Histogram) Buckets() []Bucket { return h.buckets }

// Total returns the number of tuples summarized.
func (h *Histogram) Total() float64 { return h.total }

// Size returns the synopsis size in stored scalars (4 per bucket), for
// equal-space comparisons.
func (h *Histogram) Size() int { return 4 * len(h.buckets) }

// EstimateRange estimates the number of tuples with value in [lo, hi]
// (inclusive) under the uniform-spread assumption within buckets.
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	est := 0.0
	for _, b := range h.buckets {
		l, r := maxi(lo, b.Lo), mini(hi, b.Hi)
		if r < l {
			continue
		}
		est += b.Count * float64(r-l+1) / b.Width()
	}
	return est
}

// EstimateEqual estimates the number of tuples equal to v: bucket count
// divided by the bucket's distinct-value count.
func (h *Histogram) EstimateEqual(v int64) float64 {
	for _, b := range h.buckets {
		if v >= b.Lo && v <= b.Hi {
			//lint:ignore floateq division guard: an exactly-empty bucket has no per-value frequency
			if b.Distinct == 0 {
				return 0
			}
			return b.Count / b.Distinct
		}
	}
	return 0
}

// EstimateJoin estimates the equi-join size Σ_v f₁(v)·f₂(v) between the
// attributes summarized by h and g, using bucket-overlap alignment with
// uniform spread and the standard containment assumption: within an
// overlap segment the matching distinct values are the smaller of the two
// sides' distinct estimates, and per-value frequencies are count/distinct.
func EstimateJoin(h, g *Histogram) float64 {
	est := 0.0
	for _, a := range h.buckets {
		for _, b := range g.buckets {
			lo, hi := maxi(a.Lo, b.Lo), mini(a.Hi, b.Hi)
			if hi < lo {
				continue
			}
			w := float64(hi - lo + 1)
			// Scale each side's count and distinct into the overlap.
			c1 := a.Count * w / a.Width()
			d1 := a.Distinct * w / a.Width()
			c2 := b.Count * w / b.Width()
			d2 := b.Distinct * w / b.Width()
			if d1 <= 0 || d2 <= 0 {
				continue
			}
			dmin := d1
			if d2 < dmin {
				dmin = d2
			}
			// dmin matching values, each contributing (c1/d1)·(c2/d2).
			est += dmin * (c1 / d1) * (c2 / d2)
		}
	}
	return est
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
