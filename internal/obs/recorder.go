package obs

import "time"

// Recorder is the sink instrumented code reports into. Implementations
// must be safe for concurrent use and must not influence computation:
// recording an event may not consume randomness, reorder reductions, or
// fail. The two implementations are Nop (the default; free) and
// *Collector (metrics + optional trace).
//
// Metric-name conventions are documented in DESIGN.md §8; use L to attach
// labels.
type Recorder interface {
	// Add increments the named counter.
	Add(name string, delta float64)
	// Set stores the named gauge.
	Set(name string, v float64)
	// Observe records a value into the named histogram (DefBuckets).
	Observe(name string, v float64)
	// Span starts a root span; close it with End. The span's duration is
	// observed into the `<name>_seconds` histogram.
	Span(name string) Span
}

// nop is the disabled recorder: every method is empty and allocation-free,
// and Span returns the inert zero Span, so no clock is read either.
type nop struct{}

func (nop) Add(string, float64)     {}
func (nop) Set(string, float64)     {}
func (nop) Observe(string, float64) {}
func (nop) Span(string) Span        { return Span{} }

// Nop is the no-op recorder, the default everywhere a Recorder is
// accepted.
var Nop Recorder = nop{}

// Or maps nil to Nop so call sites can hold a Recorder unconditionally.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Live reports whether r actually records (non-nil and not Nop). Hot
// loops may branch on it to skip per-item clock reads; event-frequency
// call sites should just record unconditionally.
func Live(r Recorder) bool {
	return r != nil && r != Nop
}

// Collector is the live Recorder: a metrics registry plus an optional
// span trace, sharing one monotonic clock.
type Collector struct {
	metrics *Metrics
	trace   *Trace
	clock   Clock
}

// NewCollector creates a Collector with a fresh registry, no trace, and
// the runtime monotonic clock.
func NewCollector() *Collector {
	return &Collector{metrics: NewMetrics(), clock: monotonicClock()}
}

// NewCollectorClock creates a Collector driven by the given clock
// (deterministic tests; replay).
func NewCollectorClock(clock Clock) *Collector {
	return &Collector{metrics: NewMetrics(), clock: clock}
}

// EnableTrace attaches (and returns) a span trace. Call before recording.
func (c *Collector) EnableTrace() *Trace {
	c.trace = &Trace{}
	return c.trace
}

// Metrics returns the collector's registry for exposition.
func (c *Collector) Metrics() *Metrics { return c.metrics }

// Trace returns the attached trace, or nil.
func (c *Collector) Trace() *Trace { return c.trace }

// Add implements Recorder.
func (c *Collector) Add(name string, delta float64) { c.metrics.Counter(name).Add(delta) }

// Set implements Recorder.
func (c *Collector) Set(name string, v float64) { c.metrics.Gauge(name).Set(v) }

// Observe implements Recorder.
func (c *Collector) Observe(name string, v float64) { c.metrics.Histogram(name, nil).Observe(v) }

// Span implements Recorder.
func (c *Collector) Span(name string) Span { return c.startSpan(name, 0) }

func (c *Collector) startSpan(name string, parent int64) Span {
	s := Span{rec: c, name: name, start: c.clock()}
	if c.trace != nil {
		s.id = c.trace.add(name, parent, s.start)
	}
	return s
}

func (c *Collector) endSpan(s Span) {
	end := c.clock()
	if c.trace != nil && s.id != 0 {
		c.trace.setEnd(s.id, end)
	}
	d := end - s.start
	if d < 0 {
		d = 0
	}
	c.metrics.Histogram(s.name+"_seconds", nil).Observe(d.Seconds())
}

// Elapsed returns the collector clock's current offset — handy for
// wall-time deltas that should use the same clock as the spans.
func (c *Collector) Elapsed() time.Duration { return c.clock() }
