package obs

import "testing"

// BenchmarkRecorderNoop measures the disabled instrumentation path: one
// counter add, one histogram observation, and a span start/end against
// the Nop recorder. This is the per-event cost the engine pays when
// observability is off — it must stay in the nanoseconds and allocate
// nothing (see TestNopRecorderZeroAllocs).
func BenchmarkRecorderNoop(b *testing.B) {
	rec := Or(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Add("relest_terms_total", 1)
		rec.Observe("relest_term_seconds", 0.001)
		s := rec.Span("relest_estimate")
		s.End()
	}
}

// BenchmarkRecorderCollector is the same event batch against a live
// Collector without tracing — the steady-state metrics cost.
func BenchmarkRecorderCollector(b *testing.B) {
	rec := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Add("relest_terms_total", 1)
		rec.Observe("relest_term_seconds", 0.001)
		s := rec.Span("relest_estimate")
		s.End()
	}
}

// BenchmarkRecorderCollectorTraced adds span trace bookkeeping.
func BenchmarkRecorderCollectorTraced(b *testing.B) {
	rec := NewCollector()
	rec.EnableTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := rec.Span("relest_estimate")
		s.Child("relest_term").End()
		s.End()
	}
}
