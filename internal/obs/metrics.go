// Package obs is the engine's observability layer: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// spans with monotonic durations and parent links, and the Recorder
// interface the estimation engine, worker pool, plan cache, planner and
// samplers report into.
//
// Design constraints, in order:
//
//   - Instrumentation must never change an estimate. Recorders observe
//     values; they never touch RNG streams, accumulation order, or
//     scheduling decisions. The engine's bit-identical-estimates contract
//     is enforced by test with a live recorder attached.
//   - The disabled path must be free. The default recorder is Nop, whose
//     methods are empty, allocate nothing, and read no clock; call sites
//     may stay unconditionally instrumented.
//   - Hot paths are lock-free. Metric instruments update through atomics;
//     the registry takes a lock only to create an instrument, and a
//     read-lock to look one up. Span bookkeeping takes a mutex, but spans
//     are per-term/per-replicate events, not per-tuple.
//
// Exposition is pull-at-end rather than scrape-loop: Metrics renders a
// Prometheus-text-format dump (WritePrometheus) and a JSON snapshot
// (WriteJSON), both in sorted name order so output is reproducible.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the standard lock-free float accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing metric (enforce monotonicity at
// the call site; Add with a negative delta is not checked).
type Counter struct {
	v atomicFloat
}

// Add increments the counter.
func (c *Counter) Add(d float64) { c.v.Add(d) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down; Set overwrites.
type Gauge struct {
	v atomicFloat
}

// Set stores the current value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the gauge by a delta.
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: counts[i] holds observations
// v ≤ bounds[i] (exclusive of earlier buckets); the last slot is the
// implicit +Inf bucket. Observations are atomic; bucket bounds are fixed
// at creation.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// DefBuckets is the default bound set, tuned for durations in seconds
// spanning microsecond terms to multi-second full runs.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 30,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is ≥ v (Prometheus `le` semantics); misses
	// land in the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Storage-footprint gauge names, defined here because several producers
// report them — the estimator (per estimate), the server (on registry
// changes) and cmd/relest (at load time) — and one series name must mean
// one thing everywhere it is exposed.
const (
	// MetricRelationBytes gauges the resident column storage of all
	// registered base relations.
	MetricRelationBytes = "relest_relation_bytes"
	// MetricSynopsisBytes gauges the resident sample storage of the
	// synopsis in use; zero-copy sample views count only their index
	// vectors, which is what makes the columnar memory win visible here.
	MetricSynopsisBytes = "relest_synopsis_bytes"
)

// Streaming-executor and shared-subplan metric names, recorded by
// internal/algebra and exposed wherever a Collector is scraped (/metrics in
// relestd, -metrics in cmd/relest).
const (
	// MetricStreamBatches counts batches emitted by streaming operators.
	MetricStreamBatches = "relest_stream_batches_total"
	// MetricStreamPeakBytes gauges the peak live working set of the most
	// recent streaming pipeline: operator batches, hash-join build sides
	// and dedup state — the executor's memory ceiling, independent of
	// probe-side input size.
	MetricStreamPeakBytes = "relest_stream_peak_bytes"
	// MetricCSESubplansShared counts plans that attached to an already
	// registered shared enumeration prefix (each shared subplan counts its
	// consumers beyond the first).
	MetricCSESubplansShared = "relest_cse_subplans_shared_total"
	// MetricCSESubplanBytes gauges the resident bytes of materialized
	// shared-subplan assignment tables in the current plan cache.
	MetricCSESubplanBytes = "relest_cse_subplan_bytes"
)

// Metrics is the instrument registry. Instruments are created on first
// use and live for the registry's lifetime; names follow Prometheus
// conventions (`relest_<noun>_<unit>[_total]`) and may carry inline
// labels (`name{k="v"}`), which the exposition passes through verbatim.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.counters[name]; !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.RLock()
	g, ok := m.gauges[name]
	m.mu.RUnlock()
	if ok {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok = m.gauges[name]; !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds = DefBuckets). Bounds passed after
// creation are ignored: the first caller fixes the buckets.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.RLock()
	h, ok := m.hists[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.hists[name]; !ok {
		h = newHistogram(bounds)
		m.hists[name] = h
	}
	return h
}
