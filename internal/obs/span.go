package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Clock yields monotonically non-decreasing offsets from an arbitrary
// epoch. The default clock wraps the runtime monotonic clock; tests
// inject a fake so span durations are deterministic.
type Clock func() time.Duration

// monotonicClock returns a Clock reading the runtime monotonic clock,
// anchored at the moment of creation.
func monotonicClock() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// SpanRecord is one finished (or still-open) span in a trace. IDs are
// 1-based; Parent 0 means a root span. End is zero while the span is
// open.
type SpanRecord struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns,omitempty"`
}

// Duration returns End−Start, or 0 for an open span.
func (s SpanRecord) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Trace collects spans. It is safe for concurrent use; span starts and
// ends from parallel workers interleave under one mutex, which is fine at
// per-term/per-replicate frequency.
type Trace struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// add registers a new span and returns its 1-based id.
func (t *Trace) add(name string, parent int64, start time.Duration) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := int64(len(t.spans)) + 1
	t.spans = append(t.spans, SpanRecord{ID: id, Parent: parent, Name: name, Start: start})
	return id
}

// setEnd closes the span with the given id.
func (t *Trace) setEnd(id int64, end time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= 1 && id <= int64(len(t.spans)) {
		t.spans[id-1].End = end
	}
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// WriteText renders the trace as an indented tree, children under their
// parents in start order. Durations are exact; reading a trace top-down
// follows the engine's call structure (estimate → terms → variance →
// replicates).
func (t *Trace) WriteText(w io.Writer) error {
	spans := t.Spans()
	children := map[int64][]SpanRecord{}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStart := func(xs []SpanRecord) {
		sort.SliceStable(xs, func(i, j int) bool { return xs[i].Start < xs[j].Start })
	}
	byStart(roots)
	var write func(s SpanRecord, depth int) error
	write = func(s SpanRecord, depth int) error {
		for i := 0; i < depth; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		state := ""
		if s.End == 0 {
			state = " (open)"
		}
		if _, err := fmt.Fprintf(w, "%s %s%s\n", s.Name, s.Duration(), state); err != nil {
			return err
		}
		cs := children[s.ID]
		byStart(cs)
		for _, c := range cs {
			if err := write(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := write(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Span is a live timing handle. The zero value (from the Nop recorder) is
// inert: End and Child are no-ops and read no clock, so instrumented code
// never branches on whether observability is enabled.
type Span struct {
	rec   *Collector
	name  string
	id    int64
	start time.Duration
}

// End closes the span: its duration lands in the `<name>_seconds`
// histogram, and the trace record (when tracing is enabled) is closed.
func (s Span) End() {
	if s.rec != nil {
		s.rec.endSpan(s)
	}
}

// Child starts a span parented to s. Safe to call from parallel workers.
func (s Span) Child(name string) Span {
	if s.rec == nil {
		return Span{}
	}
	return s.rec.startSpan(name, s.id)
}
