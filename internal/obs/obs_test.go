package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("relest_x_total")
	c.Add(1)
	c.Add(2.5)
	if got := c.Value(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if m.Counter("relest_x_total") != c {
		t.Fatal("counter not reused by name")
	}
	g := m.Gauge("relest_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	h := m.Histogram("relest_lat_seconds", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.65) > 1e-9 {
		t.Fatalf("hist sum = %v, want 5.65", got)
	}
	// 0.05 and 0.1 land in le=0.1 (le is inclusive); 0.5 in le=1; 2,3 in +Inf.
	want := []uint64{2, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestConcurrentUpdatesAreLossless(t *testing.T) {
	m := NewMetrics()
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Counter("c_total").Add(1)
				m.Histogram("h", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c_total").Value(); math.Abs(got-workers*each) > 0.5 {
		t.Fatalf("counter = %v, want %d", got, workers*each)
	}
	if got := m.Histogram("h", nil).Count(); got != workers*each {
		t.Fatalf("hist count = %d, want %d", got, workers*each)
	}
}

// fakeClock steps a fixed amount per read, making span durations exact.
func fakeClock(step time.Duration) Clock {
	var now time.Duration
	var mu sync.Mutex
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += step
		return now
	}
}

func TestSpansRecordDurationsAndParents(t *testing.T) {
	c := NewCollectorClock(fakeClock(time.Millisecond))
	tr := c.EnableTrace()
	root := c.Span("relest_estimate")  // t=1ms
	child := root.Child("relest_term") // t=2ms
	child.End()                        // t=3ms → 1ms duration
	root.End()                         // t=4ms → 3ms duration

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "relest_estimate" || spans[0].Parent != 0 {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[1].Name != "relest_term" || spans[1].Parent != spans[0].ID {
		t.Fatalf("child span = %+v", spans[1])
	}
	if d := spans[1].Duration(); d != time.Millisecond {
		t.Fatalf("child duration = %v, want 1ms", d)
	}
	if d := spans[0].Duration(); d != 3*time.Millisecond {
		t.Fatalf("root duration = %v, want 3ms", d)
	}
	// Span durations also land in histograms.
	if got := c.Metrics().Histogram("relest_term_seconds", nil).Count(); got != 1 {
		t.Fatalf("term histogram count = %d, want 1", got)
	}

	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "relest_estimate 3ms\n  relest_term 1ms\n"
	if b.String() != want {
		t.Fatalf("trace text:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	s.End()
	if c := s.Child("x"); c != (Span{}) {
		t.Fatalf("child of zero span = %+v, want zero", c)
	}
	s = Nop.Span("anything")
	s.End() // must not panic or allocate
}

func TestLabels(t *testing.T) {
	if got := L("x_total"); got != "x_total" {
		t.Fatalf("L no labels = %q", got)
	}
	if got := L("x_total", "rel", "R"); got != `x_total{rel="R"}` {
		t.Fatalf("L = %q", got)
	}
	if got := L("x", "a", "1", "b", `q"uo`); got != `x{a="1",b="q\"uo"}` {
		t.Fatalf("L escape = %q", got)
	}
	fam, labels := family(`x_total{rel="R"}`)
	if fam != "x_total" || labels != `rel="R"` {
		t.Fatalf("family = %q, %q", fam, labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter(L("relest_plans_total", "kind", "built")).Add(3)
	m.Counter(L("relest_plans_total", "kind", "hit")).Add(9)
	m.Gauge("relest_workers").Set(4)
	h := m.Histogram("relest_term_seconds", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE relest_plans_total counter
relest_plans_total{kind="built"} 3
relest_plans_total{kind="hit"} 9
# TYPE relest_term_seconds histogram
relest_term_seconds_bucket{le="0.001"} 1
relest_term_seconds_bucket{le="0.1"} 2
relest_term_seconds_bucket{le="+Inf"} 3
relest_term_seconds_sum 7.0505
relest_term_seconds_count 3
# TYPE relest_workers gauge
relest_workers 4
`
	if b.String() != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("c_total").Add(2)
	m.Gauge("g").Set(-1)
	m.Histogram("h", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, b.String())
	}
	if math.Abs(snap.Counters["c_total"]-2) > 1e-12 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if math.Abs(snap.Gauges["g"]+1) > 1e-12 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[0] != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestOrAndLive(t *testing.T) {
	if Or(nil) != Nop {
		t.Fatal("Or(nil) != Nop")
	}
	c := NewCollector()
	if Or(c) != Recorder(c) {
		t.Fatal("Or(c) != c")
	}
	if Live(nil) || Live(Nop) {
		t.Fatal("nil/Nop must not be live")
	}
	if !Live(c) {
		t.Fatal("collector must be live")
	}
}

// TestNopRecorderZeroAllocs is the overhead contract: the disabled
// recorder allocates nothing per event, so instrumentation can stay
// unconditional in the engine.
func TestNopRecorderZeroAllocs(t *testing.T) {
	rec := Or(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Add("relest_terms_total", 1)
		rec.Set("relest_depth", 3)
		rec.Observe("relest_term_seconds", 0.001)
		s := rec.Span("relest_estimate")
		s.Child("relest_term").End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op recorder allocates %v per event batch, want 0", allocs)
	}
}
