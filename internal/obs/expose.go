package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// L renders a metric name with inline labels: L("x_total", "rel", "R")
// is `x_total{rel="R"}`. Labels become part of the registry key and pass
// through to the Prometheus exposition verbatim; pairs are emitted in the
// order given, so call sites should use one canonical order per metric.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// family splits an inline-labeled name into its metric family and the
// label block (without braces); names without labels return ("name", "").
func family(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, families sorted by name, one `# TYPE` header per
// family. Histograms emit cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.RLock()
	type inst struct {
		name string
		kind string // "counter" | "gauge" | "histogram"
	}
	var all []inst
	for name := range m.counters {
		all = append(all, inst{name, "counter"})
	}
	for name := range m.gauges {
		all = append(all, inst{name, "gauge"})
	}
	for name := range m.hists {
		all = append(all, inst{name, "histogram"})
	}
	m.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		fi, _ := family(all[i].name)
		fj, _ := family(all[j].name)
		if fi != fj {
			return fi < fj
		}
		return all[i].name < all[j].name
	})
	lastFamily := ""
	for _, it := range all {
		fam, labels := family(it.name)
		if fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, it.kind); err != nil {
				return err
			}
			lastFamily = fam
		}
		switch it.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %s\n", it.name, formatFloat(m.Counter(it.name).Value())); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", it.name, formatFloat(m.Gauge(it.name).Value())); err != nil {
				return err
			}
		case "histogram":
			h := m.Histogram(it.name, nil)
			if err := writePromHistogram(w, fam, labels, h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, fam, labels string, h *Histogram) error {
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, fam, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, fam, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return fam + suffix
		}
		return fam + suffix + "{" + labels + "}"
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", withLe(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixed("_sum"), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), h.Count())
	return err
}

// HistogramSnapshot is one histogram's state in a Snapshot. Buckets are
// per-bucket (non-cumulative) counts aligned with Bounds; the final extra
// slot is the +Inf bucket.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot is a point-in-time copy of every instrument, JSON-encodable.
// Map keys carry any inline labels; encoding/json sorts keys, so output
// is reproducible.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current instrument values.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]float64, len(m.counters)),
		Gauges:     make(map[string]float64, len(m.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(m.hists)),
	}
	for name, c := range m.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range m.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
		}
		for i := range h.counts {
			hs.Buckets = append(hs.Buckets, h.counts[i].Load())
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes the snapshot as one JSON document.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
