package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulmod61(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {mersenne61 - 1, mersenne61 - 1},
		{123456789, 987654321}, {1 << 60, 1 << 60},
	}
	for _, c := range cases {
		// Reference via big-int-free double-width check using math/bits is
		// what the implementation does; cross-check with a slow loop-based
		// modmul on reduced operands.
		want := slowMulmod(c.a%mersenne61, c.b%mersenne61)
		if got := mulmod61(c.a%mersenne61, c.b%mersenne61); got != want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// slowMulmod computes a*b mod 2^61-1 via repeated doubling.
func slowMulmod(a, b uint64) uint64 {
	var res uint64
	a %= mersenne61
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % mersenne61
		}
		a = (a * 2) % mersenne61
		b >>= 1
	}
	return res
}

func TestFourWiseBalance(t *testing.T) {
	// Each hash function's signs should be roughly balanced over a value
	// range, and different hash functions should disagree.
	s := New(Config{Groups: 1, GroupSize: 4, Seed: 7})
	for hi, h := range s.hashes {
		sum := int64(0)
		for v := uint64(0); v < 4000; v++ {
			sum += h.sign(v)
		}
		if math.Abs(float64(sum)) > 400 { // ~6σ for ±1 sums
			t.Errorf("hash %d unbalanced: sum %d over 4000 values", hi, sum)
		}
	}
}

func TestSelfJoinEstimate(t *testing.T) {
	// Known frequency vector: value v occurs v+1 times for v in 0..49.
	// F2 = Σ (v+1)².
	var f2 float64
	s := New(Config{Groups: 7, GroupSize: 40, Seed: 11})
	for v := uint64(0); v < 50; v++ {
		s.Update(v, int64(v)+1)
		f2 += float64((v + 1) * (v + 1))
	}
	got := s.SelfJoinEstimate()
	if math.Abs(got-f2)/f2 > 0.30 {
		t.Errorf("self-join estimate %v, want %v (±30%%)", got, f2)
	}
}

func TestJoinEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Groups: 9, GroupSize: 60, Seed: 21}
	a := New(cfg)
	b := New(cfg)
	fa := map[uint64]int64{}
	fb := map[uint64]int64{}
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(200))
		a.Add(v)
		fa[v]++
	}
	for i := 0; i < 15000; i++ {
		v := uint64(rng.Intn(200))
		b.Add(v)
		fb[v]++
	}
	var want float64
	for v, c := range fa {
		want += float64(c) * float64(fb[v])
	}
	got, err := JoinEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("join estimate %v, want %v (±25%%)", got, want)
	}
}

func TestJoinEstimateUnbiasedAcrossSeeds(t *testing.T) {
	// Average the estimate over many independent seeds: must converge on
	// the exact join size (each atomic product is unbiased).
	fa := map[uint64]int64{1: 5, 2: 3, 3: 1, 9: 7}
	fb := map[uint64]int64{1: 2, 3: 4, 9: 1, 11: 6}
	var want float64
	for v, c := range fa {
		want += float64(c) * float64(fb[v])
	}
	sum := 0.0
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		cfg := Config{Groups: 1, GroupSize: 16, Seed: seed}
		a, b := New(cfg), New(cfg)
		for v, c := range fa {
			a.Update(v, c)
		}
		for v, c := range fb {
			b.Update(v, c)
		}
		got, err := JoinEstimate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	mean := sum / trials
	if math.Abs(mean-want)/want > 0.15 {
		t.Errorf("mean estimate over seeds %v, want %v", mean, want)
	}
}

func TestDeletionsCancel(t *testing.T) {
	cfg := Config{Seed: 5}
	s := New(cfg)
	for v := uint64(0); v < 100; v++ {
		s.Add(v)
	}
	for v := uint64(0); v < 100; v++ {
		s.Remove(v)
	}
	for _, a := range s.atoms {
		if a != 0 {
			t.Fatal("atoms nonzero after inserting and deleting everything")
		}
	}
	if got := s.SelfJoinEstimate(); got != 0 {
		t.Errorf("empty self-join estimate %v", got)
	}
}

func TestJoinEstimateConfigMismatch(t *testing.T) {
	a := New(Config{Seed: 1})
	b := New(Config{Seed: 2})
	if _, err := JoinEstimate(a, b); err == nil {
		t.Error("different seeds should not be joinable")
	}
	c := New(Config{Groups: 3, Seed: 1})
	if _, err := JoinEstimate(a, c); err == nil {
		t.Error("different shapes should not be joinable")
	}
}

func TestConfigDefaultsAndAtoms(t *testing.T) {
	var c Config
	if c.Atoms() != 100 {
		t.Errorf("default atoms %d, want 100", c.Atoms())
	}
	s := New(Config{Groups: 3, GroupSize: 7})
	if s.Atoms() != 21 {
		t.Errorf("atoms %d", s.Atoms())
	}
	if s.Config().Groups != 3 {
		t.Errorf("config %+v", s.Config())
	}
}

func TestMedianOfMeansEvenGroups(t *testing.T) {
	// Even group count takes the midpoint of the two central medians.
	products := []float64{1, 1, 3, 3} // groups of size 2: means 1 and 3
	if got := medianOfMeans(products, 2, 2); got != 2 {
		t.Errorf("median of means = %v, want 2", got)
	}
}
