package sketch

import (
	"fmt"
	"math"
)

// Estimate is a sketch-tier estimate: the median-of-means point value and
// a variance derived from the spread of the per-group means.
//
// With G groups of S atoms each, the group means Z_1..Z_G are i.i.d.
// unbiased estimators of the target quantity with some variance σ²_Z. The
// reported Value is their median; for a sample median of G i.i.d.
// approximately normal values the asymptotic variance is (π/2)·σ²_Z/G,
// with σ²_Z estimated by the sample variance of the group means. The
// resulting standard error is what the tier planner compares against the
// requested precision to decide whether the sketch answer is good enough
// or the term must escalate to the sample tier.
type Estimate struct {
	// Value is the median-of-means point estimate.
	Value float64
	// Variance is the estimated variance of Value (≥ 0).
	Variance float64
}

// StdErr is sqrt(Variance).
func (e Estimate) StdErr() float64 { return math.Sqrt(e.Variance) }

// estimateFromProducts computes the median point estimate and its variance
// from the per-atom products: one estimate per group (mean of atoms in
// plain mode, sum of buckets in hashed mode), the median across groups,
// and the median's asymptotic variance from the group spread.
func estimateFromProducts(products []float64, cfg Config) Estimate {
	groups := cfg.Groups
	ests := cfg.groupEstimates(products)
	mean := 0.0
	for _, z := range ests {
		mean += z
	}
	mean /= float64(groups)
	s2 := 0.0
	for _, z := range ests {
		d := z - mean
		s2 += d * d
	}
	if groups > 1 {
		s2 /= float64(groups - 1)
	}
	return Estimate{Value: medianOf(ests), Variance: (math.Pi / 2) * s2 / float64(groups)}
}

// JoinEstimateVar is JoinEstimate with a variance for the returned value,
// derived from the spread of the median-of-means group means. The sketches
// must share a configuration (same seed ⇒ same ξ streams).
func JoinEstimateVar(s, t *Sketch) (Estimate, error) {
	if s.cfg != t.cfg {
		return Estimate{}, fmt.Errorf("sketch: configs differ (%+v vs %+v); sketches are not joinable", s.cfg, t.cfg)
	}
	products := make([]float64, len(s.atoms))
	for i := range s.atoms {
		products[i] = float64(s.atoms[i]) * float64(t.atoms[i])
	}
	return estimateFromProducts(products, s.cfg), nil
}

// SelfJoinEstimateVar is SelfJoinEstimate with a variance for the returned
// value (the second frequency moment F₂ with its standard error).
func (s *Sketch) SelfJoinEstimateVar() Estimate {
	products := make([]float64, len(s.atoms))
	for i, a := range s.atoms {
		products[i] = float64(a) * float64(a)
	}
	return estimateFromProducts(products, s.cfg)
}
