package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestJoinEstimateVarMatchesPoint(t *testing.T) {
	// The variance-carrying estimate must return exactly the same point
	// value as the plain one (same atoms, same median-of-means).
	cfg := Config{Groups: 9, GroupSize: 16, Seed: 42}
	a, b := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		a.Add(uint64(rng.Intn(300)))
		b.Add(uint64(rng.Intn(300)))
	}
	point, err := JoinEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est, err := JoinEstimateVar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != point {
		t.Errorf("JoinEstimateVar value %v != JoinEstimate %v", est.Value, point)
	}
	if est.Variance <= 0 {
		t.Errorf("variance %v, want > 0 on noisy data", est.Variance)
	}
	if got := est.StdErr(); got != math.Sqrt(est.Variance) {
		t.Errorf("StdErr %v != sqrt(Variance) %v", got, math.Sqrt(est.Variance))
	}
}

func TestSelfJoinEstimateVarMatchesPoint(t *testing.T) {
	s := New(Config{Groups: 7, GroupSize: 20, Seed: 9})
	for v := uint64(0); v < 200; v++ {
		s.Update(v, int64(v%13)+1)
	}
	est := s.SelfJoinEstimateVar()
	if got := s.SelfJoinEstimate(); est.Value != got {
		t.Errorf("SelfJoinEstimateVar value %v != SelfJoinEstimate %v", est.Value, got)
	}
	if est.Variance <= 0 {
		t.Errorf("variance %v, want > 0", est.Variance)
	}
}

func TestJoinEstimateVarConfigMismatch(t *testing.T) {
	a := New(Config{Seed: 1})
	b := New(Config{Seed: 2})
	if _, err := JoinEstimateVar(a, b); err == nil {
		t.Error("different seeds should not be joinable")
	}
}

func TestEstimateVarianceCalibration(t *testing.T) {
	// Across many independent ξ seeds over the same fixed data, the
	// reported variance must track the empirical squared error of the
	// point estimate — the escalation rule depends on the standard error
	// being honest to within a small constant factor.
	fa := map[uint64]int64{}
	fb := map[uint64]int64{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		fa[uint64(rng.Intn(150))]++
		fb[uint64(rng.Intn(150))]++
	}
	var exact float64
	for v, c := range fa {
		exact += float64(c) * float64(fb[v])
	}
	const trials = 200
	var sqErr, repVar float64
	for seed := int64(0); seed < trials; seed++ {
		cfg := Config{Groups: 9, GroupSize: 16, Seed: seed}
		a, b := New(cfg), New(cfg)
		for v, c := range fa {
			a.Update(v, c)
		}
		for v, c := range fb {
			b.Update(v, c)
		}
		est, err := JoinEstimateVar(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sqErr += (est.Value - exact) * (est.Value - exact)
		repVar += est.Variance
	}
	mse := sqErr / trials
	mean := repVar / trials
	if ratio := mean / mse; ratio < 0.3 || ratio > 3.0 {
		t.Errorf("mean reported variance %v vs empirical MSE %v (ratio %.2f); want within [0.3, 3.0]",
			mean, mse, ratio)
	}
}

func TestEstimateFromProductsSingleGroup(t *testing.T) {
	// One group: the median is the lone mean and the (n−1) divisor is
	// skipped rather than dividing by zero.
	est := estimateFromProducts([]float64{2, 4, 6}, Config{Groups: 1, GroupSize: 3})
	if est.Value != 4 {
		t.Errorf("value %v, want 4", est.Value)
	}
	if math.IsNaN(est.Variance) || math.IsInf(est.Variance, 0) {
		t.Errorf("variance %v, want finite", est.Variance)
	}
}

func TestSketchBytesAndClone(t *testing.T) {
	s := New(Config{Groups: 3, GroupSize: 4, Seed: 1})
	if s.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", s.Bytes())
	}
	for v := uint64(0); v < 64; v++ {
		s.Add(v)
	}
	c := s.Clone()
	if c.SelfJoinEstimate() != s.SelfJoinEstimate() {
		t.Error("clone disagrees with original before divergence")
	}
	// Mutating the clone must not touch the original.
	before := s.SelfJoinEstimate()
	for v := uint64(0); v < 64; v++ {
		c.Add(v)
	}
	if got := s.SelfJoinEstimate(); got != before {
		t.Errorf("original changed after mutating clone: %v -> %v", before, got)
	}
	if c.SelfJoinEstimate() == before {
		t.Error("clone did not change after updates")
	}
}
