package sketch

import (
	"math"
	"testing"
)

func TestDistinctExactBelowK(t *testing.T) {
	d := NewDistinct(64, 1)
	for v := uint64(0); v < 40; v++ {
		d.Add(v)
		d.Add(v) // duplicates must not inflate the count
	}
	if got := d.Estimate(); got != 40 {
		t.Errorf("estimate %v, want exactly 40 below k", got)
	}
	if d.Tracked() != 40 {
		t.Errorf("tracked %d, want 40", d.Tracked())
	}
	if d.Degraded() {
		t.Error("degraded without any eviction")
	}
}

func TestDistinctEstimateAboveK(t *testing.T) {
	const n = 5000
	d := NewDistinct(256, 7)
	for v := uint64(0); v < n; v++ {
		d.Add(v)
	}
	if d.Tracked() != 256 {
		t.Fatalf("tracked %d, want k=256 after %d distinct inserts", d.Tracked(), n)
	}
	got := d.Estimate()
	if math.Abs(got-n)/n > 0.25 {
		t.Errorf("estimate %v, want %v (±25%%; KMV stderr ≈ 1/√(k−2) ≈ 6%%)", got, float64(n))
	}
}

func TestDistinctRemoveKeepsExact(t *testing.T) {
	// Insert/delete churn below k: the summary stays exact and never
	// degrades.
	d := NewDistinct(64, 3)
	for v := uint64(0); v < 30; v++ {
		d.Add(v)
	}
	for v := uint64(0); v < 10; v++ {
		d.Remove(v)
	}
	if got := d.Estimate(); got != 20 {
		t.Errorf("estimate %v, want exactly 20", got)
	}
	if d.Degraded() {
		t.Error("degraded below capacity")
	}
	// Multiplicity: deleting one of two occurrences keeps the value.
	d.Add(10)    // second occurrence of a survivor
	d.Remove(10) // net count back to 1
	if got := d.Estimate(); got != 20 {
		t.Errorf("estimate %v after multiplicity churn, want 20", got)
	}
}

func TestDistinctDegradesAfterEvictionAndDeath(t *testing.T) {
	d := NewDistinct(16, 5)
	for v := uint64(0); v < 100; v++ {
		d.Add(v)
	}
	if !d.evicted {
		t.Fatal("no eviction after 100 inserts into k=16")
	}
	if d.Degraded() {
		t.Fatal("degraded before any tracked value died")
	}
	// Kill every tracked value; at least the first death past the
	// evictions must mark the summary degraded.
	for v := uint64(0); v < 100; v++ {
		d.Remove(v)
	}
	if !d.Degraded() {
		t.Error("tracked deaths after evictions must degrade the summary")
	}
}

func TestDistinctRemoveUntracked(t *testing.T) {
	d := NewDistinct(8, 2)
	d.Add(1)
	d.Remove(999) // never seen: must be a no-op
	if got := d.Estimate(); got != 1 {
		t.Errorf("estimate %v, want 1", got)
	}
	if d.Degraded() {
		t.Error("removing an untracked value must not degrade")
	}
}

func TestDistinctCloneIndependent(t *testing.T) {
	d := NewDistinct(32, 11)
	for v := uint64(0); v < 20; v++ {
		d.Add(v)
	}
	c := d.Clone()
	if c.Estimate() != d.Estimate() || c.Tracked() != d.Tracked() {
		t.Fatal("clone disagrees before divergence")
	}
	c.Add(100)
	c.Remove(0)
	if d.Estimate() != 20 {
		t.Errorf("original changed after mutating clone: %v", d.Estimate())
	}
	if c.Estimate() != 20 { // +1 −1
		t.Errorf("clone estimate %v, want 20", c.Estimate())
	}
}

func TestDistinctDeterministicAcrossInsertOrder(t *testing.T) {
	// Same value set in two different orders: identical tracked sets and
	// estimates (eviction ties break on the raw value, not map order).
	a := NewDistinct(32, 13)
	b := NewDistinct(32, 13)
	for v := uint64(0); v < 500; v++ {
		a.Add(v)
	}
	for v := uint64(500); v > 0; v-- {
		b.Add(v - 1)
	}
	if a.Estimate() != b.Estimate() {
		t.Errorf("insert order changed the estimate: %v vs %v", a.Estimate(), b.Estimate())
	}
}

func TestDistinctDefaultsAndBytes(t *testing.T) {
	d := NewDistinct(0, 1)
	if d.K() != 256 {
		t.Errorf("default k %d, want 256", d.K())
	}
	if d.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want > 0", d.Bytes())
	}
	before := d.Bytes()
	for v := uint64(0); v < 10; v++ {
		d.Add(v)
	}
	if d.Bytes() <= before {
		t.Errorf("Bytes() did not grow with tracked values: %d -> %d", before, d.Bytes())
	}
	if d.Estimate() != 10 {
		t.Errorf("estimate %v, want 10", d.Estimate())
	}
	empty := NewDistinct(4, 9)
	if empty.Estimate() != 0 {
		t.Errorf("empty estimate %v, want 0", empty.Estimate())
	}
}
