package sketch

import "math"

// This file implements KMV (k-minimum-values) distinct summaries: the
// per-column companion of the AGMS sketches in the tiered synopsis. Each
// summary tracks the k distinct values with the smallest hashes, with a
// multiplicity counter per tracked value so well-formed deletions of
// still-present duplicates keep the summary exact.
//
// The estimator is the classical order-statistics one: normalizing hashes
// to (0, 1), the k-th smallest hash u_(k) of D distinct values satisfies
// E[u_(k)] ≈ k/(D+1), so (k−1)/u_(k) is (nearly) unbiased for D. Below k
// distinct values the summary holds every value and the count is exact.

// Distinct is a KMV distinct-count summary of one attribute under an
// insert/delete stream.
type Distinct struct {
	k        int
	seed     int64
	tracked  map[uint64]*kmvEntry // keyed by the raw 64-bit value
	evicted  bool                 // a value has ever been pushed out by a smaller hash
	degraded bool                 // a tracked value died after an eviction; gaps may exist
}

// kmvEntry is one tracked distinct value.
type kmvEntry struct {
	hash  uint64
	count int64
}

// NewDistinct creates a KMV summary keeping the k smallest-hashed distinct
// values (default 256 when k < 1). The seed perturbs the value→hash map so
// independent summaries can be built over the same data.
func NewDistinct(k int, seed int64) *Distinct {
	if k < 1 {
		k = 256
	}
	return &Distinct{k: k, seed: seed, tracked: make(map[uint64]*kmvEntry)}
}

// K returns the summary's capacity in distinct values.
func (d *Distinct) K() int { return d.k }

// hash maps a value to a uniform 64-bit hash, seed-perturbed.
func (d *Distinct) hash(value uint64) uint64 {
	state := value ^ uint64(d.seed)*0x9e3779b97f4a7c15
	return splitmix64(&state)
}

// maxTracked returns the tracked value with the largest hash. Ties are
// broken by the raw value so eviction is deterministic.
func (d *Distinct) maxTracked() (value uint64, hash uint64) {
	first := true
	for v, e := range d.tracked {
		if first || e.hash > hash || (e.hash == hash && v > value) {
			value, hash = v, e.hash
			first = false
		}
	}
	return value, hash
}

// Add records one occurrence of the value (use relation.Value.Hash() or
// the raw attribute value, matching the AGMS sketch convention).
func (d *Distinct) Add(value uint64) {
	if e, ok := d.tracked[value]; ok {
		e.count++
		return
	}
	h := d.hash(value)
	if len(d.tracked) < d.k {
		d.tracked[value] = &kmvEntry{hash: h, count: 1}
		return
	}
	evictVal, evictHash := d.maxTracked()
	if h >= evictHash {
		d.evicted = true // the new value itself is the one kept out
		return
	}
	delete(d.tracked, evictVal)
	d.evicted = true
	d.tracked[value] = &kmvEntry{hash: h, count: 1}
}

// Remove records the deletion of one occurrence of the value. When the
// last occurrence of a tracked value dies after any eviction has ever
// happened, the summary can no longer know which evicted value should take
// the freed slot and marks itself Degraded; estimates remain usable but
// drift low under sustained churn.
func (d *Distinct) Remove(value uint64) {
	e, ok := d.tracked[value]
	if !ok {
		return // never tracked (or already evicted); nothing to maintain
	}
	e.count--
	if e.count > 0 {
		return
	}
	delete(d.tracked, value)
	if d.evicted {
		d.degraded = true
	}
}

// Degraded reports whether deletions have removed tracked values the
// summary cannot backfill (estimates may be biased low since then).
func (d *Distinct) Degraded() bool { return d.degraded }

// Tracked returns the current number of tracked distinct values.
func (d *Distinct) Tracked() int { return len(d.tracked) }

// Estimate returns the estimated number of distinct values seen (net of
// well-formed deletions). With fewer than k tracked values and no
// evictions the count is exact; otherwise it is the KMV order-statistics
// estimate (k−1)/u_(k).
func (d *Distinct) Estimate() float64 {
	n := len(d.tracked)
	if n == 0 {
		return 0
	}
	if n < d.k && !d.evicted {
		return float64(n)
	}
	_, maxHash := d.maxTracked()
	u := (float64(maxHash) + 1) / math.Exp2(64) // normalize to (0, 1]
	//lint:ignore detflow maxTracked takes a max under a total order (hash, then raw value), so the result is independent of map iteration order
	return float64(n-1) / u
}

// Bytes reports the summary's resident storage.
func (d *Distinct) Bytes() int {
	// Per tracked value: the map key, the hash and the counter.
	return 32 + len(d.tracked)*24
}

// Clone returns an independently updatable copy.
func (d *Distinct) Clone() *Distinct {
	out := &Distinct{
		k:        d.k,
		seed:     d.seed,
		tracked:  make(map[uint64]*kmvEntry, len(d.tracked)),
		evicted:  d.evicted,
		degraded: d.degraded,
	}
	for v, e := range d.tracked {
		cp := *e
		out.tracked[v] = &cp
	}
	return out
}
