package planner

import (
	"fmt"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// SubsetOracle is an optional oracle refinement: estimators that work from
// precomputed per-query statistics (the System-R catalog) estimate a join
// subset directly from its relation bitmask instead of analyzing the
// expression. The mask is relative to the Query the oracle was built for.
type SubsetOracle interface {
	SubsetCardinality(mask uint32) (float64, error)
}

// Catalog is the System-R-era baseline oracle: exact (filtered) base
// cardinalities plus per-join-column distinct counts, combined with the
// attribute-value-independence and uniformity assumptions:
//
//	card(S) = ∏_{R∈S} |σ(R)| · ∏_{edges (A.a=B.b)⊆S} 1/max(d_A.a, d_B.b)
//
// It is deliberately generous to the baseline — the filtered base
// cardinalities are exact, as if the catalog kept perfect single-table
// statistics — so that any plan-quality gap against the sampling oracle is
// attributable purely to the independence assumption across relations.
type Catalog struct {
	q        Query
	idx      map[string]int
	baseCard []float64
	distinct map[string]map[string]float64 // rel → col → distinct count
}

// NewCatalog precomputes the statistics for one query against stored
// relations.
func NewCatalog(q Query, cat algebra.Catalog) (*Catalog, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	c := &Catalog{
		q:        q,
		idx:      map[string]int{},
		baseCard: make([]float64, len(q.Relations)),
		distinct: map[string]map[string]float64{},
	}
	for i, name := range q.Relations {
		c.idx[name] = i
		if _, ok := cat.Relation(name); !ok {
			return nil, fmt.Errorf("planner: no relation %q in catalog", name)
		}
		e := algebra.Base(name, q.Schemas[name])
		if f, fok := q.Filters[name]; fok && f != nil {
			var err error
			e, err = algebra.Select(e, f)
			if err != nil {
				return nil, err
			}
		}
		card, err := algebra.Count(e, cat)
		if err != nil {
			return nil, err
		}
		c.baseCard[i] = float64(card)
		c.distinct[name] = map[string]float64{}
	}
	// Distinct counts for every join column (on the unfiltered relation,
	// as a real catalog would store).
	for _, e := range c.q.Edges {
		for _, side := range []struct{ rel, col string }{{e.A, e.ACol}, {e.B, e.BCol}} {
			if _, done := c.distinct[side.rel][side.col]; done {
				continue
			}
			r, _ := cat.Relation(side.rel)
			pos := r.Schema().ColumnIndex(side.col)
			if pos < 0 {
				return nil, fmt.Errorf("planner: no column %q in %q", side.col, side.rel)
			}
			seen := map[string]struct{}{}
			var keyBuf []byte
			r.EachRow(func(i int, row relation.Row) bool {
				keyBuf = row.AppendKey(keyBuf[:0], []int{pos})
				seen[string(keyBuf)] = struct{}{}
				return true
			})
			c.distinct[side.rel][side.col] = float64(len(seen))
		}
	}
	return c, nil
}

// SubsetCardinality implements SubsetOracle with the AVI formula.
func (c *Catalog) SubsetCardinality(mask uint32) (float64, error) {
	card := 1.0
	for i := range c.q.Relations {
		if mask&(1<<i) != 0 {
			card *= c.baseCard[i]
		}
	}
	for _, e := range c.q.Edges {
		a, b := c.idx[e.A], c.idx[e.B]
		if mask&(1<<a) == 0 || mask&(1<<b) == 0 {
			continue
		}
		da := c.distinct[e.A][e.ACol]
		db := c.distinct[e.B][e.BCol]
		d := da
		if db > d {
			d = db
		}
		if d > 1 {
			card /= d
		}
	}
	return card, nil
}

// Cardinality implements CardinalityEstimator for completeness; the DP
// prefers the subset path for this oracle.
func (c *Catalog) Cardinality(e *algebra.Expr) (float64, error) {
	return 0, fmt.Errorf("planner: the catalog oracle estimates by subset; use it through Optimize")
}
