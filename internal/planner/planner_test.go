package planner

import (
	"math/rand"
	"strings"
	"testing"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
)

func intSchema(names ...string) *relation.Schema {
	cols := make([]relation.Column, len(names))
	for i, n := range names {
		cols[i] = relation.Column{Name: n, Kind: relation.KindInt}
	}
	return relation.MustSchema(cols...)
}

// chainFixture builds a 3-relation chain A ⋈ B ⋈ C with very different
// intermediate sizes so the join order matters: A⋈B is huge, B⋈C is tiny.
func chainFixture() (algebra.MapCatalog, Query) {
	mk := func(name string, rows [][]int64, cols ...string) *relation.Relation {
		r := relation.New(name, intSchema(cols...))
		for _, row := range rows {
			t := make(relation.Tuple, len(row))
			for i, v := range row {
				t[i] = relation.Int(v)
			}
			r.MustAppend(t)
		}
		return r
	}
	// A(x): 40 rows, all x = 1..4 repeated → A⋈B on x is big.
	var arows [][]int64
	for i := 0; i < 40; i++ {
		arows = append(arows, []int64{int64(i%4 + 1), int64(i)})
	}
	a := mk("A", arows, "x", "aid")
	// B(x, y): 20 rows, x in 1..4 repeated, y unique → B⋈C tiny.
	var brows [][]int64
	for i := 0; i < 20; i++ {
		brows = append(brows, []int64{int64(i%4 + 1), int64(i)})
	}
	b := mk("B", brows, "x", "y")
	// C(y): 10 rows, y = 0..9 → joins only first 10 B rows.
	var crows [][]int64
	for i := 0; i < 10; i++ {
		crows = append(crows, []int64{int64(i), int64(100 + i)})
	}
	c := mk("C", crows, "y", "cid")
	cat := algebra.MapCatalog{"A": a, "B": b, "C": c}
	q := Query{
		Relations: []string{"A", "B", "C"},
		Schemas:   map[string]*relation.Schema{"A": a.Schema(), "B": b.Schema(), "C": c.Schema()},
		Edges: []Edge{
			{A: "A", B: "B", ACol: "x", BCol: "x"},
			{A: "B", B: "C", BCol: "y", ACol: "y"},
		},
	}
	return cat, q
}

func TestOptimizeExactOracle(t *testing.T) {
	cat, q := chainFixture()
	plan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 3 {
		t.Fatalf("order %v", plan.Order)
	}
	// The cheap order starts with B⋈C (10 rows) rather than A⋈B (200).
	first2 := strings.Join(sortedRelations(plan.Order[:2]), ",")
	if first2 != "B,C" {
		t.Errorf("exact oracle picked order %v; expected to start with B,C", plan.Order)
	}
	// The plan expression is executable and matches the exact count of any
	// other order (logical equivalence).
	card, err := algebra.Count(plan.Expr, cat)
	if err != nil {
		t.Fatal(err)
	}
	if card <= 0 {
		t.Errorf("final cardinality %d", card)
	}
	// Plan cost via TrueCost equals the DP's estimated cost under the
	// exact oracle.
	tc, err := TrueCost(q, plan.Order, cat)
	if err != nil {
		t.Fatal(err)
	}
	if tc != plan.EstCost {
		t.Errorf("TrueCost %v != exact-oracle EstCost %v", tc, plan.EstCost)
	}
}

// TestOptimizeIsMinimalByBruteForce verifies the DP against all left-deep
// permutations under the exact oracle.
func TestOptimizeIsMinimalByBruteForce(t *testing.T) {
	cat, q := chainFixture()
	plan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]string{
		{"A", "B", "C"}, {"A", "C", "B"}, {"B", "A", "C"},
		{"B", "C", "A"}, {"C", "A", "B"}, {"C", "B", "A"},
	}
	best := -1.0
	for _, p := range perms {
		// Skip orders that force a cross product before any edge exists —
		// the DP avoids them, so only compare connected orders.
		if p[0] == "A" && p[1] == "C" || p[0] == "C" && p[1] == "A" {
			continue
		}
		tc, err := TrueCost(q, p, cat)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if best < 0 || tc < best {
			best = tc
		}
	}
	if plan.EstCost != best {
		t.Errorf("DP cost %v, brute-force best %v", plan.EstCost, best)
	}
}

func TestOptimizeSamplingOracle(t *testing.T) {
	cat, q := chainFixture()
	syn := estimator.NewSynopsis()
	rng := rand.New(rand.NewSource(3))
	for _, name := range q.Relations {
		r, _ := cat.Relation(name)
		if err := syn.AddDrawn(r, r.Len(), rng); err != nil { // census samples: estimates exact
			t.Fatal(err)
		}
	}
	plan, err := Optimize(q, Sampling{Syn: syn})
	if err != nil {
		t.Fatal(err)
	}
	// With census samples the sampling oracle equals the exact oracle.
	exactPlan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(plan.Order, ",") != strings.Join(exactPlan.Order, ",") {
		t.Errorf("census-sample plan %v != exact plan %v", plan.Order, exactPlan.Order)
	}
	if plan.EstCost != exactPlan.EstCost {
		t.Errorf("census-sample cost %v != exact cost %v", plan.EstCost, exactPlan.EstCost)
	}
}

func TestOptimizeWithFilters(t *testing.T) {
	cat, q := chainFixture()
	q.Filters = map[string]algebra.Predicate{
		"A": algebra.Cmp{Col: "x", Op: algebra.EQ, Val: relation.Int(1)},
	}
	plan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	// The filter must be inside the plan expression.
	card, err := algebra.Count(plan.Expr, cat)
	if err != nil {
		t.Fatal(err)
	}
	unfilteredQ := q
	unfilteredQ.Filters = nil
	unfiltered, err := Optimize(unfilteredQ, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	uncard, err := algebra.Count(unfiltered.Expr, cat)
	if err != nil {
		t.Fatal(err)
	}
	if card >= uncard {
		t.Errorf("filtered plan result %d not smaller than unfiltered %d", card, uncard)
	}
}

func TestOptimizeDisconnectedUsesCrossProduct(t *testing.T) {
	cat, q := chainFixture()
	q.Edges = q.Edges[:1] // only A–B; C is disconnected
	plan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 3 {
		t.Fatalf("order %v", plan.Order)
	}
	if _, err := algebra.Count(plan.Expr, cat); err != nil {
		t.Fatalf("disconnected plan not executable: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	cat, q := chainFixture()
	_ = cat
	bad := []func(Query) Query{
		func(q Query) Query { q.Relations = nil; return q },
		func(q Query) Query { q.Relations = append(q.Relations, "A"); return q },
		func(q Query) Query { delete(q.Schemas, "B"); return q },
		func(q Query) Query { q.Edges = append(q.Edges, Edge{A: "A", B: "Z", ACol: "x", BCol: "x"}); return q },
		func(q Query) Query { q.Edges = append(q.Edges, Edge{A: "A", B: "A", ACol: "x", BCol: "x"}); return q },
		func(q Query) Query { q.Edges = append(q.Edges, Edge{A: "A", B: "B", ACol: "zz", BCol: "x"}); return q },
		func(q Query) Query { q.Edges = append(q.Edges, Edge{A: "A", B: "B", ACol: "x", BCol: "zz"}); return q },
	}
	for i, mod := range bad {
		q2 := mod(Query{
			Relations: append([]string{}, q.Relations...),
			Schemas:   map[string]*relation.Schema{"A": q.Schemas["A"], "B": q.Schemas["B"], "C": q.Schemas["C"]},
			Edges:     append([]Edge{}, q.Edges...),
		})
		if _, err := Optimize(q2, Exact{Cat: cat}); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// TestCatalogOracleAVI checks the formula against hand-computed values.
func TestCatalogOracleAVI(t *testing.T) {
	cat, q := chainFixture()
	oracle, err := NewCatalog(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Singletons: exact base cardinalities.
	for i, want := range []float64{40, 20, 10} {
		got, err := oracle.SubsetCardinality(1 << i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("base %s card %v, want %v", q.Relations[i], got, want)
		}
	}
	// A⋈B: 40·20/max(d_A.x=4, d_B.x=4) = 200 — AVI happens to be exact here.
	got, _ := oracle.SubsetCardinality(0b011)
	if got != 200 {
		t.Errorf("A⋈B AVI card %v, want 200", got)
	}
	// B⋈C: 20·10/max(d_B.y=20, d_C.y=10) = 10 — exact again (key join).
	got, _ = oracle.SubsetCardinality(0b110)
	if got != 10 {
		t.Errorf("B⋈C AVI card %v, want 10", got)
	}
	// Full plan through the catalog oracle is executable.
	plan, err := Optimize(q, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algebra.Count(plan.Expr, cat); err != nil {
		t.Fatal(err)
	}
	// The direct Cardinality method is intentionally unsupported.
	if _, err := oracle.Cardinality(plan.Expr); err == nil {
		t.Error("catalog Cardinality(expr) should fail")
	}
}

// TestCorrelationFoolsCatalogNotSampling is the headline scenario: join
// attributes correlated across relations break AVI's estimate but not the
// sampling estimator, so the two oracles pick different orders — and
// sampling's order is truly cheaper.
func TestCorrelationFoolsCatalogNotSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4000
	// A(u, k): u uniform over 200 values; k = u (perfectly correlated).
	a := relation.New("A", intSchema("u", "k", "aid"))
	for i := 0; i < n; i++ {
		u := int64(rng.Intn(200))
		a.MustAppend(relation.Tuple{relation.Int(u), relation.Int(u), relation.Int(int64(i))})
	}
	// B(u): matches A.u on only the first 10 values → A⋈B is selective.
	b := relation.New("B", intSchema("u", "bid"))
	for i := 0; i < 400; i++ {
		b.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(10))), relation.Int(int64(i))})
	}
	// C(k): matches A.k on values 0..199 uniformly, 2000 rows → A⋈C is big,
	// but AVI thinks it's as selective as A⋈B-ish because d_C.k = 200.
	c := relation.New("C", intSchema("k", "cid"))
	for i := 0; i < 2000; i++ {
		c.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(200))), relation.Int(int64(i))})
	}
	cat := algebra.MapCatalog{"A": a, "B": b, "C": c}
	q := Query{
		Relations: []string{"A", "B", "C"},
		Schemas:   map[string]*relation.Schema{"A": a.Schema(), "B": b.Schema(), "C": c.Schema()},
		Edges: []Edge{
			{A: "A", B: "B", ACol: "u", BCol: "u"},
			{A: "A", B: "C", ACol: "k", BCol: "k"},
		},
	}
	// Sampling oracle with a 10% synopsis.
	syn := estimator.NewSynopsis()
	for _, name := range q.Relations {
		r, _ := cat.Relation(name)
		if err := syn.AddDrawn(r, r.Len()/10, rng); err != nil {
			t.Fatal(err)
		}
	}
	sPlan, err := Optimize(q, Sampling{Syn: syn})
	if err != nil {
		t.Fatal(err)
	}
	ePlan, err := Optimize(q, Exact{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	sCost, err := TrueCost(q, sPlan.Order, cat)
	if err != nil {
		t.Fatal(err)
	}
	eCost, err := TrueCost(q, ePlan.Order, cat)
	if err != nil {
		t.Fatal(err)
	}
	// The sampling plan should be (near-)optimal: within 2× of the exact
	// oracle's plan cost on this clearly separated scenario.
	if sCost > 2*eCost {
		t.Errorf("sampling plan cost %v vs optimal %v (orders %v vs %v)",
			sCost, eCost, sPlan.Order, ePlan.Order)
	}
}
