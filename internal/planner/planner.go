// Package planner implements the paper's motivating application: join-order
// optimization driven by cardinality estimates. It contains a Selinger-style
// dynamic program over left-deep join orders with the C_out cost metric
// (sum of intermediate result sizes), parameterized by a cardinality
// oracle. Three oracles are provided:
//
//   - Sampling: the paper's estimators over a synopsis — COUNT(E) for each
//     join prefix, estimated from small per-relation samples;
//   - Catalog: the System-R-era baseline — exact base cardinalities and
//     per-column distinct/min/max statistics combined with the
//     independence and uniformity assumptions (AVI);
//   - Exact: ground truth, used to score the plans the other two pick.
//
// The point the planner makes measurable (experiment A3): when join
// attributes are correlated, AVI's independence assumption picks bad
// orders, while sampling sees the correlation because it estimates each
// prefix as a whole.
package planner

import (
	"fmt"
	"math"
	"sort"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/obs"
	"relest/internal/relation"
)

// Planner metric and span names (see internal/obs). Recording is passive
// and never changes the chosen plan.
const (
	sPlan           = "relest_plan"
	mOracleCalls    = "relest_planner_oracle_calls_total"
	mPlannerSubsets = "relest_planner_subsets_total"
)

// Edge is one equi-join condition between two base relations of a query.
type Edge struct {
	A, B       string // relation names
	ACol, BCol string // join columns in the respective base schemas
}

// Query is a select-join query for the optimizer: a set of base relations
// (each used once), equi-join edges between them, and optional
// per-relation filters.
type Query struct {
	Relations []string
	Schemas   map[string]*relation.Schema
	Edges     []Edge
	Filters   map[string]algebra.Predicate
	// Rec receives the optimizer's metrics and spans (oracle calls, DP
	// subsets solved); nil disables recording. Recording never changes the
	// chosen plan.
	Rec obs.Recorder
}

// validate checks structural well-formedness.
func (q *Query) validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("planner: query has no relations")
	}
	if len(q.Relations) > 20 {
		return fmt.Errorf("planner: %d relations exceed the DP's subset limit", len(q.Relations))
	}
	seen := map[string]bool{}
	for _, r := range q.Relations {
		if seen[r] {
			return fmt.Errorf("planner: relation %q used twice; the planner requires each relation once", r)
		}
		seen[r] = true
		if _, ok := q.Schemas[r]; !ok {
			return fmt.Errorf("planner: no schema for relation %q", r)
		}
	}
	for _, e := range q.Edges {
		if !seen[e.A] || !seen[e.B] {
			return fmt.Errorf("planner: edge %v references unknown relation", e)
		}
		if e.A == e.B {
			return fmt.Errorf("planner: self-edge on %q not supported", e.A)
		}
		if q.Schemas[e.A].ColumnIndex(e.ACol) < 0 {
			return fmt.Errorf("planner: no column %q in %q", e.ACol, e.A)
		}
		if q.Schemas[e.B].ColumnIndex(e.BCol) < 0 {
			return fmt.Errorf("planner: no column %q in %q", e.BCol, e.B)
		}
	}
	return nil
}

// CardinalityEstimator is the oracle the DP consults: the estimated number
// of rows of the (filtered, joined) expression.
type CardinalityEstimator interface {
	Cardinality(e *algebra.Expr) (float64, error)
}

// Plan is an optimized left-deep join order.
type Plan struct {
	// Order lists the base relations in join order (first two form the
	// innermost join).
	Order []string
	// Expr is the bound left-deep expression implementing Order, with
	// filters pushed onto their relations.
	Expr *algebra.Expr
	// EstCost is Σ estimated intermediate cardinalities (C_out, excluding
	// base relation scans, including the final result).
	EstCost float64
	// EstCards holds the estimated cardinality of each join prefix,
	// aligned with Order[1:].
	EstCards []float64
}

// Optimize runs the Selinger DP over left-deep orders and returns the plan
// with the lowest estimated C_out. Cross products are allowed only when a
// subset has no connecting edge (disconnected queries still get a plan).
func Optimize(q Query, oracle CardinalityEstimator) (*Plan, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	rec := obs.Or(q.Rec)
	span := rec.Span(sPlan)
	defer span.End()
	n := len(q.Relations)
	idx := map[string]int{}
	for i, r := range q.Relations {
		idx[r] = i
	}

	// exprCache[mask] is the canonical left-deep expression for the best
	// plan of that subset; built lazily alongside the DP.
	type state struct {
		cost  float64 // Σ intermediate cards for joining this subset
		card  float64 // estimated cardinality of the subset's join
		last  int     // relation joined last (for order reconstruction)
		prev  uint32  // previous mask
		expr  *algebra.Expr
		valid bool
	}
	states := make([]state, 1<<n)

	base := func(i int) (*algebra.Expr, error) {
		name := q.Relations[i]
		e := algebra.Base(name, q.Schemas[name])
		if f, ok := q.Filters[name]; ok && f != nil {
			return algebra.Select(e, f)
		}
		return e, nil
	}

	subsetOracle, bySubset := oracle.(SubsetOracle)
	cardOf := func(mask uint32, e *algebra.Expr) (float64, error) {
		rec.Add(mOracleCalls, 1)
		if bySubset {
			return subsetOracle.SubsetCardinality(mask)
		}
		return oracle.Cardinality(e)
	}

	// Singletons.
	for i := 0; i < n; i++ {
		e, err := base(i)
		if err != nil {
			return nil, err
		}
		card, err := cardOf(1<<i, e)
		if err != nil {
			return nil, err
		}
		states[1<<i] = state{cost: 0, card: math.Max(card, 0), last: i, expr: e, valid: true}
	}

	// connected reports whether relation j has an edge into the subset.
	connected := func(mask uint32, j int) bool {
		for _, e := range q.Edges {
			a, b := idx[e.A], idx[e.B]
			if a == j && mask&(1<<b) != 0 {
				return true
			}
			if b == j && mask&(1<<a) != 0 {
				return true
			}
		}
		return false
	}

	// Enumerate subsets in increasing size.
	for mask := uint32(1); mask < 1<<n; mask++ {
		if states[mask].valid || popcount(mask) < 2 {
			continue
		}
		// Prefer extensions along edges; fall back to cross products only
		// if no relation of the subset connects.
		anyConnected := false
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 && connected(mask&^(1<<j), j) {
				anyConnected = true
				break
			}
		}
		best := state{}
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			prev := mask &^ (1 << j)
			if !states[prev].valid {
				continue
			}
			if anyConnected && !connected(prev, j) {
				continue
			}
			joined, err := joinInto(q, states[prev].expr, prev, j, idx)
			if err != nil {
				return nil, err
			}
			card, err := cardOf(mask, joined)
			if err != nil {
				return nil, err
			}
			card = math.Max(card, 0)
			cost := states[prev].cost + card
			if !best.valid || cost < best.cost {
				best = state{cost: cost, card: card, last: j, prev: prev, expr: joined, valid: true}
			}
		}
		if !best.valid {
			return nil, fmt.Errorf("planner: no valid extension for subset %b", mask)
		}
		states[mask] = best
		rec.Add(mPlannerSubsets, 1)
	}

	full := uint32(1<<n) - 1
	// Reconstruct the order.
	order := make([]string, 0, n)
	cards := make([]float64, 0, n-1)
	for mask := full; ; {
		st := states[mask]
		order = append(order, q.Relations[st.last])
		if popcount(mask) == 1 {
			break
		}
		cards = append(cards, st.card)
		mask = st.prev
	}
	reverseStrings(order)
	reverseFloats(cards)
	return &Plan{
		Order:    order,
		Expr:     states[full].expr,
		EstCost:  states[full].cost,
		EstCards: cards,
	}, nil
}

// joinInto builds the left-deep join of the existing prefix expression with
// relation j, using every edge between j and the prefix. Column names on
// the prefix side are resolved through the concatenation renaming rules
// (collisions were prefixed with the relation name at each earlier join).
func joinInto(q Query, prefix *algebra.Expr, prevMask uint32, j int, idx map[string]int) (*algebra.Expr, error) {
	name := q.Relations[j]
	right := algebra.Base(name, q.Schemas[name])
	var rexpr *algebra.Expr = right
	if f, ok := q.Filters[name]; ok && f != nil {
		var err error
		rexpr, err = algebra.Select(right, f)
		if err != nil {
			return nil, err
		}
	}
	var ons []algebra.On
	for _, e := range q.Edges {
		a, b := idx[e.A], idx[e.B]
		var prefRel, prefCol, rightCol string
		switch {
		case a == j && prevMask&(1<<b) != 0:
			prefRel, prefCol, rightCol = e.B, e.BCol, e.ACol
		case b == j && prevMask&(1<<a) != 0:
			prefRel, prefCol, rightCol = e.A, e.ACol, e.BCol
		default:
			continue
		}
		left := resolvePrefixColumn(prefix.Schema(), prefRel, prefCol)
		if left == "" {
			return nil, fmt.Errorf("planner: cannot resolve column %s.%s in prefix schema %s", prefRel, prefCol, prefix.Schema())
		}
		ons = append(ons, algebra.On{Left: left, Right: rightCol})
	}
	if len(ons) == 0 {
		// Cross product (disconnected query).
		return algebra.Product(prefix, rexpr, name)
	}
	return algebra.Join(prefix, rexpr, ons, nil, name)
}

// resolvePrefixColumn finds the current name of relation rel's column col
// inside a left-deep prefix schema: either the bare column name or the
// collision-renamed "rel.col".
func resolvePrefixColumn(s *relation.Schema, rel, col string) string {
	if qualified := rel + "." + col; s.ColumnIndex(qualified) >= 0 {
		return qualified
	}
	if s.ColumnIndex(col) >= 0 {
		return col
	}
	return ""
}

// TrueCost evaluates a plan's actual C_out: the exact cardinality of every
// join prefix, summed. Used to score plans chosen by approximate oracles.
func TrueCost(q Query, order []string, cat algebra.Catalog) (float64, error) {
	if len(order) != len(q.Relations) {
		return 0, fmt.Errorf("planner: order has %d relations, query has %d", len(order), len(q.Relations))
	}
	idx := map[string]int{}
	for i, r := range q.Relations {
		idx[r] = i
	}
	var prefix *algebra.Expr
	var prevMask uint32
	total := 0.0
	for i, name := range order {
		j, ok := idx[name]
		if !ok {
			return 0, fmt.Errorf("planner: unknown relation %q in order", name)
		}
		if i == 0 {
			e := algebra.Base(name, q.Schemas[name])
			if f, fok := q.Filters[name]; fok && f != nil {
				var err error
				e, err = algebra.Select(e, f)
				if err != nil {
					return 0, err
				}
			}
			prefix = e
			prevMask = 1 << j
			continue
		}
		joined, err := joinInto(q, prefix, prevMask, j, idx)
		if err != nil {
			return 0, err
		}
		card, err := algebra.CountStreaming(joined, cat)
		if err != nil {
			return 0, err
		}
		total += card
		prefix = joined
		prevMask |= 1 << j
	}
	return total, nil
}

// Oracles -----------------------------------------------------------------

// Sampling is the paper's oracle: COUNT estimates from a synopsis. Rec,
// when set, is threaded into each estimation call (per-term timing,
// samples consumed).
type Sampling struct {
	Syn *estimator.Synopsis
	Rec obs.Recorder
}

// Cardinality implements CardinalityEstimator.
func (s Sampling) Cardinality(e *algebra.Expr) (float64, error) {
	est, err := estimator.CountWithOptions(e, s.Syn, estimator.Options{Variance: estimator.VarNone, Recorder: s.Rec})
	if err != nil {
		return 0, err
	}
	return est.Value, nil
}

// Exact is the ground-truth oracle.
type Exact struct {
	Cat algebra.Catalog
}

// Cardinality implements CardinalityEstimator.
func (x Exact) Cardinality(e *algebra.Expr) (float64, error) {
	return algebra.CountStreaming(e, x.Cat)
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func reverseStrings(xs []string) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func reverseFloats(xs []float64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// sortedRelations is used by tests to canonicalize orders.
func sortedRelations(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}
