package sampling

import (
	"sync/atomic"

	"relest/internal/obs"
)

// Sampling instrumentation reports through a process-wide recorder, set
// once at startup (mirroring SetWorkers in internal/parallel): the draw
// primitives are called from deep inside synopsis construction, where no
// per-call recorder is in scope. The default is the no-op recorder, so
// uninstrumented processes pay one atomic load per draw call.
//
// Recording never consumes randomness — every metric observes counts the
// sampler computed anyway — so estimates are bit-identical with any
// recorder installed (enforced by test in internal/estimator).

// Metric names.
const (
	mDrawsTotal         = "relest_sampling_draws_total"
	mUnitsDrawnTotal    = "relest_sampling_units_drawn_total"
	mReservoirDisplaced = "relest_sampling_reservoir_displaced_total"
)

// recBox keeps atomic.Value's concrete type fixed while the Recorder
// implementation varies.
type recBox struct{ r obs.Recorder }

var globalRec atomic.Value // recBox

// SetRecorder installs the process-wide sampling recorder (nil restores
// the no-op default).
func SetRecorder(r obs.Recorder) {
	globalRec.Store(recBox{obs.Or(r)})
}

// recorder returns the installed recorder, defaulting to obs.Nop.
func recorder() obs.Recorder {
	if v := globalRec.Load(); v != nil {
		return v.(recBox).r
	}
	return obs.Nop
}

// countDraw reports one draw primitive call yielding n sampling units.
func countDraw(n int) {
	rec := recorder()
	rec.Add(mDrawsTotal, 1)
	rec.Add(mUnitsDrawnTotal, float64(n))
}
