package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestWithoutReplacementBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ N, n int }{{10, 0}, {10, 3}, {10, 10}, {100, 99}, {1000, 5}} {
		s := WithoutReplacement(rng, c.N, c.n)
		if len(s) != c.n {
			t.Fatalf("N=%d n=%d: got %d indices", c.N, c.n, len(s))
		}
		if !sort.IntsAreSorted(s) {
			t.Errorf("N=%d n=%d: not sorted", c.N, c.n)
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= c.N {
				t.Errorf("index %d outside [0,%d)", i, c.N)
			}
			if seen[i] {
				t.Errorf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
}

func TestWithoutReplacementPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ N, n int }{{5, 6}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithoutReplacement(%d, %d) should panic", c.N, c.n)
				}
			}()
			WithoutReplacement(rng, c.N, c.n)
		}()
	}
}

// subsetKey canonicalizes a sample for frequency counting.
func subsetKey(s []int) string {
	return fmt.Sprint(s)
}

func TestWithoutReplacementUniformOverSubsets(t *testing.T) {
	// N=5, n=2: all C(5,2)=10 subsets must be equally likely. This also
	// exercises both the Floyd path (n*3 < N is false here: 6 > 5, so the
	// Fisher–Yates path) — run a second config hitting Floyd's path.
	configs := []struct{ N, n int }{{5, 2}, {20, 2}}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(7))
		const trials = 40000
		counts := map[string]int{}
		for i := 0; i < trials; i++ {
			counts[subsetKey(WithoutReplacement(rng, cfg.N, cfg.n))]++
		}
		nsub := choose(cfg.N, cfg.n)
		want := float64(trials) / float64(nsub)
		sigma := math.Sqrt(float64(trials) * (1 / float64(nsub)) * (1 - 1/float64(nsub)))
		if len(counts) != nsub {
			t.Fatalf("N=%d n=%d: saw %d subsets, want %d", cfg.N, cfg.n, len(counts), nsub)
		}
		for k, c := range counts {
			if math.Abs(float64(c)-want) > 6*sigma {
				t.Errorf("N=%d n=%d subset %s: count %d, want %.0f±%.0f", cfg.N, cfg.n, k, c, want, 6*sigma)
			}
		}
	}
}

func TestExtendDistribution(t *testing.T) {
	// Sample 1 of 5 then extend by 1: the combined pair must be uniform
	// over all C(5,2) subsets, exactly as a fresh SRSWOR of size 2.
	rng := rand.New(rand.NewSource(11))
	const trials = 40000
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		s := WithoutReplacement(rng, 5, 1)
		s = Extend(rng, 5, s, 1)
		counts[subsetKey(s)]++
	}
	want := float64(trials) / 10
	sigma := math.Sqrt(float64(trials) * 0.1 * 0.9)
	if len(counts) != 10 {
		t.Fatalf("saw %d subsets, want 10", len(counts))
	}
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("subset %s: count %d, want %.0f±%.0f", k, c, want, 6*sigma)
		}
	}
}

func TestExtendDensePath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := WithoutReplacement(rng, 10, 4)
	s = Extend(rng, 10, s, 5) // (4+5)*2 >= 10 → complement path
	if len(s) != 9 || !sort.IntsAreSorted(s) {
		t.Fatalf("extend dense: %v", s)
	}
	seen := map[int]bool{}
	for _, i := range s {
		if seen[i] {
			t.Fatalf("duplicate in %v", s)
		}
		seen[i] = true
	}
	// m = 0 round-trips.
	s2 := Extend(rng, 10, s, 0)
	if len(s2) != len(s) {
		t.Error("extend by 0 changed size")
	}
}

func TestExtendPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-extension should panic")
			}
		}()
		Extend(rng, 5, []int{0, 1}, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate existing sample should panic")
			}
		}()
		Extend(rng, 5, []int{1, 1}, 1)
	}()
}

func TestWithReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := WithReplacement(rng, 3, 1000)
	if len(s) != 1000 {
		t.Fatal("size")
	}
	counts := [3]int{}
	for _, i := range s {
		counts[i]++
	}
	for v, c := range counts {
		if c < 250 || c > 420 {
			t.Errorf("value %d count %d far from uniform", v, c)
		}
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := Bernoulli(rng, 10000, 0.2)
	if len(s) < 1700 || len(s) > 2300 {
		t.Errorf("bernoulli size %d far from 2000", len(s))
	}
	if !sort.IntsAreSorted(s) {
		t.Error("not sorted")
	}
	if got := Bernoulli(rng, 100, 0); len(got) != 0 {
		t.Error("p=0 should be empty")
	}
	if got := Bernoulli(rng, 100, 1); len(got) != 100 {
		t.Error("p=1 should include all")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Stream 1..T through a reservoir of size k; each item must end up in
	// the final sample with probability k/T.
	const T, k, trials = 100, 10, 20000
	counts := make([]int, T)
	rng := rand.New(rand.NewSource(13))
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir[int](rng, k)
		for i := 0; i < T; i++ {
			r.Add(i)
		}
		if len(r.Items()) != k {
			t.Fatalf("sample size %d", len(r.Items()))
		}
		if r.Seen() != T {
			t.Fatalf("seen %d", r.Seen())
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	p := float64(k) / float64(T)
	want := p * trials
	sigma := math.Sqrt(trials * p * (1 - p))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("item %d in sample %d times, want %.0f±%.0f", i, c, want, 6*sigma)
		}
	}
}

func TestReservoirShortStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewReservoir[string](rng, 5)
	r.Add("a")
	r.Add("b")
	if len(r.Items()) != 2 || r.Cap() != 5 {
		t.Errorf("short stream: %v", r.Items())
	}
}

func TestPairedReservoirInsertOnlyUniform(t *testing.T) {
	// Without deletions, the paired reservoir must behave exactly like a
	// plain reservoir: inclusion probability k/T for every item.
	const T, k, trials = 60, 6, 20000
	counts := make([]int, T)
	rng := rand.New(rand.NewSource(17))
	for tr := 0; tr < trials; tr++ {
		p := NewPairedReservoir[int](rng, k, func(i int) string { return fmt.Sprint(i) })
		for i := 0; i < T; i++ {
			p.Insert(i)
		}
		for _, it := range p.Items() {
			counts[it]++
		}
	}
	pr := float64(k) / float64(T)
	want := pr * trials
	sigma := math.Sqrt(trials * pr * (1 - pr))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("item %d: %d, want %.0f±%.0f", i, c, want, 6*sigma)
		}
	}
}

func TestPairedReservoirDeletionsUniform(t *testing.T) {
	// Insert 0..29, delete 0..9, insert 30..39. The surviving population is
	// {10..39} (30 items); each must be included with probability k/30.
	const k, trials = 5, 30000
	counts := map[int]int{}
	rng := rand.New(rand.NewSource(23))
	for tr := 0; tr < trials; tr++ {
		p := NewPairedReservoir[int](rng, k, func(i int) string { return fmt.Sprint(i) })
		for i := 0; i < 30; i++ {
			p.Insert(i)
		}
		for i := 0; i < 10; i++ {
			p.Delete(i)
		}
		for i := 30; i < 40; i++ {
			p.Insert(i)
		}
		if p.PopulationSize() != 30 {
			t.Fatalf("population %d", p.PopulationSize())
		}
		for _, it := range p.Items() {
			if it < 10 {
				t.Fatalf("deleted item %d still sampled", it)
			}
			counts[it]++
		}
	}
	pr := float64(k) / 30
	want := pr * trials
	sigma := math.Sqrt(trials * pr * (1 - pr))
	for i := 10; i < 40; i++ {
		if math.Abs(float64(counts[i])-want) > 6*sigma {
			t.Errorf("item %d: %d, want %.0f±%.0f", i, counts[i], want, 6*sigma)
		}
	}
}

func TestPairedReservoirDeleteUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPairedReservoir[int](rng, 3, func(i int) string { return fmt.Sprint(i) })
	if p.Delete(7) {
		t.Error("delete from empty population should report false")
	}
	p.Insert(1)
	p.Insert(2)
	// Deleting an item not in the sample is legal (it may simply not have
	// been sampled); population shrinks regardless.
	p.Delete(1)
	p.Delete(2)
	if p.PopulationSize() != 0 {
		t.Errorf("population %d", p.PopulationSize())
	}
	if p.SampleSize() != 0 {
		t.Errorf("sample %d after deleting everything", p.SampleSize())
	}
}

func TestSplitGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sample := WithoutReplacement(rng, 100, 20)
	groups := SplitGroups(rng, sample, 4)
	if len(groups) != 4 {
		t.Fatal("group count")
	}
	var all []int
	for _, g := range groups {
		if len(g) != 5 {
			t.Errorf("group size %d", len(g))
		}
		if !sort.IntsAreSorted(g) {
			t.Error("group not sorted")
		}
		all = append(all, g...)
	}
	sort.Ints(all)
	for i := range all {
		if all[i] != sample[i] {
			t.Fatalf("groups lost elements: %v vs %v", all, sample)
		}
	}
}

func TestProportional(t *testing.T) {
	cases := []struct {
		sizes []int
		n     int
		want  []int
	}{
		{[]int{50, 30, 20}, 10, []int{5, 3, 2}},
		{[]int{1, 1, 1}, 2, nil},        // sums to 2, each stratum ≤ 1
		{[]int{100, 1}, 50, nil},        // cap respected
		{[]int{0, 0}, 5, []int{0, 0}},   // empty population
		{[]int{3, 3}, 100, []int{3, 3}}, // n > total clamps
	}
	for _, c := range cases {
		got := Proportional(c.sizes, c.n)
		sum, total := 0, 0
		for i, g := range got {
			if g < 0 || g > c.sizes[i] {
				t.Errorf("Proportional(%v, %d) = %v: stratum cap violated", c.sizes, c.n, got)
			}
			sum += g
			total += c.sizes[i]
		}
		wantSum := c.n
		if wantSum > total {
			wantSum = total
		}
		if sum != wantSum {
			t.Errorf("Proportional(%v, %d) = %v sums to %d, want %d", c.sizes, c.n, got, sum, wantSum)
		}
		if c.want != nil {
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Errorf("Proportional(%v, %d) = %v, want %v", c.sizes, c.n, got, c.want)
					break
				}
			}
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	if a.StreamSeed(3) != b.StreamSeed(3) {
		t.Error("same root seed must give same stream seeds")
	}
	if a.StreamSeed(1) == a.StreamSeed(2) {
		t.Error("different streams must differ")
	}
	s1 := WithoutReplacement(a.Rand(0), 1000, 10)
	s2 := WithoutReplacement(b.Rand(0), 1000, 10)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("derived streams not reproducible")
		}
	}
}

func choose(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
