package sampling

import (
	"fmt"
	"math/rand"
	"sort"
)

// WithoutReplacement draws a simple random sample of n distinct indices
// from [0, N) — SRSWOR, the sampling design all of the paper's estimators
// assume. Every size-n subset is equally likely. The returned slice is in
// ascending order. It panics if n < 0 or n > N.
//
// The implementation picks between Floyd's O(n) set-based algorithm (sparse
// samples) and a partial Fisher–Yates shuffle (dense samples) so that both
// n ≪ N and n ≈ N are efficient.
func WithoutReplacement(rng *rand.Rand, N, n int) []int {
	if n < 0 || n > N {
		panic(fmt.Sprintf("sampling: WithoutReplacement(N=%d, n=%d) out of range", N, n))
	}
	if n == 0 {
		return []int{}
	}
	var out []int
	if n*3 < N {
		// Floyd's algorithm: for j = N−n .. N−1, draw t ∈ [0, j]; take t
		// unless already taken, in which case take j. Yields a uniform
		// n-subset using exactly n random draws and an O(n) set.
		chosen := make(map[int]struct{}, n)
		for j := N - n; j < N; j++ {
			t := rng.Intn(j + 1)
			if _, taken := chosen[t]; taken {
				chosen[j] = struct{}{}
			} else {
				chosen[t] = struct{}{}
			}
		}
		out = make([]int, 0, n)
		for i := range chosen {
			out = append(out, i)
		}
	} else {
		// Partial Fisher–Yates over the full index range.
		perm := make([]int, N)
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < n; i++ {
			j := i + rng.Intn(N-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		out = perm[:n:n]
	}
	sort.Ints(out)
	countDraw(n)
	return out
}

// Extend enlarges an existing SRSWOR sample of [0, N) by m additional
// distinct indices drawn uniformly from the complement, returning the
// combined ascending sample. The result is distributed exactly as a fresh
// SRSWOR sample of size len(existing)+m (sequential double sampling relies
// on this). It panics if the extension is impossible.
func Extend(rng *rand.Rand, N int, existing []int, m int) []int {
	n := len(existing)
	if m < 0 || n+m > N {
		panic(fmt.Sprintf("sampling: Extend(N=%d, n=%d, m=%d) out of range", N, n, m))
	}
	if m == 0 {
		out := append([]int(nil), existing...)
		sort.Ints(out)
		return out
	}
	taken := make(map[int]struct{}, n+m)
	for _, i := range existing {
		taken[i] = struct{}{}
	}
	if len(taken) != n {
		panic("sampling: Extend given sample with duplicate indices")
	}
	// Rejection sampling is efficient while the occupied fraction is small;
	// fall back to sampling positions in the complement when it is not.
	if (n+m)*2 < N {
		for added := 0; added < m; {
			c := rng.Intn(N)
			if _, dup := taken[c]; dup {
				continue
			}
			taken[c] = struct{}{}
			added++
		}
	} else {
		complement := make([]int, 0, N-n)
		for i := 0; i < N; i++ {
			if _, dup := taken[i]; !dup {
				complement = append(complement, i)
			}
		}
		for _, pos := range WithoutReplacement(rng, len(complement), m) {
			taken[complement[pos]] = struct{}{}
		}
	}
	out := make([]int, 0, n+m)
	for i := range taken {
		out = append(out, i)
	}
	sort.Ints(out)
	countDraw(m)
	return out
}

// WithReplacement draws n indices uniformly and independently from [0, N)
// — SRSWR, provided for baseline comparisons. It panics if n < 0 or N <= 0
// with n > 0.
func WithReplacement(rng *rand.Rand, N, n int) []int {
	if n < 0 || (N <= 0 && n > 0) {
		panic(fmt.Sprintf("sampling: WithReplacement(N=%d, n=%d) out of range", N, n))
	}
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(N)
	}
	countDraw(n)
	return out
}

// Bernoulli includes each index of [0, N) independently with probability p,
// returning the ascending included indices. The expected sample size is
// N·p but the realized size is random — the property that distinguishes
// Bernoulli designs from SRSWOR in the estimators' variance.
func Bernoulli(rng *rand.Rand, N int, p float64) []int {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sampling: Bernoulli probability %v outside [0,1]", p))
	}
	var out []int
	for i := 0; i < N; i++ {
		if rng.Float64() < p {
			out = append(out, i)
		}
	}
	if out == nil {
		out = []int{}
	}
	countDraw(len(out))
	return out
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle(rng *rand.Rand, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// SplitGroups partitions a sample into g nearly equal groups after a random
// shuffle, for split-sample (replicated) variance estimation. Each group is
// itself an SRSWOR sample of the population. It panics if g < 1; groups may
// be empty when g exceeds the sample size.
func SplitGroups(rng *rand.Rand, sample []int, g int) [][]int {
	if g < 1 {
		panic(fmt.Sprintf("sampling: SplitGroups with g=%d", g))
	}
	shuffled := append([]int(nil), sample...)
	Shuffle(rng, shuffled)
	groups := make([][]int, g)
	for i, x := range shuffled {
		groups[i%g] = append(groups[i%g], x)
	}
	for i := range groups {
		sort.Ints(groups[i])
	}
	return groups
}
