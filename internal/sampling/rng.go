// Package sampling implements the random-sampling substrate of the library:
// simple random sampling with and without replacement over index spaces,
// Bernoulli sampling, bounded reservoirs maintained over insert-only streams
// (Vitter's Algorithm R with the skip-based acceleration of Algorithm X),
// reservoirs maintained under deletions (random pairing), and stratified
// sample allocation.
//
// All randomness flows from explicitly seeded generators so that every
// experiment in this repository is reproducible; Source derives independent
// substreams from a root seed with SplitMix64.
package sampling

import "math/rand"

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// the standard seed-expansion function: statistically independent outputs
// from consecutive states, used here to derive substream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source derives independent, reproducible random substreams from one root
// seed. Each call to Stream or Rand with a distinct label index yields a
// generator that is independent of the others for all practical purposes.
type Source struct {
	seed uint64
}

// NewSource creates a Source from a root seed.
func NewSource(seed int64) *Source { return &Source{seed: uint64(seed)} }

// StreamSeed returns the derived seed for substream i.
func (s *Source) StreamSeed(i int) int64 {
	state := s.seed ^ (uint64(i)+1)*0xd1b54a32d192ed03
	return int64(splitmix64(&state))
}

// Rand returns a new *rand.Rand for substream i.
func (s *Source) Rand(i int) *rand.Rand {
	return rand.New(rand.NewSource(s.StreamSeed(i)))
}

// Seeded returns a deterministic *rand.Rand for an explicit seed. It is
// the one blessed constructor for callers that carry a seed directly
// (CLI flags, option structs) rather than deriving substreams from a
// Source; relestlint's rawrand rule forbids raw rand.New/rand.NewSource
// calls everywhere outside this file.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
