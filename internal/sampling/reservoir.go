package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Reservoir maintains a uniform SRSWOR sample of capacity k over an
// insert-only stream of unknown length: after any number of Add calls, the
// held items are a uniform k-subset of everything added so far (or all of
// it, while fewer than k items have arrived).
//
// The implementation is Vitter's Algorithm R upgraded with the skip-based
// acceleration of Algorithm X: once the reservoir is full it draws, in O(1)
// amortized time, the number of stream items to skip before the next
// replacement, instead of flipping a coin per item.
type Reservoir[T any] struct {
	rng       *rand.Rand
	cap       int
	seen      int64
	items     []T
	skip      int64 // items still to pass over before the next replacement
	displaced int64 // sample items overwritten by later stream items
}

// NewReservoir creates a reservoir with the given capacity.
// It panics if capacity < 1.
func NewReservoir[T any](rng *rand.Rand, capacity int) *Reservoir[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("sampling: reservoir capacity %d < 1", capacity))
	}
	return &Reservoir[T]{rng: rng, cap: capacity}
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		if len(r.items) == r.cap {
			r.skip = r.drawSkip()
		}
		return
	}
	if r.skip > 0 {
		r.skip--
		return
	}
	// This item replaces a uniformly chosen slot.
	r.items[r.rng.Intn(r.cap)] = item
	r.displaced++
	recorder().Add(mReservoirDisplaced, 1)
	r.skip = r.drawSkip()
}

// drawSkip draws the number of upcoming items to pass over before the next
// replacement, using the Algorithm X distribution: with t items seen so far
// and a full reservoir of size k,
//
//	P(skip ≥ s) = ∏_{j=1..s} (t+j−k)/(t+j),
//
// inverted by sequential search against one uniform variate. The expected
// work per accepted item is O(t/k), making the whole stream O(k·(1+log(T/k)))
// random draws instead of one per item.
func (r *Reservoir[T]) drawSkip() int64 {
	k := int64(r.cap)
	t := r.seen
	u := r.rng.Float64()
	var s int64
	// quot = P(skip ≥ s+1), maintained incrementally.
	quot := float64(t+1-k) / float64(t+1)
	for quot > u {
		s++
		t++
		quot *= float64(t+1-k) / float64(t+1)
	}
	return s
}

// Items returns the current sample. The returned slice is the reservoir's
// own storage and must not be modified.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Displaced returns how many sample items have been overwritten by later
// stream items — a measure of how much the sample has churned.
func (r *Reservoir[T]) Displaced() int64 { return r.displaced }

// Cap returns the reservoir capacity.
func (r *Reservoir[T]) Cap() int { return r.cap }

// PairedReservoir maintains a bounded uniform sample over a stream of
// insertions AND deletions, using the random-pairing scheme
// (Gemulla–Lehner–Haas, VLDB 2006): every deletion is conceptually paired
// with a future insertion that "re-fills" the hole it left, which preserves
// the uniformity of the sample without ever rescanning the base data.
//
// Items are identified for deletion by the key function supplied at
// construction; the population is multiset-semantics (deleting a key
// removes one instance).
type PairedReservoir[T any] struct {
	rng  *rand.Rand
	cap  int
	key  func(T) string
	size int64 // current population size (inserts − deletes)

	items []T
	index map[string][]int // key → slots holding it (for deletion lookup)

	// Uncompensated deletions: c1 counts deletions that removed a sample
	// item, c2 deletions that did not. While c1+c2 > 0, insertions
	// compensate them instead of running the plain reservoir step.
	c1, c2 int64

	displaced int64 // sample items overwritten by later insertions
}

// NewPairedReservoir creates a random-pairing reservoir with the given
// capacity and key function. It panics if capacity < 1 or key is nil.
func NewPairedReservoir[T any](rng *rand.Rand, capacity int, key func(T) string) *PairedReservoir[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("sampling: paired reservoir capacity %d < 1", capacity))
	}
	if key == nil {
		panic("sampling: paired reservoir requires a key function")
	}
	return &PairedReservoir[T]{
		rng:   rng,
		cap:   capacity,
		key:   key,
		index: make(map[string][]int),
	}
}

// Insert offers an insertion to the reservoir.
func (p *PairedReservoir[T]) Insert(item T) {
	p.size++
	if p.c1+p.c2 > 0 {
		// Compensation step: this insertion is paired with one of the
		// uncompensated deletions. With probability c1/(c1+c2) it refills
		// a hole the sample itself suffered.
		if float64(p.c1) > p.rng.Float64()*float64(p.c1+p.c2) {
			p.place(item)
			p.c1--
		} else {
			p.c2--
		}
		return
	}
	// Plain reservoir step over the current population size.
	if len(p.items) < p.cap {
		p.place(item)
		return
	}
	if int64(p.rng.Intn(int(p.size))) < int64(p.cap) {
		p.replace(p.rng.Intn(p.cap), item)
	}
}

// Delete processes a deletion of one instance of the given item. It returns
// false if the population does not contain the item according to the
// maintained size counter being zero; callers streaming well-formed
// insert/delete sequences can ignore the return value.
func (p *PairedReservoir[T]) Delete(item T) bool {
	if p.size == 0 {
		return false
	}
	p.size--
	k := p.key(item)
	if slots := p.index[k]; len(slots) > 0 {
		p.removeSlot(slots[len(slots)-1])
		p.c1++
	} else {
		p.c2++
	}
	return true
}

// place appends an item into a free slot.
func (p *PairedReservoir[T]) place(item T) {
	p.items = append(p.items, item)
	slot := len(p.items) - 1
	k := p.key(item)
	p.index[k] = append(p.index[k], slot)
}

// replace overwrites the item at slot with a new item.
func (p *PairedReservoir[T]) replace(slot int, item T) {
	p.displaced++
	recorder().Add(mReservoirDisplaced, 1)
	p.unindex(slot)
	p.items[slot] = item
	k := p.key(item)
	p.index[k] = append(p.index[k], slot)
}

// removeSlot deletes the item at slot, moving the last item into its place.
func (p *PairedReservoir[T]) removeSlot(slot int) {
	last := len(p.items) - 1
	p.unindex(slot)
	if slot != last {
		p.unindex(last)
		p.items[slot] = p.items[last]
		k := p.key(p.items[slot])
		p.index[k] = append(p.index[k], slot)
	}
	p.items = p.items[:last]
}

// unindex removes slot from the index entry of the item it holds.
func (p *PairedReservoir[T]) unindex(slot int) {
	k := p.key(p.items[slot])
	slots := p.index[k]
	for i, s := range slots {
		if s == slot {
			slots[i] = slots[len(slots)-1]
			slots = slots[:len(slots)-1]
			break
		}
	}
	if len(slots) == 0 {
		delete(p.index, k)
	} else {
		p.index[k] = slots
	}
}

// Items returns the current sample; the slice must not be modified.
func (p *PairedReservoir[T]) Items() []T { return p.items }

// PopulationSize returns the maintained population size
// (insertions − deletions).
func (p *PairedReservoir[T]) PopulationSize() int64 { return p.size }

// SampleSize returns the current number of sampled items. It can be below
// capacity after bursts of deletions; random pairing refills it as
// insertions arrive.
func (p *PairedReservoir[T]) SampleSize() int { return len(p.items) }

// Displaced returns how many sample items have been overwritten by later
// insertions.
func (p *PairedReservoir[T]) Displaced() int64 { return p.displaced }

// Allocation strategies for stratified sampling.

// Proportional allocates a total sample size n across strata proportionally
// to stratum sizes, largest-remainder rounding, never exceeding a stratum's
// size. Returns per-stratum sample sizes.
func Proportional(strataSizes []int, n int) []int {
	total := 0
	for _, s := range strataSizes {
		total += s
	}
	out := make([]int, len(strataSizes))
	if total == 0 || n <= 0 {
		return out
	}
	if n > total {
		n = total
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(strataSizes))
	assigned := 0
	for i, s := range strataSizes {
		exact := float64(n) * float64(s) / float64(total)
		out[i] = int(math.Floor(exact))
		if out[i] > s {
			out[i] = s
		}
		assigned += out[i]
		rems[i] = rem{i: i, frac: exact - math.Floor(exact)}
	}
	// Distribute the remainder by largest fractional part, respecting caps.
	for assigned < n {
		best := -1
		for j := range rems {
			i := rems[j].i
			if out[i] >= strataSizes[i] {
				continue
			}
			if best < 0 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		if best < 0 {
			break
		}
		out[rems[best].i]++
		rems[best].frac = -1
		assigned++
	}
	return out
}
