package estimator

import (
	"math/rand"
	"sync"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// drawnJoinSynopsis builds R(a,b) ⋈ S(a,c) bases of the given sizes with a
// shared key domain, draws tuple samples, and returns the join expression
// with its synopsis.
func drawnJoinSynopsis(t testing.TB, nR, nS, sample int, seed int64) (*algebra.Expr, *Synopsis) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := nR / 10
	if keys < 2 {
		keys = 2
	}
	rRows := make([][]int64, nR)
	for i := range rRows {
		rRows[i] = []int64{int64(rng.Intn(keys)), int64(rng.Intn(1000))}
	}
	sRows := make([][]int64, nS)
	for i := range sRows {
		sRows[i] = []int64{int64(rng.Intn(keys)), int64(rng.Intn(1000))}
	}
	r := intRelation("R", []string{"a", "b"}, rRows)
	s := intRelation("S", []string{"a", "c"}, sRows)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, sample, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, sample, rng); err != nil {
		t.Fatal(err)
	}
	expr := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	return expr, syn
}

// TestWorkersDeterminism checks the headline contract of the parallel
// engine: for a fixed Seed, every Options.Workers setting produces
// bit-identical estimates — point value, variance and interval.
func TestWorkersDeterminism(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 400, 300, 40, 11)
	for _, variance := range []VarianceMethod{VarSplitSample, VarJackknife, VarAnalytic} {
		var base Estimate
		for i, workers := range []int{1, 2, 3, 8} {
			est, err := CountWithOptions(expr, syn, Options{Variance: variance, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", variance, workers, err)
			}
			if i == 0 {
				base = est
				continue
			}
			if est.Value != base.Value || est.Variance != base.Variance || est.Lo != base.Lo || est.Hi != base.Hi {
				t.Errorf("%v: workers=%d diverges: %+v vs %+v", variance, workers, est, base)
			}
		}
	}
}

// TestWorkersDeterminismSum is the same contract for the SUM estimator and
// for a multi-term polynomial (union).
func TestWorkersDeterminismSum(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 300, 200, 30, 5)
	var base Estimate
	for i, workers := range []int{1, 4} {
		est, err := SumWithOptions(expr, "b", syn, Options{Variance: VarJackknife, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = est
		} else if est.Value != base.Value || est.Variance != base.Variance {
			t.Errorf("SUM workers=%d diverges: %+v vs %+v", workers, est, base)
		}
	}
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}})
	s := intRelation("S", []string{"a"}, [][]int64{{4}, {5}, {6}, {7}, {8}})
	syn2 := synopsisFor(t, []*relation.Relation{r, s}, [][]int{{0, 2, 3, 5}, {1, 2, 4}})
	u := algebra.Must(algebra.Union(algebra.BaseOf(r), algebra.BaseOf(s)))
	var ubase Estimate
	for i, workers := range []int{1, 8} {
		est, err := CountWithOptions(u, syn2, Options{Variance: VarJackknife, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ubase = est
		} else if est.Value != ubase.Value || est.Variance != ubase.Variance {
			t.Errorf("union workers=%d diverges: %+v vs %+v", workers, est, ubase)
		}
	}
}

// jackknifeBothWays computes the jackknife variance through the single-pass
// derivation and through naive delete-one re-estimation, asserting
// eligibility for the former.
func jackknifeBothWays(t *testing.T, poly algebra.Polynomial, syn *Synopsis) (single, naive float64) {
	t.Helper()
	eng := newEngine(nil, Options{Workers: 1})
	ok, err := singlePassEligible(poly, syn, eng, countContrib)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected the polynomial to be single-pass eligible")
	}
	single, err = jackknifeSinglePass(poly, syn, eng, countContrib)
	if err != nil {
		t.Fatal(err)
	}
	naive, err = jackknifeNaive(poly, syn, eng, func(sub *Synopsis, sube *engine) (float64, error) {
		return pointEstimate(poly, sub, sube)
	})
	if err != nil {
		t.Fatal(err)
	}
	return single, naive
}

// TestSinglePassJackknifeMatchesNaive verifies the single-pass derivation
// against brute-force delete-one replication on joins, multi-term set
// operations, a repeated-relation (self-intersect) polynomial, and a
// page-design sample.
func TestSinglePassJackknifeMatchesNaive(t *testing.T) {
	t.Run("join", func(t *testing.T) {
		expr, syn := drawnJoinSynopsis(t, 200, 150, 25, 3)
		poly, err := algebra.Normalize(expr)
		if err != nil {
			t.Fatal(err)
		}
		single, naive := jackknifeBothWays(t, poly, syn)
		if !almostEqual(single, naive, 1e-9) {
			t.Errorf("join: single-pass %v != naive %v", single, naive)
		}
	})
	t.Run("union", func(t *testing.T) {
		r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}, {7}})
		s := intRelation("S", []string{"a"}, [][]int64{{5}, {6}, {7}, {8}, {9}})
		syn := synopsisFor(t, []*relation.Relation{r, s}, [][]int{{0, 1, 3, 4, 6}, {0, 2, 3}})
		u := algebra.Must(algebra.Union(algebra.BaseOf(r), algebra.BaseOf(s)))
		poly, err := algebra.Normalize(u)
		if err != nil {
			t.Fatal(err)
		}
		single, naive := jackknifeBothWays(t, poly, syn)
		if !almostEqual(single, naive, 1e-9) {
			t.Errorf("union: single-pass %v != naive %v", single, naive)
		}
	})
	t.Run("self-intersect", func(t *testing.T) {
		// Repeated relation: R appears twice in one term; the reweighting
		// uses falling-factorial ratios at n−1.
		r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}})
		syn := synopsisFor(t, []*relation.Relation{r}, [][]int{{0, 2, 3, 5, 7}})
		e := algebra.Must(algebra.Intersect(algebra.BaseOf(r), algebra.BaseOf(r)))
		poly, err := algebra.Normalize(e)
		if err != nil {
			t.Fatal(err)
		}
		single, naive := jackknifeBothWays(t, poly, syn)
		if !almostEqual(single, naive, 1e-9) {
			t.Errorf("self-intersect: single-pass %v != naive %v", single, naive)
		}
	})
	t.Run("page-design", func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		rows := make([][]int64, 120)
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(12)), int64(i)}
		}
		r := intRelation("R", []string{"a", "b"}, rows)
		sRows := make([][]int64, 90)
		for i := range sRows {
			sRows[i] = []int64{int64(rng.Intn(12)), int64(i)}
		}
		s := intRelation("S", []string{"a", "c"}, sRows)
		syn := NewSynopsis()
		if err := syn.AddDrawnPages(r, 6, 5, rng); err != nil {
			t.Fatal(err)
		}
		if err := syn.AddDrawn(s, 20, rng); err != nil {
			t.Fatal(err)
		}
		e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
		poly, err := algebra.Normalize(e)
		if err != nil {
			t.Fatal(err)
		}
		single, naive := jackknifeBothWays(t, poly, syn)
		if !almostEqual(single, naive, 1e-9) {
			t.Errorf("page-design: single-pass %v != naive %v", single, naive)
		}
	})
}

// TestSinglePassJackknifeSum verifies the SUM variant: the per-assignment
// contribution is the output column's value.
func TestSinglePassJackknifeSum(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 200, 150, 25, 8)
	poly, err := algebra.Normalize(expr)
	if err != nil {
		t.Fatal(err)
	}
	pos := expr.Schema().ColumnIndex("b")
	if pos < 0 {
		t.Fatal("no column b")
	}
	eng := newEngine(nil, Options{Workers: 1})
	single, err := jackknifeSinglePass(poly, syn, eng, sumContrib(pos))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := jackknifeNaive(poly, syn, eng, func(sub *Synopsis, sube *engine) (float64, error) {
		return sumEstimate(poly, sub, pos, sube)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(single, naive, 1e-9) {
		t.Errorf("SUM: single-pass %v != naive %v", single, naive)
	}
}

// TestSinglePassFoldedTerms checks the two folded-tail regimes: fully
// folded terms (pure products) take the closed form and match naive
// replication exactly, while partially folded terms (a constrained prefix
// with an unconstrained cross-product tail) are routed to the naive path.
func TestSinglePassFoldedTerms(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}})
	s := intRelation("S", []string{"b"}, [][]int64{{1}, {2}, {3}})
	syn := synopsisFor(t, []*relation.Relation{r, s}, [][]int{{0, 1, 2}, {0, 2}})
	product := algebra.Must(algebra.Product(algebra.BaseOf(r), algebra.BaseOf(s), "S"))
	poly, err := algebra.Normalize(product)
	if err != nil {
		t.Fatal(err)
	}
	single, naive := jackknifeBothWays(t, poly, syn)
	if !almostEqual(single, naive, 1e-9) {
		t.Errorf("product: closed form %v != naive %v", single, naive)
	}

	// σ(R) × S also folds fully — local predicates are pre-applied to the
	// candidate lists — so the closed form must count candidates, not rows.
	selProduct := algebra.Must(algebra.Product(
		algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.GT, Val: relation.Int(1)})),
		algebra.BaseOf(s), "S"))
	spoly, err := algebra.Normalize(selProduct)
	if err != nil {
		t.Fatal(err)
	}
	single, naive = jackknifeBothWays(t, spoly, syn)
	if !almostEqual(single, naive, 1e-9) {
		t.Errorf("selected product: closed form %v != naive %v", single, naive)
	}

	// (R ⋈ R2) × S with a large S: the greedy order binds the joined pair
	// first and S (the biggest candidate list) folds behind it — a partial
	// fold with no closed form.
	r2 := intRelation("R2", []string{"a"}, [][]int64{{2}, {3}, {4}, {5}})
	bigS := intRelation("S", []string{"b"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}, {7}})
	syn2 := synopsisFor(t, []*relation.Relation{r, r2, bigS}, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3, 5, 6}})
	partial := algebra.Must(algebra.Product(
		algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(r2), []algebra.On{{Left: "a", Right: "a"}}, nil, "R2")),
		algebra.BaseOf(bigS), "S"))
	ppoly, err := algebra.Normalize(partial)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(nil, Options{Workers: 1})
	ok, err := singlePassEligible(ppoly, syn2, eng, countContrib)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("partially folded term should not be single-pass eligible")
	}
	// The public path must still produce a jackknife variance via fallback.
	est, err := CountWithOptions(partial, syn2, Options{Variance: VarJackknife})
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarJackknife {
		t.Errorf("method %v", est.VarianceMethod)
	}
}

// TestConcurrentCountSharedSynopsis exercises many concurrent estimations
// over one shared Synopsis; run under -race this pins down that synopses
// and compiled plans are read-only during evaluation.
func TestConcurrentCountSharedSynopsis(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 300, 200, 30, 21)
	want, err := CountWithOptions(expr, syn, Options{Variance: VarJackknife, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	mismatch := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			est, err := CountWithOptions(expr, syn, Options{Variance: VarJackknife, Workers: workers})
			if err != nil {
				mismatch <- err.Error()
				return
			}
			if est.Value != want.Value || est.Variance != want.Variance {
				mismatch <- "estimate mismatch across concurrent runs"
			}
		}(1 + g%4)
	}
	wg.Wait()
	close(mismatch)
	for m := range mismatch {
		t.Error(m)
	}
}

// --- benchmarks: single-pass vs naive jackknife ----------------------

func benchJackknifeSetup(b *testing.B) (algebra.Polynomial, *Synopsis) {
	expr, syn := drawnJoinSynopsis(b, 20000, 20000, 500, 99)
	poly, err := algebra.Normalize(expr)
	if err != nil {
		b.Fatal(err)
	}
	return poly, syn
}

func BenchmarkJackknifeSinglePass(b *testing.B) {
	poly, syn := benchJackknifeSetup(b)
	eng := newEngine(nil, Options{Workers: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jackknifeSinglePass(poly, syn, eng, countContrib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJackknifeNaive(b *testing.B) {
	poly, syn := benchJackknifeSetup(b)
	eng := newEngine(nil, Options{Workers: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := jackknifeNaive(poly, syn, eng, func(sub *Synopsis, sube *engine) (float64, error) {
			return pointEstimate(poly, sub, sube)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
