// Package estimator implements the paper's contribution: statistical point
// estimators, variance estimators and confidence intervals for COUNT(E)
// over relational algebra expressions E, computed from simple random
// samples drawn without replacement (SRSWOR) from each base relation.
//
// The packages below it provide the machinery: algebra normalizes COUNT(E)
// into a counting polynomial of conjunctive terms; sampling draws and
// maintains the samples; stats supplies the finite-population variance
// algebra and distributions. This package combines them:
//
//   - terms whose base relations each occur once are estimated by the
//     classical scale-up (∏ N_i/n_i) · count-over-samples;
//   - terms with repeated relations (self-joins, ∩ expansions) are
//     estimated with falling-factorial pattern weights — the multivariate
//     hypergeometric (U-statistic) correction that restores unbiasedness;
//   - distinct counts (π) use Goodman's unbiased estimator and practical
//     consistent alternatives;
//   - SUM and AVG extend the counting machinery to weighted counts (the
//     authors' TODS 1991 follow-up);
//   - variance comes from closed forms where they exist (single-relation
//     polynomials, two-relation join terms) and from split-sample
//     replication or the delete-one jackknife otherwise;
//   - sequential (double) sampling sizes the sample for a target error,
//     and deadline mode grows it until a time budget expires;
//   - an incremental synopsis maintains the samples under insert/delete
//     streams so all of the above run continuously;
//   - page-level (cluster) sampling models the physical design CASE-DB
//     actually sampled — whole disk pages — trading statistical
//     efficiency for I/O efficiency.
package estimator

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"relest/internal/relation"
	"relest/internal/sampling"
)

// relSynopsis is the per-relation part of a synopsis: a uniform sample of
// the relation plus its exact cardinality.
//
// The sampling unit is either a tuple (simple random sampling, the paper's
// main design) or a fixed-size page of consecutive tuples (cluster
// sampling, the physical design). Both are represented uniformly: the
// population consists of M units, m of which were drawn SRSWOR; every
// sampled unit's tuples are in the sample relation, grouped by clusters.
// For the tuple design M = N, m = n and every cluster is a singleton.
type relSynopsis struct {
	name   string
	sample *relation.Relation // rows are the sampled tuples
	n      int                // sampled tuples (== sample.Len())
	N      int                // population tuples

	M, m     int     // population / sampled sampling units
	clusters [][]int // sample row positions per sampled unit (len m)
	pageSize int     // 0 for tuple design, > 0 for page design

	// strata is non-nil for stratified tuple samples: each stratum has its
	// own population size and its own SRSWOR sample, so the inverse
	// inclusion probability varies by stratum.
	strata []stratumInfo

	// base and unit ids are retained when the synopsis was drawn from a
	// stored relation, enabling sample extension (sequential estimation).
	base  *relation.Relation
	units []int // sampled unit ids within [0, M)
}

// stratumInfo describes one stratum of a stratified sample.
type stratumInfo struct {
	Nh    int   // population tuples in the stratum
	units []int // unit (== row) indices of the stratum's sampled tuples
}

// stratified reports whether the relation uses a stratified design.
func (rs *relSynopsis) stratified() bool { return rs.strata != nil }

// uniformWeights reports whether every sampling unit shares the same
// inverse inclusion probability (true for the tuple and page designs,
// false for stratified samples).
func (rs *relSynopsis) uniformWeights() bool { return rs.strata == nil }

// rowWeightFn returns the per-sample-row inverse inclusion probability.
func (rs *relSynopsis) rowWeightFn() func(row int) float64 {
	if rs.uniformWeights() {
		w := rs.scale()
		return func(int) float64 { return w }
	}
	weights := make([]float64, rs.n)
	for _, st := range rs.strata {
		w := float64(st.Nh) / float64(len(st.units))
		for _, u := range st.units {
			for _, row := range rs.clusters[u] {
				weights[row] = w
			}
		}
	}
	return func(row int) float64 { return weights[row] }
}

// tupleDesign reports whether the relation was sampled tuple-at-a-time
// (required by the repeated-relation pattern weights and the two-relation
// variance closed form).
func (rs *relSynopsis) tupleDesign() bool { return rs.pageSize == 0 }

// scale returns the inverse inclusion probability of one sampling unit —
// the per-occurrence weight of the point estimator.
func (rs *relSynopsis) scale() float64 { return float64(rs.M) / float64(rs.m) }

// rowUnits returns the sampling-unit index of every sample row (the
// identity for tuple designs, the owning page for page designs). Used by
// the single-pass jackknife to charge assignments to deletable units.
func (rs *relSynopsis) rowUnits() []int {
	out := make([]int, rs.n)
	for u, cluster := range rs.clusters {
		for _, row := range cluster {
			out[row] = u
		}
	}
	return out
}

// singletonClusters builds the cluster list of a tuple-design sample.
func singletonClusters(n int) [][]int {
	cs := make([][]int, n)
	for i := range cs {
		cs[i] = []int{i}
	}
	return cs
}

// Synopsis is the estimator's input: one uniform sample per base relation,
// with known population sizes. It implements algebra.Catalog by exposing
// the sample relations under the base-relation names, which is what lets
// the counting-polynomial machinery run unchanged over samples.
type Synopsis struct {
	rels map[string]*relSynopsis

	// sketches is the optional sketch tier (per-relation AGMS column
	// sketches plus KMV distinct summaries over the FULL relation), built
	// lazily by EnsureSketches or transplanted by Incremental.Snapshot.
	// Guarded by sketchMu so concurrent server requests can share one
	// synopsis; entries are immutable once present (clones share them).
	sketchMu sync.Mutex
	sketches map[string]*relSketches
}

// NewSynopsis creates an empty synopsis.
func NewSynopsis() *Synopsis { return &Synopsis{rels: make(map[string]*relSynopsis)} }

// Relation implements algebra.Catalog, returning the sample relation.
func (s *Synopsis) Relation(name string) (*relation.Relation, bool) {
	rs, ok := s.rels[name]
	if !ok {
		return nil, false
	}
	return rs.sample, true
}

// PopulationSize returns N (tuples) for the named relation.
func (s *Synopsis) PopulationSize(name string) (int, bool) {
	rs, ok := s.rels[name]
	if !ok {
		return 0, false
	}
	return rs.N, true
}

// SampleSize returns n (sampled tuples) for the named relation.
func (s *Synopsis) SampleSize(name string) (int, bool) {
	rs, ok := s.rels[name]
	if !ok {
		return 0, false
	}
	return rs.n, true
}

// Design returns the sampling design of the named relation: pageSize 0
// means tuple-level SRSWOR; otherwise units are pages of that many rows.
func (s *Synopsis) Design(name string) (pageSize int, ok bool) {
	rs, ok := s.rels[name]
	if !ok {
		return 0, false
	}
	return rs.pageSize, true
}

// Bytes estimates the synopsis's resident sample storage. Drawn samples
// are zero-copy views into their base relations, so they count only their
// index vectors (relation.Bytes view accounting); externally supplied
// samples count their full column storage.
func (s *Synopsis) Bytes() int {
	total := 0
	for _, rs := range s.rels {
		total += rs.sample.Bytes()
	}
	return total
}

// Names returns the relation names in the synopsis, sorted.
func (s *Synopsis) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddSample registers an externally obtained uniform tuple-level sample
// for a relation of the given population size. The sample relation's name
// must be the base-relation name the expressions use.
func (s *Synopsis) AddSample(sample *relation.Relation, populationSize int) error {
	if sample.Len() > populationSize {
		return fmt.Errorf("estimator: sample of %q has %d rows > population %d",
			sample.Name(), sample.Len(), populationSize)
	}
	if _, dup := s.rels[sample.Name()]; dup {
		return fmt.Errorf("estimator: relation %q already in synopsis", sample.Name())
	}
	n := sample.Len()
	s.rels[sample.Name()] = &relSynopsis{
		name:     sample.Name(),
		sample:   sample,
		n:        n,
		N:        populationSize,
		M:        populationSize,
		m:        n,
		clusters: singletonClusters(n),
	}
	return nil
}

// AddDrawn draws a tuple-level SRSWOR sample of size n from the stored
// relation and registers it. The base relation and sampled positions are
// retained so the sample can later be extended (sequential estimation).
func (s *Synopsis) AddDrawn(base *relation.Relation, n int, rng *rand.Rand) error {
	if n < 0 || n > base.Len() {
		return fmt.Errorf("estimator: sample size %d outside [0, %d] for %q", n, base.Len(), base.Name())
	}
	if _, dup := s.rels[base.Name()]; dup {
		return fmt.Errorf("estimator: relation %q already in synopsis", base.Name())
	}
	rows := sampling.WithoutReplacement(rng, base.Len(), n)
	s.rels[base.Name()] = &relSynopsis{
		name: base.Name(),
		//lint:ignore viewescape the synopsis IS a retained sample view by design: the capacity clamp snapshots the base at draw time, and bases are append-only
		sample:   base.Subset(base.Name(), rows),
		n:        n,
		N:        base.Len(),
		M:        base.Len(),
		m:        n,
		clusters: singletonClusters(n),
		base:     base,
		units:    rows,
	}
	return nil
}

// AddDrawnPages draws an SRSWOR sample of whole pages: the relation's rows
// are viewed as ⌈N/pageSize⌉ consecutive fixed-size pages (the last may be
// short) and `pages` of them are sampled. Every tuple of a sampled page
// enters the sample — the access pattern of a system that samples disk
// blocks. Estimates from page samples remain unbiased for expressions in
// which each relation occurs once; accuracy depends on how values cluster
// within pages (see the A2 ablation).
func (s *Synopsis) AddDrawnPages(base *relation.Relation, pageSize, pages int, rng *rand.Rand) error {
	if pageSize < 1 {
		return fmt.Errorf("estimator: page size %d < 1 for %q", pageSize, base.Name())
	}
	if _, dup := s.rels[base.Name()]; dup {
		return fmt.Errorf("estimator: relation %q already in synopsis", base.Name())
	}
	M := (base.Len() + pageSize - 1) / pageSize
	if pages < 0 || pages > M {
		return fmt.Errorf("estimator: page count %d outside [0, %d] for %q", pages, M, base.Name())
	}
	unitIDs := sampling.WithoutReplacement(rng, M, pages)
	rs := &relSynopsis{
		name:     base.Name(),
		N:        base.Len(),
		M:        M,
		m:        pages,
		pageSize: pageSize,
		base:     base,
		units:    unitIDs,
	}
	var positions []int
	for _, p := range unitIDs {
		lo := p * pageSize
		hi := lo + pageSize
		if hi > base.Len() {
			hi = base.Len()
		}
		var cluster []int
		for i := lo; i < hi; i++ {
			cluster = append(cluster, len(positions))
			positions = append(positions, i)
		}
		rs.clusters = append(rs.clusters, cluster)
	}
	//lint:ignore viewescape the synopsis IS a retained sample view by design: the capacity clamp snapshots the base at draw time, and bases are append-only
	rs.sample = base.Subset(base.Name(), positions)
	rs.n = rs.sample.Len()
	s.rels[base.Name()] = rs
	return nil
}

// AddDrawnStratified draws a stratified tuple sample: every row of the
// stored relation is assigned to a stratum by stratumOf (any int labels),
// the total sample size is allocated proportionally to stratum sizes
// (largest-remainder rounding, with every non-empty stratum getting at
// least min(2, N_h) rows so stratum variances stay estimable), and an
// independent SRSWOR sample is drawn within each stratum.
//
// Stratification is the classical variance-reduction design: when the
// strata are homogeneous with respect to the query (e.g. stratified by the
// selection attribute), the estimator's variance drops toward the
// within-stratum variance. Stratified relations may appear at most once
// per polynomial term (the pattern weights assume exchangeable samples).
func (s *Synopsis) AddDrawnStratified(base *relation.Relation, stratumOf func(relation.Row) int, totalN int, rng *rand.Rand) error {
	if stratumOf == nil {
		return fmt.Errorf("estimator: stratified sampling needs a stratum function")
	}
	if totalN < 0 || totalN > base.Len() {
		return fmt.Errorf("estimator: stratified sample size %d outside [0, %d] for %q", totalN, base.Len(), base.Name())
	}
	if _, dup := s.rels[base.Name()]; dup {
		return fmt.Errorf("estimator: relation %q already in synopsis", base.Name())
	}
	// Bucket rows by stratum label, preserving first-seen label order.
	var labels []int
	rowsByLabel := map[int][]int{}
	base.EachRow(func(i int, row relation.Row) bool {
		l := stratumOf(row)
		if _, seen := rowsByLabel[l]; !seen {
			labels = append(labels, l)
		}
		rowsByLabel[l] = append(rowsByLabel[l], i)
		return true
	})
	if len(labels) == 0 {
		return s.AddSample(relation.New(base.Name(), base.Schema()), 0)
	}
	sizes := make([]int, len(labels))
	for i, l := range labels {
		sizes[i] = len(rowsByLabel[l])
	}
	alloc := sampling.Proportional(sizes, totalN)
	for i := range alloc {
		if minN := 2; alloc[i] < minN {
			if sizes[i] < minN {
				alloc[i] = sizes[i]
			} else {
				alloc[i] = minN
			}
		}
	}
	rs := &relSynopsis{
		name: base.Name(),
		N:    base.Len(),
		base: base,
	}
	var positions []int
	for i, l := range labels {
		stratumRows := rowsByLabel[l]
		drawn := sampling.WithoutReplacement(rng, len(stratumRows), alloc[i])
		st := stratumInfo{Nh: len(stratumRows)}
		for _, d := range drawn {
			unit := len(positions)
			st.units = append(st.units, unit)
			positions = append(positions, stratumRows[d])
		}
		rs.strata = append(rs.strata, st)
	}
	//lint:ignore viewescape the synopsis IS a retained sample view by design: the capacity clamp snapshots the base at draw time, and bases are append-only
	rs.sample = base.Subset(base.Name(), positions)
	rs.n = rs.sample.Len()
	rs.m = rs.n
	rs.M = rs.N
	rs.clusters = singletonClusters(rs.n)
	s.rels[base.Name()] = rs
	return nil
}

// Draw builds a synopsis sampling the given fraction (0, 1] of tuples from
// every stored relation, with a minimum sample size of min(minSize, |R|).
func Draw(rels []*relation.Relation, fraction float64, minSize int, rng *rand.Rand) (*Synopsis, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("estimator: sampling fraction %v outside (0, 1]", fraction)
	}
	s := NewSynopsis()
	for _, r := range rels {
		n := int(fraction * float64(r.Len()))
		if n < minSize {
			n = minSize
		}
		if n > r.Len() {
			n = r.Len()
		}
		if err := s.AddDrawn(r, n, rng); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Clone returns an independently extendable copy of the synopsis: the two
// share the (immutable) base relations and current sample relations, but
// ExtendSample on one never changes what the other sees. Servers use this
// to give each sequential/deadline request its own growable view of a
// shared synopsis without re-drawing, so concurrent requests neither race
// nor perturb each other's estimates.
func (s *Synopsis) Clone() *Synopsis {
	out := NewSynopsis()
	for name, rs := range s.rels {
		cp := *rs
		// Extension appends to units and rewrites the cluster list in
		// place; give the clone its own headers so those writes stay
		// private. Inner cluster slices and the sample/base relations are
		// never mutated, only replaced, so sharing them is safe.
		cp.units = append([]int(nil), rs.units...)
		cp.clusters = append([][]int(nil), rs.clusters...)
		cp.strata = append([]stratumInfo(nil), rs.strata...)
		out.rels[name] = &cp
	}
	// Built sketches are immutable; the clone shares them by reference.
	s.cloneSketchRefs(out)
	return out
}

// ExtendSample enlarges the sample of the named relation by add more
// sampling units (tuples under the tuple design, pages under the page
// design), drawn SRSWOR from the unsampled remainder; the combined sample
// is again SRSWOR. It fails if the synopsis was not drawn from a stored
// relation.
func (s *Synopsis) ExtendSample(name string, add int, rng *rand.Rand) error {
	rs, ok := s.rels[name]
	if !ok {
		return fmt.Errorf("estimator: no relation %q in synopsis", name)
	}
	if rs.base == nil {
		return fmt.Errorf("estimator: sample of %q was not drawn from a stored relation; cannot extend", name)
	}
	if rs.stratified() {
		return fmt.Errorf("estimator: stratified sample of %q cannot be extended; redraw with a larger allocation", name)
	}
	if add < 0 || rs.m+add > rs.M {
		return fmt.Errorf("estimator: cannot extend sample of %q by %d units (m=%d, M=%d)", name, add, rs.m, rs.M)
	}
	if add == 0 {
		return nil
	}
	rs.units = sampling.Extend(rng, rs.M, rs.units, add)
	rs.m = len(rs.units)
	if rs.tupleDesign() {
		//lint:ignore viewescape incremental extension re-derives the retained sample view from the kept base; the fresh clamp covers the newly drawn rows
		rs.sample = rs.base.Subset(name, rs.units)
		rs.n = rs.m
		rs.clusters = singletonClusters(rs.n)
		return nil
	}
	var positions []int
	rs.clusters = rs.clusters[:0]
	for _, p := range rs.units {
		lo := p * rs.pageSize
		hi := lo + rs.pageSize
		if hi > rs.base.Len() {
			hi = rs.base.Len()
		}
		var cluster []int
		for i := lo; i < hi; i++ {
			cluster = append(cluster, len(positions))
			positions = append(positions, i)
		}
		rs.clusters = append(rs.clusters, cluster)
	}
	//lint:ignore viewescape incremental extension re-derives the retained sample view from the kept base; the fresh clamp covers the newly drawn rows
	rs.sample = rs.base.Subset(name, positions)
	rs.n = rs.sample.Len()
	return nil
}

// subSynopsisUnits builds a synopsis whose sample for each selected
// relation keeps only the sampling units at the given unit indices
// (indices into the current cluster list). Relations not in the map keep
// their full samples. Used by the replication variance estimators, which
// must resample whole units to respect the design.
func (s *Synopsis) subSynopsisUnits(unitSel map[string][]int) *Synopsis {
	out := NewSynopsis()
	for name, rs := range s.rels {
		sel, ok := unitSel[name]
		if !ok {
			out.rels[name] = rs
			continue
		}
		var positions []int
		clusters := make([][]int, 0, len(sel))
		newUnitOf := map[int]int{} // original unit index → new unit index
		for newU, u := range sel {
			var cluster []int
			for _, rowPos := range rs.clusters[u] {
				cluster = append(cluster, len(positions))
				positions = append(positions, rowPos)
			}
			clusters = append(clusters, cluster)
			newUnitOf[u] = newU
		}
		sub := &relSynopsis{
			name: name,
			//lint:ignore viewescape replicate sub-synopses alias the parent sample on purpose: they are read-only throwaways that die with the variance pass
			sample:   rs.sample.Subset(name, positions),
			n:        len(positions),
			N:        rs.N,
			M:        rs.M,
			m:        len(sel),
			clusters: clusters,
			pageSize: rs.pageSize,
		}
		// A subset of a stratified sample is again stratified: keep each
		// stratum's population size with its surviving units.
		for _, st := range rs.strata {
			sub2 := stratumInfo{Nh: st.Nh}
			for _, u := range st.units {
				if nu, kept := newUnitOf[u]; kept {
					sub2.units = append(sub2.units, nu)
				}
			}
			sub.strata = append(sub.strata, sub2)
		}
		out.rels[name] = sub
	}
	return out
}

// splitUnits partitions the relation's sampling units into g groups for
// replication: plain random groups for the tuple/page designs, per-stratum
// random groups for stratified samples (so every replicate is itself a
// stratified sample with the same strata).
func (rs *relSynopsis) splitUnits(rng *rand.Rand, g int) [][]int {
	if !rs.stratified() {
		all := make([]int, rs.m)
		for i := range all {
			all[i] = i
		}
		return sampling.SplitGroups(rng, all, g)
	}
	groups := make([][]int, g)
	for _, st := range rs.strata {
		for gi, part := range sampling.SplitGroups(rng, st.units, g) {
			groups[gi] = append(groups[gi], part...)
		}
	}
	for i := range groups {
		sort.Ints(groups[i])
	}
	return groups
}

// withoutUnit builds a synopsis in which one relation's sample has one
// sampling unit removed (delete-one jackknife replicate).
func (s *Synopsis) withoutUnit(name string, unit int) *Synopsis {
	rs := s.rels[name]
	keep := make([]int, 0, rs.m-1)
	for i := 0; i < rs.m; i++ {
		if i != unit {
			keep = append(keep, i)
		}
	}
	return s.subSynopsisUnits(map[string][]int{name: keep})
}
