package estimator

import (
	"context"
	"fmt"
	"math"

	"relest/internal/algebra"
	"relest/internal/sketch"
	"relest/internal/stats"
)

// The tier planner: answer each counting-polynomial term from the
// cheapest synopsis tier that meets the requested precision.
//
// Tier 1 (sketch) answers, in O(atoms) time and without touching a single
// sample row:
//
//   - bare cardinality terms (one occurrence, no constraints) — exactly,
//     from the synopsis's maintained population count;
//   - two-occurrence terms whose whole constraint is one cross-occurrence
//     column equality — equi-joins and self-joins — from the AGMS column
//     sketches (E[X·Y] = Σ_v f₁(v)·f₂(v)), with a variance from the
//     median-of-means group spread (sketch.Estimate).
//
// Everything else — θ-joins, selections (LocalPreds), residual predicates,
// the multi-equality terms that ∩/∪/− expand into — escalates per term to
// tier 2, the sample-based counting polynomial. A sketch-shaped term also
// escalates when its estimated relative CI half-width z·σ̂/max(|v|,1)
// exceeds the precision target, or when its point value is non-positive
// (the median of products can undershoot zero on tiny joins, where the
// sample tier is also cheap).
//
// Variance composition follows the sampling-algebra (GUS) independence
// rules: the ξ streams behind the sketches and the SRSWOR draws behind
// the samples are independent randomness sources, so the total variance
// is the sum of the two tiers' variances. Escalated terms are evaluated
// together as one sub-polynomial through the existing engine, which
// preserves the cross-term covariance accounting of the replication
// estimators within the sample tier. Terms answered by *different column
// sketches* share ξ streams and are treated as uncorrelated — an
// approximation that is exact for the single-sketch-term expressions the
// tier targets and documented in DESIGN.md §14.

// TierPolicy selects which synopsis tiers a request may use.
type TierPolicy int

// Tier policies.
const (
	// TierDefault (the zero value) defers to the Estimator handle's
	// configured policy (itself defaulting to TierAuto).
	TierDefault TierPolicy = iota
	// TierAuto answers each term from the sketch tier when it meets the
	// precision target, escalating per term to the sample tier.
	TierAuto
	// TierSketchOnly answers from sketches alone and fails on any term
	// the sketch tier cannot answer within the precision target.
	TierSketchOnly
	// TierSampleOnly bypasses sketches entirely: the exact legacy
	// counting-polynomial path, bit-identical to CountContext.
	TierSampleOnly
)

// String names the policy (the tokens the CLI and server accept).
func (p TierPolicy) String() string {
	switch p {
	case TierDefault:
		return "default"
	case TierAuto:
		return "auto"
	case TierSketchOnly:
		return "sketch"
	case TierSampleOnly:
		return "sample"
	default:
		return fmt.Sprintf("TierPolicy(%d)", int(p))
	}
}

// ParseTierPolicy parses the CLI/server policy tokens.
func ParseTierPolicy(s string) (TierPolicy, error) {
	switch s {
	case "", "default":
		return TierDefault, nil
	case "auto":
		return TierAuto, nil
	case "sketch":
		return TierSketchOnly, nil
	case "sample":
		return TierSampleOnly, nil
	default:
		return TierDefault, fmt.Errorf("estimator: unknown tier policy %q (want auto, sketch or sample)", s)
	}
}

// DefaultPrecision is the target relative CI half-width used when neither
// the handle nor the request sets one: a sketch answer is accepted when
// z·σ̂ is within 10% of the estimate.
const DefaultPrecision = 0.1

// Tier names reported in TierReport.Answered, the server's `tier` field
// and the relest_tier_answered_total metric label.
const (
	TierAnsweredSketch = "sketch"
	TierAnsweredSample = "sample"
	TierAnsweredMixed  = "mixed"
)

// TierReport records which tier(s) produced an estimate.
type TierReport struct {
	// Answered is "sketch", "sample" or "mixed".
	Answered string
	// SketchTerms and SampleTerms count the polynomial terms answered by
	// each tier.
	SketchTerms, SampleTerms int
}

// termShape classifies one polynomial term for the sketch tier.
type termShape int

const (
	shapeEscalate  termShape = iota // not sketchable; sample tier
	shapeExactCard                  // |R|: exact from the population count
	shapeSketchEq                   // one cross-occurrence equality: AGMS
)

// sketchShape classifies a term. Any selection (LocalPreds) or residual
// predicate is invisible to a frequency sketch and forces escalation.
func sketchShape(t *algebra.Term) termShape {
	for _, o := range t.Occs {
		if len(o.LocalPreds) > 0 {
			return shapeEscalate
		}
	}
	if len(t.Preds) > 0 {
		return shapeEscalate
	}
	switch {
	case len(t.Occs) == 1 && len(t.Eqs) == 0:
		return shapeExactCard
	case len(t.Occs) == 2 && len(t.Eqs) == 1:
		eq := t.Eqs[0]
		if (eq.A.Occ == 0 && eq.B.Occ == 1) || (eq.A.Occ == 1 && eq.B.Occ == 0) {
			return shapeSketchEq
		}
	}
	return shapeEscalate
}

// sketchTermEstimate answers one sketch-shaped term, or reports it cannot
// (missing relation, missing sketch tier, column out of range).
func sketchTermEstimate(t *algebra.Term, syn *Synopsis, shape termShape) (sketch.Estimate, bool) {
	switch shape {
	case shapeExactCard:
		rs, ok := syn.rels[t.Occs[0].RelName]
		if !ok {
			return sketch.Estimate{}, false
		}
		return sketch.Estimate{Value: float64(rs.N)}, true
	case shapeSketchEq:
		a, b := t.Eqs[0].A, t.Eqs[0].B
		if a.Occ == 1 {
			a, b = b, a
		}
		rkA := syn.relSketch(t.Occs[a.Occ].RelName)
		rkB := syn.relSketch(t.Occs[b.Occ].RelName)
		if rkA == nil || rkB == nil || a.Col >= len(rkA.cols) || b.Col >= len(rkB.cols) {
			return sketch.Estimate{}, false
		}
		sA, sB := rkA.cols[a.Col], rkB.cols[b.Col]
		if sA == sB {
			// Same relation, same attribute: the second frequency moment,
			// whose products are squares (strictly better variance than
			// treating the two sides as distinct sketches).
			return sA.SelfJoinEstimateVar(), true
		}
		est, err := sketch.JoinEstimateVar(sA, sB)
		if err != nil {
			return sketch.Estimate{}, false
		}
		return est, true
	}
	return sketch.Estimate{}, false
}

// ciZ returns the CI multiplier the options imply (shared with countPoly).
func ciZ(opts Options) float64 {
	switch opts.CI {
	case CIChebyshev:
		return stats.ChebyshevZ(1 - opts.Confidence)
	default:
		return stats.NormalQuantile(1 - (1-opts.Confidence)/2)
	}
}

// meetsPrecision reports whether a sketch answer is tight enough: the
// z-scaled standard error relative to the value must be within the target
// and the value must be positive (exact answers always pass).
func meetsPrecision(est sketch.Estimate, z, precision float64) bool {
	//lint:ignore floateq zero variance is the exact-cardinality marker, assigned literally and never computed
	if est.Variance == 0 {
		return true
	}
	if est.Value <= 0 {
		return false
	}
	return z*est.StdErr()/math.Max(est.Value, 1) <= precision
}

// tieredCount runs the tier planner over COUNT(e): sketch-first per term,
// escalating to one sample-tier sub-polynomial, composing values and
// variances across tiers. policy must be TierAuto or TierSketchOnly (the
// TierSampleOnly fast path is CountContext itself).
func tieredCount(ctx context.Context, e *algebra.Expr, syn *Synopsis, opts Options, policy TierPolicy, precision float64) (Estimate, TierReport, error) {
	poly, err := algebra.Normalize(e)
	if err != nil {
		return Estimate{}, TierReport{}, err
	}
	opts = opts.withDefaults()
	if precision <= 0 {
		precision = DefaultPrecision
	}
	z := ciZ(opts)

	sketchVal, sketchVar := 0.0, 0.0
	nSketch := 0
	var escalated []algebra.Term
	for i := range poly.Terms {
		t := &poly.Terms[i]
		shape := sketchShape(t)
		est, ok := sketchTermEstimate(t, syn, shape)
		if !ok || !meetsPrecision(est, z, precision) {
			if policy == TierSketchOnly {
				return Estimate{}, TierReport{}, fmt.Errorf(
					"estimator: sketch tier cannot answer term %d within precision %g (%s); use the auto policy to escalate to the sample tier",
					i, precision, sketchRefusal(t, syn, shape, est, ok))
			}
			escalated = append(escalated, *t)
			continue
		}
		nSketch++
		c := float64(t.Coef)
		sketchVal += c * est.Value
		sketchVar += c * c * est.Variance
	}

	rep := TierReport{SketchTerms: nSketch, SampleTerms: len(escalated)}
	switch {
	case len(escalated) == 0:
		rep.Answered = TierAnsweredSketch
		est := Estimate{
			Value:      sketchVal,
			Variance:   math.NaN(),
			Confidence: opts.Confidence,
			Terms:      poly.NumTerms(),
		}
		if opts.Variance == VarNone {
			est.VarianceMethod = VarNone
			return est, rep, nil
		}
		est.VarianceMethod = VarSketch
		est.Variance = sketchVar
		est.StdErr = math.Sqrt(math.Max(sketchVar, 0))
		est.Lo = est.Value - z*est.StdErr
		est.Hi = est.Value + z*est.StdErr
		return est, rep, nil

	case nSketch == 0:
		rep.Answered = TierAnsweredSample
		est, err := countPoly(ctx, poly, syn, opts)
		return est, rep, err

	default:
		rep.Answered = TierAnsweredMixed
		sub := algebra.Polynomial{Terms: escalated}
		sEst, err := countPoly(ctx, sub, syn, opts)
		if err != nil {
			return Estimate{}, rep, err
		}
		est := Estimate{
			Value:          sketchVal + sEst.Value,
			Variance:       math.NaN(),
			Confidence:     opts.Confidence,
			VarianceMethod: sEst.VarianceMethod,
			Terms:          poly.NumTerms(),
		}
		if sEst.VarianceMethod != VarNone && !math.IsNaN(sEst.Variance) {
			est.Variance = sEst.Variance + sketchVar
			est.StdErr = math.Sqrt(math.Max(est.Variance, 0))
			est.Lo = est.Value - z*est.StdErr
			est.Hi = est.Value + z*est.StdErr
		}
		return est, rep, nil
	}
}

// sketchRefusal explains why a term could not be answered by the sketch
// tier (for the TierSketchOnly error message).
func sketchRefusal(t *algebra.Term, syn *Synopsis, shape termShape, est sketch.Estimate, answered bool) string {
	if shape == shapeEscalate {
		return "term shape not sketchable: sketches answer bare cardinalities and single-equality joins without predicates"
	}
	if !answered {
		for _, o := range t.Occs {
			if syn.relSketch(o.RelName) == nil {
				return fmt.Sprintf("no sketch tier for relation %q (samples registered via AddSample carry no base to sketch)", o.RelName)
			}
		}
		return "sketch tier unavailable for the term's relations"
	}
	if est.Value <= 0 {
		return fmt.Sprintf("sketch point estimate %.3g is non-positive", est.Value)
	}
	return fmt.Sprintf("sketch CI half-width %.3g exceeds the target relative width", est.StdErr())
}
