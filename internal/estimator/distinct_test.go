package estimator

import (
	"fmt"
	"math/rand"
	"testing"

	"relest/internal/stats"
)

// testRand returns a deterministic RNG for tests.
func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestGoodmanUnbiasedExhaustive verifies Goodman's estimator is exactly
// unbiased over every SRSWOR sample when no value's multiplicity exceeds
// the sample size.
func TestGoodmanUnbiasedExhaustive(t *testing.T) {
	cases := []struct {
		pop []int64 // population of values
		n   int
	}{
		{[]int64{1, 1, 2, 3}, 2},       // D=3, max mult 2 ≤ n
		{[]int64{1, 1, 2, 2, 3}, 2},    // D=3
		{[]int64{1, 2, 3, 4, 5}, 2},    // all distinct
		{[]int64{1, 1, 1, 2, 3, 4}, 3}, // max mult 3 = n
		{[]int64{7, 7, 8, 8, 9, 9}, 4},
	}
	for ci, c := range cases {
		// Count true distinct.
		dv := map[int64]struct{}{}
		for _, v := range c.pop {
			dv[v] = struct{}{}
		}
		want := float64(len(dv))
		var mean stats.Welford
		subsets(len(c.pop), c.n, func(rows []int) {
			keys := make([]string, len(rows))
			for i, r := range rows {
				keys[i] = fmt.Sprint(c.pop[r])
			}
			ff, err := NewFreqOfFreq(len(c.pop), keys)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ff.Estimate(DistinctGoodman)
			if err != nil {
				t.Fatal(err)
			}
			mean.Add(got)
		})
		if !almostEqual(mean.Mean(), want, 1e-9) {
			t.Errorf("case %d: E[Goodman] = %v, want %v", ci, mean.Mean(), want)
		}
	}
}

func TestGoodmanCensusIsExact(t *testing.T) {
	keys := []string{"a", "a", "b", "c"}
	ff, err := NewFreqOfFreq(4, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ff.Estimate(DistinctGoodman)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("census Goodman = %v, want 3", got)
	}
}

func TestDistinctMethodsSanity(t *testing.T) {
	// Population: 1000 values, 100 distinct, uniform multiplicity 10.
	rng := testRand(5)
	var keys []string
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprint(rng.Intn(100)))
	}
	ff, err := NewFreqOfFreq(1000, keys)
	if err != nil {
		t.Fatal(err)
	}
	d := float64(ff.D())
	for _, m := range []DistinctMethod{DistinctScaleUp, DistinctSampleD, DistinctJackknife, DistinctGEE} {
		got, err := ff.Estimate(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got < d-1e-9 {
			t.Errorf("%v estimate %v below sample distinct %v", m, got, d)
		}
		if got > 1000 {
			// Only scale-up can overshoot wildly; even it is capped by N
			// for this sample since d/n < 1... verify generally sane.
			t.Errorf("%v estimate %v above population size", m, got)
		}
	}
	// SampleD is exactly d.
	if got, _ := ff.Estimate(DistinctSampleD); got != d {
		t.Errorf("sample-d = %v, want %v", got, d)
	}
}

func TestDistinctJackknifeDegenerate(t *testing.T) {
	// Every sampled value unique and n ≪ N: denominator 1−(1−f)·f1/n → ~0;
	// must fall back rather than blow up.
	keys := []string{"a", "b", "c"}
	ff, err := NewFreqOfFreq(1000, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ff.Estimate(DistinctJackknife)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 1000*2 {
		t.Errorf("degenerate jackknife = %v", got)
	}
}

func TestFreqOfFreqValidation(t *testing.T) {
	if _, err := NewFreqOfFreq(2, []string{"a", "b", "c"}); err == nil {
		t.Error("sample larger than population should fail")
	}
	ff, err := NewFreqOfFreq(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Estimate(DistinctGoodman); err == nil {
		t.Error("empty sample of non-empty population should fail")
	}
	ff0, _ := NewFreqOfFreq(0, nil)
	got, err := ff0.Estimate(DistinctGoodman)
	if err != nil || got != 0 {
		t.Errorf("empty population distinct = %v, %v", got, err)
	}
}

func TestDistinctOverSynopsis(t *testing.T) {
	// Relation with 40 distinct `a` values, each repeated 10 times.
	rows := make([][]int64, 0, 400)
	for i := 0; i < 400; i++ {
		rows = append(rows, []int64{int64(i % 40), int64(i)})
	}
	r := intRelation("R", []string{"a", "b"}, rows)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 200, testRand(11)); err != nil {
		t.Fatal(err)
	}
	got, err := Distinct(syn, "R", []string{"a"}, DistinctJackknife)
	if err != nil {
		t.Fatal(err)
	}
	if got < 30 || got > 60 {
		t.Errorf("distinct estimate %v far from 40", got)
	}
	// b is unique per row: jackknife should land near 400.
	got, err = Distinct(syn, "R", []string{"b"}, DistinctGEE)
	if err != nil {
		t.Fatal(err)
	}
	if got < 200 || got > 800 {
		t.Errorf("distinct(b) = %v far from 400", got)
	}
	// Errors.
	if _, err := Distinct(syn, "nope", []string{"a"}, DistinctGEE); err == nil {
		t.Error("missing relation should fail")
	}
	if _, err := Distinct(syn, "R", []string{"zz"}, DistinctGEE); err == nil {
		t.Error("missing column should fail")
	}
}

func TestDistinctMethodString(t *testing.T) {
	for _, m := range []DistinctMethod{DistinctGoodman, DistinctScaleUp, DistinctSampleD, DistinctJackknife, DistinctGEE} {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
}
