package estimator

import (
	"context"
	"fmt"

	"relest/internal/algebra"
	"relest/internal/obs"
	"relest/internal/parallel"
	"relest/internal/stats"
)

// Estimate is the result of a COUNT estimation.
type Estimate struct {
	// Value is the point estimate of COUNT(E).
	Value float64
	// Variance is the estimated variance of Value; NaN when no variance
	// method was requested or applicable. Unbiased variance estimators can
	// be negative on unlucky samples; StdErr clamps at zero.
	Variance float64
	// StdErr is sqrt(max(Variance, 0)).
	StdErr float64
	// Lo and Hi bound the confidence interval at the requested level
	// (both zero when no variance is available).
	Lo, Hi float64
	// Confidence is the nominal CI level used.
	Confidence float64
	// VarianceMethod records how Variance was obtained.
	VarianceMethod VarianceMethod
	// Terms is the number of counting-polynomial terms evaluated.
	Terms int
}

// VarianceMethod selects how the estimator's variance is assessed.
type VarianceMethod int

// Variance estimation strategies.
const (
	// VarAuto picks the best available method: closed-form where exact
	// (single-relation polynomials; single two-relation terms), otherwise
	// split-sample replication.
	VarAuto VarianceMethod = iota
	// VarNone skips variance estimation.
	VarNone
	// VarAnalytic requires a closed form and fails when none applies.
	VarAnalytic
	// VarSplitSample partitions each relation's sample into Options.Groups
	// groups and uses the spread of the per-group replicate estimates.
	VarSplitSample
	// VarJackknife uses delete-one replicates over every relation sample.
	// Exact-ish and expensive: O(Σ n_i) re-evaluations.
	VarJackknife
	// VarSketch marks an estimate answered entirely by the sketch tier:
	// the variance is the coefficient-weighted sum of the per-term
	// median-of-means variances (see tier.go). It is reported, never
	// requested — Options.Variance still selects the sample-tier method
	// used for any escalated terms.
	VarSketch
)

// String names the method.
func (m VarianceMethod) String() string {
	switch m {
	case VarAuto:
		return "auto"
	case VarNone:
		return "none"
	case VarAnalytic:
		return "analytic"
	case VarSplitSample:
		return "split-sample"
	case VarJackknife:
		return "jackknife"
	case VarSketch:
		return "sketch"
	default:
		return fmt.Sprintf("VarianceMethod(%d)", int(m))
	}
}

// CIMethod selects the confidence-interval construction.
type CIMethod int

// Confidence-interval constructions.
const (
	// CINormal uses the CLT: Est ± z·σ̂.
	CINormal CIMethod = iota
	// CIChebyshev is distribution-free: Est ± σ̂/√δ.
	CIChebyshev
)

// Options configures estimation.
type Options struct {
	// Variance selects the variance method (default VarAuto).
	Variance VarianceMethod
	// Groups is the number of split-sample groups (default 8, minimum 2).
	Groups int
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// CI selects the interval construction (default CINormal).
	CI CIMethod
	// Seed drives the (deterministic) random grouping used by
	// VarSplitSample. Two estimates with the same Seed and synopsis use
	// identical groupings.
	Seed int64
	// Workers bounds the evaluation parallelism: 0 uses the process default
	// (GOMAXPROCS, or parallel.SetWorkers), 1 forces serial evaluation, and
	// n > 1 allows up to n goroutines. Estimates are bit-identical for every
	// setting: all parallel reductions run in a fixed order independent of
	// the worker count.
	Workers int
	// Recorder receives the call's metrics and spans (see internal/obs);
	// nil disables recording at near-zero cost. Recording is passive — it
	// never consumes randomness or changes evaluation order — so estimates
	// are bit-identical with or without it.
	Recorder obs.Recorder
	// DisableCSE turns off cross-term common-subexpression elimination:
	// every term then re-enumerates its own join prefix instead of sharing
	// materialized prefixes with structurally identical terms. Estimates
	// are bit-identical either way (the sharing layer preserves the exact
	// reduction order); the switch exists for debugging and benchmarking.
	DisableCSE bool
	// Plans, when non-nil, is used as the call's plan cache instead of a
	// fresh one, letting several estimation calls over the same synopsis
	// share compiled plans and materialized CSE prefixes (the batched
	// estimate API passes one cache for the whole batch). Sharing never
	// changes values — cached plans and shared prefixes reproduce the
	// uncached reduction order exactly — but the caller must not mutate
	// any relation the cache's plans were compiled over while the cache
	// lives (Invalidate after mutation, or scope the cache accordingly).
	Plans *algebra.PlanCache
}

func (o Options) withDefaults() Options {
	if o.Groups <= 1 {
		o.Groups = 8
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	return o
}

// Count estimates COUNT(e) from the synopsis with default options.
func Count(e *algebra.Expr, syn *Synopsis) (Estimate, error) {
	return CountWithOptions(e, syn, Options{})
}

// CountWithOptions estimates COUNT(e) from the synopsis.
//
// The expression must be π-free (use Distinct for projection counts). Set
// operations (∪, ∩, −) additionally require the base relations involved to
// be duplicate-free, which is the caller's contract. The estimator is
// unbiased provided every relation's sample size is at least the relation's
// maximum number of occurrences in any polynomial term (it returns an error
// below that).
func CountWithOptions(e *algebra.Expr, syn *Synopsis, opts Options) (Estimate, error) {
	return CountContext(context.Background(), e, syn, opts)
}

// CountContext is CountWithOptions with cancellation: the context is
// polled between polynomial terms and between variance replicates, and a
// cancelled call returns a non-nil error, never a partial estimate. With a
// background (or never-cancelled) context the returned estimate is
// bit-identical to CountWithOptions — the polling consumes no randomness
// and reorders nothing.
func CountContext(ctx context.Context, e *algebra.Expr, syn *Synopsis, opts Options) (Estimate, error) {
	poly, err := algebra.Normalize(e)
	if err != nil {
		return Estimate{}, err
	}
	return countPoly(ctx, poly, syn, opts)
}

func countPoly(ctx context.Context, poly algebra.Polynomial, syn *Synopsis, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	if err := checkSampleSizes(poly, syn); err != nil {
		return Estimate{}, err
	}
	eng := newEngine(ctx, opts)
	eng.span = eng.rec.Span(sEstimate)
	defer eng.span.End()
	recordSynopsis(eng.rec, poly, syn)
	eng.attachCSE(poly, syn)
	value, err := pointEstimate(poly, syn, eng)
	if err != nil {
		return Estimate{}, err
	}
	vspan := eng.span.Child(sVariance)
	variance, method, err := estimateVariance(poly, syn, opts, eng)
	vspan.End()
	if err != nil {
		return Estimate{}, err
	}
	eng.rec.Add(varianceMethodMetric(method), 1)
	return finishEstimate(value, variance, method, poly.NumTerms(), opts), nil
}

// checkSampleSizes verifies n_R ≥ (occurrences of R in any term) for every
// relation — the condition under which the pattern-weighted estimator is
// unbiased — that every referenced relation is in the synopsis, and that
// repeated relations were sampled tuple-at-a-time (the pattern weights
// assume SRSWOR of tuples, which page samples are not).
func checkSampleSizes(poly algebra.Polynomial, syn *Synopsis) error {
	for _, t := range poly.Terms {
		byRel := map[string]int{}
		for _, o := range t.Occs {
			byRel[o.RelName]++
		}
		for rel, occs := range byRel {
			rs, ok := syn.rels[rel]
			if !ok {
				return fmt.Errorf("estimator: no sample for relation %q in synopsis", rel)
			}
			if rs.n < occs && rs.N > 0 {
				// An empty population is exempt: its census sample is empty
				// too, and checkTermSamples makes the term contribute zero.
				return fmt.Errorf("estimator: sample of %q has %d rows but the expression uses it %d times in one term; need n ≥ %d for unbiasedness",
					rel, rs.n, occs, occs)
			}
			if occs > 1 && (!rs.tupleDesign() || !rs.uniformWeights()) {
				return fmt.Errorf("estimator: relation %q occurs %d times in one term but was not sampled as a plain tuple-level SRSWOR; repeated-relation terms require that design",
					rel, occs)
			}
		}
	}
	return nil
}

// pointEstimate evaluates the polynomial estimator over the synopsis,
// fanning the terms (or, for a single term, its plan partitions) across the
// engine's workers. Per-term values are reduced in term order, so the result
// does not depend on the worker count.
func pointEstimate(poly algebra.Polynomial, syn *Synopsis, eng *engine) (float64, error) {
	vals := make([]float64, len(poly.Terms))
	outer, inner := splitWorkers(len(poly.Terms), eng.workers)
	err := parallel.ForErrRec(len(poly.Terms), outer, eng.rec, func(i int) error {
		if err := eng.cancelled(); err != nil {
			return err
		}
		ts := eng.span.Child(sTerm)
		v, err := estimateTerm(&poly.Terms[i], syn, eng, inner)
		ts.End()
		vals[i] = v
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := range vals {
		total += float64(poly.Terms[i].Coef) * vals[i]
	}
	return total, nil
}

// estimateTerm computes the unbiased estimate of one counting term from the
// per-relation samples.
//
// Fast path: when every base relation occurs once in the term, the pattern
// weight is the constant ∏ N_R/n_R and the estimate is that constant times
// the number of satisfying sample assignments.
//
// General path (repeated relations): enumerate satisfying assignments and
// weight each by ∏_R (N_R)_{d_R}/(n_R)_{d_R}, where d_R is the number of
// distinct sample rows the assignment uses from relation R. See package doc
// and DESIGN.md for the unbiasedness argument.
func estimateTerm(t *algebra.Term, syn *Synopsis, eng *engine, workers int) (float64, error) {
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return 0, err
	}
	// Relations in first-occurrence order; detect repeats and stratification.
	metas, err := termRelMetas(t, syn)
	if err != nil {
		return 0, err
	}
	if ok, err := checkTermSamples(metas); !ok {
		return 0, err
	}
	repeated := false
	uniform := true
	for _, m := range metas {
		if len(m.occs) > 1 {
			repeated = true
		}
		if !m.rs.uniformWeights() {
			uniform = false
		}
	}
	pt, err := eng.prepare(t, inst)
	if err != nil {
		return 0, err
	}
	if !repeated && uniform {
		// Single occurrence per relation with equal inclusion
		// probabilities: every sampling unit (tuple or page) is included
		// with probability m/M, so scaling by ∏ M/m is unbiased.
		w := 1.0
		for _, m := range metas {
			w *= m.rs.scale()
		}
		return w * countTerm(pt, workers), nil
	}
	if !repeated {
		// Single occurrence per relation, non-uniform weights (stratified
		// designs): each satisfying assignment is Horvitz–Thompson
		// weighted by the product of its rows' inverse inclusion
		// probabilities.
		weightOf := make([]func(int) float64, len(t.Occs))
		for i, o := range t.Occs {
			weightOf[i] = syn.rels[o.RelName].rowWeightFn()
		}
		return sumTerm(pt, workers, func() func(rows []int) float64 {
			return func(rows []int) float64 {
				w := 1.0
				for i, row := range rows {
					w *= weightOf[i](row)
				}
				return w
			}
		}), nil
	}
	// Pattern-weighted enumeration; the distinct-row scratch is allocated
	// per partition so parts can run concurrently.
	return sumTerm(pt, workers, func() func(rows []int) float64 {
		distinct := make(map[int]struct{}, 4)
		return func(rows []int) float64 {
			w := 1.0
			for _, m := range metas {
				if len(m.occs) == 1 {
					w *= m.rs.scale()
					continue
				}
				for k := range distinct {
					delete(distinct, k)
				}
				for _, oi := range m.occs {
					distinct[rows[oi]] = struct{}{}
				}
				w *= stats.FallingFactorialRatio(m.rs.N, m.rs.n, len(distinct))
			}
			return w
		}
	}), nil
}
