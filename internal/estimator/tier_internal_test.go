package estimator

import (
	"context"
	"math"
	"reflect"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/sketch"
)

func TestParseTierPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want TierPolicy
		ok   bool
	}{
		{"", TierDefault, true},
		{"default", TierDefault, true},
		{"auto", TierAuto, true},
		{"sketch", TierSketchOnly, true},
		{"sample", TierSampleOnly, true},
		{"AUTO", TierDefault, false},
		{"hybrid", TierDefault, false},
	}
	for _, c := range cases {
		got, err := ParseTierPolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseTierPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	// String must round-trip through Parse for every named policy.
	for _, p := range []TierPolicy{TierDefault, TierAuto, TierSketchOnly, TierSampleOnly} {
		back, err := ParseTierPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("ParseTierPolicy(%v.String()) = %v, %v", p, back, err)
		}
	}
	if TierPolicy(99).String() == "" {
		t.Error("unknown policy must still render")
	}
}

// tierTestRelations builds two small joinable relations.
func tierTestRelations(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	r := relation.New("R", intSchema("a", "b"))
	s := relation.New("S", intSchema("a", "c"))
	for i := 0; i < 400; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(i % 40)), relation.Int(int64(i))})
		s.MustAppend(relation.Tuple{relation.Int(int64(i % 25)), relation.Int(int64(i))})
	}
	return r, s
}

// TestSketchShapeTable is the tier-decision table: which normalized term
// shapes the sketch tier answers and which escalate.
func TestSketchShapeTable(t *testing.T) {
	r, s := tierTestRelations(t)
	equi := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	cases := []struct {
		name string
		expr *algebra.Expr
		want []termShape
	}{
		{"bare cardinality", algebra.BaseOf(r), []termShape{shapeExactCard}},
		{"equi-join", equi, []termShape{shapeSketchEq}},
		{"selection",
			algebra.Must(algebra.Select(algebra.BaseOf(r),
				algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)})),
			[]termShape{shapeEscalate}},
		{"theta residual on equi-join",
			algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
				[]algebra.On{{Left: "a", Right: "a"}},
				algebra.ColCmp{A: "b", B: "c", Op: algebra.LT}, "S_")),
			[]termShape{shapeEscalate}},
		{"product", algebra.Must(algebra.Product(algebra.BaseOf(r), algebra.BaseOf(s), "S_")),
			[]termShape{shapeEscalate}},
		{"selected join",
			algebra.Must(algebra.Select(equi,
				algebra.Cmp{Col: "b", Op: algebra.GT, Val: relation.Int(100)})),
			[]termShape{shapeEscalate}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			poly, err := algebra.Normalize(c.expr)
			if err != nil {
				t.Fatal(err)
			}
			if len(poly.Terms) != len(c.want) {
				t.Fatalf("%d terms, want %d", len(poly.Terms), len(c.want))
			}
			for i := range poly.Terms {
				if got := sketchShape(&poly.Terms[i]); got != c.want[i] {
					t.Errorf("term %d shape %v, want %v", i, got, c.want[i])
				}
			}
		})
	}

	// Set operations expand into multi-occurrence intersection terms: the
	// cardinality terms are sketchable, the intersection term is not.
	rr := relation.New("R2", intSchema("a", "b"))
	for i := 0; i < 100; i++ {
		rr.MustAppend(relation.Tuple{relation.Int(int64(i % 10)), relation.Int(int64(i))})
	}
	union := algebra.Must(algebra.Union(algebra.BaseOf(r), algebra.BaseOf(rr)))
	poly, err := algebra.Normalize(union)
	if err != nil {
		t.Fatal(err)
	}
	var exact, escalate int
	for i := range poly.Terms {
		switch sketchShape(&poly.Terms[i]) {
		case shapeExactCard:
			exact++
		case shapeEscalate:
			escalate++
		default:
			t.Errorf("unexpected sketch-eq term in a union polynomial")
		}
	}
	if exact < 2 || escalate < 1 {
		t.Errorf("union shapes: %d exact, %d escalated; want ≥2 and ≥1", exact, escalate)
	}
}

func TestMeetsPrecision(t *testing.T) {
	cases := []struct {
		name string
		est  sketch.Estimate
		want bool
	}{
		{"exact (zero variance)", sketch.Estimate{Value: 400}, true},
		{"tight", sketch.Estimate{Value: 1000, Variance: 100}, true},         // 2·10/1000 = 2%
		{"loose", sketch.Estimate{Value: 1000, Variance: 1000000}, false},    // 2·1000/1000 = 200%
		{"non-positive value", sketch.Estimate{Value: -5, Variance: 1}, false},
		{"zero value", sketch.Estimate{Value: 0, Variance: 1}, false},
	}
	for _, c := range cases {
		if got := meetsPrecision(c.est, 2.0, 0.1); got != c.want {
			t.Errorf("%s: meetsPrecision = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEnsureSketchesLifecycle(t *testing.T) {
	r, s := tierTestRelations(t)
	rng := testRand(3)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 50, rng); err != nil {
		t.Fatal(err)
	}
	// AddSample registers a bare sample with no retained base: no sketch.
	sample := relation.New("S", s.Schema())
	for i := 0; i < 50; i++ {
		sample.MustAppend(relation.Tuple{s.Value(i, 0), s.Value(i, 1)})
	}
	if err := syn.AddSample(sample, s.Len()); err != nil {
		t.Fatal(err)
	}
	if syn.HasSketches("R") || syn.HasSketches("S") {
		t.Fatal("sketches exist before EnsureSketches")
	}
	syn.EnsureSketches()
	if !syn.HasSketches("R") {
		t.Error("drawn relation must gain a sketch tier")
	}
	if syn.HasSketches("S") {
		t.Error("AddSample relation has no base; it must not gain sketches")
	}
	if got := syn.SketchedRelations(); len(got) != 1 || got[0] != "R" {
		t.Errorf("SketchedRelations = %v", got)
	}
	if syn.SketchBytes() <= 0 {
		t.Error("SketchBytes must be positive once a tier exists")
	}
	// Idempotence: a second call must keep the same sketch objects.
	before := syn.relSketch("R")
	syn.EnsureSketches()
	if syn.relSketch("R") != before {
		t.Error("EnsureSketches rebuilt an existing tier")
	}
	// Clone shares the immutable sketch tier by reference.
	clone := syn.Clone()
	if clone.relSketch("R") != before {
		t.Error("Clone must share built sketches")
	}
	// The KMV summary sees the full base, not the sample.
	d, ok := syn.SketchDistinct("R", "a")
	if !ok || d != 40 {
		t.Errorf("SketchDistinct(R, a) = %v, %v; want 40 (exact below k)", d, ok)
	}
	if _, ok := syn.SketchDistinct("R", "zzz"); ok {
		t.Error("unknown column must report !ok")
	}
	if _, ok := syn.SketchDistinct("S", "a"); ok {
		t.Error("unsketched relation must report !ok")
	}
}

// TestIncrementalSketchMatchesRebuild pins the linearity contract: the
// stream-maintained AGMS sketches after arbitrary inserts and deletes are
// atom-for-atom identical to sketches rebuilt from the surviving tuples.
func TestIncrementalSketchMatchesRebuild(t *testing.T) {
	schema := intSchema("a", "b")
	inc := NewIncremental(64, testRand(11))
	if err := inc.Track("R", schema); err != nil {
		t.Fatal(err)
	}
	rng := testRand(12)
	var live []relation.Tuple
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Float64() < 0.3 {
			k := rng.Intn(len(live))
			if err := inc.Delete("R", live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
			continue
		}
		tup := relation.Tuple{relation.Int(int64(rng.Intn(100))), relation.Int(int64(i))}
		if err := inc.Insert("R", tup); err != nil {
			t.Fatal(err)
		}
		live = append(live, tup)
	}
	syn, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := syn.relSketch("R")
	if got == nil {
		t.Fatal("snapshot carries no sketch tier")
	}
	survivors := relation.New("R", schema)
	for _, tup := range live {
		survivors.MustAppend(tup)
	}
	want := buildRelSketches(survivors)
	for c := range want.cols {
		if !reflect.DeepEqual(got.cols[c], want.cols[c]) {
			t.Errorf("column %d: stream-maintained sketch differs from rebuild", c)
		}
	}
}

// TestTieredCountPureSketch covers the three planner outcomes directly.
func TestTieredCountOutcomes(t *testing.T) {
	r, s := tierTestRelations(t)
	rng := testRand(5)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 80, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 80, rng); err != nil {
		t.Fatal(err)
	}
	syn.EnsureSketches()
	ctx := context.Background()

	// Pure sketch: a bare cardinality is answered exactly.
	est, rep, err := tieredCount(ctx, algebra.BaseOf(r), syn, Options{}, TierAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answered != TierAnsweredSketch || rep.SketchTerms != 1 || rep.SampleTerms != 0 {
		t.Errorf("cardinality report %+v", rep)
	}
	if est.Value != 400 || est.VarianceMethod != VarSketch || est.StdErr != 0 {
		t.Errorf("cardinality estimate %+v", est)
	}

	// Pure sample: a selection escalates wholesale.
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)}))
	est, rep, err = tieredCount(ctx, sel, syn, Options{}, TierAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answered != TierAnsweredSample || rep.SketchTerms != 0 || rep.SampleTerms != 1 {
		t.Errorf("selection report %+v", rep)
	}
	want, err := CountContext(ctx, sel, syn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != want.Value {
		t.Errorf("escalated value %v != sample-tier value %v", est.Value, want.Value)
	}

	// VarNone passthrough on the sketch path: no variance fields.
	est, _, err = tieredCount(ctx, algebra.BaseOf(r), syn, Options{Variance: VarNone}, TierAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarNone || !math.IsNaN(est.Variance) {
		t.Errorf("VarNone sketch estimate %+v", est)
	}

	// SketchOnly refusal names the reason.
	if _, _, err := tieredCount(ctx, sel, syn, Options{}, TierSketchOnly, 0); err == nil {
		t.Error("SketchOnly must refuse a selection")
	}
}
