package estimator

import (
	"math"
	"testing"
	"time"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// TestGrowTarget pins the phase-two sample-size rule, in particular the
// overflow regime: ceil(n·φ) exceeds the int range long before φ becomes
// an unusual pilot outcome, and the pre-fix int conversion produced an
// implementation-defined (negative) target that silently skipped growth.
func TestGrowTarget(t *testing.T) {
	cases := []struct {
		name        string
		n           int
		phi         float64
		maxFraction float64
		N           int
		want        int
	}{
		{name: "modest growth", n: 100, phi: 4, maxFraction: 1, N: 10000, want: 400},
		{name: "fractional phi rounds up", n: 100, phi: 2.5, maxFraction: 1, N: 10000, want: 250},
		{name: "population clamp", n: 100, phi: 4, maxFraction: 1, N: 250, want: 250},
		{name: "max-fraction clamp", n: 100, phi: 100, maxFraction: 0.05, N: 10000, want: 500},
		{name: "int overflow clamps to N", n: 100, phi: 1e30, maxFraction: 1, N: 5000, want: 5000},
		{name: "int overflow respects max-fraction", n: 100, phi: 1e30, maxFraction: 0.1, N: 5000, want: 500},
		{name: "infinite phi", n: 100, phi: math.Inf(1), maxFraction: 1, N: 5000, want: 5000},
		{name: "phi below one never shrinks", n: 100, phi: 0.5, maxFraction: 1, N: 5000, want: 100},
		{name: "zero sample", n: 0, phi: 10, maxFraction: 1, N: 5000, want: 0},
		{name: "exact boundary", n: 10, phi: 10, maxFraction: 1, N: 100, want: 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := growTarget(tc.n, tc.phi, tc.maxFraction, tc.N)
			if got != tc.want {
				t.Errorf("growTarget(n=%d, phi=%v, maxFrac=%v, N=%d) = %d, want %d",
					tc.n, tc.phi, tc.maxFraction, tc.N, got, tc.want)
			}
			if got < 0 || got > tc.N {
				t.Errorf("target %d outside [0, %d]", got, tc.N)
			}
		})
	}
}

// TestSequentialEmptyRelation: n=0 edge — a query over an empty relation
// must complete both phases cleanly (estimate 0, no growth, no crash) and
// must NOT claim the precision target met: with no sample there is no
// variance estimate to base a verdict on.
func TestSequentialEmptyRelation(t *testing.T) {
	r := intRelation("R", []string{"a"}, nil)
	e := algebra.BaseOf(r)
	rng := testRand(51)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 0, rng); err != nil {
		t.Fatal(err)
	}
	res, err := SequentialCount(e, syn, rng, SequentialOptions{TargetRelErr: 0.05})
	if err != nil {
		t.Fatalf("empty relation: %v", err)
	}
	if res.Final.Value != 0 {
		t.Errorf("estimate over empty relation = %v, want 0", res.Final.Value)
	}
	if res.GrowthFactor != 1 {
		t.Errorf("growth factor = %v, want 1", res.GrowthFactor)
	}
	if res.TargetMet {
		t.Error("TargetMet true with no variance estimate")
	}
}

// TestSequentialZeroVariance: a census-by-pilot (sample = population) has
// exactly zero variance; the stopping rule must report the target met and
// must not attempt further growth.
func TestSequentialZeroVariance(t *testing.T) {
	rows := make([][]int64, 40)
	for i := range rows {
		rows[i] = []int64{int64(i % 7)}
	}
	r := intRelation("R", []string{"a"}, rows)
	e := algebra.BaseOf(r)
	rng := testRand(52)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 10, rng); err != nil {
		t.Fatal(err)
	}
	res, err := SequentialCount(e, syn, rng, SequentialOptions{
		TargetRelErr: 0.05,
		PilotSize:    40, // pilot = census: variance is exactly 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pilot.StdErr != 0 {
		t.Fatalf("census pilot stderr = %v, want 0", res.Pilot.StdErr)
	}
	if res.GrowthFactor != 1 {
		t.Errorf("zero-variance pilot grew the sample: φ=%v", res.GrowthFactor)
	}
	if !res.TargetMet {
		t.Error("zero-variance census should meet any relative-error target")
	}
	if res.Final.Value != 40 {
		t.Errorf("census estimate = %v, want 40", res.Final.Value)
	}
}

// TestSequentialNoVarianceNotMet: when the variance method degrades to
// VarNone (here: a 2-row sample where no method applies), StdErr is zero by
// construction, and before the fix the verdict z·0 ≤ e·|J| reported the
// target met with no evidence at all.
func TestSequentialNoVarianceNotMet(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}})
	e := algebra.BaseOf(r)
	rng := testRand(53)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 1, rng); err != nil {
		t.Fatal(err)
	}
	res, err := SequentialCount(e, syn, rng, SequentialOptions{
		TargetRelErr: 0.05,
		PilotSize:    1,
		MaxFraction:  1.0 / 3.0, // keeps the sample at one row: m<2, no variance method applies
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.VarianceMethod != VarNone {
		t.Skipf("variance method %v unexpectedly available", res.Final.VarianceMethod)
	}
	if res.TargetMet {
		t.Error("TargetMet true although no variance method applied")
	}
}

// TestDeadlineBudgetSmallerThanOneRound: the budget can expire before the
// first round finishes; the contract is still one completed round — the
// best answer the time allowed — never zero rounds or an error.
func TestDeadlineBudgetSmallerThanOneRound(t *testing.T) {
	r, s, e, _ := seqFixtures(t)
	rng := testRand(54)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 10, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 10, rng); err != nil {
		t.Fatal(err)
	}
	est, history, err := DeadlineCount(e, syn, rng, DeadlineOptions{
		Budget:      time.Nanosecond,
		InitialSize: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Errorf("rounds = %d, want exactly 1 for a sub-round budget", len(history))
	}
	if est.Value <= 0 {
		t.Errorf("estimate %v from the single round", est.Value)
	}
}

// TestDeadlineHugeGrowthTerminates: a pathological Growth factor overflows
// the int target after one round; the clamped growth must walk the sample
// to a census and terminate by exhaustion instead of stalling on a
// negative target until the deadline.
func TestDeadlineHugeGrowthTerminates(t *testing.T) {
	rows := make([][]int64, 60)
	for i := range rows {
		rows[i] = []int64{int64(i % 5)}
	}
	r := intRelation("R", []string{"a"}, rows)
	e := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.EQ, Val: relation.Int(1)}))
	rng := testRand(55)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 5, rng); err != nil {
		t.Fatal(err)
	}
	est, history, err := DeadlineCount(e, syn, rng, DeadlineOptions{
		Budget:      time.Hour, // termination must come from exhaustion, not the deadline
		InitialSize: 5,
		Growth:      1e18,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := history[len(history)-1]
	if last.SampleSizes["R"] != r.Len() {
		t.Errorf("final sample %v, want census of %d", last.SampleSizes, r.Len())
	}
	if est.Value != 12 {
		t.Errorf("census estimate = %v, want exactly 12", est.Value)
	}
}
