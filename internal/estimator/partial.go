package estimator

import (
	"context"
	"fmt"
	"math"

	"relest/internal/algebra"
)

// This file is the stratified-composition layer of the estimator: the
// counting polynomial composes linearly over any partition of the input
// (shards, strata, time slices), so a partition-level estimate plus a
// partition-level variance from each part merges into an unbiased
// whole-population estimate with a real CI. A sharded relestd cluster is
// exactly this design with shards as strata; internal/cluster feeds wire
// partials through MergeStratified.

// Partial is one stratum's contribution to a stratified (cluster)
// estimate: an unbiased estimate of the stratum's own count together
// with its variance. Strata sampled independently — which shard-local
// SRSWOR draws with distinct seeds are — merge by plain summation.
type Partial struct {
	// Value is the stratum's unbiased estimate of its slice of the count.
	Value float64
	// Variance is the stratum's variance estimate; NaN when the stratum
	// reported none (then the merged estimate carries no CI either).
	Variance float64
	// Method records how Variance was obtained in the stratum.
	Method VarianceMethod
	// Terms is the number of counting-polynomial terms the stratum
	// evaluated (identical across strata for a shardable query).
	Terms int
}

// PartialEstimator produces one stratum's partial estimate. The local
// implementation is SynopsisPartial; internal/cluster implements the same
// contract over the HTTP shard protocol.
type PartialEstimator interface {
	EstimatePartial(ctx context.Context, e *algebra.Expr, opts Options) (Partial, error)
}

// SynopsisPartial adapts one synopsis — holding one stratum's slice of
// every relation — into a PartialEstimator via the ordinary counting
// polynomial.
type SynopsisPartial struct {
	Syn *Synopsis
}

// EstimatePartial runs the stratum's COUNT estimate.
func (p SynopsisPartial) EstimatePartial(ctx context.Context, e *algebra.Expr, opts Options) (Partial, error) {
	est, err := CountContext(ctx, e, p.Syn, opts)
	if err != nil {
		return Partial{}, err
	}
	return Partial{Value: est.Value, Variance: est.Variance, Method: est.VarianceMethod, Terms: est.Terms}, nil
}

// StratifiedMerge reports how a merged estimate was composed.
type StratifiedMerge struct {
	// Total is the number of strata in the design.
	Total int
	// Answered is the number of strata that contributed a partial.
	Answered int
	// Partial is true when some strata are missing: the estimate is then
	// a two-stage cluster-sampling estimate over the answered strata with
	// a correspondingly wider CI, never a silently low sum.
	Partial bool
}

// MergeStratified composes per-stratum partials into one estimate.
//
// With every stratum answering, the merge is the exact stratified
// estimator: Ŷ = Σ ŷ_s is unbiased because each ŷ_s is, and since the
// strata sample independently, V̂ = Σ V̂_s. With one stratum the merge
// reproduces that stratum's estimate bit for bit (the CI is rebuilt with
// the same formulas countPoly uses), which is what keeps a shards=1
// cluster byte-identical to a single node.
//
// With a < total strata answering, the answered set is treated as a
// first-stage sample of strata (two-stage cluster sampling): the point
// estimate scales to Ŷ = (S/a)·Σ ŷ_s and the variance gains a
// between-strata term, V̂ = S²(1−a/S)·s_b²/a + (S/a)·Σ V̂_s, where s_b² is
// the sample variance of the answered per-stratum estimates. The widened
// CI prices in what the missing strata could have contributed. With a
// single answered stratum s_b² is unestimable; the within term is scaled
// by (S/a)² instead, a conservative floor the caller should surface as
// degraded. Missing strata are only statistically exchangeable with
// answered ones when the partition is hash-like; a range-partitioned
// design with systematically heavier strata can bias the scaled estimate,
// which is why callers must always flag partial merges rather than
// pass them off as full answers.
//
// Any stratum reporting no variance (NaN) makes the merged method
// VarNone: a CI built over a subset of the strata's uncertainties would
// be silently too narrow. Mixed (non-NaN) methods merge fine — the
// variances are still independent and additive — and the merged method
// reports the common one, or VarAuto when strata disagree.
func MergeStratified(parts []Partial, total int, opts Options) (Estimate, StratifiedMerge, error) {
	if len(parts) == 0 {
		return Estimate{}, StratifiedMerge{}, fmt.Errorf("estimator: stratified merge needs at least one partial")
	}
	if total < len(parts) {
		return Estimate{}, StratifiedMerge{}, fmt.Errorf("estimator: %d partials exceed the design's %d strata", len(parts), total)
	}
	opts = opts.withDefaults()
	rep := StratifiedMerge{Total: total, Answered: len(parts), Partial: len(parts) < total}

	value, varSum := 0.0, 0.0
	noVar := false
	method := parts[0].Method
	terms := 0
	for _, p := range parts {
		value += p.Value
		if math.IsNaN(p.Variance) || p.Method == VarNone {
			noVar = true
		} else {
			varSum += p.Variance
		}
		if p.Method != method {
			method = VarAuto
		}
		if p.Terms > terms {
			terms = p.Terms
		}
	}
	if noVar {
		method = VarNone
	}

	a, s := float64(len(parts)), float64(total)
	if rep.Partial {
		scale := s / a
		mean := value / a
		value *= scale
		switch {
		case noVar:
			// No within-stratum variances to widen; the scaled point
			// estimate stands alone and the caller must flag it partial.
		case len(parts) >= 2:
			sb2 := 0.0
			for _, p := range parts {
				d := p.Value - mean
				sb2 += d * d
			}
			sb2 /= a - 1
			varSum = s*s*(1-a/s)*sb2/a + scale*varSum
		default:
			// One answered stratum: the between-strata spread is
			// unestimable, so scale the within term quadratically.
			varSum = scale * scale * varSum
		}
	}
	return finishEstimate(value, varSum, method, terms, opts), rep, nil
}

// CountStratified estimates COUNT(e) over a stratified design: each
// PartialEstimator owns one stratum (e.g. one shard's slice of every
// relation) and the partials merge per MergeStratified. Strata evaluate
// sequentially in slice order, so the result is deterministic; with a
// single stratum it is bit-identical to CountContext on that stratum.
func CountStratified(ctx context.Context, e *algebra.Expr, strata []PartialEstimator, opts Options) (Estimate, StratifiedMerge, error) {
	if len(strata) == 0 {
		return Estimate{}, StratifiedMerge{}, fmt.Errorf("estimator: stratified count needs at least one stratum")
	}
	parts := make([]Partial, len(strata))
	for i, st := range strata {
		p, err := st.EstimatePartial(ctx, e, opts)
		if err != nil {
			return Estimate{}, StratifiedMerge{}, fmt.Errorf("estimator: stratum %d: %w", i, err)
		}
		parts[i] = p
	}
	return MergeStratified(parts, len(strata), opts)
}

// finishEstimate assembles an Estimate from a point value and a variance
// the way every COUNT path does: NaN variance under VarNone, StdErr
// clamped at zero, CI at the requested level. countPoly and
// MergeStratified share this so a one-stratum merge reproduces the
// single-synopsis estimate bit for bit. opts must already carry defaults.
func finishEstimate(value, variance float64, method VarianceMethod, terms int, opts Options) Estimate {
	est := Estimate{
		Value:          value,
		Variance:       math.NaN(),
		Confidence:     opts.Confidence,
		VarianceMethod: method,
		Terms:          terms,
	}
	if method != VarNone {
		est.Variance = variance
		est.StdErr = math.Sqrt(math.Max(variance, 0))
		z := ciZ(opts)
		est.Lo = value - z*est.StdErr
		est.Hi = value + z*est.StdErr
	}
	return est
}
