package estimator

import (
	"context"
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/sampling"
)

// stratPair builds a deterministic join pair for stratified tests: keys
// spread over a small domain so every parity stratum is non-trivial.
func stratPair() (*relation.Relation, *relation.Relation) {
	var rrows, srows [][]int64
	for i := 0; i < 40; i++ {
		rrows = append(rrows, []int64{int64(i*7) % 8, int64(i)})
		srows = append(srows, []int64{int64(i*5) % 8, int64(100 + i)})
	}
	r := intRelation("R", []string{"a", "id"}, rrows)
	s := intRelation("S", []string{"a", "id"}, srows)
	return r, s
}

func exactJoinCount(r, s *relation.Relation) float64 {
	n := 0
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			if r.Value(i, 0).Int64() == s.Value(j, 0).Int64() {
				n++
			}
		}
	}
	return float64(n)
}

// TestCountStratifiedSingleStratumBitIdentical pins the merge layer's
// core contract: one stratum holding everything reproduces CountContext
// bit for bit, across variance methods and CI constructions. This is the
// property a shards=1 cluster's golden byte-identity rests on.
func TestCountStratifiedSingleStratumBitIdentical(t *testing.T) {
	r, s := stratPair()
	syn := NewSynopsis()
	rng := sampling.NewSource(11).Rand(0)
	if err := syn.AddDrawn(r, 20, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 20, rng); err != nil {
		t.Fatal(err)
	}
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))

	cases := []Options{
		{Seed: 3},
		{Seed: 3, Variance: VarAnalytic},
		{Seed: 5, Variance: VarSplitSample},
		{Seed: 3, Variance: VarNone},
		{Seed: 3, CI: CIChebyshev, Confidence: 0.9},
	}
	for _, opts := range cases {
		want, err := CountContext(context.Background(), e, syn, opts)
		if err != nil {
			t.Fatalf("CountContext(%+v): %v", opts, err)
		}
		got, rep, err := CountStratified(context.Background(), e, []PartialEstimator{SynopsisPartial{Syn: syn}}, opts)
		if err != nil {
			t.Fatalf("CountStratified(%+v): %v", opts, err)
		}
		if rep.Partial || rep.Total != 1 || rep.Answered != 1 {
			t.Errorf("merge report = %+v, want full single-stratum", rep)
		}
		// NaN != NaN, so compare variance presence separately.
		if got.Value != want.Value || got.StdErr != want.StdErr || got.Lo != want.Lo || got.Hi != want.Hi ||
			got.Confidence != want.Confidence || got.VarianceMethod != want.VarianceMethod || got.Terms != want.Terms {
			t.Errorf("opts %+v: merged %+v differs from direct %+v", opts, got, want)
		}
		if math.IsNaN(got.Variance) != math.IsNaN(want.Variance) || (!math.IsNaN(got.Variance) && got.Variance != want.Variance) {
			t.Errorf("opts %+v: merged variance %v differs from direct %v", opts, got.Variance, want.Variance)
		}
	}
}

// TestCountStratifiedCensusExact partitions both relations by key parity
// — a shard-like partition in which every join pair is co-located — and
// gives each stratum a census sample. The stratified merge must then be
// exact: per-stratum estimates are exact counts and the strata cover the
// join disjointly.
func TestCountStratifiedCensusExact(t *testing.T) {
	r, s := stratPair()
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))

	var strata []PartialEstimator
	for parity := 0; parity < 2; parity++ {
		syn := NewSynopsis()
		for _, base := range []*relation.Relation{r, s} {
			var rows []int
			for i := 0; i < base.Len(); i++ {
				if int(base.Value(i, 0).Int64())%2 == parity {
					rows = append(rows, i)
				}
			}
			slice := base.Subset(base.Name(), rows)
			if err := syn.AddSample(slice, slice.Len()); err != nil {
				t.Fatal(err)
			}
		}
		strata = append(strata, SynopsisPartial{Syn: syn})
	}

	est, rep, err := CountStratified(context.Background(), e, strata, Options{Variance: VarAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial || rep.Answered != 2 || rep.Total != 2 {
		t.Errorf("merge report = %+v, want full 2-stratum", rep)
	}
	if want := exactJoinCount(r, s); est.Value != want {
		t.Errorf("census stratified estimate = %v, want exact %v", est.Value, want)
	}
	if est.Variance != 0 {
		t.Errorf("census stratified variance = %v, want 0", est.Variance)
	}
}

func TestMergeStratifiedFullSum(t *testing.T) {
	parts := []Partial{
		{Value: 100, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 50, Variance: 9, Method: VarAnalytic, Terms: 1},
	}
	est, rep, err := MergeStratified(parts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Error("full merge reported partial")
	}
	if est.Value != 150 || est.Variance != 25 || est.StdErr != 5 {
		t.Errorf("merged = %+v, want value 150, variance 25, stderr 5", est)
	}
	if est.VarianceMethod != VarAnalytic || est.Terms != 1 || est.Confidence != 0.95 {
		t.Errorf("merged metadata wrong: %+v", est)
	}
	if !(est.Lo < est.Value && est.Value < est.Hi) {
		t.Errorf("CI [%v, %v] does not bracket %v", est.Lo, est.Hi, est.Value)
	}
}

// TestMergeStratifiedMissingWidens drops strata from a 4-stratum design
// and checks the degradation contract: the point estimate scales by S/a,
// the report flags partial, and the CI is wider than the plain sum's
// would be (the between-strata term prices in the missing strata).
func TestMergeStratifiedMissingWidens(t *testing.T) {
	all := []Partial{
		{Value: 100, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 120, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 80, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 110, Variance: 16, Method: VarAnalytic, Terms: 1},
	}
	full, _, err := MergeStratified(all, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}

	est, rep, err := MergeStratified(all[:2], 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.Answered != 2 || rep.Total != 4 {
		t.Errorf("merge report = %+v, want partial 2/4", rep)
	}
	if want := (100.0 + 120.0) * 2; est.Value != want {
		t.Errorf("scaled value = %v, want %v", est.Value, want)
	}
	// Within term scaled (S/a)·ΣV = 2·32 = 64, between term
	// S²(1−a/S)s_b²/a = 16·0.5·200/2 = 800.
	if want := 864.0; est.Variance != want {
		t.Errorf("widened variance = %v, want %v", est.Variance, want)
	}
	if est.StdErr <= full.StdErr {
		t.Errorf("partial stderr %v not wider than full merge's %v", est.StdErr, full.StdErr)
	}
}

// TestMergeStratifiedSingleAnswered checks the a=1 fallback: with no
// between-strata spread observable, the within variance scales by (S/a)².
func TestMergeStratifiedSingleAnswered(t *testing.T) {
	est, rep, err := MergeStratified([]Partial{{Value: 100, Variance: 16, Method: VarAnalytic, Terms: 1}}, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.Answered != 1 {
		t.Errorf("merge report = %+v, want partial 1/4", rep)
	}
	if est.Value != 400 || est.Variance != 256 || est.StdErr != 16 {
		t.Errorf("merged = %+v, want value 400, variance 256, stderr 16", est)
	}
}

// TestMergeStratifiedNoVariance: one stratum without a variance poisons
// the merged CI — a CI over a subset of the uncertainty would be silently
// narrow — while the point estimate still merges.
func TestMergeStratifiedNoVariance(t *testing.T) {
	parts := []Partial{
		{Value: 100, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 50, Variance: math.NaN(), Method: VarNone, Terms: 1},
	}
	est, _, err := MergeStratified(parts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 150 || !math.IsNaN(est.Variance) || est.VarianceMethod != VarNone {
		t.Errorf("merged = %+v, want value 150 with no variance", est)
	}
	if est.Lo != 0 || est.Hi != 0 || est.StdErr != 0 {
		t.Errorf("no-variance merge must leave the CI empty: %+v", est)
	}
}

func TestMergeStratifiedMixedMethods(t *testing.T) {
	parts := []Partial{
		{Value: 100, Variance: 16, Method: VarAnalytic, Terms: 1},
		{Value: 50, Variance: 9, Method: VarSplitSample, Terms: 1},
	}
	est, _, err := MergeStratified(parts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Variance != 25 || est.VarianceMethod != VarAuto {
		t.Errorf("mixed-method merge = %+v, want additive variance under VarAuto", est)
	}
}

func TestMergeStratifiedErrors(t *testing.T) {
	if _, _, err := MergeStratified(nil, 2, Options{}); err == nil {
		t.Error("empty partial set did not error")
	}
	parts := []Partial{{Value: 1}, {Value: 2}, {Value: 3}}
	if _, _, err := MergeStratified(parts, 2, Options{}); err == nil {
		t.Error("more partials than strata did not error")
	}
	if _, _, err := CountStratified(context.Background(), nil, nil, Options{}); err == nil {
		t.Error("empty strata set did not error")
	}
}
