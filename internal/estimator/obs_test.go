package estimator

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"relest/internal/obs"
	"relest/internal/sampling"
)

// sameBits reports bit-level equality of two floats (NaN == NaN here:
// both estimates carrying the same NaN pattern is exactly what the
// instrumentation contract demands).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func assertSameEstimate(t *testing.T, label string, a, b Estimate) {
	t.Helper()
	if !sameBits(a.Value, b.Value) || !sameBits(a.Variance, b.Variance) ||
		!sameBits(a.Lo, b.Lo) || !sameBits(a.Hi, b.Hi) || a.VarianceMethod != b.VarianceMethod {
		t.Errorf("%s: recorder changed the estimate:\n  with:    %+v\n  without: %+v", label, a, b)
	}
}

// TestRecorderDoesNotChangeEstimates is the tentpole contract: attaching a
// live Collector (with tracing) to an estimation must leave every output
// float bit-identical to the unrecorded run, for COUNT and SUM, for every
// variance method, at multiple worker counts.
func TestRecorderDoesNotChangeEstimates(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 400, 300, 40, 11)
	for _, variance := range []VarianceMethod{VarAnalytic, VarSplitSample, VarJackknife} {
		for _, workers := range []int{1, 4} {
			base := Options{Variance: variance, Seed: 42, Workers: workers}
			plain, err := CountWithOptions(expr, syn, base)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", variance, workers, err)
			}
			rec := obs.NewCollector()
			rec.EnableTrace()
			withRec := base
			withRec.Recorder = rec
			recorded, err := CountWithOptions(expr, syn, withRec)
			if err != nil {
				t.Fatalf("%v workers=%d recorded: %v", variance, workers, err)
			}
			assertSameEstimate(t, variance.String(), recorded, plain)
		}
	}

	// SUM through the jackknife replication path.
	for _, workers := range []int{1, 4} {
		base := Options{Variance: VarJackknife, Seed: 9, Workers: workers}
		plain, err := SumWithOptions(expr, "b", syn, base)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewCollector()
		withRec := base
		withRec.Recorder = rec
		recorded, err := SumWithOptions(expr, "b", syn, withRec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimate(t, "sum", recorded, plain)
	}
}

// TestRecorderDoesNotChangeSequential extends the bit-identity contract to
// double sampling, where the recorder additionally must not perturb the
// sample-growth draws (two fresh synopses, same seeds, one recorded).
func TestRecorderDoesNotChangeSequential(t *testing.T) {
	run := func(rec obs.Recorder) SequentialResult {
		t.Helper()
		rng := rand.New(rand.NewSource(7))
		expr, syn := drawnJoinSynopsis(t, 400, 300, 40, 11)
		res, err := SequentialCount(expr, syn, rng, SequentialOptions{
			TargetRelErr: 0.2,
			PilotSize:    30,
			Estimate:     Options{Seed: 3, Workers: 2, Recorder: rec},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	rec := obs.NewCollector()
	rec.EnableTrace()
	recorded := run(rec)
	assertSameEstimate(t, "sequential pilot", recorded.Pilot, plain.Pilot)
	assertSameEstimate(t, "sequential final", recorded.Final, plain.Final)
	if !sameBits(recorded.GrowthFactor, plain.GrowthFactor) || recorded.TargetMet != plain.TargetMet {
		t.Errorf("sequential run diverged: %+v vs %+v", recorded, plain)
	}
	for rel, n := range plain.SampleSizes {
		if recorded.SampleSizes[rel] != n {
			t.Errorf("sample size of %q diverged: %d vs %d", rel, recorded.SampleSizes[rel], n)
		}
	}
}

// TestRecorderObservesEngine checks that a recorded estimation actually
// populates the advertised series: terms, samples consumed, variance
// method, replicates, plan-cache traffic, pool metrics, and spans.
func TestRecorderObservesEngine(t *testing.T) {
	expr, syn := drawnJoinSynopsis(t, 400, 300, 40, 11)
	rec := obs.NewCollector()
	tr := rec.EnableTrace()
	if _, err := CountWithOptions(expr, syn, Options{Variance: VarSplitSample, Seed: 1, Workers: 4, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	m := rec.Metrics()
	if got := m.Counter(mTermsTotal).Value(); got < 1 {
		t.Errorf("%s = %v, want >= 1", mTermsTotal, got)
	}
	if got := m.Counter(obs.L(mSamplesRows, "rel", "R")).Value(); got != 40 {
		t.Errorf("samples rows for R = %v, want 40", got)
	}
	if got := m.Counter(mVarMethodSplit).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", mVarMethodSplit, got)
	}
	if got := m.Counter(mRepSplit).Value(); got < 2 {
		t.Errorf("%s = %v, want >= 2", mRepSplit, got)
	}
	if got := m.Counter("relest_plan_built_total").Value(); got < 1 {
		t.Errorf("plan_built_total = %v, want >= 1", got)
	}
	if got := m.Counter("relest_pool_tasks_total").Value(); got < 2 {
		t.Errorf("pool_tasks_total = %v, want >= 2", got)
	}
	if got := m.Histogram(sTerm+"_seconds", nil).Count(); got < 1 {
		t.Errorf("term span histogram count = %d, want >= 1", got)
	}
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{sEstimate, sTerm, sVariance, sReplicate} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing span %q:\n%s", want, text)
		}
	}
}

// TestSamplingRecorderObservesDraws checks the process-global sampling
// recorder: draws are counted, and installing the recorder does not change
// which indices are drawn.
func TestSamplingRecorderObservesDraws(t *testing.T) {
	plainRng := rand.New(rand.NewSource(5))
	plain := sampling.WithoutReplacement(plainRng, 1000, 50)

	rec := obs.NewCollector()
	sampling.SetRecorder(rec)
	defer sampling.SetRecorder(nil)
	recRng := rand.New(rand.NewSource(5))
	recorded := sampling.WithoutReplacement(recRng, 1000, 50)

	if len(plain) != len(recorded) {
		t.Fatalf("sample sizes differ: %d vs %d", len(plain), len(recorded))
	}
	for i := range plain {
		if plain[i] != recorded[i] {
			t.Fatalf("sample diverged at %d: %d vs %d", i, plain[i], recorded[i])
		}
	}
	if got := rec.Metrics().Counter("relest_sampling_draws_total").Value(); got != 1 {
		t.Errorf("draws_total = %v, want 1", got)
	}
	if got := rec.Metrics().Counter("relest_sampling_units_drawn_total").Value(); got != 50 {
		t.Errorf("units_drawn_total = %v, want 50", got)
	}
}
