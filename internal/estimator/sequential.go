package estimator

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"relest/internal/algebra"
	"relest/internal/obs"
	"relest/internal/sampling"
	"relest/internal/stats"
)

// Sequential (two-phase / "double") sampling and deadline-bounded
// estimation — the CASE-DB mode the paper was built for: produce an answer
// whose accuracy is quantified, either at a requested precision or by a
// hard time budget.

// SequentialOptions configures double sampling.
type SequentialOptions struct {
	// TargetRelErr is the desired relative half-width of the confidence
	// interval (e.g. 0.05 for ±5%). Required, > 0.
	TargetRelErr float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// PilotSize is the per-relation pilot sample size (default 100,
	// clamped to each relation's size).
	PilotSize int
	// MaxFraction caps the final per-relation sampling fraction
	// (default 1.0 = allow a census when needed).
	MaxFraction float64
	// Estimation options for both phases (variance method, groups...).
	Estimate Options
	// RNG drives the sample extensions. When nil, a deterministic
	// generator seeded with Seed is used, so two runs with the same Seed
	// and synopsis draw identical extensions.
	RNG *rand.Rand
	// Seed seeds the extension RNG when RNG is nil.
	Seed int64
}

// rng resolves the extension generator: the explicit RNG when set,
// otherwise a fresh deterministic generator from Seed.
func (o SequentialOptions) rng() *rand.Rand {
	if o.RNG != nil {
		return o.RNG
	}
	return sampling.Seeded(o.Seed)
}

// SequentialResult reports both phases of a double-sampling run.
type SequentialResult struct {
	// Pilot is the phase-one estimate from the pilot samples.
	Pilot Estimate
	// Final is the phase-two estimate from the enlarged samples.
	Final Estimate
	// SampleSizes is the final per-relation sample size.
	SampleSizes map[string]int
	// GrowthFactor is the sample enlargement factor φ chosen from the
	// pilot variance.
	GrowthFactor float64
	// TargetMet reports whether the final CI half-width is within the
	// target relative error of the final estimate.
	TargetMet bool
}

// SequentialCount runs double sampling: a pilot estimate determines the
// variance, the sample is grown to the size projected to achieve the target
// relative error at the requested confidence, and the estimate is
// recomputed. The synopsis must have been drawn from stored relations
// (AddDrawn / Draw) so its samples can be extended in place; on return the
// synopsis holds the enlarged samples.
//
// The projection assumes every variance component scales as 1/n_i when all
// sample sizes are scaled together — exact for the leading terms of the
// multilinear estimators used here — so the target is met up to the
// pilot-variance estimation noise; TargetMet reports the verdict from the
// final sample itself.
//
// Deprecated: use SequentialCountContext, which takes the RNG through
// SequentialOptions (RNG/Seed) so every estimation entry point shares the
// (expr, synopsis, options) shape. This wrapper forwards rng via opts.RNG
// and behaves identically.
func SequentialCount(e *algebra.Expr, syn *Synopsis, rng *rand.Rand, opts SequentialOptions) (SequentialResult, error) {
	opts.RNG = rng
	return SequentialCountContext(context.Background(), e, syn, opts)
}

// SequentialCountContext runs double sampling under a context: the context
// is polled before each phase (and, through the underlying estimator,
// between terms and replicates), and a cancelled run returns a non-nil
// error, never a partial result. The sample extensions draw from opts.RNG
// (or a generator seeded with opts.Seed when RNG is nil).
func SequentialCountContext(ctx context.Context, e *algebra.Expr, syn *Synopsis, opts SequentialOptions) (SequentialResult, error) {
	rng := opts.rng()
	if opts.TargetRelErr <= 0 {
		return SequentialResult{}, fmt.Errorf("estimator: sequential estimation requires TargetRelErr > 0")
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		opts.Confidence = 0.95
	}
	if opts.PilotSize <= 0 {
		opts.PilotSize = 100
	}
	if opts.MaxFraction <= 0 || opts.MaxFraction > 1 {
		opts.MaxFraction = 1
	}
	opts.Estimate.Confidence = opts.Confidence
	rec := obs.Or(opts.Estimate.Recorder)
	span := rec.Span(sSequential)
	defer span.End()

	poly, err := algebra.Normalize(e)
	if err != nil {
		return SequentialResult{}, err
	}
	rels := poly.RelationNames()

	// Phase one: make sure every relation has at least the pilot size.
	if err := ctxErr(ctx); err != nil {
		return SequentialResult{}, err
	}
	for _, rel := range rels {
		n, ok := syn.SampleSize(rel)
		if !ok {
			return SequentialResult{}, fmt.Errorf("estimator: no sample for %q in synopsis", rel)
		}
		N, _ := syn.PopulationSize(rel)
		want := opts.PilotSize
		if want > N {
			want = N
		}
		if n < want {
			if err := syn.ExtendSample(rel, want-n, rng); err != nil {
				return SequentialResult{}, err
			}
		}
	}
	pilot, err := countPoly(ctx, poly, syn, opts.Estimate)
	if err != nil {
		return SequentialResult{}, err
	}

	res := SequentialResult{Pilot: pilot, SampleSizes: map[string]int{}, GrowthFactor: 1}

	// Phase two: grow the samples so that z·σ ≤ e·|J|. With σ² ∝ 1/φ when
	// all sample sizes grow by φ: φ = (z·σ̂ / (e·|Ĵ|))².
	if err := ctxErr(ctx); err != nil {
		return SequentialResult{}, err
	}
	z := stats.NormalQuantile(1 - (1-opts.Confidence)/2)
	recordSeqPhase(rec, "pilot", z, pilot, rels, syn)
	//lint:ignore floateq division guard: a relative-error target is meaningless against an exactly-zero pilot estimate
	if pilot.StdErr > 0 && pilot.Value != 0 {
		phi := math.Pow(z*pilot.StdErr/(opts.TargetRelErr*math.Abs(pilot.Value)), 2)
		if phi > 1 {
			res.GrowthFactor = phi
			for _, rel := range rels {
				n, _ := syn.SampleSize(rel)
				N, _ := syn.PopulationSize(rel)
				target := growTarget(n, phi, opts.MaxFraction, N)
				if target > n {
					if err := syn.ExtendSample(rel, target-n, rng); err != nil {
						return SequentialResult{}, err
					}
				}
			}
		}
	}
	final, err := countPoly(ctx, poly, syn, opts.Estimate)
	if err != nil {
		return SequentialResult{}, err
	}
	res.Final = final
	for _, rel := range rels {
		n, _ := syn.SampleSize(rel)
		res.SampleSizes[rel] = n
	}
	recordSeqPhase(rec, "final", z, final, rels, syn)
	rec.Set(mSeqGrowth, res.GrowthFactor)
	// The stopping verdict needs an actual variance estimate: a run whose
	// variance method degraded to VarNone has StdErr 0 by construction, and
	// claiming the precision target met on that basis would be vacuous.
	//lint:ignore floateq division guard: the relative-error stopping rule is undefined at an exactly-zero estimate
	if final.Value != 0 && final.VarianceMethod != VarNone {
		res.TargetMet = z*final.StdErr <= opts.TargetRelErr*math.Abs(final.Value)*1.0000001
	}
	return res, nil
}

// growTarget is the phase-two sample-size target for one relation:
// ceil(n·φ) clamped to the MaxFraction cap and the population size. The
// clamping happens in float space BEFORE any int conversion: φ is a squared
// ratio with no upper bound, n·φ routinely exceeds the int range on noisy
// pilots, and Go's float→int conversion is implementation-defined out of
// range (it produced negative targets, silently skipping phase two).
func growTarget(n int, phi, maxFraction float64, N int) int {
	t := math.Ceil(float64(n) * phi)
	if lim := math.Floor(maxFraction * float64(N)); t > lim {
		t = lim
	}
	if t >= float64(N) {
		return N
	}
	if t < float64(n) {
		return n
	}
	return int(t)
}

// recordSeqPhase reports one double-sampling phase's CI half-width and
// per-relation sample sizes — the width-vs-n trajectory. Skipped entirely
// for a no-op recorder (label construction allocates).
func recordSeqPhase(rec obs.Recorder, phase string, z float64, est Estimate, rels []string, syn *Synopsis) {
	if !obs.Live(rec) {
		return
	}
	rec.Set(obs.L(mSeqHalfwidth, "phase", phase), z*est.StdErr)
	for _, rel := range rels {
		n, _ := syn.SampleSize(rel)
		rec.Set(obs.L(mSeqSampleRows, "phase", phase, "rel", rel), float64(n))
	}
}

// DeadlineOptions configures deadline-bounded estimation.
type DeadlineOptions struct {
	// Budget is the wall-clock budget for sampling + estimation.
	Budget time.Duration
	// InitialSize is the starting per-relation sample size (default 50).
	InitialSize int
	// Growth multiplies the sample sizes between rounds (default 2.0).
	Growth float64
	// Estimate configures each round's estimation.
	Estimate Options
	// RNG drives the sample extensions. When nil, a deterministic
	// generator seeded with Seed is used.
	RNG *rand.Rand
	// Seed seeds the extension RNG when RNG is nil.
	Seed int64
}

// rng resolves the extension generator (see SequentialOptions.rng).
func (o DeadlineOptions) rng() *rand.Rand {
	if o.RNG != nil {
		return o.RNG
	}
	return sampling.Seeded(o.Seed)
}

// DeadlineStep records one estimation round.
type DeadlineStep struct {
	SampleSizes map[string]int
	Estimate    Estimate
	Elapsed     time.Duration
}

// DeadlineCount grows the synopsis samples geometrically and re-estimates
// until the budget expires, returning the final (most precise) estimate and
// the per-round history. The answer available at the deadline is exactly
// what the CASE-DB use case demands: the best estimate the time allowed.
//
// Deprecated: use DeadlineCountContext, which takes the RNG through
// DeadlineOptions (RNG/Seed) so every estimation entry point shares the
// (expr, synopsis, options) shape. This wrapper forwards rng via opts.RNG
// and behaves identically.
func DeadlineCount(e *algebra.Expr, syn *Synopsis, rng *rand.Rand, opts DeadlineOptions) (Estimate, []DeadlineStep, error) {
	opts.RNG = rng
	return DeadlineCountContext(context.Background(), e, syn, opts)
}

// DeadlineCountContext is deadline-bounded estimation under a context.
// Budget expiry is the normal way out — the round running at the deadline
// completes and its estimate is returned with a nil error — but context
// cancellation aborts: it is polled before every sampling round (and,
// through the estimator, between terms), and a cancelled run returns a
// non-nil error with no partial estimate. Callers serving a network
// request therefore map the request's deadline to Budget (the answer the
// time allows) and the request's cancellation to ctx (the caller is gone;
// stop working).
func DeadlineCountContext(ctx context.Context, e *algebra.Expr, syn *Synopsis, opts DeadlineOptions) (Estimate, []DeadlineStep, error) {
	rng := opts.rng()
	if opts.Budget <= 0 {
		return Estimate{}, nil, fmt.Errorf("estimator: deadline estimation requires a positive budget")
	}
	if opts.InitialSize <= 0 {
		opts.InitialSize = 50
	}
	if opts.Growth <= 1 {
		opts.Growth = 2
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		return Estimate{}, nil, err
	}
	rels := poly.RelationNames()
	rec := obs.Or(opts.Estimate.Recorder)
	start := time.Now()
	deadline := start.Add(opts.Budget)

	var history []DeadlineStep
	target := opts.InitialSize
	maxN := 0
	for {
		if err := ctxErr(ctx); err != nil {
			return Estimate{}, nil, err
		}
		rspan := rec.Span(sDeadlineRound)
		exhausted := true
		for _, rel := range rels {
			n, ok := syn.SampleSize(rel)
			if !ok {
				return Estimate{}, nil, fmt.Errorf("estimator: no sample for %q in synopsis", rel)
			}
			N, _ := syn.PopulationSize(rel)
			if N > maxN {
				maxN = N
			}
			want := target
			if want > N {
				want = N
			}
			if n < want {
				if err := syn.ExtendSample(rel, want-n, rng); err != nil {
					return Estimate{}, nil, err
				}
			}
			if n, _ := syn.SampleSize(rel); n < N {
				exhausted = false
			}
		}
		est, err := countPoly(ctx, poly, syn, opts.Estimate)
		if err != nil {
			return Estimate{}, nil, err
		}
		sizes := map[string]int{}
		for _, rel := range rels {
			n, _ := syn.SampleSize(rel)
			sizes[rel] = n
		}
		history = append(history, DeadlineStep{
			SampleSizes: sizes,
			Estimate:    est,
			Elapsed:     time.Since(start),
		})
		rspan.End()
		rec.Add(mDeadlineRounds, 1)
		recordDeadlineRound(rec, len(history), est, rels, sizes)
		if exhausted || !time.Now().Before(deadline) {
			return est, history, nil
		}
		// Grow in float space and clamp to the largest population: the
		// geometric target can overflow int long before the deadline when
		// Growth is large, and an out-of-range float→int conversion is
		// implementation-defined (a negative target stalls growth forever).
		next := math.Ceil(float64(target) * opts.Growth)
		if next >= float64(maxN) {
			target = maxN
		} else {
			target = int(next)
		}
	}
}

// recordDeadlineRound reports one deadline round's CI half-width and sample
// sizes — the width-vs-n trajectory, labeled by 1-based round. Skipped for
// a no-op recorder (label construction allocates).
func recordDeadlineRound(rec obs.Recorder, round int, est Estimate, rels []string, sizes map[string]int) {
	if !obs.Live(rec) {
		return
	}
	r := strconv.Itoa(round)
	rec.Set(obs.L(mDeadHalfwidth, "round", r), (est.Hi-est.Lo)/2)
	for _, rel := range rels {
		rec.Set(obs.L(mDeadSampleRows, "round", r, "rel", rel), float64(sizes[rel]))
	}
}
