package estimator

import (
	"sort"

	"relest/internal/relation"
	"relest/internal/sketch"
)

// The sketch tier: per-relation, per-column AGMS sketches plus KMV
// distinct summaries, summarizing the FULL relation (not the sample).
// They are the cheap first tier the planner consults before touching the
// counting-polynomial machinery — a two-relation equi-join or self-join
// term is answered from 2·Groups·GroupSize counters in microseconds,
// escalating to the sample tier only when the sketch CI is too wide or
// the term's shape is out of the sketch's reach (see tier.go).
//
// All sketches share one fixed Config: equal configs mean equal ξ streams,
// which is what makes any column sketch joinable with any other. The
// construction consumes no randomness from the estimation RNGs (the ξ
// streams derive from the fixed Config.Seed), so building or carrying
// sketches never perturbs sample-tier estimates — bit-identity of the
// legacy paths is preserved by construction.

// sketchConfig shapes every column sketch in the tier: hashed ("fast
// AGMS") layout, 9 median groups of 512 buckets each. A stream update
// touches 9 counters regardless of width, while the 512-bucket rows hold
// the relative standard error of mid-size equi-joins to a few percent —
// tight enough that the default 10% precision target is met without
// escalating. The cost is 4608 counters (36 KiB) per column.
var sketchConfig = sketch.Config{Groups: 9, GroupSize: 512, Hashed: true, Seed: 1988}

// sketchDistinctK is the KMV capacity of the per-column distinct
// summaries.
const sketchDistinctK = 256

// relSketches is the sketch tier of one relation: one AGMS sketch and one
// KMV distinct summary per schema column. Attached to a Synopsis they are
// immutable (shared freely across Clone); inside an Incremental they are
// updated in place on every stream event.
type relSketches struct {
	cols     []*sketch.Sketch
	distinct []*sketch.Distinct
}

// newRelSketches creates empty sketches for an nCols-column relation.
func newRelSketches(nCols int) *relSketches {
	rk := &relSketches{
		cols:     make([]*sketch.Sketch, nCols),
		distinct: make([]*sketch.Distinct, nCols),
	}
	for c := range rk.cols {
		rk.cols[c] = sketch.New(sketchConfig)
		rk.distinct[c] = sketch.NewDistinct(sketchDistinctK, sketchConfig.Seed+int64(c))
	}
	return rk
}

// insert folds one tuple into every column sketch.
func (rk *relSketches) insert(t relation.Tuple) {
	for c, v := range t {
		h := v.Hash()
		rk.cols[c].Add(h)
		rk.distinct[c].Add(h)
	}
}

// remove folds one tuple deletion into every column sketch (AGMS sketches
// are exactly linear, so a remove undoes the matching insert atom for
// atom).
func (rk *relSketches) remove(t relation.Tuple) {
	for c, v := range t {
		h := v.Hash()
		rk.cols[c].Remove(h)
		rk.distinct[c].Remove(h)
	}
}

// bytes reports the tier's resident storage for this relation.
func (rk *relSketches) bytes() int {
	total := 0
	for c := range rk.cols {
		total += rk.cols[c].Bytes() + rk.distinct[c].Bytes()
	}
	return total
}

// clone returns a deep copy, decoupling a Snapshot from later stream
// updates.
func (rk *relSketches) clone() *relSketches {
	out := &relSketches{
		cols:     make([]*sketch.Sketch, len(rk.cols)),
		distinct: make([]*sketch.Distinct, len(rk.distinct)),
	}
	for c := range rk.cols {
		out.cols[c] = rk.cols[c].Clone()
		out.distinct[c] = rk.distinct[c].Clone()
	}
	return out
}

// buildRelSketches scans a stored base relation into a fresh sketch set.
func buildRelSketches(base *relation.Relation) *relSketches {
	rk := newRelSketches(base.Schema().Len())
	for c := 0; c < base.Schema().Len(); c++ {
		sk, d := rk.cols[c], rk.distinct[c]
		for i := 0; i < base.Len(); i++ {
			h := base.Value(i, c).Hash()
			sk.Add(h)
			d.Add(h)
		}
	}
	return rk
}

// EnsureSketches builds the sketch tier for every relation of the
// synopsis that retains its base relation (AddDrawn / AddDrawnPages /
// AddDrawnStratified), scanning the full base once per relation. It is
// idempotent and safe under concurrent callers, so servers can share one
// synopsis across tiered requests. Relations registered through AddSample
// carry no base (the population was never seen), get no sketches, and
// have their terms escalate to the sample tier — unless sketches were
// transplanted by Incremental.Snapshot, which maintains them on the
// stream itself.
func (s *Synopsis) EnsureSketches() {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	if s.sketches == nil {
		s.sketches = make(map[string]*relSketches)
	}
	for name, rs := range s.rels {
		if _, done := s.sketches[name]; done {
			continue
		}
		if rs.base == nil {
			continue
		}
		s.sketches[name] = buildRelSketches(rs.base)
	}
}

// attachSketches transplants a prebuilt sketch set (Incremental.Snapshot).
// The set must not be mutated afterwards.
func (s *Synopsis) attachSketches(name string, rk *relSketches) {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	if s.sketches == nil {
		s.sketches = make(map[string]*relSketches)
	}
	s.sketches[name] = rk
}

// relSketch returns the named relation's sketch set, or nil.
func (s *Synopsis) relSketch(name string) *relSketches {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	return s.sketches[name]
}

// cloneSketchRefs shares the (immutable) built sketches with a clone.
func (s *Synopsis) cloneSketchRefs(out *Synopsis) {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	if s.sketches == nil {
		return
	}
	out.sketches = make(map[string]*relSketches, len(s.sketches))
	for name, rk := range s.sketches {
		out.sketches[name] = rk
	}
}

// SketchBytes reports the resident storage of the synopsis's sketch tier
// (zero before EnsureSketches).
func (s *Synopsis) SketchBytes() int {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	total := 0
	for _, rk := range s.sketches {
		total += rk.bytes()
	}
	return total
}

// HasSketches reports whether the named relation carries a sketch tier.
func (s *Synopsis) HasSketches(name string) bool { return s.relSketch(name) != nil }

// SketchDistinct returns the KMV distinct-count estimate for one column
// of a sketched relation (false when the relation has no sketch tier or
// the column does not exist). This is the summary the CEG-style planners
// consult for join-key frequency reasoning; the count estimators proper
// keep using the sample-based Goodman family.
func (s *Synopsis) SketchDistinct(rel, col string) (float64, bool) {
	rk := s.relSketch(rel)
	rs, ok := s.rels[rel]
	if rk == nil || !ok {
		return 0, false
	}
	pos := rs.sample.Schema().ColumnIndex(col)
	if pos < 0 || pos >= len(rk.distinct) {
		return 0, false
	}
	//lint:ignore detflow Distinct.Estimate reduces its tracked set with an order-independent max, so the value is deterministic
	return rk.distinct[pos].Estimate(), true
}

// SketchedRelations returns the sorted names of relations carrying a
// sketch tier.
func (s *Synopsis) SketchedRelations() []string {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	out := make([]string, 0, len(s.sketches))
	for name := range s.sketches {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
