package estimator

import (
	"fmt"
	"sort"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

// Group-by estimation: COUNT(*) GROUP BY col over a π-free expression,
// from the same synopsis. Each group's count is a restricted COUNT(E) (the
// indicator additionally matches the group value), so the per-group
// estimates inherit the COUNT estimator's exact unbiasedness.
//
// The caveat is coverage, not bias: a group none of whose contributing
// tuples were sampled produces no output row at all, so small groups are
// systematically missing from the result — the classical limitation of
// sampling for group-by queries. Callers needing group *presence*
// guarantees want a census of the grouping column (cheap for
// low-cardinality columns), not a sample.

// GroupEstimate is one group's estimated count.
type GroupEstimate struct {
	// Value is the group's value of the grouping column.
	Value relation.Value
	// Count is the unbiased estimate of the group's row count.
	Count float64
}

// GroupCount estimates COUNT(*) GROUP BY col over the π-free expression e.
// Results are sorted by descending estimated count (ties by value order)
// and include only groups observed in the sample.
func GroupCount(e *algebra.Expr, col string, syn *Synopsis) ([]GroupEstimate, error) {
	pos := e.Schema().ColumnIndex(col)
	if pos < 0 {
		return nil, fmt.Errorf("estimator: no column %q in expression schema %s", col, e.Schema())
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		return nil, err
	}
	if err := checkSampleSizes(poly, syn); err != nil {
		return nil, err
	}
	acc := map[string]*GroupEstimate{}
	for i := range poly.Terms {
		t := &poly.Terms[i]
		if err := accumulateGroups(t, syn, pos, acc); err != nil {
			return nil, err
		}
	}
	out := make([]GroupEstimate, 0, len(acc))
	for _, g := range acc {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	return out, nil
}

// accumulateGroups adds one term's weighted per-group contributions.
func accumulateGroups(t *algebra.Term, syn *Synopsis, pos int, acc map[string]*GroupEstimate) error {
	if pos >= len(t.Out) {
		return fmt.Errorf("estimator: output column %d outside term mapping of width %d", pos, len(t.Out))
	}
	ref := t.Out[pos]
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return err
	}
	byRel := map[string][]int{}
	for i, o := range t.Occs {
		byRel[o.RelName] = append(byRel[o.RelName], i)
	}
	type relMeta struct {
		occs []int
		N, n int
	}
	metas := make([]relMeta, 0, len(byRel))
	uniform := true
	for rel, occs := range byRel {
		rs := syn.rels[rel]
		if rs.m == 0 {
			if rs.N == 0 {
				return nil
			}
			return fmt.Errorf("estimator: empty sample for non-empty relation %q", rel)
		}
		if !rs.uniformWeights() {
			uniform = false
		}
		metas = append(metas, relMeta{occs: occs, N: rs.N, n: rs.n})
	}
	weightOf := make([]func(int) float64, len(t.Occs))
	for i, o := range t.Occs {
		weightOf[i] = syn.rels[o.RelName].rowWeightFn()
	}
	coef := float64(t.Coef)
	distinct := make(map[int]struct{}, 4)
	add := func(v relation.Value, w float64) {
		k := relation.Tuple{v}.Key(nil)
		g, ok := acc[k]
		if !ok {
			g = &GroupEstimate{Value: v}
			acc[k] = g
		}
		g.Count += coef * w
	}
	return t.EnumerateAssignments(inst, func(rows []int) bool {
		v := inst[ref.Occ].Tuple(rows[ref.Occ])[ref.Col]
		w := 1.0
		if uniform {
			for _, m := range metas {
				if len(m.occs) == 1 {
					w *= float64(m.N) / float64(m.n)
					continue
				}
				for k := range distinct {
					delete(distinct, k)
				}
				for _, oi := range m.occs {
					distinct[rows[oi]] = struct{}{}
				}
				w *= stats.FallingFactorialRatio(m.N, m.n, len(distinct))
			}
		} else {
			// Non-uniform designs: Horvitz–Thompson per-row weights
			// (repeated relations already rejected by checkSampleSizes).
			for i, row := range rows {
				w *= weightOf[i](row)
			}
		}
		add(v, w)
		return true
	})
}
