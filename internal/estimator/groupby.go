package estimator

import (
	"fmt"
	"sort"

	"relest/internal/algebra"
	"relest/internal/parallel"
	"relest/internal/relation"
	"relest/internal/stats"
)

// Group-by estimation: COUNT(*) GROUP BY col over a π-free expression,
// from the same synopsis. Each group's count is a restricted COUNT(E) (the
// indicator additionally matches the group value), so the per-group
// estimates inherit the COUNT estimator's exact unbiasedness.
//
// The caveat is coverage, not bias: a group none of whose contributing
// tuples were sampled produces no output row at all, so small groups are
// systematically missing from the result — the classical limitation of
// sampling for group-by queries. Callers needing group *presence*
// guarantees want a census of the grouping column (cheap for
// low-cardinality columns), not a sample.

// GroupEstimate is one group's estimated count.
type GroupEstimate struct {
	// Value is the group's value of the grouping column.
	Value relation.Value
	// Count is the unbiased estimate of the group's row count.
	Count float64
}

// GroupCount estimates COUNT(*) GROUP BY col over the π-free expression e.
// Results are sorted by descending estimated count (ties by value order)
// and include only groups observed in the sample.
func GroupCount(e *algebra.Expr, col string, syn *Synopsis) ([]GroupEstimate, error) {
	pos := e.Schema().ColumnIndex(col)
	if pos < 0 {
		return nil, fmt.Errorf("estimator: no column %q in expression schema %s", col, e.Schema())
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		return nil, err
	}
	if err := checkSampleSizes(poly, syn); err != nil {
		return nil, err
	}
	// Terms (or, for a single term, its plan partitions) fan out across
	// workers; per-term group maps merge in term order so the counts are
	// identical for every worker count.
	eng := newEngine(nil, Options{})
	termAccs := make([]map[string]*GroupEstimate, len(poly.Terms))
	outer, inner := splitWorkers(len(poly.Terms), eng.workers)
	err = parallel.ForErr(len(poly.Terms), outer, func(i int) error {
		termAccs[i] = map[string]*GroupEstimate{}
		return accumulateGroups(&poly.Terms[i], syn, pos, eng, inner, termAccs[i])
	})
	if err != nil {
		return nil, err
	}
	acc := map[string]*GroupEstimate{}
	for _, ta := range termAccs {
		mergeGroups(acc, ta)
	}
	out := make([]GroupEstimate, 0, len(acc))
	for _, k := range sortedGroupKeys(acc) {
		out = append(out, *acc[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count > out[j].Count {
			return true
		}
		if out[i].Count < out[j].Count {
			return false
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	return out, nil
}

// mergeGroups folds src into dst by group key, iterating src's keys in
// sorted order so each dst.Count accumulates in a reproducible sequence
// regardless of map layout (the maprange-float determinism contract).
func mergeGroups(dst, src map[string]*GroupEstimate) {
	for _, k := range sortedGroupKeys(src) {
		g := src[k]
		d, ok := dst[k]
		if !ok {
			dst[k] = g
			continue
		}
		d.Count += g.Count
	}
}

// sortedGroupKeys returns m's keys in sorted order.
func sortedGroupKeys(m map[string]*GroupEstimate) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// accumulateGroups adds one term's weighted per-group contributions,
// partitioning the enumeration across up to `workers` goroutines with
// per-part group maps merged in part order.
func accumulateGroups(t *algebra.Term, syn *Synopsis, pos int, eng *engine, workers int, acc map[string]*GroupEstimate) error {
	if pos >= len(t.Out) {
		return fmt.Errorf("estimator: output column %d outside term mapping of width %d", pos, len(t.Out))
	}
	ref := t.Out[pos]
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return err
	}
	metas, err := termRelMetas(t, syn)
	if err != nil {
		return err
	}
	if ok, err := checkTermSamples(metas); !ok {
		return err
	}
	uniform := true
	for _, m := range metas {
		if !m.rs.uniformWeights() {
			uniform = false
		}
	}
	weightOf := make([]func(int) float64, len(t.Occs))
	for i, o := range t.Occs {
		weightOf[i] = syn.rels[o.RelName].rowWeightFn()
	}
	pt, err := eng.prepare(t, inst)
	if err != nil {
		return err
	}
	coef := float64(t.Coef)
	parts := pt.Parts()
	partAccs := make([]map[string]*GroupEstimate, parts)
	parallel.For(parts, workers, func(part int) {
		local := map[string]*GroupEstimate{}
		distinct := make(map[int]struct{}, 4)
		pt.EnumeratePart(part, parts, func(rows []int) bool {
			v := inst[ref.Occ].Value(rows[ref.Occ], ref.Col)
			w := 1.0
			if uniform {
				for _, m := range metas {
					if len(m.occs) == 1 {
						w *= float64(m.rs.N) / float64(m.rs.n)
						continue
					}
					for k := range distinct {
						delete(distinct, k)
					}
					for _, oi := range m.occs {
						distinct[rows[oi]] = struct{}{}
					}
					w *= stats.FallingFactorialRatio(m.rs.N, m.rs.n, len(distinct))
				}
			} else {
				// Non-uniform designs: Horvitz–Thompson per-row weights
				// (repeated relations already rejected by checkSampleSizes).
				for i, row := range rows {
					w *= weightOf[i](row)
				}
			}
			k := relation.Tuple{v}.Key(nil)
			g, ok := local[k]
			if !ok {
				g = &GroupEstimate{Value: v}
				local[k] = g
			}
			g.Count += coef * w
			return true
		})
		partAccs[part] = local
	})
	for _, pa := range partAccs {
		mergeGroups(acc, pa)
	}
	return nil
}
