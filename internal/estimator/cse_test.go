package estimator

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/obs"
	"relest/internal/relation"
)

// cseOverlapFixture builds a synopsis and a 3-way union of joins differing
// only in the selection on T,
//
//	(R ⋈ S ⋈ σ_p1 T) ∪ (R ⋈ S ⋈ σ_p2 T) ∪ (R ⋈ S ⋈ σ_p3 T),
//
// with sample sizes arranged so each main term's plan enumerates R, S, T in
// that order — the shape whose [R, S] prefix the CSE layer shares across
// the three terms.
func cseOverlapFixture(t *testing.T) (*algebra.Expr, *Synopsis) {
	t.Helper()
	rows := func(n int, f func(i int) []int64) [][]int64 {
		out := make([][]int64, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	r := intRelation("R", []string{"a", "b"}, rows(60, func(i int) []int64 {
		return []int64{int64(i % 10), int64(i % 24)}
	}))
	s := intRelation("S", []string{"a", "c"}, rows(150, func(i int) []int64 {
		return []int64{int64(i % 10), int64(i)}
	}))
	tt := intRelation("T", []string{"b", "x"}, rows(400, func(i int) []int64 {
		return []int64{int64(i % 24), int64(i % 90)}
	}))
	syn := NewSynopsis()
	rng := testRand(11)
	if err := syn.AddDrawn(r, 40, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 90, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(tt, 260, rng); err != nil {
		t.Fatal(err)
	}
	term := func(lo, hi int64) *algebra.Expr {
		rs := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
			[]algebra.On{{Left: "a", Right: "a"}}, nil, "s_"))
		sel := algebra.Must(algebra.Select(algebra.BaseOf(tt), algebra.And{
			algebra.Cmp{Col: "x", Op: algebra.GE, Val: relation.Int(lo)},
			algebra.Cmp{Col: "x", Op: algebra.LT, Val: relation.Int(hi)},
		}))
		return algebra.Must(algebra.Join(rs, sel, []algebra.On{{Left: "b", Right: "b"}}, nil, "t_"))
	}
	e := algebra.Must(algebra.Union(algebra.Must(algebra.Union(term(0, 30), term(30, 60))), term(60, 90)))
	return e, syn
}

// TestEstimateCSEBitIdentity is the tentpole's hard oracle at the
// estimator level: for workers ∈ {1, 4} and CSE on/off, the estimate —
// value and variance — is bit-identical, and the CSE-on run actually
// shares subplans (asserted through the metric, so the equality is not
// vacuous).
func TestEstimateCSEBitIdentity(t *testing.T) {
	e, syn := cseOverlapFixture(t)
	type cfg struct {
		workers int
		disable bool
	}
	var ref Estimate
	first := true
	for _, c := range []cfg{{1, false}, {1, true}, {4, false}, {4, true}} {
		rec := obs.NewCollector()
		est, err := CountWithOptions(e, syn, Options{
			Variance:   VarSplitSample,
			Seed:       5,
			Workers:    c.workers,
			DisableCSE: c.disable,
			Recorder:   rec,
		})
		if err != nil {
			t.Fatalf("workers=%d cse=%v: %v", c.workers, !c.disable, err)
		}
		sharedMetric := rec.Metrics().Counter(obs.MetricCSESubplansShared).Value()
		if c.disable && sharedMetric != 0 {
			t.Errorf("workers=%d: DisableCSE run still shared %v subplans", c.workers, sharedMetric)
		}
		if !c.disable && sharedMetric < 2 {
			t.Errorf("workers=%d: CSE run shared %v subplans, want >= 2 (three terms share R⋈S)",
				c.workers, sharedMetric)
		}
		if first {
			ref, first = est, false
			if est.Value <= 0 {
				t.Fatalf("degenerate fixture: estimate %v", est.Value)
			}
			continue
		}
		if math.Float64bits(est.Value) != math.Float64bits(ref.Value) {
			t.Errorf("workers=%d cse=%v: value %v != reference %v", c.workers, !c.disable, est.Value, ref.Value)
		}
		if math.Float64bits(est.Variance) != math.Float64bits(ref.Variance) {
			t.Errorf("workers=%d cse=%v: variance %v != reference %v", c.workers, !c.disable, est.Variance, ref.Variance)
		}
		if est.Lo != ref.Lo || est.Hi != ref.Hi {
			t.Errorf("workers=%d cse=%v: CI [%v, %v] != reference [%v, %v]",
				c.workers, !c.disable, est.Lo, est.Hi, ref.Lo, ref.Hi)
		}
	}
}

// TestSumCSEBitIdentity runs the same matrix over the SUM estimator, whose
// enumeration path (EnumeratePart) replays shared tables.
func TestSumCSEBitIdentity(t *testing.T) {
	e, syn := cseOverlapFixture(t)
	var ref Estimate
	first := true
	for _, workers := range []int{1, 4} {
		for _, disable := range []bool{false, true} {
			est, err := SumWithOptions(e, "c", syn, Options{
				Seed:       5,
				Workers:    workers,
				DisableCSE: disable,
			})
			if err != nil {
				t.Fatalf("workers=%d cse=%v: %v", workers, !disable, err)
			}
			if first {
				ref, first = est, false
				continue
			}
			if math.Float64bits(est.Value) != math.Float64bits(ref.Value) {
				t.Errorf("workers=%d cse=%v: sum %v != reference %v", workers, !disable, est.Value, ref.Value)
			}
			if math.Float64bits(est.Variance) != math.Float64bits(ref.Variance) {
				t.Errorf("workers=%d cse=%v: variance %v != reference %v", workers, !disable, est.Variance, ref.Variance)
			}
		}
	}
}
