package estimator

import (
	"fmt"
	"math"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

// Aggregate estimation beyond COUNT — the extension the authors published
// as the TODS 1991 follow-up ("Statistical estimators for aggregate
// relational algebra queries"). SUM over a numeric output column of a
// π-free expression is a weighted count:
//
//	SUM_col(E) = Σ_{assignments satisfying E} value(col),
//
// so the same counting-polynomial machinery applies with each satisfying
// assignment contributing its column value times the sampling weight. The
// estimator inherits COUNT's unbiasedness (including the repeated-relation
// pattern weights). AVG = SUM/COUNT is a ratio of two unbiased estimators
// — itself biased O(1/n) but consistent, as is standard for ratio
// estimators.

// Sum estimates SUM(col) over the result of the π-free expression e from
// the synopsis, with default options.
func Sum(e *algebra.Expr, col string, syn *Synopsis) (Estimate, error) {
	return SumWithOptions(e, col, syn, Options{})
}

// SumWithOptions estimates SUM(col) over e's result. The column must be a
// numeric column of e's output schema; null values contribute zero (SQL
// SUM semantics over non-null values).
func SumWithOptions(e *algebra.Expr, col string, syn *Synopsis, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	pos := e.Schema().ColumnIndex(col)
	if pos < 0 {
		return Estimate{}, fmt.Errorf("estimator: no column %q in expression schema %s", col, e.Schema())
	}
	switch k := e.Schema().Column(pos).Kind; k {
	case relation.KindInt, relation.KindFloat:
	default:
		return Estimate{}, fmt.Errorf("estimator: SUM over non-numeric column %q (%s)", col, k)
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		return Estimate{}, err
	}
	if err := checkSampleSizes(poly, syn); err != nil {
		return Estimate{}, err
	}
	value, err := sumEstimate(poly, syn, pos)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{
		Value:      value,
		Variance:   math.NaN(),
		Confidence: opts.Confidence,
		Terms:      poly.NumTerms(),
	}
	// Variance: replication methods re-run the whole sum estimator; the
	// COUNT closed forms do not carry over to weighted counts, so VarAuto
	// and VarAnalytic degrade to split-sample here.
	method := opts.Variance
	if method == VarAnalytic || method == VarAuto {
		method = VarSplitSample
	}
	if method != VarNone {
		v, err := replicateVariance(method, poly, syn, opts, func(sub *Synopsis) (float64, error) {
			return sumEstimate(poly, sub, pos)
		})
		if err != nil {
			if opts.Variance == VarSplitSample || opts.Variance == VarJackknife {
				return Estimate{}, err
			}
			method = VarNone // auto: fall back to point-only
		} else {
			est.Variance = v
			est.StdErr = math.Sqrt(math.Max(v, 0))
			var z float64
			switch opts.CI {
			case CIChebyshev:
				z = stats.ChebyshevZ(1 - opts.Confidence)
			default:
				z = stats.NormalQuantile(1 - (1-opts.Confidence)/2)
			}
			est.Lo = value - z*est.StdErr
			est.Hi = value + z*est.StdErr
		}
	}
	est.VarianceMethod = method
	return est, nil
}

// AvgResult is the ratio estimate AVG = SUM/COUNT with its components.
type AvgResult struct {
	// Avg is the ratio estimate (NaN when the count estimate is 0).
	Avg float64
	// Sum and Count are the underlying unbiased estimates.
	Sum, Count Estimate
}

// Avg estimates AVG(col) over e's result as the ratio of the SUM and COUNT
// estimators — biased O(1/n) but consistent (the classical ratio
// estimator).
func Avg(e *algebra.Expr, col string, syn *Synopsis, opts Options) (AvgResult, error) {
	sum, err := SumWithOptions(e, col, syn, opts)
	if err != nil {
		return AvgResult{}, err
	}
	cnt, err := CountWithOptions(e, syn, opts)
	if err != nil {
		return AvgResult{}, err
	}
	out := AvgResult{Sum: sum, Count: cnt, Avg: math.NaN()}
	if cnt.Value != 0 {
		out.Avg = sum.Value / cnt.Value
	}
	return out, nil
}

// sumEstimate evaluates the weighted-count estimator: like pointEstimate,
// with each satisfying assignment contributing the value of the output
// column at position pos.
func sumEstimate(poly algebra.Polynomial, syn *Synopsis, pos int) (float64, error) {
	total := 0.0
	for i := range poly.Terms {
		t := &poly.Terms[i]
		v, err := estimateTermSum(t, syn, pos)
		if err != nil {
			return 0, err
		}
		total += float64(t.Coef) * v
	}
	return total, nil
}

// estimateTermSum is estimateTerm with per-assignment column values. The
// output column position maps to an occurrence column through the term's
// Out mapping.
func estimateTermSum(t *algebra.Term, syn *Synopsis, pos int) (float64, error) {
	if pos >= len(t.Out) {
		return 0, fmt.Errorf("estimator: output column %d outside term mapping of width %d", pos, len(t.Out))
	}
	ref := t.Out[pos]
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return 0, err
	}
	byRel := map[string][]int{}
	for i, o := range t.Occs {
		byRel[o.RelName] = append(byRel[o.RelName], i)
	}
	type relMeta struct {
		occs  []int
		N, n  int
		scale float64
	}
	metas := make([]relMeta, 0, len(byRel))
	uniform := true
	for rel, occs := range byRel {
		rs := syn.rels[rel]
		if rs.m == 0 {
			if rs.N == 0 {
				return 0, nil
			}
			return 0, fmt.Errorf("estimator: empty sample for non-empty relation %q", rel)
		}
		if !rs.uniformWeights() {
			uniform = false
		}
		metas = append(metas, relMeta{occs: occs, N: rs.N, n: rs.n, scale: rs.scale()})
	}
	if !uniform {
		// Non-uniform (stratified) weights: Horvitz–Thompson weighting per
		// row; checkSampleSizes has already ruled out repeated relations.
		weightOf := make([]func(int) float64, len(t.Occs))
		for i, o := range t.Occs {
			weightOf[i] = syn.rels[o.RelName].rowWeightFn()
		}
		total := 0.0
		err = t.EnumerateAssignments(inst, func(rows []int) bool {
			val := inst[ref.Occ].Tuple(rows[ref.Occ])[ref.Col]
			if val.IsNull() {
				return true
			}
			w := 1.0
			for i, row := range rows {
				w *= weightOf[i](row)
			}
			total += w * val.Float64()
			return true
		})
		if err != nil {
			return 0, err
		}
		return total, nil
	}
	total := 0.0
	distinct := make(map[int]struct{}, 4)
	err = t.EnumerateAssignments(inst, func(rows []int) bool {
		val := inst[ref.Occ].Tuple(rows[ref.Occ])[ref.Col]
		if val.IsNull() {
			return true
		}
		w := 1.0
		for _, m := range metas {
			if len(m.occs) == 1 {
				w *= m.scale
				continue
			}
			for k := range distinct {
				delete(distinct, k)
			}
			for _, oi := range m.occs {
				distinct[rows[oi]] = struct{}{}
			}
			w *= stats.FallingFactorialRatio(m.N, m.n, len(distinct))
		}
		total += w * val.Float64()
		return true
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// replicateVariance runs a replication-based variance method with an
// arbitrary re-estimation function (shared by SUM and the page-sampling
// estimators).
func replicateVariance(method VarianceMethod, poly algebra.Polynomial, syn *Synopsis, opts Options, estimate func(*Synopsis) (float64, error)) (float64, error) {
	switch method {
	case VarSplitSample:
		return splitSampleVarianceFn(poly, syn, opts, estimate)
	case VarJackknife:
		return jackknifeVarianceFn(poly, syn, estimate)
	default:
		return 0, fmt.Errorf("estimator: replicateVariance does not support %v", method)
	}
}
