package estimator

import (
	"context"
	"fmt"
	"math"

	"relest/internal/algebra"
	"relest/internal/parallel"
	"relest/internal/relation"
	"relest/internal/stats"
)

// Aggregate estimation beyond COUNT — the extension the authors published
// as the TODS 1991 follow-up ("Statistical estimators for aggregate
// relational algebra queries"). SUM over a numeric output column of a
// π-free expression is a weighted count:
//
//	SUM_col(E) = Σ_{assignments satisfying E} value(col),
//
// so the same counting-polynomial machinery applies with each satisfying
// assignment contributing its column value times the sampling weight. The
// estimator inherits COUNT's unbiasedness (including the repeated-relation
// pattern weights). AVG = SUM/COUNT is a ratio of two unbiased estimators
// — itself biased O(1/n) but consistent, as is standard for ratio
// estimators.

// Sum estimates SUM(col) over the result of the π-free expression e from
// the synopsis, with default options.
func Sum(e *algebra.Expr, col string, syn *Synopsis) (Estimate, error) {
	return SumWithOptions(e, col, syn, Options{})
}

// SumWithOptions estimates SUM(col) over e's result. The column must be a
// numeric column of e's output schema; null values contribute zero (SQL
// SUM semantics over non-null values).
func SumWithOptions(e *algebra.Expr, col string, syn *Synopsis, opts Options) (Estimate, error) {
	return SumContext(context.Background(), e, col, syn, opts)
}

// SumContext is SumWithOptions with cancellation, under the same contract
// as CountContext: the context is polled between terms and between
// variance replicates, cancellation yields a non-nil error and no partial
// estimate, and a never-cancelled context changes nothing.
func SumContext(ctx context.Context, e *algebra.Expr, col string, syn *Synopsis, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	pos := e.Schema().ColumnIndex(col)
	if pos < 0 {
		return Estimate{}, fmt.Errorf("estimator: no column %q in expression schema %s", col, e.Schema())
	}
	switch k := e.Schema().Column(pos).Kind; k {
	case relation.KindInt, relation.KindFloat:
	default:
		return Estimate{}, fmt.Errorf("estimator: SUM over non-numeric column %q (%s)", col, k)
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		return Estimate{}, err
	}
	if err := checkSampleSizes(poly, syn); err != nil {
		return Estimate{}, err
	}
	eng := newEngine(ctx, opts)
	eng.span = eng.rec.Span(sEstimate)
	defer eng.span.End()
	recordSynopsis(eng.rec, poly, syn)
	eng.attachCSE(poly, syn)
	value, err := sumEstimate(poly, syn, pos, eng)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{
		Value:      value,
		Variance:   math.NaN(),
		Confidence: opts.Confidence,
		Terms:      poly.NumTerms(),
	}
	// Variance: replication methods re-run the whole sum estimator; the
	// COUNT closed forms do not carry over to weighted counts, so VarAuto
	// and VarAnalytic degrade to split-sample here.
	method := opts.Variance
	if method == VarAnalytic || method == VarAuto {
		method = VarSplitSample
	}
	if method != VarNone {
		vspan := eng.span.Child(sVariance)
		v, err := replicateVariance(method, poly, syn, opts, eng, func(sub *Synopsis, sube *engine) (float64, error) {
			return sumEstimate(poly, sub, pos, sube)
		}, sumContrib(pos))
		vspan.End()
		if err != nil {
			if opts.Variance == VarSplitSample || opts.Variance == VarJackknife {
				return Estimate{}, err
			}
			method = VarNone // auto: fall back to point-only
		} else {
			est.Variance = v
			est.StdErr = math.Sqrt(math.Max(v, 0))
			var z float64
			switch opts.CI {
			case CIChebyshev:
				z = stats.ChebyshevZ(1 - opts.Confidence)
			default:
				z = stats.NormalQuantile(1 - (1-opts.Confidence)/2)
			}
			est.Lo = value - z*est.StdErr
			est.Hi = value + z*est.StdErr
		}
	}
	eng.rec.Add(varianceMethodMetric(method), 1)
	est.VarianceMethod = method
	return est, nil
}

// AvgResult is the ratio estimate AVG = SUM/COUNT with its components.
type AvgResult struct {
	// Avg is the ratio estimate (NaN when the count estimate is 0).
	Avg float64
	// Sum and Count are the underlying unbiased estimates.
	Sum, Count Estimate
}

// Avg estimates AVG(col) over e's result as the ratio of the SUM and COUNT
// estimators — biased O(1/n) but consistent (the classical ratio
// estimator).
func Avg(e *algebra.Expr, col string, syn *Synopsis, opts Options) (AvgResult, error) {
	return AvgContext(context.Background(), e, col, syn, opts)
}

// AvgContext is Avg with cancellation, inherited from the underlying
// SumContext and CountContext calls.
func AvgContext(ctx context.Context, e *algebra.Expr, col string, syn *Synopsis, opts Options) (AvgResult, error) {
	sum, err := SumContext(ctx, e, col, syn, opts)
	if err != nil {
		return AvgResult{}, err
	}
	cnt, err := CountContext(ctx, e, syn, opts)
	if err != nil {
		return AvgResult{}, err
	}
	out := AvgResult{Sum: sum, Count: cnt, Avg: math.NaN()}
	//lint:ignore floateq division guard: only an exactly-zero count estimate leaves Avg undefined (NaN)
	if cnt.Value != 0 {
		out.Avg = sum.Value / cnt.Value
	}
	return out, nil
}

// sumEstimate evaluates the weighted-count estimator: like pointEstimate,
// with each satisfying assignment contributing the value of the output
// column at position pos.
func sumEstimate(poly algebra.Polynomial, syn *Synopsis, pos int, eng *engine) (float64, error) {
	vals := make([]float64, len(poly.Terms))
	outer, inner := splitWorkers(len(poly.Terms), eng.workers)
	err := parallel.ForErrRec(len(poly.Terms), outer, eng.rec, func(i int) error {
		if err := eng.cancelled(); err != nil {
			return err
		}
		ts := eng.span.Child(sTerm)
		v, err := estimateTermSum(&poly.Terms[i], syn, pos, eng, inner)
		ts.End()
		vals[i] = v
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := range vals {
		total += float64(poly.Terms[i].Coef) * vals[i]
	}
	return total, nil
}

// estimateTermSum is estimateTerm with per-assignment column values. The
// output column position maps to an occurrence column through the term's
// Out mapping.
func estimateTermSum(t *algebra.Term, syn *Synopsis, pos int, eng *engine, workers int) (float64, error) {
	if pos >= len(t.Out) {
		return 0, fmt.Errorf("estimator: output column %d outside term mapping of width %d", pos, len(t.Out))
	}
	ref := t.Out[pos]
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return 0, err
	}
	metas, err := termRelMetas(t, syn)
	if err != nil {
		return 0, err
	}
	if ok, err := checkTermSamples(metas); !ok {
		return 0, err
	}
	uniform := true
	for _, m := range metas {
		if !m.rs.uniformWeights() {
			uniform = false
		}
	}
	pt, err := eng.prepare(t, inst)
	if err != nil {
		return 0, err
	}
	if !uniform {
		// Non-uniform (stratified) weights: Horvitz–Thompson weighting per
		// row; checkSampleSizes has already ruled out repeated relations.
		weightOf := make([]func(int) float64, len(t.Occs))
		for i, o := range t.Occs {
			weightOf[i] = syn.rels[o.RelName].rowWeightFn()
		}
		return sumTerm(pt, workers, func() func(rows []int) float64 {
			return func(rows []int) float64 {
				val := inst[ref.Occ].Value(rows[ref.Occ], ref.Col)
				if val.IsNull() {
					return 0
				}
				w := 1.0
				for i, row := range rows {
					w *= weightOf[i](row)
				}
				return w * val.Float64()
			}
		}), nil
	}
	return sumTerm(pt, workers, func() func(rows []int) float64 {
		distinct := make(map[int]struct{}, 4)
		return func(rows []int) float64 {
			val := inst[ref.Occ].Value(rows[ref.Occ], ref.Col)
			if val.IsNull() {
				return 0
			}
			w := 1.0
			for _, m := range metas {
				if len(m.occs) == 1 {
					w *= m.rs.scale()
					continue
				}
				for k := range distinct {
					delete(distinct, k)
				}
				for _, oi := range m.occs {
					distinct[rows[oi]] = struct{}{}
				}
				w *= stats.FallingFactorialRatio(m.rs.N, m.rs.n, len(distinct))
			}
			return w * val.Float64()
		}
	}), nil
}

// replicateVariance runs a replication-based variance method with an
// arbitrary re-estimation function (shared by SUM and the page-sampling
// estimators). contrib, when non-nil, is the per-assignment contribution
// underlying estimate and lets the jackknife take its single-pass path.
func replicateVariance(method VarianceMethod, poly algebra.Polynomial, syn *Synopsis, opts Options, eng *engine, estimate func(*Synopsis, *engine) (float64, error), contrib termContrib) (float64, error) {
	switch method {
	case VarSplitSample:
		return splitSampleVarianceFn(poly, syn, opts, eng, estimate)
	case VarJackknife:
		return jackknifeVarianceFn(poly, syn, eng, estimate, contrib)
	default:
		return 0, fmt.Errorf("estimator: replicateVariance does not support %v", method)
	}
}
