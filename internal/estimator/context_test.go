package estimator

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// ctxFixture builds two modest Zipf relations and a drawn synopsis, plus
// the join expression over them. Fresh per call so mutation (extension)
// never leaks between tests.
func ctxFixture(t *testing.T, n, sample int) (*algebra.Expr, *Synopsis) {
	t.Helper()
	rng := sampling.Seeded(11)
	r1 := workload.ZipfRelation(rng, "R1", 0.5, 200, n, workload.MapRandom)
	r2 := workload.ZipfRelation(rng, "R2", 1.0, 200, n, workload.MapRandom)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r1, sample, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, sample, rng); err != nil {
		t.Fatal(err)
	}
	e := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "r2_"))
	return e, syn
}

// TestCountContextBackgroundIdentity: with a background context the
// context-aware entry points are bit-identical to the classic ones, for
// every variance method and worker count — the polling changes nothing.
func TestCountContextBackgroundIdentity(t *testing.T) {
	for _, method := range []VarianceMethod{VarAuto, VarSplitSample, VarJackknife} {
		for _, workers := range []int{1, 4} {
			e, syn := ctxFixture(t, 2000, 200)
			opts := Options{Variance: method, Workers: workers, Seed: 3}
			want, err := CountWithOptions(e, syn, opts)
			if err != nil {
				t.Fatalf("%v/%d: %v", method, workers, err)
			}
			got, err := CountContext(context.Background(), e, syn, opts)
			if err != nil {
				t.Fatalf("%v/%d: %v", method, workers, err)
			}
			if math.Float64bits(got.Value) != math.Float64bits(want.Value) ||
				math.Float64bits(got.StdErr) != math.Float64bits(want.StdErr) {
				t.Errorf("%v/%d: CountContext %v ± %v != CountWithOptions %v ± %v",
					method, workers, got.Value, got.StdErr, want.Value, want.StdErr)
			}
		}
	}
}

// TestContextCancelledUpFront: an already-cancelled context fails every
// context-aware entry point with an error carrying context.Canceled, and
// the zero result — never a partial estimate.
func TestContextCancelledUpFront(t *testing.T) {
	e, syn := ctxFixture(t, 500, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if est, err := CountContext(ctx, e, syn, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("CountContext: want context.Canceled, got %v", err)
	} else if est != (Estimate{}) {
		t.Errorf("CountContext: partial estimate %+v alongside error", est)
	}
	if _, err := SumContext(ctx, e, "id", syn, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SumContext: want context.Canceled, got %v", err)
	}
	if _, err := AvgContext(ctx, e, "id", syn, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("AvgContext: want context.Canceled, got %v", err)
	}
	if _, err := SequentialCountContext(ctx, e, syn, SequentialOptions{TargetRelErr: 0.1}); !errors.Is(err, context.Canceled) {
		t.Errorf("SequentialCountContext: want context.Canceled, got %v", err)
	}
	if est, _, err := DeadlineCountContext(ctx, e, syn, DeadlineOptions{Budget: time.Second}); !errors.Is(err, context.Canceled) {
		t.Errorf("DeadlineCountContext: want context.Canceled, got %v", err)
	} else if est != (Estimate{}) {
		t.Errorf("DeadlineCountContext: partial estimate %+v alongside error", est)
	}
}

// TestDeadlineContextCancelMidRun: a context that expires while rounds are
// still growing aborts the run between rounds (or between terms) with a
// DeadlineExceeded cause, well before the estimator's own generous budget.
// The θ-join below has no index path, so later rounds enumerate a growing
// m² space and the run cannot finish before the context fires.
func TestDeadlineContextCancelMidRun(t *testing.T) {
	rng := sampling.Seeded(5)
	r1 := workload.ZipfRelation(rng, "R1", 0.5, 500, 4000, workload.MapRandom)
	r2 := workload.ZipfRelation(rng, "R2", 0.5, 500, 4000, workload.MapRandom)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r1, 20, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 20, rng); err != nil {
		t.Fatal(err)
	}
	prod := algebra.Must(algebra.Product(algebra.BaseOf(r1), algebra.BaseOf(r2), "r2_"))
	e := algebra.Must(algebra.Select(prod, algebra.ColCmp{A: "a", Op: algebra.LT, B: "r2_.a"}))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	est, steps, err := DeadlineCountContext(ctx, e, syn, DeadlineOptions{
		Budget:      time.Hour, // the context, not the budget, must end this run
		InitialSize: 20,
		Estimate:    Options{Variance: VarNone},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v (after %v)", err, time.Since(start))
	}
	if est != (Estimate{}) || steps != nil {
		t.Errorf("cancelled run leaked a partial result: %+v, %d steps", est, len(steps))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the between-rounds poll is not being honoured", elapsed)
	}
}

// TestSequentialOptionsRNGFold: the deprecated (expr, syn, rng, opts)
// signature and the options-folded context signature produce identical
// results for the same seed, and Seed alone reproduces runs without an
// explicit RNG.
func TestSequentialOptionsRNGFold(t *testing.T) {
	opts := SequentialOptions{TargetRelErr: 0.10, PilotSize: 150}

	e1, syn1 := ctxFixture(t, 2000, 50)
	oldRes, err := SequentialCount(e1, syn1, sampling.Seeded(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, syn2 := ctxFixture(t, 2000, 50)
	o2 := opts
	o2.RNG = sampling.Seeded(7)
	newRes, err := SequentialCountContext(context.Background(), e2, syn2, o2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(oldRes.Final.Value) != math.Float64bits(newRes.Final.Value) ||
		math.Float64bits(oldRes.Final.StdErr) != math.Float64bits(newRes.Final.StdErr) {
		t.Errorf("RNG fold changed the run: old %v ± %v, new %v ± %v",
			oldRes.Final.Value, oldRes.Final.StdErr, newRes.Final.Value, newRes.Final.StdErr)
	}

	// Seed-only reproducibility.
	e3, syn3 := ctxFixture(t, 2000, 50)
	o3 := opts
	o3.Seed = 99
	a, err := SequentialCountContext(context.Background(), e3, syn3, o3)
	if err != nil {
		t.Fatal(err)
	}
	e4, syn4 := ctxFixture(t, 2000, 50)
	b, err := SequentialCountContext(context.Background(), e4, syn4, o3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Final.Value) != math.Float64bits(b.Final.Value) {
		t.Errorf("same Seed, different runs: %v vs %v", a.Final.Value, b.Final.Value)
	}
}

// TestDeadlineOptionsRNGFold: same for deadline mode, on a fixture small
// enough that both runs exhaust their samples deterministically.
func TestDeadlineOptionsRNGFold(t *testing.T) {
	run := func(useOld bool) (Estimate, int) {
		e, syn := ctxFixture(t, 400, 40)
		opts := DeadlineOptions{Budget: time.Minute, InitialSize: 50, Estimate: Options{Variance: VarSplitSample}}
		if useOld {
			est, steps, err := DeadlineCount(e, syn, sampling.Seeded(13), opts)
			if err != nil {
				t.Fatal(err)
			}
			return est, len(steps)
		}
		opts.RNG = sampling.Seeded(13)
		est, steps, err := DeadlineCountContext(context.Background(), e, syn, opts)
		if err != nil {
			t.Fatal(err)
		}
		return est, len(steps)
	}
	oldEst, oldSteps := run(true)
	newEst, newSteps := run(false)
	if math.Float64bits(oldEst.Value) != math.Float64bits(newEst.Value) || oldSteps != newSteps {
		t.Errorf("RNG fold changed the run: old %v after %d rounds, new %v after %d rounds",
			oldEst.Value, oldSteps, newEst.Value, newSteps)
	}
}

// TestIncrementalOptionsSeed: NewIncrementalWithOptions with a Seed is
// reproducible, and the deprecated constructor remains equivalent to an
// explicit-RNG options call.
func TestIncrementalOptionsSeed(t *testing.T) {
	build := func(inc *Incremental) float64 {
		t.Helper()
		rng := sampling.Seeded(3)
		r := workload.ZipfRelation(rng, "S", 0.8, 100, 3000, workload.MapRandom)
		if err := inc.Track("S", r.Schema()); err != nil {
			t.Fatal(err)
		}
		var ferr error
		r.Each(func(i int, tup relation.Tuple) bool {
			if err := inc.Insert("S", tup); err != nil {
				ferr = err
				return false
			}
			return true
		})
		if ferr != nil {
			t.Fatal(ferr)
		}
		syn, err := inc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		est, err := Count(algebra.Base("S", r.Schema()), syn)
		if err != nil {
			t.Fatal(err)
		}
		return est.Value
	}
	a := build(NewIncrementalWithOptions(IncrementalOptions{Capacity: 200, Seed: 21}))
	b := build(NewIncrementalWithOptions(IncrementalOptions{Capacity: 200, Seed: 21}))
	c := build(NewIncremental(200, sampling.Seeded(21)))
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Errorf("same Seed, different snapshots: %v vs %v", a, b)
	}
	if math.Float64bits(a) != math.Float64bits(c) {
		t.Errorf("deprecated constructor diverged: options %v vs wrapper %v", a, c)
	}
}
