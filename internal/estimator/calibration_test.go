// Statistical calibration regression tests: seed-pinned Monte-Carlo checks
// that the estimators' bias, error, and CI coverage stay inside recorded
// bands. The runs are deterministic (every trial's RNG comes from the
// sampling.Source tree), so a band violation is a code regression, not a
// flake. The bands themselves are set from the statistical contract — e.g.
// a 95% CI must cover roughly 95% of the time over ~150 trials — with
// margins wide enough to absorb a reseeding but far too tight for a broken
// variance formula or a biased scale-up to slip through.
//
// The suite lives in package estimator_test so it can reuse the bench
// accumulators (ErrorStats, Coverage) without an import cycle.
package estimator_test

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/bench"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// inBand fails the test when v is outside [lo, hi].
func inBand(t *testing.T, what string, v, lo, hi float64) {
	t.Helper()
	if math.IsNaN(v) || v < lo || v > hi {
		t.Errorf("%s = %.3f, want within [%.2f, %.2f]", what, v, lo, hi)
	}
}

// TestCalibrationSelection pins the T1 contract: the SRSWOR selection
// scale-up with analytic variance is unbiased and its 95% CIs cover at
// roughly the nominal rate, at a 5% sampling fraction.
func TestCalibrationSelection(t *testing.T) {
	const (
		nRows  = 20_000
		domain = 1_000_000
		sel    = 0.1
		frac   = 0.05
		trials = 150
	)
	src := sampling.NewSource(42)
	gen := src.Rand(0)
	rel := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	for i := 0; i < nRows; i++ {
		rel.MustAppend(relation.Tuple{relation.Int(int64(gen.Intn(domain)))})
	}
	e := algebra.Must(algebra.Select(algebra.BaseOf(rel),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(int64(sel * domain))}))
	actual, err := algebra.Count(e, algebra.MapCatalog{"R": rel})
	if err != nil {
		t.Fatal(err)
	}

	var es bench.ErrorStats
	var cov bench.Coverage
	for tr := 0; tr < trials; tr++ {
		rng := src.Rand(1000 + tr)
		syn := estimator.NewSynopsis()
		if err := syn.AddDrawn(rel, int(frac*nRows), rng); err != nil {
			t.Fatal(err)
		}
		est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		es.Observe(est.Value, float64(actual))
		cov.Observe(est.Lo, est.Hi, float64(actual))
	}
	// With p≈0.1 and n=1000 the per-trial relative error has σ≈9.5%, so the
	// mean signed error over 150 trials sits within ≈±2.5% and the ARE near
	// σ·√(2/π)≈7.6%. Coverage at 95% nominal: binomial σ≈1.8 points.
	inBand(t, "selection bias %", es.Bias(), -3, 3)
	inBand(t, "selection ARE %", es.ARE(), 4, 12)
	inBand(t, "selection 95% coverage", cov.Rate(), 90, 98)
}

// TestCalibrationJoin pins the T2 contract: the two-sample join estimator
// with the unbiased closed-form variance stays unbiased and its 95% CIs
// hold their level on a mildly skewed independent join.
func TestCalibrationJoin(t *testing.T) {
	const (
		nRows  = 8_000
		frac   = 0.05
		trials = 120
	)
	src := sampling.NewSource(7)
	r1, r2 := workload.JoinPair(src.Rand(0), workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: nRows / 20, N1: nRows, N2: nRows,
		Correlation: workload.Independent,
	})
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	actual, err := algebra.Count(join, algebra.MapCatalog{"R1": r1, "R2": r2})
	if err != nil {
		t.Fatal(err)
	}

	var es bench.ErrorStats
	var cov bench.Coverage
	for tr := 0; tr < trials; tr++ {
		rng := src.Rand(1000 + tr)
		syn := estimator.NewSynopsis()
		if err := syn.AddDrawn(r1, int(frac*nRows), rng); err != nil {
			t.Fatal(err)
		}
		if err := syn.AddDrawn(r2, int(frac*nRows), rng); err != nil {
			t.Fatal(err)
		}
		est, err := estimator.CountWithOptions(join, syn, estimator.Options{Variance: estimator.VarAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		es.Observe(est.Value, float64(actual))
		cov.Observe(est.Lo, est.Hi, float64(actual))
	}
	inBand(t, "join bias %", es.Bias(), -5, 5)
	inBand(t, "join 95% coverage", cov.Rate(), 88, 99)
}

// TestCalibrationCoverageVsNominal pins the F2 contract: over the same
// selection trials, CI coverage tracks each nominal level and is monotone
// in the level — a broken quantile or variance shifts every band at once.
func TestCalibrationCoverageVsNominal(t *testing.T) {
	const (
		nRows  = 10_000
		domain = 100_000
		frac   = 0.05
		trials = 150
	)
	src := sampling.NewSource(11)
	gen := src.Rand(0)
	rel := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	for i := 0; i < nRows; i++ {
		rel.MustAppend(relation.Tuple{relation.Int(int64(gen.Intn(domain)))})
	}
	e := algebra.Must(algebra.Select(algebra.BaseOf(rel),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(domain / 8)}))
	actual, err := algebra.Count(e, algebra.MapCatalog{"R": rel})
	if err != nil {
		t.Fatal(err)
	}

	levels := []float64{0.90, 0.95, 0.99}
	bands := [][2]float64{{84, 95}, {90, 98}, {96, 100}}
	rates := make([]float64, len(levels))
	for li, lvl := range levels {
		var cov bench.Coverage
		for tr := 0; tr < trials; tr++ {
			rng := src.Rand(5000 + tr)
			syn := estimator.NewSynopsis()
			if err := syn.AddDrawn(rel, int(frac*nRows), rng); err != nil {
				t.Fatal(err)
			}
			est, err := estimator.CountWithOptions(e, syn, estimator.Options{
				Variance:   estimator.VarAnalytic,
				Confidence: lvl,
			})
			if err != nil {
				t.Fatal(err)
			}
			cov.Observe(est.Lo, est.Hi, float64(actual))
		}
		rates[li] = cov.Rate()
		inBand(t, "coverage at nominal "+bench.Pct(100*lvl), cov.Rate(), bands[li][0], bands[li][1])
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1] {
			t.Errorf("coverage not monotone in nominal level: %v", rates)
		}
	}
}

// TestCalibrationVarianceAgreement pins the replication machinery against
// the closed form: on the same join sample, the jackknife standard error
// must agree with the analytic one within a factor, and the split-sample
// one must sit in its known conservative band (each replicate joins only
// within its own group, losing the cross-group pairs, so it overstates a
// join's variance by a stable factor). A drift out of either band means a
// replication-weighting bug, not noise.
func TestCalibrationVarianceAgreement(t *testing.T) {
	const (
		nRows  = 6_000
		frac   = 0.08
		trials = 30
	)
	src := sampling.NewSource(19)
	r1, r2 := workload.JoinPair(src.Rand(0), workload.JoinPairSpec{
		Z1: 0.3, Z2: 0.3, Domain: nRows / 10, N1: nRows, N2: nRows,
		Correlation: workload.Independent,
	})
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))

	methods := []struct {
		method estimator.VarianceMethod
		lo, hi float64
	}{
		{estimator.VarJackknife, 0.5, 2.0},
		{estimator.VarSplitSample, 1.0, 4.5},
	}
	for _, mc := range methods {
		method := mc.method
		ratios := make([]float64, 0, trials)
		for tr := 0; tr < trials; tr++ {
			rng := src.Rand(1000 + tr)
			syn := estimator.NewSynopsis()
			if err := syn.AddDrawn(r1, int(frac*nRows), rng); err != nil {
				t.Fatal(err)
			}
			if err := syn.AddDrawn(r2, int(frac*nRows), rng); err != nil {
				t.Fatal(err)
			}
			analytic, err := estimator.CountWithOptions(join, syn, estimator.Options{Variance: estimator.VarAnalytic})
			if err != nil {
				t.Fatal(err)
			}
			replicated, err := estimator.CountWithOptions(join, syn, estimator.Options{Variance: method, Seed: int64(tr)})
			if err != nil {
				t.Fatal(err)
			}
			if analytic.StdErr > 0 {
				ratios = append(ratios, replicated.StdErr/analytic.StdErr)
			}
		}
		if len(ratios) < trials/2 {
			t.Fatalf("%v: only %d usable trials", method, len(ratios))
		}
		mean := 0.0
		for _, r := range ratios {
			mean += r
		}
		mean /= float64(len(ratios))
		inBand(t, method.String()+" / analytic stderr ratio", mean, mc.lo, mc.hi)
	}
}
