package estimator

import (
	"context"
	"fmt"

	"relest/internal/algebra"
	"relest/internal/obs"
	"relest/internal/parallel"
	"relest/internal/stats"
)

// The evaluation engine: one engine serves one top-level estimation call
// (point estimate plus variance replicates). It couples a plan cache —
// compiled term plans keyed by (term, instance identity), so the point
// estimate, the analytic variance pass and every replicate that leaves a
// relation's instances untouched share one compilation — with the resolved
// worker count for the call's parallel fan-outs.
//
// Every fan-out in this package follows the parallel package's determinism
// contract: results land in index-addressed slots and are reduced in index
// order, and intra-term partitioned evaluation uses a part count fixed by
// the plan (PreparedTerm.Parts), never by the worker count. Estimates are
// therefore bit-identical for every Options.Workers setting.
type engine struct {
	workers int
	plans   *algebra.PlanCache
	// cacheIf gates which terms the cache holds (nil = all). The jackknife
	// fallback uses it to share full-sample plans across replicates without
	// retaining one throwaway plan per deleted unit.
	cacheIf func(t *algebra.Term) bool
	// rec receives the call's metrics (never nil — obs.Nop when disabled),
	// and span is the call's root span for per-term/per-replicate children
	// (zero value when tracing is off; zero spans are inert). Recording is
	// passive: it never consumes randomness or reorders reductions, so
	// estimates are bit-identical with or without a live recorder.
	rec  obs.Recorder
	span obs.Span
	// ctx carries the call's cancellation signal (nil = never cancelled).
	// It is polled between terms and between variance replicates, never
	// inside an enumeration, so honoring it cannot reorder reductions.
	ctx context.Context
	// disableCSE skips the cross-term shared-prefix attachment pass
	// (Options.DisableCSE).
	disableCSE bool
}

// newEngine builds the engine for one top-level estimation call. ctx may
// be nil (no cancellation), which is what the non-context entry points
// pass.
func newEngine(ctx context.Context, opts Options) *engine {
	rec := obs.Or(opts.Recorder)
	plans := opts.Plans
	if plans == nil {
		plans = algebra.NewPlanCacheRec(rec)
	}
	return &engine{
		workers:    parallel.Resolve(opts.Workers),
		plans:      plans,
		rec:        rec,
		ctx:        ctx,
		disableCSE: opts.DisableCSE,
	}
}

// cancelled returns a non-nil error once the engine's context is done.
// Cancellation is all-or-nothing: any code path that observes it abandons
// the whole estimate, so a partial value can never leak out with a nil
// error.
func (eng *engine) cancelled() error {
	if eng.ctx == nil {
		return nil
	}
	return ctxErr(eng.ctx)
}

// ctxErr wraps a context's error in this package's abort error. The
// wrapped cause stays reachable through errors.Is (context.Canceled /
// context.DeadlineExceeded), which is how servers distinguish "client
// went away" from "budget elapsed".
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("estimator: estimation aborted: %w", err)
	}
	return nil
}

// subEngine is the serial engine replicate re-estimations run under (the
// replicates themselves are already fanned out); plans may be nil for
// throwaway evaluation. Sub-engines do not record: replicate-internal
// term spans and counters would swamp the top-level signal, and the
// replicate fan-out itself is already timed by the caller's recorder.
func subEngine(plans *algebra.PlanCache, cacheIf func(t *algebra.Term) bool) *engine {
	return &engine{workers: 1, plans: plans, cacheIf: cacheIf, rec: obs.Nop}
}

// prepare returns the (cached, when eligible) compiled plan for the term
// over the instances.
func (eng *engine) prepare(t *algebra.Term, inst algebra.Instances) (*algebra.PreparedTerm, error) {
	if eng.plans != nil && (eng.cacheIf == nil || eng.cacheIf(t)) {
		return eng.plans.Prepare(t, inst)
	}
	return algebra.Prepare(t, inst)
}

// attachCSE prepares every term's plan over the synopsis instances and
// registers shared enumeration prefixes across them (algebra.AttachCSE), so
// structurally identical sub-joins are computed once per estimate. It runs
// single-threaded before any evaluation; because the plan cache returns the
// same compiled plan for the same (term, instances) pair, the point
// estimate, analytic variance pass and untouched-instance replicates all
// see the attached plans. Per-term binding or compilation errors are
// ignored here — the evaluation paths report them with full context.
func (eng *engine) attachCSE(poly algebra.Polynomial, syn *Synopsis) {
	if eng.disableCSE || eng.plans == nil || len(poly.Terms) < 2 {
		return
	}
	plans := make([]*algebra.PreparedTerm, 0, len(poly.Terms))
	for i := range poly.Terms {
		t := &poly.Terms[i]
		inst, err := algebra.BindInstances(t, syn)
		if err != nil {
			continue
		}
		pt, err := eng.prepare(t, inst)
		if err != nil {
			continue
		}
		plans = append(plans, pt)
	}
	eng.plans.AttachCSE(plans)
}

// countTerm evaluates a pure count over the plan's fixed partitioning,
// fanning parts across up to `workers` goroutines and reducing in part
// order.
func countTerm(pt *algebra.PreparedTerm, workers int) float64 {
	parts := pt.Parts()
	if parts == 1 || workers <= 1 {
		return pt.Count()
	}
	partials := make([]float64, parts)
	parallel.For(parts, workers, func(i int) { partials[i] = pt.CountPart(i, parts) })
	total := 0.0
	for _, v := range partials {
		total += v
	}
	return total
}

// sumTerm evaluates Σ contribution(rows) over the plan's satisfying
// assignments with the same fixed partitioned reduction as countTerm.
// newContrib is called once per part so each part gets private scratch.
func sumTerm(pt *algebra.PreparedTerm, workers int, newContrib func() func(rows []int) float64) float64 {
	parts := pt.Parts()
	partials := make([]float64, parts)
	parallel.For(parts, workers, func(i int) {
		contrib := newContrib()
		total := 0.0
		pt.EnumeratePart(i, parts, func(rows []int) bool {
			total += contrib(rows)
			return true
		})
		partials[i] = total
	})
	total := 0.0
	for _, v := range partials {
		total += v
	}
	return total
}

// relTermMeta describes one relation of a term for weighting: its
// occurrence indices and its synopsis entry.
type relTermMeta struct {
	rel  string
	occs []int
	rs   *relSynopsis
}

// termRelMetas lists a term's relations in first-occurrence order. All
// weight products iterate this fixed order (never a map), keeping float
// results reproducible call to call.
func termRelMetas(t *algebra.Term, syn *Synopsis) ([]relTermMeta, error) {
	idx := make(map[string]int, 2)
	var metas []relTermMeta
	for i, o := range t.Occs {
		j, ok := idx[o.RelName]
		if !ok {
			rs, known := syn.rels[o.RelName]
			if !known {
				return nil, fmt.Errorf("estimator: no sample for relation %q in synopsis", o.RelName)
			}
			j = len(metas)
			idx[o.RelName] = j
			metas = append(metas, relTermMeta{rel: o.RelName, rs: rs})
		}
		metas[j].occs = append(metas[j].occs, i)
	}
	return metas, nil
}

// checkTermSamples applies the shared empty-sample rule: an empty sample of
// an empty relation contributes zero (ok=false, no error); an empty sample
// of a non-empty relation has no defined scale-up.
func checkTermSamples(metas []relTermMeta) (ok bool, err error) {
	for _, m := range metas {
		if m.rs.m == 0 {
			if m.rs.N == 0 {
				return false, nil
			}
			return false, fmt.Errorf("estimator: empty sample for non-empty relation %q", m.rel)
		}
	}
	return true, nil
}

// termContrib describes the unweighted per-assignment contribution of a
// term: 1 for COUNT, the output column's value for SUM. The zero value
// (eval == nil) means "no contribution function available" and disables the
// single-pass jackknife.
type termContrib struct {
	// eval returns the assignment's contribution; it must not retain rows.
	eval func(t *algebra.Term, inst algebra.Instances, rows []int) float64
	// outOcc returns the occurrence index the contribution reads from, or
	// -1 when it is constant across occurrences (COUNT). Used to decide
	// whether a folded (non-enumerated) occurrence affects the value.
	outOcc func(t *algebra.Term) int
}

// countContrib is the COUNT contribution: every satisfying assignment
// counts 1 and depends on no particular occurrence.
var countContrib = termContrib{
	eval:   func(*algebra.Term, algebra.Instances, []int) float64 { return 1 },
	outOcc: func(*algebra.Term) int { return -1 },
}

// noContrib disables the single-pass jackknife (forces naive replication).
var noContrib = termContrib{}

// sumContrib returns the SUM contribution for output column position pos:
// the assignment's value of that column, with nulls contributing zero.
func sumContrib(pos int) termContrib {
	return termContrib{
		eval: func(t *algebra.Term, inst algebra.Instances, rows []int) float64 {
			ref := t.Out[pos]
			v := inst[ref.Occ].Value(rows[ref.Occ], ref.Col)
			if v.IsNull() {
				return 0
			}
			return v.Float64()
		},
		outOcc: func(t *algebra.Term) int {
			if pos >= len(t.Out) {
				return -1 // rejected by the point estimate before variance runs
			}
			return t.Out[pos].Occ
		},
	}
}

// splitWorkers decides where a polynomial's parallelism goes: across terms
// when there are several, inside the single term's partitions otherwise.
// The choice never affects values (reductions are fixed either way), only
// scheduling.
func splitWorkers(numTerms, workers int) (outer, inner int) {
	if numTerms <= 1 {
		return 1, workers
	}
	return workers, 1
}

// ---------------------------------------------------------------------------
// Single-pass jackknife.
//
// The naive delete-one jackknife re-evaluates the whole polynomial once per
// sampling unit: O(Σ_R m_R × enum). When every term's weights are the
// uniform per-relation factors (tuple or page design — the only designs the
// jackknife supports) one enumeration pass suffices. Write the full-sample
// estimate of term T as
//
//	Ŝ_T = Σ_A c(A)·w(A),   w(A) = ∏_{R∈T} f_R(d_R(A)),
//
// where c is the contribution (1 for COUNT, a column value for SUM),
// f_R(d) = (N_R)_d/(n_R)_d is the falling-factorial pattern factor (which
// collapses to M_R/m_R when R occurs once), and d_R(A) is the number of
// distinct sample rows A uses from R. Deleting unit u of relation R keeps
// exactly the assignments that avoid u's rows and rescales R's factor to
// f′_R(d) — the same factor with m_R−1 (resp. n_R−1) units — so the
// replicate estimate of T is
//
//	Ŝ_T(R,u) = Σ_{A ∌ u} c·w′_R(A),  w′_R(A) = w(A)·f′_R(d_R(A))/f_R(d_R(A))
//	         = S′_{T,R} − a_{T,R,u},
//
// with S′_{T,R} = Σ_A c·w′_R(A) and a_{T,R,u} = Σ_{A using u at R} c·w′_R(A).
// One enumeration accumulates S′ and the per-unit a totals for every
// relation simultaneously, and every delete-one estimate is then a pair of
// additions: O(enum + Σ m) total.
//
// The pass enumerates each term, with one exception: fully folded terms —
// bare |R| or |R×S| terms whose plan enumerates nothing and counts by
// multiplying instance sizes — get their S′ and per-unit totals in closed
// form (every unit of R appears in (rows-in-unit)·∏_{other} n assignments,
// all with the same weight), so set-operation polynomials stay on the
// single-pass path. Partially folded terms (an unconstrained cross-product
// tail behind constrained occurrences) fall back to naive replication: for
// those, enumeration would visit the product space the counting shortcut
// exists to avoid.
// ---------------------------------------------------------------------------

// singlePassEligible reports whether every term of the polynomial admits
// the single-pass jackknife over the synopsis with the given contribution.
func singlePassEligible(poly algebra.Polynomial, syn *Synopsis, eng *engine, contrib termContrib) (bool, error) {
	for i := range poly.Terms {
		t := &poly.Terms[i]
		metas, err := termRelMetas(t, syn)
		if err != nil {
			return false, err
		}
		for _, m := range metas {
			if !m.rs.uniformWeights() {
				return false, nil // stratified: rejected upstream, defensive
			}
			if len(m.occs) > 1 && !m.rs.tupleDesign() {
				return false, nil // pattern weights need tuple SRSWOR
			}
		}
		inst, err := algebra.BindInstances(t, syn)
		if err != nil {
			return false, err
		}
		pt, err := eng.prepare(t, inst)
		if err != nil {
			return false, err
		}
		if !pt.FoldedTail() {
			continue
		}
		// Folded tails: only the fully folded single-occurrence COUNT shape
		// has a closed form; anything else re-evaluates naively.
		if !pt.TailOnly() || contrib.outOcc(t) >= 0 {
			return false, nil
		}
		for _, m := range metas {
			if len(m.occs) > 1 {
				return false, nil
			}
		}
	}
	return true, nil
}

// foldedTermAcc fills one fully folded term's accumulators in closed form:
// every assignment has weight w = ∏ f_j and contribution 1, there are
// ∏ |cand_j| of them (cand_j the occurrence's candidate rows, i.e. sample
// rows passing its local predicates), and unit u of relation R participates
// in (candidate rows of u) · ∏_{j≠R} |cand_j| of them.
func foldedTermAcc(pt *algebra.PreparedTerm, metas []relTermMeta) *jackTermAcc {
	acc := newJackTermAcc(metas)
	cands := make([][]int, len(metas))
	w := 1.0
	for j, m := range metas {
		cands[j] = pt.Candidates(m.occs[0])
		w *= m.rs.scale()
	}
	prod := 1.0
	for j := range metas {
		prod *= float64(len(cands[j]))
	}
	acc.s = prod * w
	for j, m := range metas {
		fDel := float64(m.rs.M) / float64(m.rs.m-1)
		wp := w / m.rs.scale() * fDel
		others := 1.0
		for k := range metas {
			if k != j {
				others *= float64(len(cands[k]))
			}
		}
		acc.rels[j].sPrime = float64(len(cands[j])) * others * wp
		ru := m.rs.rowUnits()
		for _, row := range cands[j] {
			acc.rels[j].perUnit[ru[row]] += others * wp
		}
	}
	return acc
}

// jackTermAcc accumulates one term's single-pass totals; rels is aligned
// with the term's relTermMetas order.
type jackTermAcc struct {
	s    float64 // Σ c·w over all assignments
	rels []jackRelAcc
}

type jackRelAcc struct {
	sPrime  float64   // Σ c·w′_R
	perUnit []float64 // a_{R,u}: Σ c·w′_R over assignments using unit u at R
}

func newJackTermAcc(metas []relTermMeta) *jackTermAcc {
	acc := &jackTermAcc{rels: make([]jackRelAcc, len(metas))}
	for j, m := range metas {
		acc.rels[j].perUnit = make([]float64, m.rs.m)
	}
	return acc
}

func (acc *jackTermAcc) merge(other *jackTermAcc) {
	acc.s += other.s
	for j := range acc.rels {
		acc.rels[j].sPrime += other.rels[j].sPrime
		for u, v := range other.rels[j].perUnit {
			acc.rels[j].perUnit[u] += v
		}
	}
}

// jackknifeSinglePass computes the delete-one jackknife variance in one
// enumeration pass per term (see the derivation above). The per-relation
// sample-size preconditions have already been checked by the caller.
func jackknifeSinglePass(poly algebra.Polynomial, syn *Synopsis, eng *engine, contrib termContrib) (float64, error) {
	rels := poly.RelationNames()
	relIdx := make(map[string]int, len(rels))
	for i, rel := range rels {
		relIdx[rel] = i
	}

	// Per-term accumulation, fanned across terms or partitions.
	accs := make([]*jackTermAcc, len(poly.Terms))
	metasByTerm := make([][]relTermMeta, len(poly.Terms))
	outer, inner := splitWorkers(len(poly.Terms), eng.workers)
	err := parallel.ForErrRec(len(poly.Terms), outer, eng.rec, func(ti int) error {
		if err := eng.cancelled(); err != nil {
			return err
		}
		t := &poly.Terms[ti]
		metas, err := termRelMetas(t, syn)
		if err != nil {
			return err
		}
		metasByTerm[ti] = metas
		inst, err := algebra.BindInstances(t, syn)
		if err != nil {
			return err
		}
		pt, err := eng.prepare(t, inst)
		if err != nil {
			return err
		}
		if pt.TailOnly() {
			accs[ti] = foldedTermAcc(pt, metas)
			return nil
		}
		rowUnits := make([][]int, len(metas))
		for j, m := range metas {
			rowUnits[j] = m.rs.rowUnits()
		}
		parts := pt.Parts()
		partAccs := make([]*jackTermAcc, parts)
		parallel.For(parts, inner, func(part int) {
			acc := newJackTermAcc(metas)
			factor := make([]float64, len(metas))
			factorDel := make([]float64, len(metas))
			var distinctRows []int
			pt.EnumeratePart(part, parts, func(rows []int) bool {
				w := contrib.eval(t, inst, rows)
				//lint:ignore floateq exactly-zero contributions add nothing to any replicate; skipping them is order-independent
				if w == 0 {
					return true
				}
				for j := range metas {
					m := &metas[j]
					if len(m.occs) == 1 {
						factor[j] = m.rs.scale()
						factorDel[j] = float64(m.rs.M) / float64(m.rs.m-1)
					} else {
						// distinct sample rows among this relation's occurrences
						distinctRows = distinctRows[:0]
						for _, oi := range m.occs {
							row := rows[oi]
							seen := false
							for _, r := range distinctRows {
								if r == row {
									seen = true
									break
								}
							}
							if !seen {
								distinctRows = append(distinctRows, row)
							}
						}
						d := len(distinctRows)
						factor[j] = stats.FallingFactorialRatio(m.rs.N, m.rs.n, d)
						factorDel[j] = stats.FallingFactorialRatio(m.rs.N, m.rs.n-1, d)
					}
					w *= factor[j]
				}
				acc.s += w
				for j := range metas {
					m := &metas[j]
					wp := w / factor[j] * factorDel[j]
					acc.rels[j].sPrime += wp
					if len(m.occs) == 1 {
						acc.rels[j].perUnit[rowUnits[j][rows[m.occs[0]]]] += wp
						continue
					}
					// tuple design: units are rows; charge each distinct one.
					distinctRows = distinctRows[:0]
					for _, oi := range m.occs {
						row := rows[oi]
						seen := false
						for _, r := range distinctRows {
							if r == row {
								seen = true
								break
							}
						}
						if !seen {
							distinctRows = append(distinctRows, row)
						}
					}
					for _, row := range distinctRows {
						acc.rels[j].perUnit[rowUnits[j][row]] += wp
					}
				}
				return true
			})
			partAccs[part] = acc
		})
		merged := newJackTermAcc(metas)
		for _, pa := range partAccs {
			merged.merge(pa)
		}
		accs[ti] = merged
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Merge terms (in term order) into per-relation replicate components:
	// θ_(R,u) = base_R + sPrime_R − a_R[u].
	type relGlobal struct {
		rs     *relSynopsis
		base   float64 // Σ_{T∌R} coef·Ŝ_T
		sPrime float64 // Σ_{T∋R} coef·S′_{T,R}
		a      []float64
	}
	globals := make([]relGlobal, len(rels))
	for i, rel := range rels {
		rs := syn.rels[rel]
		globals[i] = relGlobal{rs: rs, a: make([]float64, rs.m)}
	}
	for ti := range poly.Terms {
		coef := float64(poly.Terms[ti].Coef)
		acc := accs[ti]
		inTerm := make(map[int]bool, len(metasByTerm[ti]))
		for j, m := range metasByTerm[ti] {
			gi := relIdx[m.rel]
			inTerm[gi] = true
			globals[gi].sPrime += coef * acc.rels[j].sPrime
			for u, v := range acc.rels[j].perUnit {
				globals[gi].a[u] += coef * v
			}
		}
		for gi := range globals {
			if !inTerm[gi] {
				globals[gi].base += coef * acc.s
			}
		}
	}

	total := 0.0
	for gi := range globals {
		g := &globals[gi]
		m := g.rs.m
		var reps stats.Welford
		for u := 0; u < m; u++ {
			reps.Add(g.base + g.sPrime - g.a[u])
		}
		sumSq := float64(reps.N()-1) * reps.Variance()
		vr := float64(m-1) / float64(m) * sumSq
		vr *= 1 - float64(m)/float64(g.rs.M)
		total += vr
	}
	return total, nil
}
