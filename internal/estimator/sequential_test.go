package estimator

import (
	"math"
	"testing"
	"time"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// seqFixtures builds two relations whose join size is large enough for
// relative-error targets to be meaningful.
func seqFixtures(t *testing.T) (*relation.Relation, *relation.Relation, *algebra.Expr, int64) {
	t.Helper()
	rng := testRand(41)
	rows := make([][]int64, 0, 4000)
	for i := 0; i < 4000; i++ {
		rows = append(rows, []int64{int64(rng.Intn(100)), int64(i)})
	}
	r := intRelation("R", []string{"a", "id"}, rows)
	rows2 := make([][]int64, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows2 = append(rows2, []int64{int64(rng.Intn(100)), int64(i)})
	}
	s := intRelation("S", []string{"a", "id"}, rows2)
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	want, err := algebra.Count(e, algebra.MapCatalog{"R": r, "S": s})
	if err != nil {
		t.Fatal(err)
	}
	return r, s, e, want
}

func TestSequentialCount(t *testing.T) {
	r, s, e, want := seqFixtures(t)
	rng := testRand(43)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 50, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 50, rng); err != nil {
		t.Fatal(err)
	}
	res, err := SequentialCount(e, syn, rng, SequentialOptions{
		TargetRelErr: 0.05,
		PilotSize:    150,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pilot must have run at pilot size.
	if n, _ := syn.SampleSize("R"); n < 150 {
		t.Errorf("pilot did not extend R sample: n=%d", n)
	}
	// Samples grew beyond the pilot when the target demanded it.
	if res.GrowthFactor > 1 {
		if res.SampleSizes["R"] <= 150 && res.SampleSizes["S"] <= 150 {
			t.Errorf("growth factor %v but samples not grown: %v", res.GrowthFactor, res.SampleSizes)
		}
	}
	// Final estimate should be close to truth (generous 5σ bound).
	if res.Final.StdErr > 0 {
		zdist := math.Abs(res.Final.Value-float64(want)) / res.Final.StdErr
		if zdist > 6 {
			t.Errorf("final estimate %v is %.1fσ from %d", res.Final.Value, zdist, want)
		}
	}
	// The relative error achieved should usually satisfy the target.
	rel := math.Abs(res.Final.Value-float64(want)) / float64(want)
	if rel > 0.25 {
		t.Errorf("final relative error %.3f way above target", rel)
	}
}

func TestSequentialCountValidation(t *testing.T) {
	r, s, e, _ := seqFixtures(t)
	rng := testRand(44)
	syn := NewSynopsis()
	_ = syn.AddDrawn(r, 50, rng)
	_ = syn.AddDrawn(s, 50, rng)
	if _, err := SequentialCount(e, syn, rng, SequentialOptions{}); err == nil {
		t.Error("zero TargetRelErr should fail")
	}
	// Synopsis not drawn from stored relations cannot extend.
	ext := NewSynopsis()
	_ = ext.AddSample(r.Subset("R", []int{0, 1, 2}), r.Len())
	_ = ext.AddSample(s.Subset("S", []int{0, 1, 2}), s.Len())
	if _, err := SequentialCount(e, ext, rng, SequentialOptions{TargetRelErr: 0.05}); err == nil {
		t.Error("non-extensible synopsis should fail")
	}
}

func TestSequentialMaxFraction(t *testing.T) {
	r, s, e, _ := seqFixtures(t)
	rng := testRand(45)
	syn := NewSynopsis()
	_ = syn.AddDrawn(r, 20, rng)
	_ = syn.AddDrawn(s, 20, rng)
	res, err := SequentialCount(e, syn, rng, SequentialOptions{
		TargetRelErr: 0.0001, // unreachable: forces the cap
		PilotSize:    50,
		MaxFraction:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSizes["R"] > r.Len()/20+1 {
		t.Errorf("MaxFraction not respected: %v", res.SampleSizes)
	}
	if res.TargetMet {
		t.Error("impossible target reported met")
	}
}

func TestDeadlineCount(t *testing.T) {
	r, s, e, want := seqFixtures(t)
	rng := testRand(47)
	syn := NewSynopsis()
	_ = syn.AddDrawn(r, 10, rng)
	_ = syn.AddDrawn(s, 10, rng)
	est, history, err := DeadlineCount(e, syn, rng, DeadlineOptions{
		Budget:      50 * time.Millisecond,
		InitialSize: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) == 0 {
		t.Fatal("no estimation rounds")
	}
	// Sample sizes are non-decreasing across rounds.
	for i := 1; i < len(history); i++ {
		if history[i].SampleSizes["R"] < history[i-1].SampleSizes["R"] {
			t.Errorf("round %d shrank the sample: %v -> %v", i, history[i-1].SampleSizes, history[i].SampleSizes)
		}
	}
	if est.Value <= 0 {
		t.Errorf("final estimate %v", est.Value)
	}
	rel := math.Abs(est.Value-float64(want)) / float64(want)
	if rel > 0.5 {
		t.Errorf("deadline estimate relative error %.3f", rel)
	}
	// Validation.
	if _, _, err := DeadlineCount(e, syn, rng, DeadlineOptions{}); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestDeadlineCountExhaustsSmallRelations(t *testing.T) {
	// With a tiny relation and a long budget the loop must terminate by
	// exhaustion (census) rather than spinning.
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {1}})
	e := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.EQ, Val: relation.Int(1)}))
	rng := testRand(48)
	syn := NewSynopsis()
	_ = syn.AddDrawn(r, 2, rng)
	est, history, err := DeadlineCount(e, syn, rng, DeadlineOptions{
		Budget:      time.Hour,
		InitialSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 2 {
		t.Errorf("census estimate %v, want exactly 2", est.Value)
	}
	last := history[len(history)-1]
	if last.SampleSizes["R"] != r.Len() {
		t.Errorf("final sample %v, want census", last.SampleSizes)
	}
}
