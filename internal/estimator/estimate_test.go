package estimator

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

// --- fixtures ---------------------------------------------------------

func intSchema(names ...string) *relation.Schema {
	cols := make([]relation.Column, len(names))
	for i, n := range names {
		cols[i] = relation.Column{Name: n, Kind: relation.KindInt}
	}
	return relation.MustSchema(cols...)
}

func intRelation(name string, cols []string, rows [][]int64) *relation.Relation {
	r := relation.New(name, intSchema(cols...))
	for _, row := range rows {
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			t[i] = relation.Int(v)
		}
		r.MustAppend(t)
	}
	return r
}

// subsets invokes fn with every ascending n-subset of [0, N).
func subsets(N, n int, fn func(rows []int)) {
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			fn(idx)
			return
		}
		for i := start; i < N; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
}

// synopsisFor builds a synopsis holding the given sample rows of each base.
func synopsisFor(t *testing.T, bases []*relation.Relation, rows [][]int) *Synopsis {
	t.Helper()
	syn := NewSynopsis()
	for i, b := range bases {
		if err := syn.AddSample(b.Subset(b.Name(), rows[i]), b.Len()); err != nil {
			t.Fatal(err)
		}
	}
	return syn
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// exhaustiveMean enumerates all sample combinations of the bases at the
// given sample sizes and returns the mean point estimate and the collection
// of per-sample estimates.
func exhaustiveMean(t *testing.T, e *algebra.Expr, bases []*relation.Relation, ns []int) (mean float64, all []float64) {
	t.Helper()
	var rec func(k int, chosen [][]int)
	var sum float64
	count := 0
	rec = func(k int, chosen [][]int) {
		if k == len(bases) {
			syn := synopsisFor(t, bases, chosen)
			est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
			if err != nil {
				t.Fatalf("estimate: %v", err)
			}
			sum += est.Value
			all = append(all, est.Value)
			count++
			return
		}
		subsets(bases[k].Len(), ns[k], func(rows []int) {
			cp := append([][]int{}, chosen...)
			rowsCopy := append([]int{}, rows...)
			rec(k+1, append(cp, rowsCopy))
		})
	}
	rec(0, nil)
	return sum / float64(count), all
}

// --- exhaustive unbiasedness -----------------------------------------

// TestUnbiasedExhaustive is the central correctness test of the paper's
// estimator: over every possible SRSWOR sample combination of tiny base
// relations, the mean of the estimates must equal COUNT(E) exactly, for
// every supported operator shape including repeated relations.
func TestUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a", "b"}, [][]int64{{1, 10}, {2, 20}, {2, 30}, {3, 30}, {4, 40}})
	s := intRelation("S", []string{"a", "b"}, [][]int64{{2, 20}, {3, 99}, {4, 40}, {5, 50}})
	cat := algebra.MapCatalog{"R": r, "S": s}
	br, bs := algebra.BaseOf(r), algebra.BaseOf(s)

	cases := []struct {
		name  string
		e     *algebra.Expr
		bases []*relation.Relation
		ns    []int
	}{
		{"selection", algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.GE, Val: relation.Int(2)})), []*relation.Relation{r}, []int{2}},
		{"selection-n3", algebra.Must(algebra.Select(br, algebra.Cmp{Col: "b", Op: algebra.LT, Val: relation.Int(35)})), []*relation.Relation{r}, []int{3}},
		{"join", algebra.Must(algebra.Join(br, bs, []algebra.On{{Left: "a", Right: "a"}}, nil, "S")), []*relation.Relation{r, s}, []int{3, 2}},
		{"theta-join", algebra.Must(algebra.Join(br, bs, []algebra.On{{Left: "a", Right: "a"}}, algebra.ColCmp{A: "b", Op: algebra.EQ, B: "S.b"}, "S")), []*relation.Relation{r, s}, []int{2, 2}},
		{"product", algebra.Must(algebra.Product(br, bs, "S")), []*relation.Relation{r, s}, []int{2, 2}},
		{"union", algebra.Must(algebra.Union(br, bs)), []*relation.Relation{r, s}, []int{3, 2}},
		{"diff", algebra.Must(algebra.Diff(br, bs)), []*relation.Relation{r, s}, []int{3, 2}},
		{"intersect", algebra.Must(algebra.Intersect(br, bs)), []*relation.Relation{r, s}, []int{2, 2}},
		{"self-join", algebra.Must(algebra.Join(br, br, []algebra.On{{Left: "a", Right: "a"}}, nil, "R2")), []*relation.Relation{r}, []int{3}},
		{"self-intersect", algebra.Must(algebra.Intersect(br, br)), []*relation.Relation{r}, []int{2}},
		{"composite", algebra.Must(algebra.Diff(
			algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.GE, Val: relation.Int(2)})),
			bs)), []*relation.Relation{r, s}, []int{3, 2}},
	}
	for _, c := range cases {
		want, err := algebra.Count(c.e, cat)
		if err != nil {
			t.Fatalf("%s: exact: %v", c.name, err)
		}
		mean, _ := exhaustiveMean(t, c.e, c.bases, c.ns)
		if !almostEqual(mean, float64(want), 1e-9) {
			t.Errorf("%s: E[estimate] = %v, exact = %d (bias %+.3g)", c.name, mean, want, mean-float64(want))
		}
	}
}

// TestSelfJoinNaiveScalingIsBiased documents the failure the pattern
// weights fix: scaling a self-join count by (N/n)² instead of by the
// falling-factorial pattern weights is biased. This guards against
// "simplifying" estimateTerm to constant scaling.
func TestSelfJoinNaiveScalingIsBiased(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {1}, {2}, {2}, {3}})
	cat := algebra.MapCatalog{"R": r}
	br := algebra.BaseOf(r)
	e := algebra.Must(algebra.Join(br, br, []algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	want, err := algebra.Count(e, cat)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var naive, weighted float64
	trials := 0
	subsets(r.Len(), n, func(rows []int) {
		syn := synopsisFor(t, []*relation.Relation{r}, [][]int{rows})
		est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
		if err != nil {
			t.Fatal(err)
		}
		weighted += est.Value
		// Naive: count sample self-join matches, scale by (N/n)².
		inst, err := algebra.BindInstances(&poly.Terms[0], syn)
		if err != nil {
			t.Fatal(err)
		}
		c, err := poly.Terms[0].CountAssignments(inst)
		if err != nil {
			t.Fatal(err)
		}
		scale := float64(r.Len()) / float64(n)
		naive += scale * scale * c
		trials++
	})
	weighted /= float64(trials)
	naive /= float64(trials)
	if !almostEqual(weighted, float64(want), 1e-9) {
		t.Errorf("pattern-weighted self-join biased: %v vs %d", weighted, want)
	}
	if almostEqual(naive, float64(want), 1e-6) {
		t.Errorf("naive scaling unexpectedly unbiased (%v vs %d); test fixture too weak", naive, want)
	}
}

// --- variance estimators ----------------------------------------------

// TestSingleRelationVarianceUnbiasedExhaustive verifies both that the
// closed-form selection variance is unbiased (its mean over all samples
// equals the true sampling variance) and that the point estimator's
// empirical variance matches the Cochran formula.
func TestSingleRelationVarianceUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}})
	e := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.LE, Val: relation.Int(2)}))
	const n = 3
	var ests, vars stats.Welford
	subsets(r.Len(), n, func(rows []int) {
		syn := synopsisFor(t, []*relation.Relation{r}, [][]int{rows})
		est, err := CountWithOptions(e, syn, Options{Variance: VarAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		if est.VarianceMethod != VarAnalytic {
			t.Fatalf("method = %v", est.VarianceMethod)
		}
		ests.Add(est.Value)
		vars.Add(est.Variance)
	})
	trueVar := ests.PopVariance()
	if !almostEqual(vars.Mean(), trueVar, 1e-9) {
		t.Errorf("E[Var̂] = %v, true variance = %v", vars.Mean(), trueVar)
	}
}

// TestJoinVarianceUnbiasedExhaustive does the same for the two-relation
// closed form: E[Var̂] over all sample pairs must equal the estimator's
// true variance exactly.
func TestJoinVarianceUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {1}, {2}, {3}})
	s := intRelation("S", []string{"a"}, [][]int64{{1}, {2}, {2}, {9}})
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	var ests, vars stats.Welford
	subsets(r.Len(), 2, func(rrows []int) {
		rr := append([]int{}, rrows...)
		subsets(s.Len(), 3, func(srows []int) {
			syn := synopsisFor(t, []*relation.Relation{r, s}, [][]int{rr, srows})
			est, err := CountWithOptions(e, syn, Options{Variance: VarAnalytic})
			if err != nil {
				t.Fatal(err)
			}
			ests.Add(est.Value)
			vars.Add(est.Variance)
		})
	})
	trueVar := ests.PopVariance()
	if !almostEqual(vars.Mean(), trueVar, 1e-9) {
		t.Errorf("E[Var̂] = %v, true variance = %v", vars.Mean(), trueVar)
	}
}

// --- option handling and error paths -----------------------------------

func biggishFixtures(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	rows := make([][]int64, 0, 400)
	for i := 0; i < 400; i++ {
		rows = append(rows, []int64{int64(i % 40), int64(i)})
	}
	r := intRelation("R", []string{"a", "b"}, rows)
	rows2 := make([][]int64, 0, 300)
	for i := 0; i < 300; i++ {
		rows2 = append(rows2, []int64{int64(i % 40), int64(i + 1000)})
	}
	s := intRelation("S", []string{"a", "b"}, rows2)
	return r, s
}

func TestCountWithCI(t *testing.T) {
	r, s := biggishFixtures(t)
	syn := NewSynopsis()
	rng := testRand(1)
	if err := syn.AddDrawn(r, 80, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 60, rng); err != nil {
		t.Fatal(err)
	}
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	est, err := Count(e, syn)
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarAnalytic {
		t.Errorf("auto should pick analytic for a single join term, got %v", est.VarianceMethod)
	}
	if !(est.Lo <= est.Value && est.Value <= est.Hi) {
		t.Errorf("CI [%v, %v] does not bracket estimate %v", est.Lo, est.Hi, est.Value)
	}
	if est.Confidence != 0.95 {
		t.Errorf("default confidence %v", est.Confidence)
	}
	// Chebyshev must be wider than normal at the same level.
	cheb, err := CountWithOptions(e, syn, Options{CI: CIChebyshev})
	if err != nil {
		t.Fatal(err)
	}
	if cheb.Hi-cheb.Lo <= est.Hi-est.Lo {
		t.Errorf("Chebyshev CI [%v,%v] not wider than normal [%v,%v]", cheb.Lo, cheb.Hi, est.Lo, est.Hi)
	}
	// Exact value should be inside a generous interval.
	cat := algebra.MapCatalog{"R": r, "S": s}
	want, _ := algebra.Count(e, cat)
	if est.StdErr > 0 {
		zdist := math.Abs(est.Value-float64(want)) / est.StdErr
		if zdist > 6 {
			t.Errorf("estimate %v is %.1fσ from exact %d", est.Value, zdist, want)
		}
	}
}

func TestVarianceMethodSelection(t *testing.T) {
	r, s := biggishFixtures(t)
	syn := NewSynopsis()
	rng := testRand(7)
	if err := syn.AddDrawn(r, 64, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 64, rng); err != nil {
		t.Fatal(err)
	}
	br, bs := algebra.BaseOf(r), algebra.BaseOf(s)
	sel := algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)}))
	union := algebra.Must(algebra.Union(br, bs))

	est, err := CountWithOptions(sel, syn, Options{Variance: VarAuto})
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarAnalytic {
		t.Errorf("selection should use analytic, got %v", est.VarianceMethod)
	}
	est, err = CountWithOptions(union, syn, Options{Variance: VarAuto})
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarSplitSample {
		t.Errorf("union should fall back to split-sample, got %v", est.VarianceMethod)
	}
	if est.Variance < 0 {
		t.Errorf("split-sample variance negative: %v", est.Variance)
	}
	// Explicit analytic on a union must fail.
	if _, err := CountWithOptions(union, syn, Options{Variance: VarAnalytic}); err == nil {
		t.Error("VarAnalytic on a union should fail")
	}
	// Jackknife runs (slowly) and gives a positive variance.
	est, err = CountWithOptions(sel, syn, Options{Variance: VarJackknife})
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarJackknife || est.Variance < 0 {
		t.Errorf("jackknife: method %v variance %v", est.VarianceMethod, est.Variance)
	}
	// VarNone leaves NaN.
	est, err = CountWithOptions(sel, syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(est.Variance) || est.Lo != 0 || est.Hi != 0 {
		t.Errorf("VarNone: %+v", est)
	}
}

func TestEstimateErrors(t *testing.T) {
	r, _ := biggishFixtures(t)
	br := algebra.BaseOf(r)
	syn := NewSynopsis()
	// Missing relation.
	sel := algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)}))
	if _, err := Count(sel, syn); err == nil {
		t.Error("missing sample should fail")
	}
	// π rejected.
	if err := syn.AddDrawn(r, 10, testRand(3)); err != nil {
		t.Fatal(err)
	}
	pr := algebra.Must(algebra.Project(br, "a"))
	if _, err := Count(pr, syn); err == nil {
		t.Error("projection should be rejected by Count")
	}
	// Sample smaller than occurrence multiplicity.
	small := NewSynopsis()
	if err := small.AddDrawn(r, 1, testRand(4)); err != nil {
		t.Fatal(err)
	}
	selfJoin := algebra.Must(algebra.Join(br, br, []algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	if _, err := CountWithOptions(selfJoin, small, Options{Variance: VarNone}); err == nil {
		t.Error("n=1 sample for a self-join should fail the unbiasedness precondition")
	}
	// Empty sample of a non-empty relation.
	empty := NewSynopsis()
	if err := empty.AddSample(relation.New("R", r.Schema()), r.Len()); err != nil {
		t.Fatal(err)
	}
	if _, err := CountWithOptions(sel, empty, Options{Variance: VarNone}); err == nil {
		t.Error("empty sample of non-empty relation should fail")
	}
}

func TestTermsReported(t *testing.T) {
	r, s := biggishFixtures(t)
	syn := NewSynopsis()
	rng := testRand(9)
	_ = syn.AddDrawn(r, 32, rng)
	_ = syn.AddDrawn(s, 32, rng)
	u := algebra.Must(algebra.Union(algebra.BaseOf(r), algebra.BaseOf(s)))
	est, err := CountWithOptions(u, syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if est.Terms != 3 {
		t.Errorf("union should report 3 terms, got %d", est.Terms)
	}
}
