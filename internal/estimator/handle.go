package estimator

import (
	"context"
	"fmt"
	"time"

	"relest/internal/algebra"
	"relest/internal/obs"
)

// Estimator is the unified estimation handle: one synopsis, one set of
// evaluation options, one tier policy, answering every request from the
// cheapest tier that meets its precision target. It replaces the spread
// of free functions (Count/CountWithOptions/CountContext/Sum.../...) with
// a single (expression, request) surface; the free functions survive as
// deprecated thin wrappers over a TierSampleOnly handle and stay
// bit-identical to their historical outputs.
//
// A handle is cheap and immutable after construction; it is safe for
// concurrent use exactly when its synopsis is (static synopses are —
// EnsureSketches is the only internal mutation and is mutex-guarded and
// idempotent).
type Estimator struct {
	syn       *Synopsis
	opts      Options
	policy    TierPolicy
	precision float64
}

// EstimatorOption configures a handle at construction.
type EstimatorOption func(*Estimator)

// WithOptions sets the evaluation options (variance method, confidence,
// workers, recorder, ...) used by every request on the handle.
func WithOptions(opts Options) EstimatorOption {
	return func(e *Estimator) { e.opts = opts }
}

// WithTierPolicy sets the handle's default tier policy (TierAuto when
// unset); individual requests override it via Request.Tier.
func WithTierPolicy(p TierPolicy) EstimatorOption {
	return func(e *Estimator) { e.policy = p }
}

// WithPrecision sets the handle's default target relative CI half-width
// for accepting sketch-tier answers (DefaultPrecision when unset);
// individual requests override it via Request.Precision.
func WithPrecision(w float64) EstimatorOption {
	return func(e *Estimator) { e.precision = w }
}

// NewEstimator builds an estimation handle over the synopsis. Unless the
// policy is TierSampleOnly it also builds the synopsis's sketch tier
// (idempotent; one full scan of each retained base relation the first
// time).
func NewEstimator(syn *Synopsis, eopts ...EstimatorOption) *Estimator {
	e := &Estimator{syn: syn, policy: TierAuto}
	for _, o := range eopts {
		o(e)
	}
	if e.policy == TierDefault {
		e.policy = TierAuto
	}
	if e.precision <= 0 {
		e.precision = DefaultPrecision
	}
	if e.policy != TierSampleOnly {
		syn.EnsureSketches()
	}
	return e
}

// Synopsis returns the handle's synopsis.
func (e *Estimator) Synopsis() *Synopsis { return e.syn }

// Request is one estimation request against a handle.
type Request struct {
	// Expr is the π-free relational algebra expression.
	Expr *algebra.Expr
	// Col names the aggregated column (Sum/Avg) or grouping column
	// (GroupCount); ignored by Count.
	Col string
	// Precision is the target relative CI half-width for accepting a
	// sketch-tier answer; 0 uses the handle's default.
	Precision float64
	// Deadline, when positive, bounds the request's wall time (the
	// context is narrowed with a timeout; cancellation aborts between
	// polynomial terms and variance replicates with no partial result).
	Deadline time.Duration
	// Tier overrides the handle's tier policy for this request;
	// TierDefault (the zero value) keeps the handle's.
	Tier TierPolicy
}

// Result is an estimate plus the tier(s) that answered it.
type Result struct {
	Estimate
	// Tier reports which tier(s) produced the value.
	Tier TierReport
}

// requestContext narrows the context by the request's deadline.
func (req Request) requestContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if req.Deadline > 0 {
		return context.WithTimeout(ctx, req.Deadline)
	}
	return ctx, func() {}
}

// policyFor resolves the effective tier policy of a request.
func (e *Estimator) policyFor(req Request) TierPolicy {
	if req.Tier != TierDefault {
		return req.Tier
	}
	return e.policy
}

// precisionFor resolves the effective precision target of a request.
func (e *Estimator) precisionFor(req Request) float64 {
	if req.Precision > 0 {
		return req.Precision
	}
	return e.precision
}

// recordTier emits the tier-planner metrics (tiered requests only, so
// sample-only wrappers keep their historical metric families exactly).
func (e *Estimator) recordTier(rep TierReport) {
	rec := e.opts.Recorder
	if !obs.Live(rec) {
		return
	}
	rec.Add(tierAnsweredMetric(rep.Answered), 1)
	rec.Set(mSketchBytes, float64(e.syn.SketchBytes()))
}

// Count estimates COUNT(req.Expr). Under TierSampleOnly the call is
// bit-identical to CountContext with the handle's options; under TierAuto
// or TierSketchOnly the tier planner runs (see tier.go).
func (e *Estimator) Count(ctx context.Context, req Request) (Result, error) {
	ctx, cancel := req.requestContext(ctx)
	defer cancel()
	policy := e.policyFor(req)
	if policy == TierSampleOnly {
		est, err := CountContext(ctx, req.Expr, e.syn, e.opts)
		if err != nil {
			return Result{}, err
		}
		return Result{Estimate: est, Tier: TierReport{Answered: TierAnsweredSample, SampleTerms: est.Terms}}, nil
	}
	e.syn.EnsureSketches() // per-request tier overrides on a sample-only handle
	est, rep, err := tieredCount(ctx, req.Expr, e.syn, e.opts, policy, e.precisionFor(req))
	if err != nil {
		return Result{}, err
	}
	e.recordTier(rep)
	return Result{Estimate: est, Tier: rep}, nil
}

// Sum estimates SUM(req.Col) over req.Expr's result. Aggregates carry no
// sketch form, so every Sum is answered by the sample tier; a
// TierSketchOnly request fails rather than silently downgrading.
func (e *Estimator) Sum(ctx context.Context, req Request) (Result, error) {
	ctx, cancel := req.requestContext(ctx)
	defer cancel()
	if e.policyFor(req) == TierSketchOnly {
		return Result{}, fmt.Errorf("estimator: sketch tier cannot answer SUM(%s); aggregates need the sample tier (auto or sample policy)", req.Col)
	}
	est, err := SumContext(ctx, req.Expr, req.Col, e.syn, e.opts)
	if err != nil {
		return Result{}, err
	}
	return Result{Estimate: est, Tier: TierReport{Answered: TierAnsweredSample, SampleTerms: est.Terms}}, nil
}

// Avg estimates AVG(req.Col) over req.Expr's result as the SUM/COUNT
// ratio. Like Sum it is always sample-tier.
func (e *Estimator) Avg(ctx context.Context, req Request) (AvgResult, TierReport, error) {
	ctx, cancel := req.requestContext(ctx)
	defer cancel()
	if e.policyFor(req) == TierSketchOnly {
		return AvgResult{}, TierReport{}, fmt.Errorf("estimator: sketch tier cannot answer AVG(%s); aggregates need the sample tier (auto or sample policy)", req.Col)
	}
	res, err := AvgContext(ctx, req.Expr, req.Col, e.syn, e.opts)
	if err != nil {
		return AvgResult{}, TierReport{}, err
	}
	return res, TierReport{Answered: TierAnsweredSample}, nil
}

// GroupCount estimates COUNT(*) GROUP BY req.Col over req.Expr's result,
// sorted by descending estimated count. Always sample-tier.
func (e *Estimator) GroupCount(ctx context.Context, req Request) ([]GroupEstimate, TierReport, error) {
	ctx, cancel := req.requestContext(ctx)
	defer cancel()
	if e.policyFor(req) == TierSketchOnly {
		return nil, TierReport{}, fmt.Errorf("estimator: sketch tier cannot answer GROUP BY %s; grouping needs the sample tier (auto or sample policy)", req.Col)
	}
	if err := ctx.Err(); err != nil {
		return nil, TierReport{}, err
	}
	groups, err := GroupCount(req.Expr, req.Col, e.syn)
	if err != nil {
		return nil, TierReport{}, err
	}
	return groups, TierReport{Answered: TierAnsweredSample}, nil
}
