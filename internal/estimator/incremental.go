package estimator

import (
	"fmt"
	"math/rand"

	"relest/internal/relation"
	"relest/internal/sampling"
)

// Incremental synopsis maintenance: the calibration hint for this paper is
// its role as an *incremental synopsis technique* — the per-relation
// uniform samples are maintained continuously under a stream of insertions
// and deletions, so a COUNT estimate of any registered expression is
// available at any moment without touching the base data.
//
// Insertions run Vitter's reservoir sampling; deletions use random-pairing
// compensation (package sampling), which preserves the uniformity of each
// bounded sample without rescanning. A Snapshot materializes the current
// samples plus exact cardinality counters into a Synopsis for estimation.
//
// Contract: tuples of a tracked relation are identified by value, so each
// relation must be duplicate-free (proper set semantics — the same
// requirement the algebra's set operations already impose). Streams whose
// natural payload repeats must carry a unique identifier column, which is
// how deletion events reference rows in change-data-capture feeds anyway.
// With duplicate tuples present, Delete cannot tell which physical instance
// died and the sample's uniformity degrades.

// Incremental maintains bounded uniform samples over insert/delete streams
// for a set of base relations.
type Incremental struct {
	capacity int
	rng      *rand.Rand
	rels     map[string]*incRel
}

type incRel struct {
	schema    *relation.Schema
	reservoir *sampling.PairedReservoir[relation.Tuple]
	// sketches is the always-on sketch tier over the full stream (not the
	// reservoir): AGMS column sketches are exactly linear, so maintaining
	// them per event equals a rebuild atom for atom. The updates consume
	// no randomness, leaving the reservoir's sampling decisions — and
	// therefore every sample-tier estimate — bit-identical.
	sketches *relSketches
}

// IncrementalOptions configures an incremental synopsis.
type IncrementalOptions struct {
	// Capacity is the maximum number of sampled tuples per relation
	// (required, ≥ 1).
	Capacity int
	// RNG drives all sampling decisions. When nil, a deterministic
	// generator seeded with Seed is used.
	RNG *rand.Rand
	// Seed seeds the sampling RNG when RNG is nil.
	Seed int64
}

// NewIncremental creates an incremental synopsis holding up to capacity
// sampled tuples per relation. The RNG drives all sampling decisions; use a
// seeded generator for reproducible runs.
//
// Deprecated: use NewIncrementalWithOptions, which takes the RNG through
// IncrementalOptions (RNG/Seed) like every other estimation entry point.
// This wrapper forwards rng via opts.RNG and behaves identically.
func NewIncremental(capacity int, rng *rand.Rand) *Incremental {
	return NewIncrementalWithOptions(IncrementalOptions{Capacity: capacity, RNG: rng})
}

// NewIncrementalWithOptions creates an incremental synopsis from options.
// It panics when Capacity < 1 (a programming error, like a negative slice
// capacity).
func NewIncrementalWithOptions(opts IncrementalOptions) *Incremental {
	if opts.Capacity < 1 {
		panic(fmt.Sprintf("estimator: incremental synopsis capacity %d < 1", opts.Capacity))
	}
	rng := opts.RNG
	if rng == nil {
		rng = sampling.Seeded(opts.Seed)
	}
	return &Incremental{capacity: opts.Capacity, rng: rng, rels: map[string]*incRel{}}
}

// Track registers a relation (by name and schema) for maintenance.
func (inc *Incremental) Track(name string, schema *relation.Schema) error {
	if _, dup := inc.rels[name]; dup {
		return fmt.Errorf("estimator: relation %q already tracked", name)
	}
	inc.rels[name] = &incRel{
		schema: schema,
		reservoir: sampling.NewPairedReservoir[relation.Tuple](inc.rng, inc.capacity,
			func(t relation.Tuple) string { return t.Key(nil) }),
		sketches: newRelSketches(schema.Len()),
	}
	return nil
}

// Insert processes the arrival of a tuple for the named relation.
func (inc *Incremental) Insert(name string, t relation.Tuple) error {
	ir, ok := inc.rels[name]
	if !ok {
		return fmt.Errorf("estimator: relation %q not tracked", name)
	}
	if len(t) != ir.schema.Len() {
		return fmt.Errorf("estimator: tuple arity %d != schema arity %d for %q", len(t), ir.schema.Len(), name)
	}
	ir.reservoir.Insert(t)
	ir.sketches.insert(t)
	return nil
}

// Delete processes the deletion of one instance of a tuple from the named
// relation. Deleting a tuple that was never inserted leaves the maintained
// cardinality wrong; the caller owns stream well-formedness.
func (inc *Incremental) Delete(name string, t relation.Tuple) error {
	ir, ok := inc.rels[name]
	if !ok {
		return fmt.Errorf("estimator: relation %q not tracked", name)
	}
	if !ir.reservoir.Delete(t) {
		return fmt.Errorf("estimator: delete from empty relation %q", name)
	}
	ir.sketches.remove(t)
	return nil
}

// PopulationSize returns the maintained exact cardinality of the relation.
func (inc *Incremental) PopulationSize(name string) (int64, bool) {
	ir, ok := inc.rels[name]
	if !ok {
		return 0, false
	}
	return ir.reservoir.PopulationSize(), true
}

// SampleSize returns the current number of sampled tuples for the relation.
func (inc *Incremental) SampleSize(name string) (int, bool) {
	ir, ok := inc.rels[name]
	if !ok {
		return 0, false
	}
	return ir.reservoir.SampleSize(), true
}

// Snapshot materializes the current samples into a Synopsis usable with
// every estimator in this package. The snapshot is independent of later
// stream updates.
func (inc *Incremental) Snapshot() (*Synopsis, error) {
	syn := NewSynopsis()
	for name, ir := range inc.rels {
		sample := relation.New(name, ir.schema)
		for _, t := range ir.reservoir.Items() {
			if err := sample.Append(t); err != nil {
				return nil, err
			}
		}
		if err := syn.AddSample(sample, int(ir.reservoir.PopulationSize())); err != nil {
			return nil, err
		}
		// Transplant a deep copy of the stream's sketch tier so the
		// snapshot stays independent of later updates; the tier planner
		// can then answer sketch-shaped terms from this snapshot even
		// though its relations carry no base (AddSample).
		syn.attachSketches(name, ir.sketches.clone())
	}
	return syn, nil
}
