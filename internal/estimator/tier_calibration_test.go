// Sketch-tier calibration and escalation tests: seed-pinned checks that
// the AGMS tier answers the shapes it claims within its calibration band,
// escalates (never errors) on everything else, and composes mixed-tier
// estimates sensibly. Lives in estimator_test to drive the public handle
// the way facade callers do.
package estimator_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// tierFixture draws a synopsis over a T2-style zipf join pair and returns
// the join expression and its exact count.
func tierFixture(t *testing.T, seed int64, nRows int) (*estimator.Synopsis, *algebra.Expr, float64) {
	t.Helper()
	src := sampling.NewSource(seed)
	r1, r2 := workload.JoinPair(src.Rand(0), workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: nRows / 20, N1: nRows, N2: nRows,
		Correlation: workload.Independent,
	})
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	actual, err := algebra.Count(join, algebra.MapCatalog{"R1": r1, "R2": r2})
	if err != nil {
		t.Fatal(err)
	}
	rng := src.Rand(1)
	syn := estimator.NewSynopsis()
	if err := syn.AddDrawn(r1, nRows/20, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, nRows/20, rng); err != nil {
		t.Fatal(err)
	}
	return syn, join, float64(actual)
}

// TestTierSketchCalibrationJoin pins the sketch tier's T2 contract: under
// the auto policy a plain equi-join is answered from the sketches, the
// point estimate lands inside the calibration band, and the reported CI
// covers the exact count. Everything is seed-pinned — the ξ streams come
// from the fixed sketch configuration — so a violation is a regression,
// not a flake.
func TestTierSketchCalibrationJoin(t *testing.T) {
	syn, join, actual := tierFixture(t, 7, 8_000)
	h := estimator.NewEstimator(syn, estimator.WithPrecision(0.15))
	res, err := h.Count(context.Background(), estimator.Request{Expr: join})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier.Answered != estimator.TierAnsweredSketch {
		t.Fatalf("tier %q (sketch %d, sample %d), want sketch", res.Tier.Answered,
			res.Tier.SketchTerms, res.Tier.SampleTerms)
	}
	if res.VarianceMethod != estimator.VarSketch {
		t.Errorf("variance method %v, want sketch", res.VarianceMethod)
	}
	relErr := math.Abs(res.Value-actual) / actual
	if relErr > 0.15 {
		t.Errorf("sketch estimate %v vs exact %v: relative error %.3f outside the 15%% band",
			res.Value, actual, relErr)
	}
	if !(res.Lo <= actual && actual <= res.Hi) {
		t.Errorf("95%% CI [%v, %v] misses the exact count %v", res.Lo, res.Hi, actual)
	}
	if res.StdErr <= 0 {
		t.Errorf("stderr %v, want > 0", res.StdErr)
	}
}

// TestTierSketchCalibrationSelfJoin pins the F₂ shape: joining a relation
// with itself on the join attribute is the second frequency moment, which
// the tier answers from one sketch's self-join estimator.
func TestTierSketchCalibrationSelfJoin(t *testing.T) {
	src := sampling.NewSource(13)
	gen := src.Rand(0)
	r := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	freq := map[int64]float64{}
	for i := 0; i < 20_000; i++ {
		v := int64(gen.Intn(500))
		r.MustAppend(relation.Tuple{relation.Int(v)})
		freq[v]++
	}
	var f2 float64
	for _, c := range freq {
		f2 += c * c
	}
	selfJoin := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(r),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := estimator.NewSynopsis()
	if err := syn.AddDrawn(r, 500, src.Rand(1)); err != nil {
		t.Fatal(err)
	}
	h := estimator.NewEstimator(syn)
	res, err := h.Count(context.Background(), estimator.Request{Expr: selfJoin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier.Answered != estimator.TierAnsweredSketch {
		t.Fatalf("tier %q, want sketch", res.Tier.Answered)
	}
	if relErr := math.Abs(res.Value-f2) / f2; relErr > 0.10 {
		t.Errorf("F₂ estimate %v vs exact %v: relative error %.3f outside the 10%% band",
			res.Value, f2, relErr)
	}
}

// TestTierEscalationNeverErrors drives every sketch-ineligible shape the
// planner must escalate — selections, θ residuals, set operations,
// products, and relations registered without a base — and asserts the auto
// policy answers each one through the sample tier with the exact value the
// legacy path computes, never an error.
func TestTierEscalationNeverErrors(t *testing.T) {
	src := sampling.NewSource(3)
	r1, r2 := workload.JoinPair(src.Rand(0), workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 200, N1: 4_000, N2: 4_000,
		Correlation: workload.Independent,
	})
	rng := src.Rand(1)
	syn := estimator.NewSynopsis()
	if err := syn.AddDrawn(r1, 400, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 400, rng); err != nil {
		t.Fatal(err)
	}

	equi := []algebra.On{{Left: "a", Right: "a"}}
	shapes := []struct {
		name string
		expr *algebra.Expr
	}{
		{"selection", algebra.Must(algebra.Select(algebra.BaseOf(r1),
			algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(50)}))},
		{"theta residual", algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
			equi, algebra.ColCmp{A: "a", B: "R2.a", Op: algebra.LE}, "R2"))},
		{"selected join", algebra.Must(algebra.Select(
			algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2), equi, nil, "R2")),
			algebra.Cmp{Col: "a", Op: algebra.GT, Val: relation.Int(20)}))},
		{"union", algebra.Must(algebra.Union(algebra.BaseOf(r1), algebra.BaseOf(r2)))},
		{"intersection", algebra.Must(algebra.Intersect(algebra.BaseOf(r1), algebra.BaseOf(r2)))},
		{"difference", algebra.Must(algebra.Diff(algebra.BaseOf(r1), algebra.BaseOf(r2)))},
	}
	h := estimator.NewEstimator(syn)
	ctx := context.Background()
	for _, c := range shapes {
		t.Run(c.name, func(t *testing.T) {
			res, err := h.Count(ctx, estimator.Request{Expr: c.expr})
			if err != nil {
				t.Fatalf("auto policy errored on a sketch-ineligible shape: %v", err)
			}
			if res.Tier.SampleTerms == 0 {
				t.Fatalf("tier report %+v: expected at least one escalated term", res.Tier)
			}
			want, err := estimator.CountContext(ctx, c.expr, syn, estimator.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Tier.Answered == estimator.TierAnsweredSample && res.Value != want.Value {
				t.Errorf("escalated value %v != legacy sample value %v", res.Value, want.Value)
			}
		})
	}

	// A relation registered via AddSample has no base to sketch: a plain
	// equi-join over it must escalate under auto, not error.
	sampleOnly := estimator.NewSynopsis()
	sub := relation.New("R1", r1.Schema())
	for i := 0; i < 200; i++ {
		sub.MustAppend(relation.Tuple{r1.Value(i, 0), r1.Value(i, 1)})
	}
	if err := sampleOnly.AddSample(sub, r1.Len()); err != nil {
		t.Fatal(err)
	}
	sub2 := relation.New("R2", r2.Schema())
	for i := 0; i < 200; i++ {
		sub2.MustAppend(relation.Tuple{r2.Value(i, 0), r2.Value(i, 1)})
	}
	if err := sampleOnly.AddSample(sub2, r2.Len()); err != nil {
		t.Fatal(err)
	}
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2), equi, nil, "R2"))
	res, err := estimator.NewEstimator(sampleOnly).Count(ctx, estimator.Request{Expr: join})
	if err != nil {
		t.Fatalf("auto policy errored on a baseless synopsis: %v", err)
	}
	if res.Tier.Answered != estimator.TierAnsweredSample {
		t.Errorf("tier %q over a baseless synopsis, want sample", res.Tier.Answered)
	}
	// The sketch-only policy is the one that refuses, with a reason.
	_, err = estimator.NewEstimator(sampleOnly,
		estimator.WithTierPolicy(estimator.TierSketchOnly)).Count(ctx, estimator.Request{Expr: join})
	if err == nil || !strings.Contains(err.Error(), "no sketch tier") {
		t.Errorf("sketch-only over a baseless synopsis: err %v, want a no-sketch-tier refusal", err)
	}
}

// TestTierMixedComposition: a union polynomial mixes exact cardinality
// terms (sketch tier) with an intersection term (sample tier); the planner
// must report "mixed" and compose the value from both tiers. The bases are
// duplicate-free (set semantics — what the set-operation polynomial
// identities assume) and two-column, so the intersection term carries two
// equalities and escalates.
func TestTierMixedComposition(t *testing.T) {
	src := sampling.NewSource(19)
	schema := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt})
	r1 := relation.New("R1", schema)
	r2 := relation.New("R2", schema)
	for i := 0; i < 10_000; i++ {
		r1.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 7))})
		r2.MustAppend(relation.Tuple{relation.Int(int64(i + 5_000)), relation.Int(int64((i + 5_000) % 7))})
	}
	union := algebra.Must(algebra.Union(algebra.BaseOf(r1), algebra.BaseOf(r2)))
	actual, err := algebra.Count(union, algebra.MapCatalog{"R1": r1, "R2": r2})
	if err != nil {
		t.Fatal(err)
	}
	rng := src.Rand(1)
	syn := estimator.NewSynopsis()
	if err := syn.AddDrawn(r1, 800, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 800, rng); err != nil {
		t.Fatal(err)
	}
	res, err := estimator.NewEstimator(syn).Count(context.Background(), estimator.Request{Expr: union})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier.Answered != estimator.TierAnsweredMixed {
		t.Fatalf("tier %q (sketch %d, sample %d), want mixed", res.Tier.Answered,
			res.Tier.SketchTerms, res.Tier.SampleTerms)
	}
	if res.Tier.SketchTerms < 2 || res.Tier.SampleTerms < 1 {
		t.Errorf("tier report %+v: want ≥2 sketch terms (the cardinalities) and ≥1 escalated", res.Tier)
	}
	if relErr := math.Abs(res.Value-float64(actual)) / float64(actual); relErr > 0.25 {
		t.Errorf("mixed estimate %v vs exact %d: relative error %.3f", res.Value, actual, relErr)
	}
	if res.StdErr <= 0 || !(res.Lo < res.Value && res.Value < res.Hi) {
		t.Errorf("mixed CI not composed: stderr %v, CI [%v, %v]", res.StdErr, res.Lo, res.Hi)
	}
}

// TestEstimatorHandleAggregates covers the handle's non-count surface:
// aggregates are sample-tier by construction, refuse the sketch-only
// policy, and honor request deadlines.
func TestEstimatorHandleAggregates(t *testing.T) {
	src := sampling.NewSource(29)
	r1, _ := workload.JoinPair(src.Rand(0), workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 100, N1: 2_000, N2: 2_000,
		Correlation: workload.Independent,
	})
	syn := estimator.NewSynopsis()
	if err := syn.AddDrawn(r1, 200, src.Rand(1)); err != nil {
		t.Fatal(err)
	}
	base := algebra.BaseOf(r1)
	ctx := context.Background()
	h := estimator.NewEstimator(syn)

	sum, err := h.Sum(ctx, estimator.Request{Expr: base, Col: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tier.Answered != estimator.TierAnsweredSample || sum.Value <= 0 {
		t.Errorf("Sum: tier %q value %v", sum.Tier.Answered, sum.Value)
	}
	avg, rep, err := h.Avg(ctx, estimator.Request{Expr: base, Col: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answered != estimator.TierAnsweredSample || avg.Avg <= 0 {
		t.Errorf("Avg: tier %q value %v", rep.Answered, avg.Avg)
	}
	groups, rep, err := h.GroupCount(ctx, estimator.Request{Expr: base, Col: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answered != estimator.TierAnsweredSample || len(groups) == 0 {
		t.Errorf("GroupCount: tier %q groups %d", rep.Answered, len(groups))
	}

	sk := estimator.NewEstimator(syn, estimator.WithTierPolicy(estimator.TierSketchOnly))
	if _, err := sk.Sum(ctx, estimator.Request{Expr: base, Col: "a"}); err == nil {
		t.Error("sketch-only Sum must fail")
	}
	if _, _, err := sk.Avg(ctx, estimator.Request{Expr: base, Col: "a"}); err == nil {
		t.Error("sketch-only Avg must fail")
	}
	if _, _, err := sk.GroupCount(ctx, estimator.Request{Expr: base, Col: "a"}); err == nil {
		t.Error("sketch-only GroupCount must fail")
	}

	// A cancelled context aborts with an error, not a partial result.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := h.GroupCount(cancelled, estimator.Request{Expr: base, Col: "a"}); err == nil {
		t.Error("cancelled GroupCount must fail")
	}

	// A per-request tier override on a sample-only handle still works: the
	// handle lazily builds the sketch tier for the overriding request.
	so := estimator.NewEstimator(syn, estimator.WithTierPolicy(estimator.TierSampleOnly))
	res, err := so.Count(ctx, estimator.Request{Expr: base, Tier: estimator.TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier.Answered != estimator.TierAnsweredSketch {
		t.Errorf("per-request auto override answered %q, want sketch (bare cardinality)", res.Tier.Answered)
	}
}
