package estimator

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

// --- page-level (cluster) sampling --------------------------------------

// TestPageSamplingUnbiasedExhaustive enumerates every page sample of a tiny
// relation (including a short last page) and checks that selection and join
// estimates are exactly unbiased under the page design.
func TestPageSamplingUnbiasedExhaustive(t *testing.T) {
	// 7 rows, pageSize 2 → 4 pages, the last short.
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {1}, {2}, {3}, {2}, {5}, {1}})
	s := intRelation("S", []string{"a"}, [][]int64{{1}, {2}, {9}, {1}})
	cat := algebra.MapCatalog{"R": r, "S": s}
	br, bs := algebra.BaseOf(r), algebra.BaseOf(s)

	sel := algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.LE, Val: relation.Int(2)}))
	join := algebra.Must(algebra.Join(br, bs, []algebra.On{{Left: "a", Right: "a"}}, nil, "S"))

	// Selection: R page-sampled, 2 of 4 pages.
	{
		want, _ := algebra.Count(sel, cat)
		const pageSize, M, m = 2, 4, 2
		var mean stats.Welford
		subsets(M, m, func(pages []int) {
			syn := pageSynopsisFor(t, r, pageSize, pages)
			est, err := CountWithOptions(sel, syn, Options{Variance: VarNone})
			if err != nil {
				t.Fatal(err)
			}
			mean.Add(est.Value)
		})
		if !almostEqual(mean.Mean(), float64(want), 1e-9) {
			t.Errorf("page selection: E[est] = %v, exact %d", mean.Mean(), want)
		}
	}
	// Join: R page-sampled (2 of 4 pages), S tuple-sampled (2 of 4 rows).
	{
		want, _ := algebra.Count(join, cat)
		var mean stats.Welford
		subsets(4, 2, func(pages []int) {
			pagesCopy := append([]int{}, pages...)
			subsets(s.Len(), 2, func(srows []int) {
				syn := pageSynopsisFor(t, r, 2, pagesCopy)
				if err := syn.AddSample(s.Subset("S", srows), s.Len()); err != nil {
					t.Fatal(err)
				}
				est, err := CountWithOptions(join, syn, Options{Variance: VarNone})
				if err != nil {
					t.Fatal(err)
				}
				mean.Add(est.Value)
			})
		})
		if !almostEqual(mean.Mean(), float64(want), 1e-9) {
			t.Errorf("page join: E[est] = %v, exact %d", mean.Mean(), want)
		}
	}
}

// pageSynopsisFor builds a synopsis with a deterministic page sample: the
// given page ids of the relation at the given page size.
func pageSynopsisFor(t *testing.T, base *relation.Relation, pageSize int, pages []int) *Synopsis {
	t.Helper()
	syn := NewSynopsis()
	M := (base.Len() + pageSize - 1) / pageSize
	rs := &relSynopsis{
		name:     base.Name(),
		N:        base.Len(),
		M:        M,
		m:        len(pages),
		pageSize: pageSize,
	}
	var positions []int
	for _, p := range pages {
		lo, hi := p*pageSize, (p+1)*pageSize
		if hi > base.Len() {
			hi = base.Len()
		}
		var cluster []int
		for i := lo; i < hi; i++ {
			cluster = append(cluster, len(positions))
			positions = append(positions, i)
		}
		rs.clusters = append(rs.clusters, cluster)
	}
	rs.sample = base.Subset(base.Name(), positions)
	rs.n = rs.sample.Len()
	syn.rels[base.Name()] = rs
	return syn
}

// TestPageVarianceUnbiasedExhaustive: the ultimate-cluster variance formula
// must be unbiased over all page samples.
func TestPageVarianceUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {1}, {2}, {3}, {2}, {5}, {1}, {2}})
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.LE, Val: relation.Int(2)}))
	const pageSize, M, m = 2, 4, 2
	var ests, vars stats.Welford
	subsets(M, m, func(pages []int) {
		syn := pageSynopsisFor(t, r, pageSize, pages)
		est, err := CountWithOptions(sel, syn, Options{Variance: VarAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		ests.Add(est.Value)
		vars.Add(est.Variance)
	})
	if !almostEqual(vars.Mean(), ests.PopVariance(), 1e-9) {
		t.Errorf("E[Var̂] = %v, true variance %v", vars.Mean(), ests.PopVariance())
	}
}

func TestPageSamplingAPI(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}, {7}})
	syn := NewSynopsis()
	if err := syn.AddDrawnPages(r, 3, 2, testRand(1)); err != nil {
		t.Fatal(err)
	}
	ps, ok := syn.Design("R")
	if !ok || ps != 3 {
		t.Errorf("design %d %v", ps, ok)
	}
	n, _ := syn.SampleSize("R")
	if n < 4 || n > 6 { // 2 pages of ≤3 rows, one may be the short page
		t.Errorf("sample size %d", n)
	}
	// Self-join over a page sample must be refused.
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(r),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	if _, err := CountWithOptions(e, syn, Options{Variance: VarNone}); err == nil {
		t.Error("repeated relation over page sample should fail")
	}
	// Distinct over a page sample must be refused.
	if _, err := Distinct(syn, "R", []string{"a"}, DistinctGEE); err == nil {
		t.Error("distinct over page sample should fail")
	}
	// Page sample can be extended (by whole pages).
	if err := syn.ExtendSample("R", 1, testRand(2)); err != nil {
		t.Fatal(err)
	}
	if n, _ := syn.SampleSize("R"); n != 7 {
		t.Errorf("after extension n=%d, want census 7", n)
	}
	// Validation.
	if err := syn.AddDrawnPages(r, 0, 1, testRand(3)); err == nil {
		t.Error("page size 0 should fail")
	}
	syn2 := NewSynopsis()
	if err := syn2.AddDrawnPages(r, 2, 99, testRand(3)); err == nil {
		t.Error("too many pages should fail")
	}
}

// --- stratified sampling -------------------------------------------------

// TestStratifiedUnbiasedExhaustive enumerates every stratified sample
// (per-stratum subsets) and checks exact unbiasedness of the
// Horvitz–Thompson weighted estimator.
func TestStratifiedUnbiasedExhaustive(t *testing.T) {
	// Stratum 0: a < 10 (3 rows); stratum 1: a ≥ 10 (4 rows).
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {10}, {11}, {12}, {13}})
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.LE, Val: relation.Int(11)}))
	want, _ := algebra.Count(sel, algebra.MapCatalog{"R": r})

	strat0 := []int{0, 1, 2}
	strat1 := []int{3, 4, 5, 6}
	const n0, n1 = 2, 2
	var mean stats.Welford
	subsets(len(strat0), n0, func(s0 []int) {
		s0c := append([]int{}, s0...)
		subsets(len(strat1), n1, func(s1 []int) {
			syn := stratifiedSynopsisFor(t, r, [][]int{strat0, strat1}, [][]int{s0c, s1})
			est, err := CountWithOptions(sel, syn, Options{Variance: VarNone})
			if err != nil {
				t.Fatal(err)
			}
			mean.Add(est.Value)
		})
	})
	if !almostEqual(mean.Mean(), float64(want), 1e-9) {
		t.Errorf("stratified: E[est] = %v, exact %d", mean.Mean(), want)
	}
}

// stratifiedSynopsisFor builds a synopsis with a deterministic stratified
// sample: strata gives population row ids per stratum; picks gives indices
// into each stratum to sample.
func stratifiedSynopsisFor(t *testing.T, base *relation.Relation, strata [][]int, picks [][]int) *Synopsis {
	t.Helper()
	syn := NewSynopsis()
	rs := &relSynopsis{name: base.Name(), N: base.Len(), M: base.Len()}
	var positions []int
	for si, stratumRows := range strata {
		st := stratumInfo{Nh: len(stratumRows)}
		for _, p := range picks[si] {
			st.units = append(st.units, len(positions))
			positions = append(positions, stratumRows[p])
		}
		rs.strata = append(rs.strata, st)
	}
	rs.sample = base.Subset(base.Name(), positions)
	rs.n = rs.sample.Len()
	rs.m = rs.n
	rs.clusters = singletonClusters(rs.n)
	syn.rels[base.Name()] = rs
	return syn
}

// TestStratifiedVarianceUnbiasedExhaustive: the stratified closed-form
// variance must average to the estimator's true variance.
func TestStratifiedVarianceUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a"}, [][]int64{{1}, {2}, {3}, {10}, {11}, {12}, {13}})
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.LE, Val: relation.Int(11)}))
	strat0 := []int{0, 1, 2}
	strat1 := []int{3, 4, 5, 6}
	var ests, vars stats.Welford
	subsets(len(strat0), 2, func(s0 []int) {
		s0c := append([]int{}, s0...)
		subsets(len(strat1), 2, func(s1 []int) {
			syn := stratifiedSynopsisFor(t, r, [][]int{strat0, strat1}, [][]int{s0c, s1})
			est, err := CountWithOptions(sel, syn, Options{Variance: VarAnalytic})
			if err != nil {
				t.Fatal(err)
			}
			ests.Add(est.Value)
			vars.Add(est.Variance)
		})
	})
	if !almostEqual(vars.Mean(), ests.PopVariance(), 1e-9) {
		t.Errorf("E[Var̂] = %v, true variance %v", vars.Mean(), ests.PopVariance())
	}
}

// TestStratificationReducesVariance demonstrates the design's purpose: with
// strata aligned to the selection attribute, the stratified estimator's
// true variance is far below plain SRSWOR at equal sample size.
func TestStratificationReducesVariance(t *testing.T) {
	// 1000 rows: a = i/100 (10 homogeneous strata of 100).
	rows := make([][]int64, 1000)
	for i := range rows {
		rows[i] = []int64{int64(i / 100)}
	}
	r := intRelation("R", []string{"a"}, rows)
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(3)}))
	const trials, n = 300, 50
	var plain, strat stats.Welford
	for tr := 0; tr < trials; tr++ {
		rng := testRand(int64(1000 + tr))
		syn := NewSynopsis()
		if err := syn.AddDrawn(r, n, rng); err != nil {
			t.Fatal(err)
		}
		est, err := CountWithOptions(sel, syn, Options{Variance: VarNone})
		if err != nil {
			t.Fatal(err)
		}
		plain.Add(est.Value)

		syn2 := NewSynopsis()
		err = syn2.AddDrawnStratified(r, func(row relation.Row) int {
			return int(row.Value(0).Int64())
		}, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		est2, err := CountWithOptions(sel, syn2, Options{Variance: VarNone})
		if err != nil {
			t.Fatal(err)
		}
		strat.Add(est2.Value)
	}
	// Perfectly aligned strata make the stratified estimator exact.
	if strat.Variance() > 1e-9 {
		t.Errorf("aligned stratification should be exact; variance %v", strat.Variance())
	}
	if plain.Variance() < 100 {
		t.Errorf("plain SRSWOR variance suspiciously small: %v", plain.Variance())
	}
	if math.Abs(strat.Mean()-300) > 1e-6 {
		t.Errorf("stratified mean %v, want 300", strat.Mean())
	}
}

func TestStratifiedAPIAndGuards(t *testing.T) {
	r := intRelation("R", []string{"a", "id"}, func() [][]int64 {
		rows := make([][]int64, 200)
		for i := range rows {
			rows[i] = []int64{int64(i % 4), int64(i)}
		}
		return rows
	}())
	syn := NewSynopsis()
	err := syn.AddDrawnStratified(r, func(row relation.Row) int { return int(row.Value(0).Int64()) }, 40, testRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := syn.SampleSize("R"); n < 40 || n > 48 {
		t.Errorf("stratified sample size %d", n)
	}
	// Self-join refused.
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(r),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	if _, err := CountWithOptions(e, syn, Options{Variance: VarNone}); err == nil {
		t.Error("repeated relation over stratified sample should fail")
	}
	// Distinct refused.
	if _, err := Distinct(syn, "R", []string{"a"}, DistinctGEE); err == nil {
		t.Error("distinct over stratified sample should fail")
	}
	// Extension refused.
	if err := syn.ExtendSample("R", 5, testRand(6)); err == nil {
		t.Error("stratified extension should fail")
	}
	// Jackknife refused.
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "a", Op: algebra.EQ, Val: relation.Int(1)}))
	if _, err := CountWithOptions(sel, syn, Options{Variance: VarJackknife}); err == nil {
		t.Error("jackknife over stratified sample should fail")
	}
	// Split-sample works (join with a plain relation).
	s := intRelation("S", []string{"a", "id"}, [][]int64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if err := syn.AddSample(s.Clone("S"), s.Len()); err != nil {
		t.Fatal(err)
	}
	join := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	est, err := CountWithOptions(join, syn, Options{Variance: VarSplitSample, Groups: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.Variance < 0 {
		t.Errorf("split-sample variance %v", est.Variance)
	}
	// Stratified SUM: Horvitz–Thompson path.
	sum, err := SumWithOptions(sel, "id", syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value <= 0 {
		t.Errorf("stratified SUM %v", sum.Value)
	}
	// Validation.
	if err := syn.AddDrawnStratified(r, nil, 10, testRand(7)); err == nil {
		t.Error("nil stratum function should fail")
	}
	syn3 := NewSynopsis()
	if err := syn3.AddDrawnStratified(r, func(relation.Row) int { return 0 }, 9999, testRand(8)); err == nil {
		t.Error("oversized stratified sample should fail")
	}
}
