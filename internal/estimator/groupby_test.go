package estimator

import (
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

func TestGroupCountCensusIsExact(t *testing.T) {
	r := intRelation("R", []string{"g", "id"}, [][]int64{
		{1, 0}, {1, 1}, {1, 2}, {2, 3}, {2, 4}, {3, 5},
	})
	syn := NewSynopsis()
	if err := syn.AddSample(r.Clone("R"), r.Len()); err != nil {
		t.Fatal(err)
	}
	groups, err := GroupCount(algebra.BaseOf(r), "g", syn)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 3, 2: 2, 3: 1}
	if len(groups) != 3 {
		t.Fatalf("groups %v", groups)
	}
	for _, g := range groups {
		if got := want[g.Value.Int64()]; got != g.Count {
			t.Errorf("group %v: %v, want %v", g.Value, g.Count, got)
		}
	}
	// Sorted by descending count.
	if groups[0].Value.Int64() != 1 || groups[2].Value.Int64() != 3 {
		t.Errorf("ordering %v", groups)
	}
}

// TestGroupCountUnbiasedPerGroupExhaustive: every group's estimate,
// averaged over all samples, equals its exact count (groups missing from a
// sample contribute 0 to the average — the estimator is unbiased for the
// per-group count including the coverage zeros).
func TestGroupCountUnbiasedPerGroupExhaustive(t *testing.T) {
	r := intRelation("R", []string{"g", "id"}, [][]int64{
		{1, 0}, {1, 1}, {2, 2}, {2, 3}, {3, 4},
	})
	e := algebra.BaseOf(r)
	const n = 3
	sums := map[int64]*stats.Welford{1: {}, 2: {}, 3: {}}
	subsets(r.Len(), n, func(rows []int) {
		syn := synopsisFor(t, []*relation.Relation{r}, [][]int{rows})
		groups, err := GroupCount(e, "g", syn)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]float64{}
		for _, g := range groups {
			seen[g.Value.Int64()] = g.Count
		}
		for v, w := range sums {
			w.Add(seen[v]) // zero when the group was missed
		}
	})
	want := map[int64]float64{1: 2, 2: 2, 3: 1}
	for v, w := range sums {
		if !almostEqual(w.Mean(), want[v], 1e-9) {
			t.Errorf("group %d: E[estimate] = %v, want %v", v, w.Mean(), want[v])
		}
	}
}

func TestGroupCountOverJoin(t *testing.T) {
	r, s := biggishFixtures(t)
	syn := NewSynopsis()
	rng := testRand(21)
	if err := syn.AddDrawn(r, 100, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 100, rng); err != nil {
		t.Fatal(err)
	}
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	groups, err := GroupCount(e, "a", syn)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	total := 0.0
	for _, g := range groups {
		if g.Count < 0 {
			t.Errorf("negative group estimate %v", g)
		}
		total += g.Count
	}
	// The group totals must add to the whole-expression estimate.
	whole, err := CountWithOptions(e, syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(total, whole.Value, 1e-9) {
		t.Errorf("group totals %v != COUNT estimate %v", total, whole.Value)
	}
}

func TestGroupCountErrors(t *testing.T) {
	r := intRelation("R", []string{"g"}, [][]int64{{1}})
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 1, testRand(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := GroupCount(algebra.BaseOf(r), "zz", syn); err == nil {
		t.Error("unknown column should fail")
	}
	pr := algebra.Must(algebra.Project(algebra.BaseOf(r), "g"))
	if _, err := GroupCount(pr, "g", syn); err == nil {
		t.Error("π should be rejected")
	}
}
