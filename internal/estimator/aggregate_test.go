package estimator

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// exactSum computes SUM(col) over the exact evaluation of e.
func exactSum(t *testing.T, e *algebra.Expr, cat algebra.Catalog, col string) float64 {
	t.Helper()
	res, err := algebra.Eval(e, cat)
	if err != nil {
		t.Fatal(err)
	}
	pos := res.Schema().MustColumnIndex(col)
	total := 0.0
	res.Each(func(i int, tp relation.Tuple) bool {
		if !tp[pos].IsNull() {
			total += tp[pos].Float64()
		}
		return true
	})
	return total
}

// TestSumUnbiasedExhaustive: over every SRSWOR sample combination, the mean
// SUM estimate equals the exact sum, for selection, join, difference and
// self-join shapes.
func TestSumUnbiasedExhaustive(t *testing.T) {
	r := intRelation("R", []string{"a", "v"}, [][]int64{{1, 10}, {2, 20}, {2, 5}, {3, 30}, {4, 40}})
	s := intRelation("S", []string{"a", "v"}, [][]int64{{2, 7}, {3, 9}, {4, 11}, {5, 13}})
	cat := algebra.MapCatalog{"R": r, "S": s}
	br, bs := algebra.BaseOf(r), algebra.BaseOf(s)

	cases := []struct {
		name  string
		e     *algebra.Expr
		col   string
		bases []*relation.Relation
		ns    []int
	}{
		{"selection", algebra.Must(algebra.Select(br, algebra.Cmp{Col: "a", Op: algebra.GE, Val: relation.Int(2)})), "v", []*relation.Relation{r}, []int{2}},
		{"join-left-col", algebra.Must(algebra.Join(br, bs, []algebra.On{{Left: "a", Right: "a"}}, nil, "S")), "v", []*relation.Relation{r, s}, []int{3, 2}},
		{"join-right-col", algebra.Must(algebra.Join(br, bs, []algebra.On{{Left: "a", Right: "a"}}, nil, "S")), "S.v", []*relation.Relation{r, s}, []int{3, 2}},
		{"diff", algebra.Must(algebra.Diff(br, intExprCompat(t, s))), "v", []*relation.Relation{r, s}, []int{3, 2}},
		{"self-join", algebra.Must(algebra.Join(br, br, []algebra.On{{Left: "a", Right: "a"}}, nil, "R2")), "v", []*relation.Relation{r}, []int{3}},
	}
	for _, c := range cases {
		want := exactSum(t, c.e, cat, c.col)
		var sum float64
		count := 0
		var rec func(k int, chosen [][]int)
		rec = func(k int, chosen [][]int) {
			if k == len(c.bases) {
				syn := synopsisFor(t, c.bases, chosen)
				est, err := SumWithOptions(c.e, c.col, syn, Options{Variance: VarNone})
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				sum += est.Value
				count++
				return
			}
			subsets(c.bases[k].Len(), c.ns[k], func(rows []int) {
				cp := append([][]int{}, chosen...)
				rowsCopy := append([]int{}, rows...)
				rec(k+1, append(cp, rowsCopy))
			})
		}
		rec(0, nil)
		mean := sum / float64(count)
		if !almostEqual(mean, want, 1e-9) {
			t.Errorf("%s: E[SUM estimate] = %v, exact = %v", c.name, mean, want)
		}
	}
}

// intExprCompat returns BaseOf(s) — both fixtures share a layout, so set
// operations apply; the helper documents the intent at call sites.
func intExprCompat(t *testing.T, s *relation.Relation) *algebra.Expr {
	t.Helper()
	return algebra.BaseOf(s)
}

func TestSumValidation(t *testing.T) {
	r := intRelation("R", []string{"a", "v"}, [][]int64{{1, 10}, {2, 20}})
	br := algebra.BaseOf(r)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 2, testRand(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Sum(br, "zz", syn); err == nil {
		t.Error("unknown column should fail")
	}
	// Non-numeric column.
	sr := relation.New("T", relation.MustSchema(relation.Column{Name: "s", Kind: relation.KindString}))
	sr.MustAppend(relation.Tuple{relation.Str("x")})
	syn2 := NewSynopsis()
	if err := syn2.AddDrawn(sr, 1, testRand(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Sum(algebra.BaseOf(sr), "s", syn2); err == nil {
		t.Error("string column SUM should fail")
	}
	// π rejected.
	pr := algebra.Must(algebra.Project(br, "v"))
	if _, err := Sum(pr, "v", syn); err == nil {
		t.Error("SUM over π should fail")
	}
}

func TestSumNullsContributeZero(t *testing.T) {
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt}))
	r.MustAppend(relation.Tuple{relation.Int(5)})
	r.MustAppend(relation.Tuple{relation.Null()})
	r.MustAppend(relation.Tuple{relation.Int(7)})
	syn := NewSynopsis()
	if err := syn.AddSample(r.Clone("R"), r.Len()); err != nil { // census
		t.Fatal(err)
	}
	est, err := SumWithOptions(algebra.BaseOf(r), "v", syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 12 {
		t.Errorf("census SUM with null = %v, want 12", est.Value)
	}
}

func TestSumVarianceAndCI(t *testing.T) {
	r, s := biggishFixtures(t)
	syn := NewSynopsis()
	rng := testRand(31)
	if err := syn.AddDrawn(r, 64, rng); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(s, 64, rng); err != nil {
		t.Fatal(err)
	}
	e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	est, err := Sum(e, "b", syn)
	if err != nil {
		t.Fatal(err)
	}
	if est.VarianceMethod != VarSplitSample {
		t.Errorf("SUM variance method %v", est.VarianceMethod)
	}
	if !(est.Lo <= est.Value && est.Value <= est.Hi) {
		t.Errorf("CI [%v,%v] around %v", est.Lo, est.Hi, est.Value)
	}
	// Exact within a loose band.
	want := exactSum(t, e, algebra.MapCatalog{"R": r, "S": s}, "b")
	if math.Abs(est.Value-want)/want > 0.6 {
		t.Errorf("SUM estimate %v vs %v", est.Value, want)
	}
}

func TestAvg(t *testing.T) {
	r, _ := biggishFixtures(t)
	syn := NewSynopsis()
	if err := syn.AddDrawn(r, 100, testRand(33)); err != nil {
		t.Fatal(err)
	}
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(20)}))
	res, err := Avg(sel, "b", syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Avg) {
		t.Fatal("AVG is NaN")
	}
	if !almostEqual(res.Avg, res.Sum.Value/res.Count.Value, 1e-12) {
		t.Errorf("AVG %v != SUM/COUNT %v", res.Avg, res.Sum.Value/res.Count.Value)
	}
	// b values run 0..399 for a<20 spread evenly: true mean around 199.5.
	if res.Avg < 100 || res.Avg > 300 {
		t.Errorf("AVG %v implausible", res.Avg)
	}
	// Zero-count case yields NaN.
	empty := algebra.Must(algebra.Select(algebra.BaseOf(r),
		algebra.Cmp{Col: "a", Op: algebra.GT, Val: relation.Int(10_000)}))
	res, err = Avg(empty, "b", syn, Options{Variance: VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Avg) {
		t.Errorf("empty AVG = %v, want NaN", res.Avg)
	}
}
