package estimator

import (
	"fmt"
	"math"
	"math/big"

	"relest/internal/relation"
	"relest/internal/stats"
)

// Distinct-count estimation: COUNT(π_cols(R)) for a base relation R, from
// the synopsis sample of R. A projection of an SRSWOR sample of R is an
// SRSWOR sample of the column multiset, so the classical distinct-count
// estimators apply directly.
//
// No estimator of a distinct count from a small sample is simultaneously
// unbiased and low-variance: Goodman's estimator is the unique unbiased one
// under SRSWOR (when no value's multiplicity exceeds the sample size) but
// its variance explodes for n ≪ N; the practical estimators trade bias for
// stability. The paper's treatment (and its TODS 1991 extension) offers
// exactly this menu.

// DistinctMethod selects the distinct-count estimator.
type DistinctMethod int

// Distinct-count estimators.
const (
	// DistinctGoodman is Goodman's (1949) unbiased estimator,
	//
	//	D̂ = d + Σ_{i=1..n} (−1)^{i+1} · (N−n+i−1)_i/(n)_i · f_i,
	//
	// computed in exact big.Float arithmetic. Unbiased when every value's
	// population multiplicity is ≤ n; numerically explosive for n ≪ N.
	DistinctGoodman DistinctMethod = iota
	// DistinctScaleUp is the naive D̂ = (N/n)·d. Severely biased upward
	// for duplicate-heavy data; included as the strawman.
	DistinctScaleUp
	// DistinctSampleD is D̂ = d, the raw number of distinct sampled
	// values. Biased downward; consistent as n → N.
	DistinctSampleD
	// DistinctJackknife is the unsmoothed first-order jackknife of Haas et
	// al. (VLDB 1995): D̂ = d / (1 − (1−f)·f₁/n), where f₁ is the number
	// of values seen exactly once and f = n/N. Biased but stable; exact at
	// the census.
	DistinctJackknife
	// DistinctGEE is the geometric-mean estimator of Charikar et al.
	// (PODS 2000): D̂ = √(N/n)·f₁ + Σ_{i≥2} f_i, matching the worst-case
	// error lower bound up to constants.
	DistinctGEE
)

// String names the method.
func (m DistinctMethod) String() string {
	switch m {
	case DistinctGoodman:
		return "goodman"
	case DistinctScaleUp:
		return "scale-up"
	case DistinctSampleD:
		return "sample-d"
	case DistinctJackknife:
		return "jackknife"
	case DistinctGEE:
		return "gee"
	default:
		return fmt.Sprintf("DistinctMethod(%d)", int(m))
	}
}

// FreqOfFreq summarizes a sample of values for distinct estimation: counts
// of values occurring exactly i times in the sample.
type FreqOfFreq struct {
	N int         // population size
	n int         // sample size
	f map[int]int // f[i] = number of distinct values with sample frequency i
}

// NewFreqOfFreq builds frequency-of-frequencies statistics from a sample of
// value keys (any string encoding under which equal values collide).
func NewFreqOfFreq(populationSize int, sampleKeys []string) (*FreqOfFreq, error) {
	if len(sampleKeys) > populationSize {
		return nil, fmt.Errorf("estimator: sample of %d exceeds population %d", len(sampleKeys), populationSize)
	}
	counts := make(map[string]int, len(sampleKeys))
	for _, k := range sampleKeys {
		counts[k]++
	}
	f := make(map[int]int)
	for _, c := range counts {
		f[c]++
	}
	return &FreqOfFreq{N: populationSize, n: len(sampleKeys), f: f}, nil
}

// D returns d, the number of distinct values in the sample.
func (ff *FreqOfFreq) D() int {
	d := 0
	for _, c := range ff.f {
		d += c
	}
	return d
}

// F returns f_i, the number of values with sample frequency exactly i.
func (ff *FreqOfFreq) F(i int) int { return ff.f[i] }

// Estimate applies the selected distinct-count estimator.
func (ff *FreqOfFreq) Estimate(method DistinctMethod) (float64, error) {
	if ff.n == 0 {
		if ff.N == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("estimator: cannot estimate distinct count from an empty sample")
	}
	d := float64(ff.D())
	switch method {
	case DistinctGoodman:
		return ff.goodman(), nil
	case DistinctScaleUp:
		return float64(ff.N) / float64(ff.n) * d, nil
	case DistinctSampleD:
		return d, nil
	case DistinctJackknife:
		f1 := float64(ff.F(1))
		fr := float64(ff.n) / float64(ff.N)
		denom := 1 - (1-fr)*f1/float64(ff.n)
		if denom <= 0 {
			// All sampled values unique in a small sample: the jackknife
			// denominator degenerates; fall back to the GEE answer.
			return math.Sqrt(float64(ff.N)/float64(ff.n))*f1 + (d - f1), nil
		}
		return d / denom, nil
	case DistinctGEE:
		f1 := float64(ff.F(1))
		return math.Sqrt(float64(ff.N)/float64(ff.n))*f1 + (d - f1), nil
	default:
		return 0, fmt.Errorf("estimator: unknown distinct method %v", method)
	}
}

// goodman computes Goodman's unbiased estimator in exact arithmetic:
//
//	D̂ = d + Σ_{i=1}^{n} (−1)^{i+1} · (N−n+i−1)_i / (n)_i · f_i
//
// Only sample frequencies i with f_i > 0 contribute, so the big.Float work
// is proportional to the number of distinct sample frequencies times their
// magnitude.
func (ff *FreqOfFreq) goodman() float64 {
	if ff.n == ff.N {
		return float64(ff.D()) // census: d is exact
	}
	sum := new(big.Float).SetPrec(512)
	for i, fi := range ff.f {
		if fi == 0 {
			continue
		}
		num := stats.BigFallingFactorial(ff.N-ff.n+i-1, i)
		den := stats.BigFallingFactorial(ff.n, i)
		term := new(big.Float).SetPrec(512).Quo(num, den)
		term.Mul(term, big.NewFloat(float64(fi)))
		if i%2 == 0 {
			term.Neg(term)
		}
		sum.Add(sum, term)
	}
	sum.Add(sum, big.NewFloat(float64(ff.D())))
	out, _ := sum.Float64()
	return out
}

// Distinct estimates COUNT(π_cols(rel)) — the number of distinct values of
// the given columns of the named base relation — from the synopsis sample.
func Distinct(syn *Synopsis, relName string, cols []string, method DistinctMethod) (float64, error) {
	rs, ok := syn.rels[relName]
	if !ok {
		return 0, fmt.Errorf("estimator: no relation %q in synopsis", relName)
	}
	if !rs.tupleDesign() || !rs.uniformWeights() {
		return 0, fmt.Errorf("estimator: distinct estimation requires a plain tuple-level SRSWOR sample of %q; page and stratified designs bias the frequency-of-frequencies statistics", relName)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := rs.sample.Schema().ColumnIndex(c)
		if p < 0 {
			return 0, fmt.Errorf("estimator: no column %q in relation %q", c, relName)
		}
		positions[i] = p
	}
	keys := make([]string, 0, rs.n)
	rs.sample.EachRow(func(i int, row relation.Row) bool {
		keys = append(keys, row.Key(positions))
		return true
	})
	ff, err := NewFreqOfFreq(rs.N, keys)
	if err != nil {
		return 0, err
	}
	return ff.Estimate(method)
}
