package estimator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// Property-based tests (testing/quick) for the estimator core: exhaustive
// unbiasedness over randomly generated micro-universes — every relation
// instance, predicate threshold and sample size the generator produces must
// satisfy E[estimate] == exact COUNT exactly.

// quickUniverse builds a random tiny catalog of two relations.
func quickUniverse(rng *rand.Rand) (*relation.Relation, *relation.Relation) {
	mk := func(name string, n int) *relation.Relation {
		r := relation.New(name, intSchema("a", "id"))
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.Int(int64(rng.Intn(4))),
				relation.Int(int64(i)),
			})
		}
		return r
	}
	return mk("R", 3+rng.Intn(3)), mk("S", 3+rng.Intn(2))
}

func TestQuickSelectionUnbiased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, _ := quickUniverse(rng)
		threshold := int64(rng.Intn(5))
		e := algebra.Must(algebra.Select(algebra.BaseOf(r),
			algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(threshold)}))
		want, err := algebra.Count(e, algebra.MapCatalog{"R": r})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(r.Len())
		var sum float64
		count := 0
		subsets(r.Len(), n, func(rows []int) {
			syn := NewSynopsis()
			if err := syn.AddSample(r.Subset("R", rows), r.Len()); err != nil {
				panic(err)
			}
			est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
			if err != nil {
				panic(err)
			}
			sum += est.Value
			count++
		})
		return almostEqual(sum/float64(count), float64(want), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinUnbiased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, s := quickUniverse(rng)
		e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
			[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
		want, err := algebra.Count(e, algebra.MapCatalog{"R": r, "S": s})
		if err != nil {
			return false
		}
		nr := 1 + rng.Intn(r.Len())
		ns := 1 + rng.Intn(s.Len())
		var sum float64
		count := 0
		subsets(r.Len(), nr, func(rrows []int) {
			rr := append([]int{}, rrows...)
			subsets(s.Len(), ns, func(srows []int) {
				syn := NewSynopsis()
				if err := syn.AddSample(r.Subset("R", rr), r.Len()); err != nil {
					panic(err)
				}
				if err := syn.AddSample(s.Subset("S", srows), s.Len()); err != nil {
					panic(err)
				}
				est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
				if err != nil {
					panic(err)
				}
				sum += est.Value
				count++
			})
		})
		return almostEqual(sum/float64(count), float64(want), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickSetOpsUnbiased(t *testing.T) {
	f := func(seed int64, opPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Overlapping duplicate-free relations with equal layouts.
		r := relation.New("R", intSchema("a", "id"))
		s := relation.New("S", intSchema("a", "id"))
		n := 4 + rng.Intn(2)
		for i := 0; i < n; i++ {
			t := relation.Tuple{relation.Int(int64(rng.Intn(3))), relation.Int(int64(i))}
			r.MustAppend(t)
			if rng.Intn(2) == 0 {
				s.MustAppend(t)
			} else {
				s.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(3))), relation.Int(int64(100 + i))})
			}
		}
		var e *algebra.Expr
		switch opPick % 3 {
		case 0:
			e = algebra.Must(algebra.Union(algebra.BaseOf(r), algebra.BaseOf(s)))
		case 1:
			e = algebra.Must(algebra.Intersect(algebra.BaseOf(r), algebra.BaseOf(s)))
		default:
			e = algebra.Must(algebra.Diff(algebra.BaseOf(r), algebra.BaseOf(s)))
		}
		want, err := algebra.Count(e, algebra.MapCatalog{"R": r, "S": s})
		if err != nil {
			return false
		}
		var sum float64
		count := 0
		subsets(r.Len(), 2, func(rrows []int) {
			rr := append([]int{}, rrows...)
			subsets(s.Len(), 2, func(srows []int) {
				syn := NewSynopsis()
				if err := syn.AddSample(r.Subset("R", rr), r.Len()); err != nil {
					panic(err)
				}
				if err := syn.AddSample(s.Subset("S", srows), s.Len()); err != nil {
					panic(err)
				}
				est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
				if err != nil {
					panic(err)
				}
				sum += est.Value
				count++
			})
		})
		return almostEqual(sum/float64(count), float64(want), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickSumUnbiased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, s := quickUniverse(rng)
		e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(s),
			[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
		want := exactSumQuick(e, algebra.MapCatalog{"R": r, "S": s}, "id")
		var sum float64
		count := 0
		subsets(r.Len(), 2, func(rrows []int) {
			rr := append([]int{}, rrows...)
			subsets(s.Len(), 2, func(srows []int) {
				syn := NewSynopsis()
				if err := syn.AddSample(r.Subset("R", rr), r.Len()); err != nil {
					panic(err)
				}
				if err := syn.AddSample(s.Subset("S", srows), s.Len()); err != nil {
					panic(err)
				}
				est, err := SumWithOptions(e, "id", syn, Options{Variance: VarNone})
				if err != nil {
					panic(err)
				}
				sum += est.Value
				count++
			})
		})
		return almostEqual(sum/float64(count), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func exactSumQuick(e *algebra.Expr, cat algebra.Catalog, col string) float64 {
	res, err := algebra.Eval(e, cat)
	if err != nil {
		panic(err)
	}
	pos := res.Schema().MustColumnIndex(col)
	total := 0.0
	res.Each(func(i int, t relation.Tuple) bool {
		if !t[pos].IsNull() {
			total += t[pos].Float64()
		}
		return true
	})
	return total
}
