package estimator

import (
	"fmt"
	"math"

	"relest/internal/algebra"
	"relest/internal/parallel"
	"relest/internal/sampling"
	"relest/internal/stats"
)

// estimateVariance dispatches to the requested variance method and returns
// the variance estimate together with the method actually used.
func estimateVariance(poly algebra.Polynomial, syn *Synopsis, opts Options, eng *engine) (float64, VarianceMethod, error) {
	switch opts.Variance {
	case VarNone:
		return math.NaN(), VarNone, nil
	case VarAnalytic:
		if v, ok, err := analyticVariance(poly, syn, eng); err != nil {
			return 0, VarAnalytic, err
		} else if ok {
			return v, VarAnalytic, nil
		}
		return 0, VarAnalytic, fmt.Errorf("estimator: no closed-form variance for this expression shape; use split-sample or jackknife")
	case VarSplitSample:
		v, err := splitSampleVariance(poly, syn, opts, false, eng)
		return v, VarSplitSample, err
	case VarJackknife:
		v, err := jackknifeVariance(poly, syn, eng)
		return v, VarJackknife, err
	default: // VarAuto
		if v, ok, err := analyticVariance(poly, syn, eng); err == nil && ok {
			return v, VarAnalytic, nil
		}
		if v, err := splitSampleVariance(poly, syn, opts, true, eng); err == nil {
			return v, VarSplitSample, nil
		}
		if v, err := jackknifeVariance(poly, syn, eng); err == nil {
			return v, VarJackknife, nil
		}
		return math.NaN(), VarNone, nil
	}
}

// analyticVariance returns a closed-form variance estimate when one exists:
//
//   - polynomials over a single relation in which every term uses one
//     occurrence: the whole estimator is N·ȳ for per-tuple scores y, so the
//     classical SRSWOR total variance N²(1−f)s²/n applies exactly and its
//     plug-in is unbiased;
//   - a single term over two distinct relations (the paper's join
//     estimator): the exactly unbiased two-sample variance estimator
//     derived from the second-moment decomposition over index-equality
//     patterns (see below).
//
// The boolean result reports whether a closed form applied.
func analyticVariance(poly algebra.Polynomial, syn *Synopsis, eng *engine) (float64, bool, error) {
	if len(poly.RelationNames()) == 1 && poly.MaxOccurrences() == 1 {
		v, err := singleRelationVariance(poly, syn, eng)
		return v, err == nil, err
	}
	if poly.NumTerms() == 1 && len(poly.Terms[0].Occs) == 2 &&
		poly.Terms[0].Occs[0].RelName != poly.Terms[0].Occs[1].RelName &&
		plainTupleSample(syn.rels[poly.Terms[0].Occs[0].RelName]) &&
		plainTupleSample(syn.rels[poly.Terms[0].Occs[1].RelName]) {
		v, err := twoRelationTermVariance(&poly.Terms[0], syn, eng)
		return v, err == nil, err
	}
	return 0, false, nil
}

// plainTupleSample reports an unstratified tuple-level SRSWOR sample — the
// design the two-relation variance closed form is derived for.
func plainTupleSample(rs *relSynopsis) bool {
	return rs != nil && rs.tupleDesign() && rs.uniformWeights()
}

// singleRelationVariance handles polynomials over one relation with one
// occurrence per term. Every sample tuple i has a deterministic score
// y_i = Σ_j coef_j·ψ_j(t_i); summed within each sampling unit this gives
// per-unit totals z_u, the estimator equals M·z̄, and
// Var̂ = M²(1−m/M)s²_z/m (Cochran), which is unbiased for both the tuple
// design (units are tuples) and the page design (units are pages — the
// "ultimate cluster" variance).
//
// Enumeration is serial (the score vector is shared across terms), but the
// plans come from the engine cache, so this pass reuses the point
// estimate's compiled indexes.
func singleRelationVariance(poly algebra.Polynomial, syn *Synopsis, eng *engine) (float64, error) {
	rel := poly.RelationNames()[0]
	rs := syn.rels[rel]
	if rs.m < 2 {
		return 0, fmt.Errorf("estimator: sample of %q too small for variance (m=%d units)", rel, rs.m)
	}
	y := make([]float64, rs.n)
	for i := range poly.Terms {
		t := &poly.Terms[i]
		inst, err := algebra.BindInstances(t, syn)
		if err != nil {
			return 0, err
		}
		pt, err := eng.prepare(t, inst)
		if err != nil {
			return 0, err
		}
		coef := float64(t.Coef)
		pt.Enumerate(func(rows []int) bool {
			y[rows[0]] += coef
			return true
		})
	}
	if rs.stratified() {
		// Stratified closed form: independent SRSWOR within each stratum,
		// so Var̂ = Σ_h N_h²(1−f_h)s²_h/n_h — exactly unbiased, and the
		// quantity stratification exists to shrink.
		total := 0.0
		for _, st := range rs.strata {
			var w stats.Welford
			for _, u := range st.units {
				for _, row := range rs.clusters[u] {
					w.Add(y[row])
				}
			}
			if len(st.units) < 2 {
				if st.Nh <= len(st.units) {
					continue // census stratum contributes no variance
				}
				return 0, fmt.Errorf("estimator: stratum of %q has %d sampled rows; need 2 for variance", rel, len(st.units))
			}
			total += stats.TotalVariance(st.Nh, len(st.units), w.Variance())
		}
		return total, nil
	}
	var w stats.Welford
	for _, cluster := range rs.clusters {
		z := 0.0
		for _, row := range cluster {
			z += y[row]
		}
		w.Add(z)
	}
	return stats.TotalVariance(rs.M, rs.m, w.Variance()), nil
}

// twoRelationTermVariance implements the exactly unbiased variance
// estimator for Ĵ = c·T, c = N₁N₂/(n₁n₂), T = Σ_{u∈s₁,v∈s₂} ψ(u,v), with
// independent SRSWOR samples.
//
// Decompose E[T²] over the index-equality patterns of the pair of pairs
// ((u,v),(u′,v′)):
//
//	E[T²] = p₁₁S₁₁ + p₁₂S₁₂ + p₂₁S₂₁ + p₂₂S₂₂
//
// with population quantities (a_U, b_V the join degrees)
//
//	S₁₁ = J,  S₁₂ = Σ_U a_U² − J,  S₂₁ = Σ_V b_V² − J,
//	S₂₂ = J² − Σa² − Σb² + J,
//
// and inclusion probabilities p₁₁ = (n₁n₂)/(N₁N₂),
// p₁₂ = (n₁/N₁)·(n₂)₂/(N₂)₂, p₂₁ symmetric, p₂₂ = (n₁)₂/(N₁)₂·(n₂)₂/(N₂)₂.
// Each S is estimated unbiasedly from the sample by the same
// falling-factorial scaling, and since J² = S₁₁+S₁₂+S₂₁+S₂₂,
//
//	Var̂(Ĵ) = c²·(p₁₁Ŝ₁₁ + p₁₂Ŝ₁₂ + p₂₁Ŝ₂₁ + p₂₂Ŝ₂₂) − (Ŝ₁₁+Ŝ₂₁+Ŝ₁₂+Ŝ₂₂)
//
// is unbiased. It can be negative on unlucky samples, as unbiased variance
// estimators are allowed to be.
func twoRelationTermVariance(t *algebra.Term, syn *Synopsis, eng *engine) (float64, error) {
	rel1, rel2 := t.Occs[0].RelName, t.Occs[1].RelName
	n1, _ := syn.SampleSize(rel1)
	n2, _ := syn.SampleSize(rel2)
	N1, _ := syn.PopulationSize(rel1)
	N2, _ := syn.PopulationSize(rel2)
	if n1 < 2 || n2 < 2 {
		return 0, fmt.Errorf("estimator: samples too small for the two-relation variance (n1=%d, n2=%d)", n1, n2)
	}
	inst, err := algebra.BindInstances(t, syn)
	if err != nil {
		return 0, err
	}
	pt, err := eng.prepare(t, inst)
	if err != nil {
		return 0, err
	}
	alpha := make([]float64, n1)
	beta := make([]float64, n2)
	var T float64
	pt.Enumerate(func(rows []int) bool {
		alpha[rows[0]]++
		beta[rows[1]]++
		T++
		return true
	})
	var sumA2, sumB2 float64
	for _, a := range alpha {
		sumA2 += a * a
	}
	for _, b := range beta {
		sumB2 += b * b
	}
	r1 := stats.FallingFactorialRatio(N1, n1, 1)  // N1/n1
	r2 := stats.FallingFactorialRatio(N2, n2, 1)  // N2/n2
	r11 := stats.FallingFactorialRatio(N1, n1, 2) // (N1)₂/(n1)₂
	r22 := stats.FallingFactorialRatio(N2, n2, 2)

	s11 := r1 * r2 * T
	s12 := r1 * r22 * (sumA2 - T)
	s21 := r11 * r2 * (sumB2 - T)
	s22 := r11 * r22 * (T*T - sumA2 - sumB2 + T)

	c := r1 * r2
	p11 := 1 / (r1 * r2)
	p12 := (1 / r1) * (1 / r22)
	p21 := (1 / r11) * (1 / r2)
	p22 := (1 / r11) * (1 / r22)

	ej2 := c * c * (p11*s11 + p12*s12 + p21*s21 + p22*s22)
	j2 := s11 + s12 + s21 + s22
	return ej2 - j2, nil
}

// splitSampleVariance estimates variance by replication: each relation's
// sample is randomly partitioned into g groups; replicate i re-runs the
// point estimator on the i-th group of every relation. A replicate uses
// samples of size n/g, so to first order Var(replicate) ≈ g·Var(full), and
//
//	Var̂(full) ≈ s²_replicates / g.
//
// This is the generic method for arbitrary polynomials: it automatically
// captures the covariances between polynomial terms because each replicate
// recomputes the entire polynomial. It is approximate (the 1/n scaling of
// every variance component is first-order), in exchange for requiring
// nothing about the expression's shape.
//
// When shrink is true the group count is reduced as needed so that each
// group keeps at least max-occurrences rows per relation (VarAuto mode);
// otherwise too-small samples are an error.
func splitSampleVariance(poly algebra.Polynomial, syn *Synopsis, opts Options, shrink bool, eng *engine) (float64, error) {
	return splitSampleVarianceImpl(poly, syn, opts, shrink, eng, func(sub *Synopsis, sube *engine) (float64, error) {
		return pointEstimate(poly, sub, sube)
	})
}

// splitSampleVarianceFn is the split-sample method for an arbitrary
// re-estimation function (SUM, page-sampling); group shrinking enabled.
func splitSampleVarianceFn(poly algebra.Polynomial, syn *Synopsis, opts Options, eng *engine, estimate func(*Synopsis, *engine) (float64, error)) (float64, error) {
	return splitSampleVarianceImpl(poly, syn, opts, true, eng, estimate)
}

func splitSampleVarianceImpl(poly algebra.Polynomial, syn *Synopsis, opts Options, shrink bool, eng *engine, estimate func(*Synopsis, *engine) (float64, error)) (float64, error) {
	need := poly.MaxOccurrences()
	if need < 1 {
		need = 1
	}
	g := opts.Groups
	minM := math.MaxInt
	for _, rel := range poly.RelationNames() {
		rs, ok := syn.rels[rel]
		if !ok {
			return 0, fmt.Errorf("estimator: no sample for %q", rel)
		}
		mm := rs.m
		// Stratified replicates must keep every stratum populated, so the
		// smallest stratum bounds the group count.
		for _, st := range rs.strata {
			if len(st.units) < mm {
				mm = len(st.units)
			}
		}
		if mm < minM {
			minM = mm
		}
	}
	if minM/g < need {
		if !shrink {
			return 0, fmt.Errorf("estimator: %d split-sample groups leave fewer than %d sampling units per group (min sample %d units)", g, need, minM)
		}
		g = minM / need
		if g > opts.Groups {
			g = opts.Groups
		}
	}
	if g < 2 {
		return 0, fmt.Errorf("estimator: samples too small for split-sample variance (min sample %d units, need %d per group)", minM, need)
	}
	rng := sampling.Seeded(opts.Seed ^ 0x5eed5eed)
	// Partition each relation's sampling units into g groups; whole units
	// move together (and strata split evenly) so every group is a valid
	// smaller sample of the same design. The grouping depends only on the
	// Seed, never on the worker count.
	groupsByRel := map[string][][]int{}
	for _, rel := range poly.RelationNames() {
		groupsByRel[rel] = syn.rels[rel].splitUnits(rng, g)
	}
	// Replicates are independent: fan them out and fold the values into the
	// variance accumulator in replicate order. Replicate plans are
	// throwaway (group sub-samples share no instances), so they run
	// uncached.
	eng.rec.Add(mRepSplit, float64(g))
	vals := make([]float64, g)
	err := parallel.ForErrRec(g, eng.workers, eng.rec, func(i int) error {
		if err := eng.cancelled(); err != nil {
			return err
		}
		rs := eng.span.Child(sReplicate)
		defer rs.End()
		unitSel := map[string][]int{}
		for _, rel := range poly.RelationNames() {
			unitSel[rel] = groupsByRel[rel][i]
		}
		sub := syn.subSynopsisUnits(unitSel)
		v, err := estimate(sub, subEngine(nil, nil))
		vals[i] = v
		return err
	})
	if err != nil {
		return 0, err
	}
	var reps stats.Welford
	for _, v := range vals {
		reps.Add(v)
	}
	return reps.Variance() / float64(g), nil
}

// jackknifeVariance estimates variance with delete-one replicates: for
// each relation R and each sampling unit u (tuple or page), the point
// estimate is recomputed without that unit; the per-relation jackknife
// variances (m−1)/m·Σ(θ₍ᵤ₎−θ̄)², each scaled by the finite-population
// correction (1−m/M), add up across relations (the samples are
// independent).
//
// When every term admits it, the replicates are derived from a single
// enumeration pass per term (see jackknifeSinglePass): O(enum + Σ m_R)
// instead of the naive Σ m_R full re-evaluations. Terms with folded
// cross-product tails fall back to the naive path, which fans replicates
// across workers and shares full-sample plans between them.
func jackknifeVariance(poly algebra.Polynomial, syn *Synopsis, eng *engine) (float64, error) {
	return jackknifeVarianceFn(poly, syn, eng, func(sub *Synopsis, sube *engine) (float64, error) {
		return pointEstimate(poly, sub, sube)
	}, countContrib)
}

// jackknifeVarianceFn is the delete-one jackknife for an arbitrary
// re-estimation function. contrib, when its eval is set, is the
// per-assignment contribution underlying estimate (1 for COUNT, the output
// column for SUM) and enables the single-pass computation; pass noContrib
// to force naive replication.
func jackknifeVarianceFn(poly algebra.Polynomial, syn *Synopsis, eng *engine, estimate func(*Synopsis, *engine) (float64, error), contrib termContrib) (float64, error) {
	need := poly.MaxOccurrences()
	for _, rel := range poly.RelationNames() {
		rs, ok := syn.rels[rel]
		if !ok {
			return 0, fmt.Errorf("estimator: no sample for %q", rel)
		}
		if rs.stratified() {
			return 0, fmt.Errorf("estimator: jackknife does not support the stratified sample of %q; use the analytic or split-sample variance", rel)
		}
		if rs.n-len(longestCluster(rs)) < need || rs.m < 2 {
			return 0, fmt.Errorf("estimator: sample of %q too small for jackknife (m=%d units, need %d rows after deletion)", rel, rs.m, need)
		}
	}
	if contrib.eval != nil {
		ok, err := singlePassEligible(poly, syn, eng, contrib)
		if err != nil {
			return 0, err
		}
		if ok {
			return jackknifeSinglePass(poly, syn, eng, contrib)
		}
	}
	return jackknifeNaive(poly, syn, eng, estimate)
}

// jackknifeNaive runs the delete-one replicates by full re-estimation,
// fanned across the engine's workers. Deleting a unit of relation R swaps
// only R's instance, so every term not mentioning R evaluates over exactly
// the full-sample instances; those plans are shared across all m replicates
// through a per-relation cache, while plans touching R stay uncached (each
// replicate's is used once).
func jackknifeNaive(poly algebra.Polynomial, syn *Synopsis, eng *engine, estimate func(*Synopsis, *engine) (float64, error)) (float64, error) {
	total := 0.0
	for _, rel := range poly.RelationNames() {
		rs := syn.rels[rel]
		m := rs.m
		del := rel
		relCache := algebra.NewPlanCacheRec(eng.rec)
		cacheIf := func(t *algebra.Term) bool { return !termUsesRel(t, del) }
		// One counter bump per replicate, but no per-replicate spans: a
		// jackknife runs one replicate per sampling unit, and thousands of
		// spans would drown the trace (the pool task histogram already
		// carries replicate latency).
		eng.rec.Add(mRepJackknife, float64(m))
		vals := make([]float64, m)
		err := parallel.ForErrRec(m, eng.workers, eng.rec, func(u int) error {
			if err := eng.cancelled(); err != nil {
				return err
			}
			sub := syn.withoutUnit(del, u)
			v, err := estimate(sub, subEngine(relCache, cacheIf))
			vals[u] = v
			return err
		})
		if err != nil {
			return 0, err
		}
		var reps stats.Welford
		for _, v := range vals {
			reps.Add(v)
		}
		// (m−1)/m · Σ(θ₍ᵤ₎−θ̄)², with Σ(θ−θ̄)² = (m−1)·s² from Welford.
		sumSq := float64(reps.N()-1) * reps.Variance()
		vr := float64(m-1) / float64(m) * sumSq
		vr *= 1 - float64(m)/float64(rs.M)
		total += vr
	}
	return total, nil
}

// termUsesRel reports whether the term references the relation.
func termUsesRel(t *algebra.Term, rel string) bool {
	for _, o := range t.Occs {
		if o.RelName == rel {
			return true
		}
	}
	return false
}

// longestCluster returns the largest sampled unit (for the jackknife's
// worst-case post-deletion sample-size check).
func longestCluster(rs *relSynopsis) []int {
	var best []int
	for _, c := range rs.clusters {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}
