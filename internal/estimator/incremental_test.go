package estimator

import (
	"math"
	"testing"

	"relest/internal/algebra"
	"relest/internal/relation"
	"relest/internal/stats"
)

func TestIncrementalTrackAndCounts(t *testing.T) {
	inc := NewIncremental(10, testRand(1))
	schema := intSchema("a", "b")
	if err := inc.Track("R", schema); err != nil {
		t.Fatal(err)
	}
	if err := inc.Track("R", schema); err == nil {
		t.Error("duplicate Track should fail")
	}
	for i := 0; i < 25; i++ {
		if err := inc.Insert("R", relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := inc.PopulationSize("R"); n != 25 {
		t.Errorf("population %d", n)
	}
	if n, _ := inc.SampleSize("R"); n != 10 {
		t.Errorf("sample %d", n)
	}
	if err := inc.Delete("R", relation.Tuple{relation.Int(3), relation.Int(30)}); err != nil {
		t.Fatal(err)
	}
	if n, _ := inc.PopulationSize("R"); n != 24 {
		t.Errorf("population after delete %d", n)
	}
	// Errors.
	if err := inc.Insert("X", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("untracked insert should fail")
	}
	if err := inc.Delete("X", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("untracked delete should fail")
	}
	if err := inc.Insert("R", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, ok := inc.PopulationSize("X"); ok {
		t.Error("untracked PopulationSize should report !ok")
	}
	if _, ok := inc.SampleSize("X"); ok {
		t.Error("untracked SampleSize should report !ok")
	}
}

func TestIncrementalSnapshotEstimation(t *testing.T) {
	// Stream two relations, snapshot, and estimate a join; compare with
	// the exact count over the surviving population.
	rng := testRand(7)
	inc := NewIncremental(400, rng)
	schema := intSchema("a", "id")
	if err := inc.Track("R", schema); err != nil {
		t.Fatal(err)
	}
	if err := inc.Track("S", schema); err != nil {
		t.Fatal(err)
	}
	fullR := relation.New("R", schema)
	fullS := relation.New("S", schema)
	for i := 0; i < 3000; i++ {
		tr := relation.Tuple{relation.Int(int64(rng.Intn(50))), relation.Int(int64(i))}
		ts := relation.Tuple{relation.Int(int64(rng.Intn(50))), relation.Int(int64(i))}
		_ = inc.Insert("R", tr)
		_ = inc.Insert("S", ts)
		fullR.MustAppend(tr)
		fullS.MustAppend(ts)
	}
	e := algebra.Must(algebra.Join(
		algebra.Base("R", schema), algebra.Base("S", schema),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))
	want, err := algebra.Count(e, algebra.MapCatalog{"R": fullR, "S": fullS})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := syn.PopulationSize("R"); n != 3000 {
		t.Errorf("snapshot population %d", n)
	}
	est, err := Count(e, syn)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(est.Value-float64(want)) / float64(want)
	if rel > 0.30 {
		t.Errorf("incremental estimate rel error %.3f (est %v, want %d)", rel, est.Value, want)
	}
}

// TestIncrementalUnbiasedOverStream checks the end-to-end statistical
// property: across many independently seeded streams with deletions, the
// mean of the snapshot-based estimates matches the exact count over the
// surviving population.
func TestIncrementalUnbiasedOverStream(t *testing.T) {
	schema := intSchema("a", "id")
	e := algebra.Must(algebra.Select(algebra.Base("R", schema),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)}))

	// Fixed stream of value-unique tuples (the incremental synopsis
	// contract): insert (i%30, i) for i<300, delete the first 60 inserted,
	// insert 60 more. Survivors are deterministic.
	build := func(seed int64) (float64, float64) {
		rng := testRand(seed)
		inc := NewIncremental(40, rng)
		if err := inc.Track("R", schema); err != nil {
			t.Fatal(err)
		}
		full := relation.New("R", schema)
		var inserted []relation.Tuple
		for i := 0; i < 300; i++ {
			tp := relation.Tuple{relation.Int(int64(i % 30)), relation.Int(int64(i))}
			_ = inc.Insert("R", tp)
			inserted = append(inserted, tp)
		}
		for i := 0; i < 60; i++ {
			_ = inc.Delete("R", inserted[i])
		}
		for i := 0; i < 60; i++ {
			tp := relation.Tuple{relation.Int(int64(i % 15)), relation.Int(int64(1000 + i))}
			_ = inc.Insert("R", tp)
			inserted = append(inserted, tp)
		}
		for _, tp := range inserted[60:] {
			full.MustAppend(tp)
		}
		want, err := algebra.Count(e, algebra.MapCatalog{"R": full})
		if err != nil {
			t.Fatal(err)
		}
		syn, err := inc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		est, err := CountWithOptions(e, syn, Options{Variance: VarNone})
		if err != nil {
			t.Fatal(err)
		}
		return est.Value, float64(want)
	}
	var mean stats.Welford
	var want float64
	for seed := int64(0); seed < 300; seed++ {
		got, w := build(seed)
		want = w
		mean.Add(got)
	}
	// Mean over 300 streams should be within ~4 standard errors of truth.
	se := mean.StdDev() / math.Sqrt(float64(mean.N()))
	if math.Abs(mean.Mean()-want) > 5*se+1e-9 {
		t.Errorf("E[estimate] = %v ± %v, want %v", mean.Mean(), se, want)
	}
}
