package estimator

import (
	"relest/internal/obs"

	"relest/internal/algebra"
)

// Metric and span names emitted by the estimation engine. Instrumentation
// is passive: it never consumes randomness and never branches the
// estimation path, so estimates are bit-identical with any recorder
// installed (enforced by TestRecorderDoesNotChangeEstimates).
const (
	// Spans (durations also land in <name>_seconds histograms).
	sEstimate      = "relest_estimate"
	sTerm          = "relest_term"
	sVariance      = "relest_variance"
	sReplicate     = "relest_replicate"
	sSequential    = "relest_sequential"
	sDeadlineRound = "relest_deadline_round"

	// Counters and gauges.
	mTermsTotal      = "relest_terms_total"
	mSamplesRows     = "relest_samples_rows_total"  // labeled rel=...
	mSamplesUnits    = "relest_samples_units_total" // labeled rel=...
	mReplicatesTotal = "relest_replicates_total"    // labeled method=...
	mVarianceMethod  = "relest_variance_method_total"
	mSeqHalfwidth    = "relest_sequential_halfwidth"   // labeled phase=...
	mSeqSampleRows   = "relest_sequential_sample_rows" // labeled phase=..., rel=...
	mSeqGrowth       = "relest_sequential_growth_factor"
	mDeadlineRounds  = "relest_deadline_rounds_total"
	mDeadHalfwidth   = "relest_deadline_halfwidth"   // labeled round=...
	mDeadSampleRows  = "relest_deadline_sample_rows" // labeled round=..., rel=...

	// Tier planner (handle requests with a sketch-capable policy only, so
	// legacy sample-only paths emit exactly the families they always did).
	mTierAnswered = "relest_tier_answered_total" // labeled tier=...
	mSketchBytes  = "relest_sketch_bytes"
)

// Precomputed label strings keep the recording sites free of obs.L calls
// (which allocate) on every estimate.
var (
	mVarMethodAuto      = obs.L(mVarianceMethod, "method", "auto")
	mVarMethodNone      = obs.L(mVarianceMethod, "method", "none")
	mVarMethodAnalytic  = obs.L(mVarianceMethod, "method", "analytic")
	mVarMethodSplit     = obs.L(mVarianceMethod, "method", "split-sample")
	mVarMethodJackknife = obs.L(mVarianceMethod, "method", "jackknife")
	mVarMethodSketch    = obs.L(mVarianceMethod, "method", "sketch")

	mRepSplit     = obs.L(mReplicatesTotal, "method", "split-sample")
	mRepJackknife = obs.L(mReplicatesTotal, "method", "jackknife")

	mTierSketch = obs.L(mTierAnswered, "tier", TierAnsweredSketch)
	mTierSample = obs.L(mTierAnswered, "tier", TierAnsweredSample)
	mTierMixed  = obs.L(mTierAnswered, "tier", TierAnsweredMixed)
)

// tierAnsweredMetric maps a TierReport.Answered value to its counter
// series (the label set is closed).
func tierAnsweredMetric(answered string) string {
	switch answered {
	case TierAnsweredSketch:
		return mTierSketch
	case TierAnsweredMixed:
		return mTierMixed
	default:
		return mTierSample
	}
}

// varianceMethodMetric maps a method to its counter series.
func varianceMethodMetric(m VarianceMethod) string {
	switch m {
	case VarNone:
		return mVarMethodNone
	case VarAnalytic:
		return mVarMethodAnalytic
	case VarSplitSample:
		return mVarMethodSplit
	case VarJackknife:
		return mVarMethodJackknife
	case VarSketch:
		return mVarMethodSketch
	default:
		return mVarMethodAuto
	}
}

// recordSynopsis reports the sample volume an estimate consumes: rows and
// sampling units per referenced relation, plus the term count. Label
// construction allocates, so the whole report is skipped for a no-op
// recorder.
func recordSynopsis(rec obs.Recorder, poly algebra.Polynomial, syn *Synopsis) {
	if !obs.Live(rec) {
		return
	}
	rec.Add(mTermsTotal, float64(len(poly.Terms)))
	rec.Set(obs.MetricSynopsisBytes, float64(syn.Bytes()))
	for _, rel := range poly.RelationNames() {
		rs, ok := syn.rels[rel]
		if !ok {
			continue
		}
		rec.Add(obs.L(mSamplesRows, "rel", rel), float64(rs.n))
		rec.Add(obs.L(mSamplesUnits, "rel", rel), float64(rs.m))
	}
}
