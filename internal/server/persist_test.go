package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// startSnapServer starts a daemon with a snapshot directory and returns
// it with its base URL and a shutdown func; restart tests shut servers
// down explicitly mid-test rather than via t.Cleanup, because the next
// server must open the same directory after the previous one released it.
func startSnapServer(t *testing.T, dir string) (*Server, string, func()) {
	t.Helper()
	s := New(Config{Addr: "127.0.0.1:0", SnapshotDir: dir})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	done := false
	stop := func() {
		if done {
			return
		}
		done = true
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}
	t.Cleanup(stop)
	return s, "http://" + s.Addr(), stop
}

// goldenRequests is the estimate matrix the restore contract is held to:
// every mode the service exposes, at one and four workers. The deadline
// entries use a budget far beyond what the 2000-row dataset needs, so
// sample exhaustion — not the wall clock — ends every run and the result
// is a pure function of the seed.
func goldenRequests() []EstimateRequest {
	const q = "count(join(R1, R2, on a = a))"
	var reqs []EstimateRequest
	for _, workers := range []int{1, 4} {
		reqs = append(reqs,
			EstimateRequest{Query: q, Synopsis: "main", Seed: 3, Workers: workers},
			EstimateRequest{Query: q, Synopsis: "main", Seed: 3, Workers: workers, Variance: "analytic", Confidence: 0.99},
			EstimateRequest{Query: q, Synopsis: "main", Mode: "sequential", TargetRelErr: 0.2, Seed: 5, Workers: workers},
			EstimateRequest{Query: q, Synopsis: "main", Mode: "deadline", BudgetMS: 30_000, Seed: 5, Workers: workers, TimeoutMS: 60_000},
			EstimateRequest{Query: "count(R1)", Synopsis: "live", Seed: 3, Workers: workers},
		)
	}
	return reqs
}

// streamEvents posts n alternating insert/delete events to the "live"
// incremental synopsis, deterministically derived from the offset so a
// test can append distinct batches across server generations.
func streamEvents(t *testing.T, base string, offset, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := StreamRequest{
			Op:       "insert",
			Relation: "R1",
			Tuple:    []string{fmt.Sprint((offset + i) % 37), fmt.Sprint(100_000 + offset + i)},
		}
		if i%5 == 4 {
			// Delete a tuple inserted earlier in this same batch.
			ev.Op = "delete"
			ev.Tuple = []string{fmt.Sprint((offset + i - 2) % 37), fmt.Sprint(100_000 + offset + i - 2)}
		}
		status, raw := postJSON(t, base+"/v1/synopses/live/stream", ev)
		if status != http.StatusOK {
			t.Fatalf("stream event %d: %d %s", offset+i, status, raw)
		}
	}
}

// collectGoldens runs the golden matrix and returns the raw response
// bodies, failing on any non-200.
func collectGoldens(t *testing.T, base string) [][]byte {
	t.Helper()
	reqs := goldenRequests()
	out := make([][]byte, len(reqs))
	for i, req := range reqs {
		status, raw := postJSON(t, base+"/v1/estimate", req)
		if status != http.StatusOK {
			t.Fatalf("golden %d (%+v): %d %s", i, req, status, raw)
		}
		out[i] = raw
	}
	return out
}

// TestSnapshotRestoreByteIdentity is the satellite-2 gate: build static
// and incremental synopses, snapshot, restart a fresh server on the same
// directory, and hold every estimate — plain, sequential, and deadline,
// at workers 1 and 4 — to byte identity with its pre-restart golden. The
// snapshot stores creation specs, not reservoir state: identity holds
// because the static redraw is deterministic and the incremental
// reservoir is reproduced by replaying the append-only stream log.
func TestSnapshotRestoreByteIdentity(t *testing.T) {
	dir := t.TempDir()

	// Generation A: dataset, one static and one incremental synopsis,
	// 40 streamed events, goldens, an explicit mid-run snapshot.
	sA, baseA, stopA := startSnapServer(t, dir)
	setupDataset(t, baseA, 2000, 200)
	status, raw := postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 16,
	})
	if status != http.StatusCreated {
		t.Fatalf("create live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 0, 40)
	goldens := collectGoldens(t, baseA)

	status, raw = postJSON(t, baseA+"/v1/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, raw)
	}
	var snap SnapshotResponse
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Relations != 2 || snap.Synopses != 2 {
		t.Fatalf("snapshot counted %d relations / %d synopses, want 2/2", snap.Relations, snap.Synopses)
	}
	if got := sA.col.Metrics().Counter(mWALEvents).Value(); got != 40 {
		t.Errorf("WAL events = %v, want 40", got)
	}
	stopA() // Shutdown saves again and releases the directory.

	// Generation B restores and must answer byte-identically.
	sB, baseB, stopB := startSnapServer(t, dir)
	if got := sB.col.Metrics().Counter(mSnapshotRestores).Value(); got != 1 {
		t.Fatalf("restore counter = %v, want 1", got)
	}
	if got := sB.col.Metrics().Counter(mWALReplayed).Value(); got != 40 {
		t.Errorf("WAL replayed = %v, want 40", got)
	}
	reqs := goldenRequests()
	for i, raw := range collectGoldens(t, baseB) {
		if !bytes.Equal(goldens[i], raw) {
			t.Errorf("golden %d (%+v) differs after restore:\npre  %s\npost %s", i, reqs[i], goldens[i], raw)
		}
	}

	// Generation B keeps streaming; the log must extend, not fork: C
	// replays A's events plus B's and reproduces B's answers exactly.
	streamEvents(t, baseB, 40, 25)
	liveReq := EstimateRequest{Query: "count(R1)", Synopsis: "live", Seed: 3}
	status, liveB := postJSON(t, baseB+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("live estimate on B: %d %s", status, liveB)
	}
	stopB()

	sC, baseC, _ := startSnapServer(t, dir)
	if got := sC.col.Metrics().Counter(mWALReplayed).Value(); got != 65 {
		t.Errorf("generation C WAL replayed = %v, want 65", got)
	}
	status, liveC := postJSON(t, baseC+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("live estimate on C: %d %s", status, liveC)
	}
	if !bytes.Equal(liveB, liveC) {
		t.Errorf("incremental estimate forked across restart:\nB %s\nC %s", liveB, liveC)
	}

	// The restored catalog is intact, with tenancy and kinds preserved.
	infos := synInfos(t, baseC)
	if infos["main"].Kind != "static" || infos["live"].Kind != "incremental" {
		t.Errorf("restored synopses lost their kinds: %+v", infos)
	}
}

// TestRestoreIgnoresTenantQuota pins quota-vs-recovery: a synopsis
// legitimately created under a looser tenant quota must survive a
// restart under a tighter one. Quotas gate new admissions only — a
// startup veto would turn a config change into data loss.
func TestRestoreIgnoresTenantQuota(t *testing.T) {
	dir := t.TempDir()
	sA := New(Config{Addr: "127.0.0.1:0", SnapshotDir: dir})
	if err := sA.Start(); err != nil {
		t.Fatal(err)
	}
	baseA := "http://" + sA.Addr()
	setupDataset(t, baseA, 2000, 200) // "main": 2×200 int-pair rows resident
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart with a quota far below "main"'s resident bytes: the restore
	// must still succeed, and the quota must still bind new creations.
	sB := New(Config{Addr: "127.0.0.1:0", SnapshotDir: dir, TenantSynopsisBytes: 100})
	if err := sB.Start(); err != nil {
		t.Fatalf("restore under tight quota failed startup: %v", err)
	}
	baseB := "http://" + sB.Addr()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sB.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if _, ok := synInfos(t, baseB)["main"]; !ok {
		t.Fatal("main did not survive the restart")
	}
	status, raw := postJSON(t, baseB+"/v1/synopses/fresh", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 50}, Seed: 2,
	})
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("new create under tight quota: want 413, got %d %s", status, raw)
	}
}

// TestSnapshotWithoutDirRejected pins the config gate: POST /v1/snapshot
// on a server with no snapshot directory is a 400, not a crash or a
// silent no-op.
func TestSnapshotWithoutDirRejected(t *testing.T) {
	_, base := startServer(t, Config{})
	if status, raw := postJSON(t, base+"/v1/snapshot", nil); status != http.StatusBadRequest {
		t.Fatalf("snapshot without dir: want 400, got %d %s", status, raw)
	}
}

// TestRestoreEmptyDirIsFreshStart pins cold boot: a snapshot directory
// with no manifest restores nothing and the server starts empty.
func TestRestoreEmptyDirIsFreshStart(t *testing.T) {
	s, base, _ := startSnapServer(t, t.TempDir())
	if got := s.col.Metrics().Counter(mSnapshotRestores).Value(); got != 0 {
		t.Errorf("restore counter = %v, want 0", got)
	}
	status, raw := getBody(t, base+"/v1/synopses")
	if status != http.StatusOK {
		t.Fatalf("list: %d %s", status, raw)
	}
	var infos []SynopsisInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Errorf("fresh server has synopses: %+v", infos)
	}
}
