package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// deleteReq issues a DELETE and returns the status and raw body.
func deleteReq(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestDeleteRelationAndSynopsis drives the deletion endpoints the sharded
// coordinator's fanout rollback depends on: a synopsis pins its base
// relations (409), unknown names 404, and a deleted name is free for
// re-registration — the property that unwedges a retried registration.
func TestDeleteRelationAndSynopsis(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 500, 50)

	// R1 is pinned by the "main" synopsis.
	status, raw := deleteReq(t, base+"/v1/relations/R1")
	if status != http.StatusConflict {
		t.Fatalf("delete pinned relation: %d %s, want 409", status, raw)
	}
	if !strings.Contains(string(raw), "referenced by synopsis") {
		t.Errorf("pinned-relation error does not name the synopsis: %s", raw)
	}

	if status, raw := deleteReq(t, base+"/v1/relations/nope"); status != http.StatusNotFound {
		t.Errorf("delete unknown relation: %d %s, want 404", status, raw)
	}
	if status, raw := deleteReq(t, base+"/v1/synopses/nope"); status != http.StatusNotFound {
		t.Errorf("delete unknown synopsis: %d %s, want 404", status, raw)
	}

	// Dropping the synopsis unpins the relation.
	status, raw = deleteReq(t, base+"/v1/synopses/main")
	if status != http.StatusOK {
		t.Fatalf("delete synopsis: %d %s", status, raw)
	}
	var del DeleteResponse
	if err := json.Unmarshal(raw, &del); err != nil || del.Deleted != "main" {
		t.Errorf("delete body = %s, want {\"deleted\":\"main\"}", raw)
	}
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusNotFound {
		t.Errorf("estimate against deleted synopsis: %d %s, want 404", status, raw)
	}

	status, raw = deleteReq(t, base+"/v1/relations/R1")
	if status != http.StatusOK {
		t.Fatalf("delete unpinned relation: %d %s", status, raw)
	}
	status, raw = getBody(t, base+"/v1/relations")
	if status != http.StatusOK || strings.Contains(string(raw), `"R1"`) {
		t.Errorf("relation listing after delete: %d %s", status, raw)
	}

	// The name is free again: a re-upload under it succeeds.
	resp, err := http.Post(base+"/v1/relations/R1", "text/csv", strings.NewReader("a,b\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("re-upload after delete: %d, want 201", resp.StatusCode)
	}
}

// TestDeleteSynopsisSurvivesRestart pins the WAL "drop" record: the
// stream log carries the full history — create, events, drop — so a
// restore replays the deletion and converges on the acknowledged state
// instead of resurrecting the synopsis, and a recreation under the same
// name replays on top of the drop.
func TestDeleteSynopsisSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, baseA, stopA := startSnapServer(t, dir)
	setupDataset(t, baseA, 500, 50)
	status, raw := postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 16,
	})
	if status != http.StatusCreated {
		t.Fatalf("create live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 0, 10)
	if status, raw := deleteReq(t, baseA+"/v1/synopses/live"); status != http.StatusOK {
		t.Fatalf("delete live: %d %s", status, raw)
	}

	// Recreate under the same name with a different seed and stream a
	// distinct batch: replay must apply create → events → drop → create →
	// events in order, ending at exactly this second incarnation.
	status, raw = postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 23, Capacity: 8,
	})
	if status != http.StatusCreated {
		t.Fatalf("recreate live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 50, 15)
	liveReq := EstimateRequest{Query: "count(R1)", Synopsis: "live", Seed: 3}
	status, goldenLive := postJSON(t, baseA+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("live estimate: %d %s", status, goldenLive)
	}
	if status, raw := deleteReq(t, baseA+"/v1/synopses/main"); status != http.StatusOK {
		t.Fatalf("delete main: %d %s", status, raw)
	}
	stopA()

	_, baseB, _ := startSnapServer(t, dir)
	infos := synInfos(t, baseB)
	if _, ok := infos["main"]; ok {
		t.Error("deleted synopsis main resurrected across restart")
	}
	if _, ok := infos["live"]; !ok {
		t.Fatal("recreated synopsis live did not survive restart")
	}
	status, restoredLive := postJSON(t, baseB+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("restored live estimate: %d %s", status, restoredLive)
	}
	if string(goldenLive) != string(restoredLive) {
		t.Errorf("recreated synopsis forked across restart:\npre  %s\npost %s", goldenLive, restoredLive)
	}
}
