package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"relest/internal/obs"
)

// TestTraversalNamesRejected pins the upload/create name gate: a
// URL-escaped traversal name ("..%2F..%2Fx" reaches PathValue as
// "../../x" under the Go 1.22 mux) must be rejected with 400 before it
// can ever become a file name inside -snapshot-dir, and the same charset
// rule covers synopsis names and plain separators.
func TestTraversalNamesRejected(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snap")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, base, _ := startSnapServer(t, snapDir)

	for _, name := range []string{"..%2F..%2Fescape", "..%2fescape", "a%2Fb", "%2e%2e", "a.b", "sp%20ace"} {
		status, raw := postJSON(t, base+"/v1/relations/"+name, nil)
		if status != http.StatusBadRequest {
			t.Errorf("upload %q: want 400, got %d %s", name, status, raw)
		}
		status, raw = postJSON(t, base+"/v1/synopses/"+name, SynopsisRequest{Relations: map[string]int{"R1": 10}})
		if status != http.StatusBadRequest {
			t.Errorf("create synopsis %q: want 400, got %d %s", name, status, raw)
		}
	}

	// Names inside the charset still work end to end, and a snapshot
	// writes only inside its own directory.
	setupDataset(t, base, 500, 50)
	if status, raw := postJSON(t, base+"/v1/snapshot", nil); status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, raw)
	}
	escaped, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(escaped) != 0 {
		t.Errorf("snapshot wrote outside its directory: %v", escaped)
	}
}

// TestRestoreRejectsManifestTraversal pins the read side of the same
// gate: a hand-edited manifest with a traversal relation name must fail
// the restore instead of opening files outside the snapshot directory.
func TestRestoreRejectsManifestTraversal(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"version":1,"relations":[{"name":"../../../etc/passwd","columns":[{"name":"a","kind":"int"}],"rows":0}],"synopses":[]}`
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := newRegistry(nil)
	if _, _, err := reg.restoreSnapshot(dir); err == nil || !strings.Contains(err.Error(), "invalid relation name") {
		t.Fatalf("restore of traversal manifest: want invalid-name error, got %v", err)
	}
}

// TestTornWALTailRecovered pins crash recovery at the exact point the
// durability contract protects: a crash between a WAL record's write and
// its fsync leaves a partial last line. The restore must keep every
// acknowledged (fully synced) event, drop the torn tail, truncate it
// away so later appends stay decodable, and count the repair.
func TestTornWALTailRecovered(t *testing.T) {
	dir := t.TempDir()

	sA, baseA, stopA := startSnapServer(t, dir)
	setupDataset(t, baseA, 500, 50)
	status, raw := postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 16,
	})
	if status != http.StatusCreated {
		t.Fatalf("create live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 0, 20)
	_ = sA
	stopA()

	// Simulate the torn write: a record that got its bytes partially to
	// disk but never its fsync acknowledgment.
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"synopsis":"live","op":"ins`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sB, baseB, stopB := startSnapServer(t, dir)
	if got := sB.col.Metrics().Counter(mWALTorn).Value(); got != 1 {
		t.Errorf("torn-WAL counter = %v, want 1", got)
	}
	if got := sB.col.Metrics().Counter(mWALReplayed).Value(); got != 20 {
		t.Errorf("WAL replayed = %v, want 20", got)
	}
	// The log must keep extending cleanly after the truncation: stream
	// more, estimate, restart again, and hold the answer to byte identity.
	streamEvents(t, baseB, 20, 15)
	liveReq := EstimateRequest{Query: "count(R1)", Synopsis: "live", Seed: 3}
	status, liveB := postJSON(t, baseB+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("live estimate on B: %d %s", status, liveB)
	}
	stopB()

	sC, baseC, _ := startSnapServer(t, dir)
	if got := sC.col.Metrics().Counter(mWALTorn).Value(); got != 0 {
		t.Errorf("generation C torn-WAL counter = %v, want 0 (tail was truncated)", got)
	}
	if got := sC.col.Metrics().Counter(mWALReplayed).Value(); got != 35 {
		t.Errorf("generation C WAL replayed = %v, want 35", got)
	}
	status, liveC := postJSON(t, baseC+"/v1/estimate", liveReq)
	if status != http.StatusOK {
		t.Fatalf("live estimate on C: %d %s", status, liveC)
	}
	if !bytes.Equal(liveB, liveC) {
		t.Errorf("estimate forked across torn-tail recovery:\nB %s\nC %s", liveB, liveC)
	}
}

// TestWALCreationSurvivesCrash pins creation durability: a synopsis
// created *after* the last snapshot exists only as a WAL creation record,
// and a crash (no shutdown save) must not lose it — the restore replays
// the creation and then its stream events. The crash is simulated by
// restoring the directory into a fresh registry while the live server
// never gets to save again.
func TestWALCreationSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	sA, baseA, _ := startSnapServer(t, dir)
	setupDataset(t, baseA, 500, 50)
	// Snapshot now: the manifest holds the relations and "main", but
	// nothing created afterwards.
	if status, raw := postJSON(t, baseA+"/v1/snapshot", nil); status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, raw)
	}
	status, raw := postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 16,
	})
	if status != http.StatusCreated {
		t.Fatalf("create live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 0, 10)

	col := obs.NewCollector()
	reg := newRegistry(col)
	replayed, restored, err := reg.restoreSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("restore found nothing")
	}
	// 1 creation + 10 stream events; "main"'s creation record is a
	// duplicate of the manifest rebuild and replays as a no-op.
	if replayed != 11 {
		t.Errorf("replayed = %d, want 11", replayed)
	}
	if got := col.Metrics().Counter(mWALSkipped).Value(); got != 0 {
		t.Errorf("skipped counter = %v, want 0", got)
	}
	e, ok := reg.synopsis("live")
	if !ok {
		t.Fatal("post-snapshot synopsis lost on crash restore")
	}
	want, _ := sA.reg.synopsis("live")
	if !reflect.DeepEqual(e.info("live"), want.info("live")) {
		t.Errorf("restored synopsis diverged:\nlive     %+v\nrestored %+v", want.info("live"), e.info("live"))
	}
	if _, ok := reg.synopsis("main"); !ok {
		t.Error("manifest synopsis missing after crash restore")
	}
}

// TestWALSkippedEventsCounted pins the loss-visibility contract: events
// whose synopsis can never become resident (its base relations were not
// snapshotted, so the WAL creation record cannot rebuild it) are counted
// in relestd_wal_skipped_total instead of silently vanishing or failing
// the whole restore.
func TestWALSkippedEventsCounted(t *testing.T) {
	dir := t.TempDir()
	sA, baseA, _ := startSnapServer(t, dir)
	setupDataset(t, baseA, 500, 50)
	status, raw := postJSON(t, baseA+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 16,
	})
	if status != http.StatusCreated {
		t.Fatalf("create live: %d %s", status, raw)
	}
	streamEvents(t, baseA, 0, 5)
	_ = sA

	// No snapshot was ever saved: the WAL alone cannot rebuild "live"
	// (its base relations are gone), so the creation and its 5 events are
	// lost — but visibly, and without refusing to start.
	col := obs.NewCollector()
	reg := newRegistry(col)
	replayed, restored, err := reg.restoreSnapshot(dir)
	if err != nil {
		t.Fatalf("restore with unrecoverable WAL entries failed: %v", err)
	}
	if !restored || replayed != 0 {
		t.Errorf("restored/replayed = %v/%d, want true/0", restored, replayed)
	}
	// 2 creations ("main", "live") + 5 events, all unrecoverable.
	if got := col.Metrics().Counter(mWALSkipped).Value(); got != 7 {
		t.Errorf("skipped counter = %v, want 7", got)
	}
}

// TestConcurrentCreatesRespectQuota pins the admission serialization: N
// racing creates for one tenant must never leave the tenant over its
// synopsis-byte quota, however they interleave — the quota check and the
// publish are one atomic unit under admitMu.
func TestConcurrentCreatesRespectQuota(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	// Measure the candidate size with a probe, then leave head room for
	// exactly one more synopsis of the same spec.
	spec := SynopsisRequest{Kind: "static", Relations: map[string]int{"R1": 100, "R2": 100}, Seed: 31}
	if status, raw := postJSON(t, base+"/v1/synopses/probe", spec); status != http.StatusCreated {
		t.Fatalf("probe create: %d %s", status, raw)
	}
	probe, _ := s.reg.synopsis("probe")
	one := probe.entryBytes()
	if one <= 0 {
		t.Fatalf("probe bytes = %d", one)
	}
	s.reg.tenantBudget = int64(s.reg.tenantSynopsisBytes(defaultTenant) + one + one/2)

	const racers = 8
	statuses := make([]int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postJSON(t, fmt.Sprintf("%s/v1/synopses/racer-%d", base, i), spec)
		}(i)
	}
	wg.Wait()

	created, rejected := 0, 0
	for i, status := range statuses {
		switch status {
		case http.StatusCreated:
			created++
		case http.StatusRequestEntityTooLarge:
			rejected++
		default:
			t.Errorf("racer %d: unexpected status %d", i, status)
		}
	}
	if created != 1 || rejected != racers-1 {
		t.Errorf("created/rejected = %d/%d, want 1/%d", created, rejected, racers-1)
	}
	if have := s.reg.tenantSynopsisBytes(defaultTenant); int64(have) > s.reg.tenantBudget {
		t.Errorf("tenant over quota after racing creates: %d > %d", have, s.reg.tenantBudget)
	}
}

// TestRebuildUnderEvictionPressure hammers the evicted-entry rebuild
// path while a hostile budget keeps only one synopsis resident at a
// time: every estimate must still answer 200 — a rebuild that loses the
// race with a concurrent eviction retries instead of returning a nil
// synopsis (plain mode) or panicking on Clone (sequential/deadline).
func TestRebuildUnderEvictionPressure(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)
	if status, raw := postJSON(t, base+"/v1/synopses/other", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 200, "R2": 200}, Seed: 21,
	}); status != http.StatusCreated {
		t.Fatalf("create other: %d %s", status, raw)
	}
	// Room for one synopsis, never two: every cross-synopsis reference
	// evicts the other side.
	s.reg.budget = int64(s.reg.synopsisBytes()/2 + 10)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			synopsis := "main"
			if g%2 == 1 {
				synopsis = "other"
			}
			for i := 0; i < 15; i++ {
				req := EstimateRequest{Query: "count(R1)", Synopsis: synopsis, Seed: 3, Variance: "none"}
				if i%3 == 2 {
					req = EstimateRequest{Query: "count(R1)", Synopsis: synopsis, Mode: "sequential", TargetRelErr: 0.5, Seed: 3, Variance: "none"}
				}
				status, raw := postJSON(t, base+"/v1/estimate", req)
				if status != http.StatusOK {
					t.Errorf("goroutine %d iter %d (%s): %d %s", g, i, synopsis, status, raw)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
