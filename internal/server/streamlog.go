package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// walEvent is one logged event, in application order. The log is the
// milvus-msgstream shape reduced to what incremental synopses need: an
// append-only sequence that, replayed from synopsis creation, drives
// each per-synopsis seeded RNG through the identical decision sequence
// and so reconstructs reservoir state exactly. Op "insert"/"delete"
// carries Relation and Tuple; op "create" carries Tenant and Spec and
// records the synopsis creation itself, so a synopsis created after the
// last snapshot (absent from the manifest) still restores; op "drop"
// records a synopsis deletion, so a drop after the last snapshot does
// not resurrect on restore.
type walEvent struct {
	Synopsis string           `json:"synopsis"`
	Op       string           `json:"op"`
	Relation string           `json:"relation,omitempty"`
	Tuple    []string         `json:"tuple,omitempty"`
	Tenant   string           `json:"tenant,omitempty"`
	Spec     *SynopsisRequest `json:"spec,omitempty"`
}

// streamLog is the append-only stream event log: one JSON event per line,
// fsynced per append. Appends happen inside the synopsis entry's critical
// section, so per-synopsis log order always equals application order.
type streamLog struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// walPath is the log's location inside a snapshot directory.
func walPath(dir string) string { return filepath.Join(dir, "wal.jsonl") }

// openStreamLog opens (creating if needed) the append-only log in dir.
func openStreamLog(dir string) (*streamLog, error) {
	f, err := os.OpenFile(walPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening stream log: %w", err)
	}
	return &streamLog{f: f, enc: json.NewEncoder(f)}, nil
}

// append writes one event and syncs it to stable storage before
// acknowledging, so an acknowledged stream update is never lost to a
// crash.
func (l *streamLog) append(ev walEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(ev); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *streamLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// readWAL decodes every event in dir's log, in append order. A missing
// log is an empty history, not an error. A torn final record — a crash
// between append's write and its Sync leaves a partial last line — is
// tolerated, not fatal: every fsync-acknowledged event before it decoded
// fine, which is exactly what the durability contract promised. tornAt
// is the byte offset where the torn record starts (for the caller to
// truncate before appending again), or -1 when the log ended cleanly.
func readWAL(dir string) (events []walEvent, tornAt int64, err error) {
	f, err := os.Open(walPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, -1, fmt.Errorf("opening stream log: %w", err)
	}
	// Read-only handle; the close error carries no data-loss signal.
	defer func() { _ = f.Close() }()
	dec := json.NewDecoder(bufio.NewReader(f))
	var good int64
	for {
		var ev walEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return events, -1, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// Truncation can only produce a proper prefix of a valid
				// record, and every proper prefix of a JSON object fails
				// with ErrUnexpectedEOF — any other decode error means
				// corruption, not a torn write, and stays fatal.
				return events, good, nil
			}
			return nil, -1, fmt.Errorf("decoding stream log: %w", err)
		}
		good = dec.InputOffset()
		events = append(events, ev)
	}
}
