package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// synInfos fetches and decodes /v1/synopses.
func synInfos(t *testing.T, base string) map[string]SynopsisInfo {
	t.Helper()
	status, raw := getBody(t, base+"/v1/synopses")
	if status != http.StatusOK {
		t.Fatalf("list synopses: %d %s", status, raw)
	}
	var infos []SynopsisInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		t.Fatal(err)
	}
	out := map[string]SynopsisInfo{}
	for _, info := range infos {
		out[info.Name] = info
	}
	return out
}

// TestEvictionThenReferenceRebuilds pins the eviction contract this
// service chose: referencing an evicted synopsis transparently rebuilds
// it from its creation spec (never a 404), and the rebuilt estimate is
// byte-identical to the pre-eviction one — the deterministic redraw makes
// eviction invisible to clients.
func TestEvictionThenReferenceRebuilds(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	req := EstimateRequest{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3}
	status, before := postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("pre-eviction estimate: %d %s", status, before)
	}

	// Shrink the budget below the resident bytes and create a second
	// synopsis: "main" is now the LRU entry and must be evicted.
	s.reg.budget = int64(s.reg.synopsisBytes()) + 10
	status, raw := postJSON(t, base+"/v1/synopses/other", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 200, "R2": 200}, Seed: 21,
	})
	if status != http.StatusCreated {
		t.Fatalf("create other: %d %s", status, raw)
	}
	if infos := synInfos(t, base); !infos["main"].Evicted {
		t.Fatalf("main not evicted under budget: %+v", infos)
	}
	if got := s.col.Metrics().Counter(mEvictions).Value(); got < 1 {
		t.Errorf("eviction counter = %v, want ≥ 1", got)
	}

	// Referencing the evicted synopsis answers 200 with identical bytes.
	status, after := postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("post-eviction estimate: %d %s", status, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("rebuilt estimate differs:\npre  %s\npost %s", before, after)
	}
	if got := s.col.Metrics().Counter(mRebuilds).Value(); got < 1 {
		t.Errorf("rebuild counter = %v, want ≥ 1", got)
	}
	if infos := synInfos(t, base); infos["main"].Evicted {
		t.Errorf("main still marked evicted after rebuild: %+v", infos)
	}
}

// TestTenantQueueSlots pins per-tenant admission: with one slot per
// tenant, a tenant's second concurrent estimate is shed with 429 while
// another tenant still gets in; the slot frees once the first request
// finishes.
func TestTenantQueueSlots(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 1, QueueDepth: 8, TenantQueueSlots: 1})
	setupHeavyDataset(t, base)

	slow, err := json.Marshal(EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 1500, Seed: 5, Variance: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func(tenant string, body []byte) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/estimate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Relest-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	results := make(chan int, 1)
	go func() {
		status, _ := post("alice", slow)
		results <- status
	}()
	waitFor(t, 5*time.Second, "alice in flight", func() bool { return s.depth.Load() == 1 })

	status, raw := post("alice", slow)
	if status != http.StatusTooManyRequests {
		t.Fatalf("alice's second request: want 429, got %d %s", status, raw)
	}
	if !strings.Contains(string(raw), "alice") {
		t.Errorf("429 body does not name the tenant: %s", raw)
	}
	if got := s.col.Metrics().Counter(mTenantShed).Value(); got < 1 {
		t.Errorf("tenant shed counter = %v, want ≥ 1", got)
	}

	// A different tenant is not blocked by alice's slot.
	fast, err := json.Marshal(EstimateRequest{Query: "count(R1)", Synopsis: "main", Variance: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if status, raw := post("bob", fast); status != http.StatusOK {
		t.Fatalf("bob's request: want 200, got %d %s", status, raw)
	}

	if status := <-results; status != http.StatusOK {
		t.Fatalf("alice's first request: want 200, got %d", status)
	}
	waitFor(t, 5*time.Second, "slot release", func() bool { return s.depth.Load() == 0 })
	if status, raw := post("alice", fast); status != http.StatusOK {
		t.Fatalf("alice after release: want 200, got %d %s", status, raw)
	}
}

// TestTenantSynopsisByteQuota pins the synopsis byte quota: a creation
// that would push a tenant past its allowance is rejected with 413 and
// leaves no entry behind, while a smaller one (and another tenant's)
// still lands.
func TestTenantSynopsisByteQuota(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200) // "main", owned by the default tenant

	// Pin the quota just above the resident bytes of "main": the default
	// tenant can afford a small synopsis but not a second big one.
	mainBytes := s.reg.synopsisBytes()
	s.reg.tenantBudget = int64(mainBytes + mainBytes/4)

	status, raw := postJSON(t, base+"/v1/synopses/big", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 200, "R2": 200}, Seed: 23,
	})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota create: want 413, got %d %s", status, raw)
	}
	if _, exists := synInfos(t, base)["big"]; exists {
		t.Error("rejected synopsis was registered anyway")
	}
	if got := s.col.Metrics().Counter(mQuotaRejected).Value(); got < 1 {
		t.Errorf("quota rejection counter = %v, want ≥ 1", got)
	}

	// A small synopsis still fits under the default tenant's quota.
	status, raw = postJSON(t, base+"/v1/synopses/small", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 20}, Seed: 23,
	})
	if status != http.StatusCreated {
		t.Fatalf("small create: want 201, got %d %s", status, raw)
	}

	// Another tenant has its own allowance: the same big spec lands.
	body, err := json.Marshal(SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 200, "R2": 200}, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/synopses/carol-big", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Relest-Tenant", "carol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("carol's create: want 201, got %d", resp.StatusCode)
	}
	if info := synInfos(t, base)["carol-big"]; info.Tenant != "carol" {
		t.Errorf("carol-big tenant = %q, want carol", info.Tenant)
	}
}

// batchResp decodes a BatchEstimateResponse body.
func batchResp(t *testing.T, raw []byte) BatchEstimateResponse {
	t.Helper()
	var resp BatchEstimateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return resp
}

// TestBatchEstimatePartialSuccess pins the batch contract: a mix of valid
// and invalid queries answers 200 with per-item statuses mirroring the
// singleton endpoint — valid items carry estimates identical to their
// singleton counterparts (the shared plan cache must not change values),
// invalid items carry the singleton's status and error.
func TestBatchEstimatePartialSuccess(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	queries := []EstimateRequest{
		{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3},
		{Query: "count(join(R1, R2, on a = a))", Synopsis: "nope", Seed: 3},    // 404
		{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 4},    // CSE prefix shared with item 0
		{Query: "count(syntax error", Synopsis: "main"},                        // 400
		{Query: "sum(R1, a)", Synopsis: "main", Mode: "sequential"},            // 400: sequential is count-only
		{Query: "count(R1)", Synopsis: "main", Seed: 3, Variance: "jackknife"}, // different variance path
	}
	status, raw := postJSON(t, base+"/v1/estimate/batch", BatchEstimateRequest{Queries: queries})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	resp := batchResp(t, raw)
	if len(resp.Results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(queries))
	}
	wantStatus := []int{200, 404, 200, 400, 400, 200}
	for i, want := range wantStatus {
		item := resp.Results[i]
		if item.Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, item.Status, want, item.Error)
		}
		if (item.Status == http.StatusOK) != (item.Estimate != nil) {
			t.Errorf("item %d: status %d with estimate=%v", i, item.Status, item.Estimate)
		}
		if item.Status != http.StatusOK && item.Error == "" {
			t.Errorf("item %d: failed without an error message", i)
		}
	}
	if resp.Succeeded != 3 || resp.Failed != 3 {
		t.Errorf("succeeded/failed = %d/%d, want 3/3", resp.Succeeded, resp.Failed)
	}

	// Batched estimates must equal their singleton counterparts exactly.
	for _, i := range []int{0, 2, 5} {
		status, raw := postJSON(t, base+"/v1/estimate", queries[i])
		if status != http.StatusOK {
			t.Fatalf("singleton %d: %d %s", i, status, raw)
		}
		single := estimateResp(t, raw)
		if !reflect.DeepEqual(*resp.Results[i].Estimate, single) {
			t.Errorf("item %d differs from singleton:\nbatch     %+v\nsingleton %+v", i, *resp.Results[i].Estimate, single)
		}
	}

	// The batch was admitted exactly once and recorded as one batch with
	// len(queries) item observations.
	if got := s.col.Metrics().Counter(mBatch).Value(); got != 1 {
		t.Errorf("batch counter = %v, want 1", got)
	}
	if got := s.col.Metrics().Counter(batchQueryMetric(http.StatusOK)).Value(); got != 3 {
		t.Errorf("batch 200-item counter = %v, want 3", got)
	}

	// Validation: an empty batch and an oversized batch are rejected whole.
	if status, raw := postJSON(t, base+"/v1/estimate/batch", BatchEstimateRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty batch: want 400, got %d %s", status, raw)
	}
	over := BatchEstimateRequest{Queries: make([]EstimateRequest, s.cfg.MaxBatchQueries+1)}
	if status, raw := postJSON(t, base+"/v1/estimate/batch", over); status != http.StatusBadRequest {
		t.Errorf("oversized batch: want 400, got %d %s", status, raw)
	}
}

// TestBatchCancellationNoPartialEstimates extends the PR-4 cancellation
// contract to the batched path (the DeadlineCount audit): when the batch
// context dies mid-run, the in-flight deadline estimate aborts between
// sampling rounds and every item — in flight or not yet started — answers
// a cancellation status with no estimate body. A partial estimate must
// never surface through the batch API.
func TestBatchCancellationNoPartialEstimates(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 1})
	setupHeavyDataset(t, base)

	slow := EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 10_000, Seed: 5, Variance: "none",
	}
	body, err := json.Marshal(BatchEstimateRequest{Queries: []EstimateRequest{slow, slow, slow}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()

	// Cancel while the first item is mid-estimation: it has a 10s budget,
	// so anything but a between-rounds abort would hold the worker for
	// seconds.
	waitFor(t, 5*time.Second, "batch admitted", func() bool { return s.depth.Load() == 1 })
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	cancel()
	<-done
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("batch held for %v after cancellation", elapsed)
	}

	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d %s", rec.Code, rec.Body)
	}
	resp := batchResp(t, rec.Body.Bytes())
	if len(resp.Results) != 3 || resp.Succeeded != 0 || resp.Failed != 3 {
		t.Fatalf("results = %+v", resp)
	}
	for i, item := range resp.Results {
		if item.Status != statusClientClosedRequest {
			t.Errorf("item %d: status %d, want %d", i, item.Status, statusClientClosedRequest)
		}
		if item.Estimate != nil {
			t.Errorf("item %d: partial estimate surfaced after cancellation: %+v", i, item.Estimate)
		}
		if item.Error == "" {
			t.Errorf("item %d: cancelled without an error message", i)
		}
	}
	waitFor(t, 5*time.Second, "queue drain", func() bool { return s.depth.Load() == 0 })
}

// TestDeadEntryContextAnswersCancelStatus pins the doEstimate audit fix
// directly: a task whose context is already dead when the worker picks it
// up answers 499/504 — never the misleading "deadline mode needs
// budget_ms" 400 the old budget mapping produced, and never an estimate.
func TestDeadEntryContextAnswersCancelStatus(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	req := EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", Seed: 5, Variance: "none",
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if status, body := s.doEstimate(cancelled, req); status != statusClientClosedRequest {
		t.Errorf("cancelled ctx: status %d (%+v), want %d", status, body, statusClientClosedRequest)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if status, body := s.doEstimate(expired, req); status != http.StatusGatewayTimeout {
		t.Errorf("expired ctx: status %d (%+v), want 504", status, body)
	}

	// Sanity: the same request with a live deadline still succeeds.
	live, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel3()
	if status, body := s.doEstimate(live, req); status != http.StatusOK {
		t.Errorf("live ctx: status %d (%+v), want 200", status, body)
	}
	_ = base
}
