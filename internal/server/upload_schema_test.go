package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

func postCSV(t *testing.T, rawURL, csv string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(rawURL, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestUploadSchemaPinned pins the ?schema= upload contract: the declared
// kinds override inference, so a slice whose data alone would infer a
// different layout (here an integer-looking float column, plus an
// all-empty column that inference can only call string) still registers
// with the source relation's schema. The sharded tier pushes every slice
// this way.
func TestUploadSchemaPinned(t *testing.T) {
	_, base := startServer(t, Config{})

	spec := url.QueryEscape("(a int, x float, note string)")
	status, raw := postCSV(t, base+"/v1/relations/pinned?schema="+spec, "a,x,note\n1,2,\n3,4,\n")
	if status != http.StatusCreated {
		t.Fatalf("pinned upload: %d %s", status, raw)
	}
	var info RelationInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Schema != "(a int, x float, note string)" {
		t.Errorf("pinned schema = %q, want the declared kinds, not the inferred ones", info.Schema)
	}

	// The same body without pinning infers differently — x becomes int and
	// the empty column string — which is exactly the divergence pinning
	// prevents across shard slices.
	status, raw = postCSV(t, base+"/v1/relations/inferred", "a,x,note\n1,2,\n3,4,\n")
	if status != http.StatusCreated {
		t.Fatalf("inferred upload: %d %s", status, raw)
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Schema == "(a int, x float, note string)" {
		t.Error("inference unexpectedly matched the pinned schema; the fixture no longer exercises pinning")
	}

	// A malformed schema fails before any import work.
	status, raw = postCSV(t, base+"/v1/relations/bad?schema="+url.QueryEscape("(a bool)"), "a\n1\n")
	if status != http.StatusBadRequest {
		t.Fatalf("bad schema: want 400, got %d %s", status, raw)
	}

	// Data that violates the pinned kinds fails the import.
	status, raw = postCSV(t, base+"/v1/relations/bad2?schema="+url.QueryEscape("(a int)"), "a\nnot-a-number\n")
	if status != http.StatusBadRequest {
		t.Fatalf("mismatched data: want 400, got %d %s", status, raw)
	}
}
