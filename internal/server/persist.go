package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"relest/internal/relation"
)

// Snapshot layout inside Config.SnapshotDir:
//
//	manifest.json   — relations (name + pinned schema) and synopses
//	                  (name, tenant, creation spec)
//	relations/*.csv — base relation contents, schema-pinned CSV
//	wal.jsonl       — append-only stream log (never truncated by a save)
//
// Restore rebuilds every synopsis from its creation spec rather than
// serializing sample state: static draws are deterministic (seed +
// sorted-name order + identical restored relations), and incremental
// reservoirs are reconstructed by replaying the full WAL through the same
// per-synopsis seeded RNG. Both paths make restored estimates
// byte-identical to pre-snapshot ones.

const manifestName = "manifest.json"

type manifest struct {
	Version   int                `json:"version"`
	Relations []manifestRelation `json:"relations"`
	Synopses  []manifestSynopsis `json:"synopses"`
}

type manifestRelation struct {
	Name string `json:"name"`
	// Columns pins the schema so the CSV re-import parses every cell with
	// its original kind instead of re-inferring (a lossless round-trip:
	// float formatting uses strconv 'g'/-1, which parses back exactly).
	Columns []manifestColumn `json:"columns"`
	Rows    int              `json:"rows"`
}

type manifestColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type manifestSynopsis struct {
	Name   string          `json:"name"`
	Tenant string          `json:"tenant"`
	Spec   SynopsisRequest `json:"spec"`
}

func parseKind(s string) (relation.Kind, error) {
	switch s {
	case "null":
		return relation.KindNull, nil
	case "int":
		return relation.KindInt, nil
	case "float":
		return relation.KindFloat, nil
	case "string":
		return relation.KindString, nil
	default:
		return 0, fmt.Errorf("unknown column kind %q", s)
	}
}

// saveSnapshot persists the registry to dir: every base relation as
// schema-pinned CSV plus a manifest of relation schemas and synopsis
// creation specs. Synopsis sample state is not serialized — the manifest
// spec plus the WAL reconstruct it exactly. The WAL itself is left
// untouched: it is the incremental synopses' full history from creation,
// which replay needs in its entirety.
func (reg *registry) saveSnapshot(dir string) (relations, synopses int, err error) {
	if err := os.MkdirAll(filepath.Join(dir, "relations"), 0o755); err != nil {
		return 0, 0, fmt.Errorf("creating snapshot dir: %w", err)
	}

	reg.mu.RLock()
	rels := make([]*relation.Relation, 0, len(reg.cat))
	for _, r := range reg.cat {
		rels = append(rels, r)
	}
	type namedEntry struct {
		name  string
		entry *synopsisEntry
	}
	entries := make([]namedEntry, 0, len(reg.syns))
	for name, e := range reg.syns {
		entries = append(entries, namedEntry{name, e})
	}
	reg.mu.RUnlock()

	var m manifest
	m.Version = 1
	for _, r := range rels {
		cols := make([]manifestColumn, 0, r.Schema().Len())
		for i := 0; i < r.Schema().Len(); i++ {
			c := r.Schema().Column(i)
			cols = append(cols, manifestColumn{Name: c.Name, Kind: c.Kind.String()})
		}
		m.Relations = append(m.Relations, manifestRelation{Name: r.Name(), Columns: cols, Rows: r.Len()})
		f, err := os.Create(filepath.Join(dir, "relations", r.Name()+".csv"))
		if err != nil {
			return 0, 0, fmt.Errorf("creating relation snapshot: %w", err)
		}
		if err := relation.ExportCSV(r, f); err != nil {
			_ = f.Close()
			return 0, 0, fmt.Errorf("exporting relation %q: %w", r.Name(), err)
		}
		if err := f.Close(); err != nil {
			return 0, 0, fmt.Errorf("closing relation snapshot: %w", err)
		}
	}
	for _, ne := range entries {
		m.Synopses = append(m.Synopses, manifestSynopsis{Name: ne.name, Tenant: ne.entry.tenant, Spec: ne.entry.spec})
	}
	sortManifest(&m)

	// Write the manifest last and atomically (rename over the old one), so
	// a crash mid-save leaves the previous snapshot intact and loadable.
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("creating manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		_ = f.Close()
		return 0, 0, fmt.Errorf("encoding manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return 0, 0, fmt.Errorf("syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, fmt.Errorf("closing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return 0, 0, fmt.Errorf("publishing manifest: %w", err)
	}
	return len(m.Relations), len(m.Synopses), nil
}

// sortManifest orders manifest sections by name so the file is
// deterministic for a given registry state.
func sortManifest(m *manifest) {
	sortBy(m.Relations, func(r manifestRelation) string { return r.Name })
	sortBy(m.Synopses, func(s manifestSynopsis) string { return s.Name })
}

func sortBy[T any](xs []T, key func(T) string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) < key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// restoreSnapshot loads dir into an empty registry: relations are
// re-imported with their pinned schemas, synopses are rebuilt from their
// creation specs (manifest first, then WAL-logged creations the manifest
// predates), and the WAL is replayed into the incremental ones. Returns
// the number of WAL events replayed; a dir with neither a manifest nor
// WAL events is an empty snapshot, not an error. A torn trailing WAL
// record (crash between write and fsync) is dropped and truncated away;
// events that cannot apply (their synopsis is unrecoverable) are counted
// in relestd_wal_skipped_total rather than failing the whole restore.
func (reg *registry) restoreSnapshot(dir string) (replayed int, restored bool, err error) {
	var m manifest
	haveManifest := true
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if !os.IsNotExist(err) {
			return 0, false, fmt.Errorf("reading manifest: %w", err)
		}
		haveManifest = false
	} else if err := json.Unmarshal(raw, &m); err != nil {
		return 0, false, fmt.Errorf("decoding manifest: %w", err)
	}

	events, tornAt, err := readWAL(dir)
	if err != nil {
		return 0, false, err
	}
	if tornAt >= 0 {
		// Drop the torn tail before the server reopens the log for
		// appending: new records written after the partial bytes would
		// corrupt every later replay.
		if terr := os.Truncate(walPath(dir), tornAt); terr != nil {
			return 0, false, fmt.Errorf("truncating torn stream log tail: %w", terr)
		}
		reg.rec.Add(mWALTorn, 1)
	}
	if !haveManifest && len(events) == 0 {
		return 0, false, nil
	}

	for _, mr := range m.Relations {
		// The name becomes a path component below: a hand-edited manifest
		// must not be able to read files outside the snapshot directory.
		if !validName(mr.Name) {
			return 0, false, errBadName("relation", mr.Name)
		}
		cols := make([]relation.Column, 0, len(mr.Columns))
		for _, mc := range mr.Columns {
			kind, err := parseKind(mc.Kind)
			if err != nil {
				return 0, false, fmt.Errorf("relation %q: %v", mr.Name, err)
			}
			cols = append(cols, relation.Column{Name: mc.Name, Kind: kind})
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return 0, false, fmt.Errorf("relation %q: %v", mr.Name, err)
		}
		f, err := os.Open(filepath.Join(dir, "relations", mr.Name+".csv"))
		if err != nil {
			return 0, false, fmt.Errorf("opening relation snapshot: %w", err)
		}
		rel, err := relation.ImportCSV(mr.Name, f, schema)
		_ = f.Close()
		if err != nil {
			return 0, false, fmt.Errorf("importing relation %q: %w", mr.Name, err)
		}
		if rel.Len() != mr.Rows {
			return 0, false, fmt.Errorf("relation %q: snapshot has %d rows, manifest says %d", mr.Name, rel.Len(), mr.Rows)
		}
		if err := reg.addRelation(rel); err != nil {
			return 0, false, err
		}
	}
	// Quotas gate new admissions, not recovery: a synopsis legitimately
	// created under an earlier (looser) tenant quota must survive a
	// restart under a tighter one — a startup veto would turn a config
	// change into data loss. The global byte budget still applies, and
	// losslessly: enforceBudget evicts cold entries, which rebuild
	// transparently on next reference. Restore runs before the listener
	// starts, so the temporary lift cannot race an admission. The
	// replaying flag covers both the manifest rebuilds and the WAL replay
	// below: creations and events already in the log must not re-log.
	quota := reg.tenantBudget
	reg.tenantBudget = 0
	reg.replaying = true
	defer func() {
		reg.tenantBudget = quota
		reg.replaying = false
	}()
	for _, ms := range m.Synopses {
		tenant := ms.Tenant
		if tenant == "" {
			tenant = defaultTenant
		}
		if err := reg.addSynopsis(ms.Name, tenant, ms.Spec); err != nil {
			return 0, false, fmt.Errorf("rebuilding synopsis %q: %w", ms.Name, err)
		}
	}

	skipped := 0
	for i, ev := range events {
		if ev.Op == "create" {
			if _, exists := reg.synopsis(ev.Synopsis); exists {
				// Already rebuilt from the manifest (or an earlier creation
				// record for the same name): nothing to replay.
				continue
			}
			if ev.Spec == nil {
				// A creation logged by an older binary without spec
				// support; unrecoverable, like its events below.
				skipped++
				continue
			}
			tenant := ev.Tenant
			if tenant == "" {
				tenant = defaultTenant
			}
			if cerr := reg.addSynopsis(ev.Synopsis, tenant, *ev.Spec); cerr != nil {
				// Typically a base relation that was never snapshotted:
				// the synopsis cannot rebuild, so its stream events below
				// skip too. Counted, not fatal — the rest of the restore
				// stays usable.
				skipped++
				continue
			}
			replayed++
			continue
		}
		if ev.Op == "drop" {
			// The synopsis was deleted after this log's creation record (or
			// after the manifest that rebuilt it): replay the removal so the
			// restored registry converges on the acknowledged state. The
			// replaying flag suppresses re-logging the drop.
			if _, exists := reg.synopsis(ev.Synopsis); !exists {
				skipped++
				continue
			}
			if _, derr := reg.removeSynopsis(ev.Synopsis); derr != nil {
				return replayed, true, fmt.Errorf("replaying stream log event %d: %w", i, derr)
			}
			replayed++
			continue
		}
		e, ok := reg.synopsis(ev.Synopsis)
		if !ok {
			// The synopsis never became resident (creation skipped above,
			// or an event predating spec logging): count the loss so
			// operators can see it instead of silently dropping it.
			skipped++
			continue
		}
		if err := e.apply(reg, ev.Synopsis, StreamRequest{Op: ev.Op, Relation: ev.Relation, Tuple: ev.Tuple}); err != nil {
			return replayed, true, fmt.Errorf("replaying stream log event %d: %w", i, err)
		}
		replayed++
	}
	if skipped > 0 {
		reg.rec.Add(mWALSkipped, float64(skipped))
	}
	return replayed, true, nil
}
