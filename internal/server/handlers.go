package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/query"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// statusClientClosedRequest is the nginx-convention status for "client
// cancelled the request"; the client is usually gone, but the code keeps
// access logs and metrics honest.
const statusClientClosedRequest = 499

// maxBodyBytes caps JSON request bodies; CSV uploads are capped separately
// by Config.MaxUploadBytes (default defaultMaxUploadBytes).
const (
	maxBodyBytes          = 64 << 20
	defaultMaxUploadBytes = 64 << 20
)

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/relations/{name}", s.handleUploadRelation)
	mux.HandleFunc("DELETE /v1/relations/{name}", s.handleDeleteRelation)
	mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("POST /v1/synopses/{name}", s.handleCreateSynopsis)
	mux.HandleFunc("DELETE /v1/synopses/{name}", s.handleDeleteSynopsis)
	mux.HandleFunc("GET /v1/synopses", s.handleListSynopses)
	mux.HandleFunc("POST /v1/synopses/{name}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/estimate/batch", s.handleBatchEstimate)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleUploadRelation registers the CSV request body as a relation. The
// import streams record-by-record into column storage; MaxUploadBytes
// bounds the raw bytes read (MaxBytesReader additionally closes the
// connection on oversized bodies instead of draining them).
func (s *Server) handleUploadRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// The Go 1.22 mux matches the *escaped* path, so "..%2F..%2Fx"
	// reaches PathValue as "../../x"; under -snapshot-dir the name
	// becomes a file name inside the snapshot directory, so anything
	// outside the safe charset is rejected before the import starts.
	if !validName(name) {
		_ = writeError(w, http.StatusBadRequest, errBadName("relation", name).Error())
		return
	}
	// An explicit ?schema= pins the column kinds instead of inferring them
	// from the data. The sharded tier depends on this: a shard's slice can
	// be empty or degenerate (say, all-integer values in a float column),
	// and inference over the slice alone would give shards divergent
	// layouts for the same relation.
	var schema *relation.Schema
	if spec := r.URL.Query().Get("schema"); spec != "" {
		var err error
		if schema, err = relation.ParseSchema(spec); err != nil {
			_ = writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	rel, err := relation.ImportCSVOptions(name, body, relation.ImportOptions{Schema: schema, MaxBytes: s.cfg.MaxUploadBytes})
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("importing CSV: %v", err))
		return
	}
	if err := s.reg.addRelation(rel); err != nil {
		_ = writeError(w, http.StatusConflict, err.Error())
		return
	}
	s.col.Set(mRelationBytes, float64(s.reg.relationBytes()))
	_ = writeJSON(w, http.StatusCreated, RelationInfo{Name: name, Rows: rel.Len(), Schema: rel.Schema().String()})
}

// handleDeleteRelation drops a registered relation. Refused with 409
// while any synopsis references it — delete the synopses first.
func (s *Server) handleDeleteRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if status, err := s.reg.removeRelation(name); err != nil {
		_ = writeError(w, status, err.Error())
		return
	}
	s.col.Set(mRelationBytes, float64(s.reg.relationBytes()))
	_ = writeJSON(w, http.StatusOK, DeleteResponse{Deleted: name})
}

// handleDeleteSynopsis drops a named synopsis. In-flight estimates that
// already resolved it finish over the sample they hold; later requests
// answer 404.
func (s *Server) handleDeleteSynopsis(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if status, err := s.reg.removeSynopsis(name); err != nil {
		_ = writeError(w, status, err.Error())
		return
	}
	_ = writeJSON(w, http.StatusOK, DeleteResponse{Deleted: name})
}

func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, s.reg.relations())
}

// GenerateDataset synthesizes the relations a GenerateRequest describes
// (cmd/relgen's kinds), applying the endpoint's defaults. It is exported
// for the sharded coordinator (internal/cluster), which must register
// datasets identical to a single node's for the same request.
func GenerateDataset(req GenerateRequest) ([]*relation.Relation, error) {
	if req.N <= 0 {
		req.N = 10_000
	}
	if req.Domain <= 0 {
		req.Domain = 1000
	}
	//lint:ignore floateq an exactly-absent JSON field decodes to exactly 0, the default sentinel
	if req.Z1 == 0 {
		req.Z1 = 0.5
	}
	//lint:ignore floateq an exactly-absent JSON field decodes to exactly 0, the default sentinel
	if req.Z2 == 0 {
		req.Z2 = 1.0
	}
	if req.Regions <= 0 {
		req.Regions = 10
	}
	if req.Departments <= 0 {
		req.Departments = 25
	}
	rng := sampling.NewSource(req.Seed).Rand(0)
	var outputs []*relation.Relation
	switch req.Kind {
	case "zipf-pair":
		var corr workload.Correlation
		switch req.Correlation {
		case "positive":
			corr = workload.Positive
		case "", "independent":
			corr = workload.Independent
		case "negative":
			corr = workload.Negative
		default:
			return nil, fmt.Errorf("unknown correlation %q", req.Correlation)
		}
		r1, r2 := workload.JoinPair(rng, workload.JoinPairSpec{
			Z1: req.Z1, Z2: req.Z2, Domain: req.Domain, N1: req.N, N2: req.N,
			Correlation: corr, Smooth: req.Smooth,
		})
		outputs = []*relation.Relation{r1, r2}
	case "clustered":
		r1, r2 := workload.ClusteredPair(rng, workload.ClusterSpec{
			Regions: req.Regions, Domain: req.Domain, N1: req.N, N2: req.N,
		})
		outputs = []*relation.Relation{r1, r2}
	case "company":
		emp, dept := workload.Company(rng, req.N, req.Departments)
		outputs = []*relation.Relation{emp, dept}
	default:
		return nil, fmt.Errorf("unknown kind %q (want zipf-pair, clustered or company)", req.Kind)
	}
	return outputs, nil
}

// handleGenerate synthesizes a deterministic dataset (cmd/relgen's
// kinds) and registers the produced relations.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	outputs, err := GenerateDataset(req)
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	infos := make([]RelationInfo, 0, len(outputs))
	for _, rel := range outputs {
		if err := s.reg.addRelation(rel); err != nil {
			_ = writeError(w, http.StatusConflict, err.Error())
			return
		}
		infos = append(infos, RelationInfo{Name: rel.Name(), Rows: rel.Len(), Schema: rel.Schema().String()})
	}
	s.col.Set(mRelationBytes, float64(s.reg.relationBytes()))
	_ = writeJSON(w, http.StatusCreated, infos)
}

func (s *Server) handleCreateSynopsis(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		_ = writeError(w, http.StatusBadRequest, errBadName("synopsis", name).Error())
		return
	}
	var req SynopsisRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.reg.addSynopsis(name, requestTenant(r), req); err != nil {
		status := http.StatusBadRequest
		var qerr *quotaError
		if errors.As(err, &qerr) {
			status = qerr.status
		}
		_ = writeError(w, status, err.Error())
		return
	}
	entry, _ := s.reg.synopsis(name)
	_ = writeJSON(w, http.StatusCreated, entry.info(name))
}

// requestTenant resolves the tenant a request is accounted to.
func requestTenant(r *http.Request) string {
	if t := r.Header.Get("X-Relest-Tenant"); t != "" {
		return t
	}
	return defaultTenant
}

func (s *Server) handleListSynopses(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, s.reg.synopses())
}

// handleStream applies one insert/delete event to an incremental
// synopsis.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.reg.synopsis(name)
	if !ok {
		_ = writeError(w, http.StatusNotFound, fmt.Sprintf("no synopsis %q", name))
		return
	}
	var req StreamRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := entry.apply(s.reg, name, req); err != nil {
		_ = writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	_ = writeJSON(w, http.StatusOK, entry.info(name))
}

// handleEstimate admits the request into the bounded queue, waits for a
// worker to run it, and writes the outcome. The ResponseWriter never
// leaves this goroutine.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		s.col.Add(reqMetric(http.StatusBadRequest), 1)
		return
	}
	if req.Mode == "" {
		req.Mode = "plain"
	}
	// Label values must stay a closed set: the mode is client input, and
	// an arbitrary string here would let clients mint unbounded metric
	// series. Unknown modes are rejected later with a 400; their latency
	// is recorded under one shared label.
	mode := req.Mode
	switch mode {
	case "plain", "sequential", "deadline":
	default:
		mode = "invalid"
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	t := &task{
		ctx:    ctx,
		do:     func(ctx context.Context) (int, any) { return s.doEstimate(ctx, req) },
		tenant: requestTenant(r),
		done:   make(chan struct{}),
	}
	if ok, status, msg := s.admit(t); !ok {
		s.col.Add(reqMetric(status), 1)
		_ = writeError(w, status, msg)
		return
	}
	<-t.done

	if t.status == http.StatusGatewayTimeout || t.status == statusClientClosedRequest {
		s.col.Add(mCancelled, 1)
	}
	s.col.Add(reqMetric(t.status), 1)
	s.col.Observe(latencyMetric(mode), time.Since(start).Seconds())
	_ = writeJSON(w, t.status, t.body)
}

// handleBatchEstimate admits a whole batch of estimation queries as one
// task: one queue slot, one tenant slot, one worker, and one shared plan
// cache, so admission control and plan-compilation/CSE work are amortized
// across the batch. The batch answers 200 whenever it ran; per-query
// failures are reported per item (partial success).
func (s *Server) handleBatchEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchEstimateRequest
	if !decodeBody(w, r, &req) {
		s.col.Add(reqMetric(http.StatusBadRequest), 1)
		return
	}
	if len(req.Queries) == 0 {
		s.col.Add(reqMetric(http.StatusBadRequest), 1)
		_ = writeError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		s.col.Add(reqMetric(http.StatusBadRequest), 1)
		_ = writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d queries; the server caps batches at %d", len(req.Queries), s.cfg.MaxBatchQueries))
		return
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	t := &task{
		ctx:    ctx,
		do:     func(ctx context.Context) (int, any) { return s.doBatch(ctx, req) },
		tenant: requestTenant(r),
		done:   make(chan struct{}),
	}
	if ok, status, msg := s.admit(t); !ok {
		s.col.Add(reqMetric(status), 1)
		_ = writeError(w, status, msg)
		return
	}
	<-t.done

	s.col.Add(mBatch, 1)
	s.col.Add(reqMetric(t.status), 1)
	s.col.Observe(latencyMetric("batch"), time.Since(start).Seconds())
	_ = writeJSON(w, t.status, t.body)
}

// doBatch runs the batch's queries in order on one worker, all sharing
// one plan cache. A query that fails does not abort the batch — its item
// records the status the singleton endpoint would have answered — but
// once the batch context dies, every remaining item answers the
// cancellation status immediately: the ctx check at the top of
// doEstimateShared guarantees no sampling starts (and therefore no
// partial estimate is ever surfaced) after a cancel.
func (s *Server) doBatch(ctx context.Context, req BatchEstimateRequest) (int, any) {
	plans := algebra.NewPlanCacheRec(s.col)
	resp := BatchEstimateResponse{Results: make([]BatchItemResult, len(req.Queries))}
	for i := range req.Queries {
		q := req.Queries[i]
		if q.Mode == "" {
			q.Mode = "plain"
		}
		qctx := ctx
		var qcancel context.CancelFunc
		if q.TimeoutMS > 0 {
			// A per-item timeout bounds that item only; the batch keeps
			// running afterwards.
			qctx, qcancel = context.WithTimeout(ctx, time.Duration(q.TimeoutMS)*time.Millisecond)
		}
		status, body := s.doEstimateShared(qctx, q, plans)
		if qcancel != nil {
			qcancel()
		}
		item := BatchItemResult{Status: status}
		if status == http.StatusOK {
			er, ok := body.(EstimateResponse)
			if !ok {
				status = http.StatusInternalServerError
				item = BatchItemResult{Status: status, Error: "internal: unexpected estimate body shape"}
				resp.Failed++
			} else {
				item.Estimate = &er
				resp.Succeeded++
			}
		} else {
			if eresp, ok := body.(ErrorResponse); ok {
				item.Error = eresp.Error
			}
			resp.Failed++
		}
		s.col.Add(batchQueryMetric(status), 1)
		resp.Results[i] = item
	}
	return http.StatusOK, resp
}

// handleSnapshot persists the current registry (relations, synopsis
// specs) to the configured snapshot directory. The WAL is already on
// disk; a save never truncates it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotDir == "" {
		_ = writeError(w, http.StatusBadRequest, "snapshots are disabled: the server has no snapshot directory")
		return
	}
	rels, syns, err := s.reg.saveSnapshot(s.cfg.SnapshotDir)
	if err != nil {
		_ = writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.col.Add(mSnapshotSaves, 1)
	_ = writeJSON(w, http.StatusOK, SnapshotResponse{Dir: s.cfg.SnapshotDir, Relations: rels, Synopses: syns})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.col.Metrics().WritePrometheus(w); err != nil {
		// Too late for a status change; the broken pipe speaks for itself.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}

// decodeBody parses a JSON request body into v, answering 400 on
// malformed input. Unknown fields are rejected so typos fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return false
	}
	return true
}

// synopsisSchemas adapts a Synopsis into a query.SchemaProvider: queries
// bind against the sample relations' schemas, which match the bases'.
type synopsisSchemas struct{ syn *estimator.Synopsis }

func (p synopsisSchemas) Schema(name string) (*relation.Schema, bool) {
	r, ok := p.syn.Relation(name)
	if !ok {
		return nil, false
	}
	return r.Schema(), true
}

// doEstimate runs one estimation request on a worker goroutine and
// returns the HTTP status and response body. Everything here is
// deterministic for a pinned seed: the response is byte-identical to
// what the library produces directly.
func (s *Server) doEstimate(ctx context.Context, req EstimateRequest) (int, any) {
	return s.doEstimateShared(ctx, req, nil)
}

// doEstimateShared is doEstimate with an optional shared plan cache: the
// batch endpoint passes one cache for its whole run so compiled plans and
// materialized CSE prefixes are reused across the batch's queries (the
// cache keys on term and relation-instance identity, so sharing never
// changes values).
func (s *Server) doEstimateShared(ctx context.Context, req EstimateRequest, plans *algebra.PlanCache) (int, any) {
	// A context that is already dead — the request deadline expired or the
	// client cancelled while the task sat in the queue, or an earlier batch
	// item consumed the batch budget — must answer with the cancellation
	// status before any sampling work, never with a confusing validation
	// error (the deadline path below would otherwise see a non-positive
	// budget and answer 400) and never with a partial estimate.
	if err := ctx.Err(); err != nil {
		return estimateErrorStatus(err), ErrorResponse{Error: err.Error()}
	}
	if req.Query == "" {
		return http.StatusBadRequest, ErrorResponse{Error: "no query given"}
	}
	if req.Synopsis == "" {
		return http.StatusBadRequest, ErrorResponse{Error: "no synopsis given"}
	}
	entry, ok := s.reg.synopsis(req.Synopsis)
	if !ok {
		return http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no synopsis %q", req.Synopsis)}
	}
	switch req.Mode {
	case "plain", "sequential", "deadline":
	default:
		return http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown mode %q (want plain, sequential or deadline)", req.Mode)}
	}
	syn, err := s.reg.estimationSynopsis(req.Synopsis, entry, req.Mode)
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	st, err := query.Parse(req.Query, synopsisSchemas{syn})
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	if st.IsDistinct() || st.Agg == "group" {
		return http.StatusBadRequest, ErrorResponse{Error: "the estimation service supports count, sum and avg queries"}
	}
	variance, err := parseVariance(req.Variance)
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	tierPolicy, err := estimator.ParseTierPolicy(req.TierPolicy)
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	tiered := tierPolicy != estimator.TierDefault || req.Precision > 0
	if tiered && req.Mode != "plain" {
		return http.StatusBadRequest, ErrorResponse{Error: "tier_policy and precision apply to plain mode only"}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.EstimatorWorkers
	}
	opts := estimator.Options{
		Variance:   variance,
		Confidence: req.Confidence,
		Seed:       req.Seed,
		Workers:    workers,
		Recorder:   s.col,
		Plans:      plans,
	}

	resp := EstimateResponse{Query: req.Query, Synopsis: req.Synopsis, Mode: req.Mode}
	switch req.Mode {
	case "plain":
		var est EstimateResult
		var err error
		if tiered {
			est, resp.Tier, err = s.tieredEstimate(ctx, st, syn, opts, tierPolicy, req.Precision)
		} else {
			est, err = s.plainEstimate(ctx, st, syn, opts)
		}
		if err != nil {
			return estimateErrorStatus(err), ErrorResponse{Error: err.Error()}
		}
		resp.Estimate = est
		resp.SamplesConsumed, err = consumedSamples(st.Expr, syn)
		if err != nil {
			return http.StatusInternalServerError, ErrorResponse{Error: err.Error()}
		}
	case "sequential":
		if st.Agg != "count" {
			return http.StatusBadRequest, ErrorResponse{Error: "sequential mode supports count queries only"}
		}
		sopts := estimator.SequentialOptions{
			TargetRelErr: req.TargetRelErr,
			Confidence:   req.Confidence,
			Estimate:     opts,
			Seed:         req.Seed,
		}
		if sopts.TargetRelErr <= 0 {
			sopts.TargetRelErr = 0.05
		}
		res, err := estimator.SequentialCountContext(ctx, st.Expr, syn, sopts)
		if err != nil {
			return estimateErrorStatus(err), ErrorResponse{Error: err.Error()}
		}
		pilot := toResult(res.Pilot)
		met := res.TargetMet
		resp.Estimate = toResult(res.Final)
		resp.Pilot = &pilot
		resp.TargetMet = &met
		resp.SamplesConsumed = res.SampleSizes
	case "deadline":
		if st.Agg != "count" {
			return http.StatusBadRequest, ErrorResponse{Error: "deadline mode supports count queries only"}
		}
		budget := time.Duration(req.BudgetMS) * time.Millisecond
		remaining := time.Duration(0)
		if dl, ok := ctx.Deadline(); ok {
			remaining = time.Until(dl)
		}
		if budget <= 0 {
			// No explicit budget: spend 90% of the request's remaining
			// wall clock sampling and keep the rest for the response.
			budget = remaining * 9 / 10
		} else if remaining > 0 && budget > remaining {
			budget = remaining * 9 / 10
		}
		if budget <= 0 {
			if _, hasDeadline := ctx.Deadline(); hasDeadline {
				// The request had a deadline but nothing of it remains (it
				// expired after the entry check above): that is a timeout,
				// not a malformed request.
				return http.StatusGatewayTimeout, ErrorResponse{Error: context.DeadlineExceeded.Error()}
			}
			return http.StatusBadRequest, ErrorResponse{Error: "deadline mode needs budget_ms or a request deadline"}
		}
		dopts := estimator.DeadlineOptions{Budget: budget, Estimate: opts, Seed: req.Seed}
		//lint:ignore detflow deadline mode spends the request's remaining wall clock by contract: the budget bounds how many rounds run, and the round count rides on the trace span name
		est, steps, err := estimator.DeadlineCountContext(ctx, st.Expr, syn, dopts)
		if err != nil {
			return estimateErrorStatus(err), ErrorResponse{Error: err.Error()}
		}
		resp.Estimate = toResult(est)
		resp.Rounds = len(steps)
		if len(steps) > 0 {
			resp.SamplesConsumed = steps[len(steps)-1].SampleSizes
		}
	}
	return http.StatusOK, resp
}

// plainEstimate dispatches count/sum/avg with cancellation.
func (s *Server) plainEstimate(ctx context.Context, st *query.Statement, syn *estimator.Synopsis, opts estimator.Options) (EstimateResult, error) {
	switch st.Agg {
	case "count":
		est, err := estimator.CountContext(ctx, st.Expr, syn, opts)
		if err != nil {
			return EstimateResult{}, err
		}
		return toResult(est), nil
	case "sum":
		est, err := estimator.SumContext(ctx, st.Expr, st.AggCol, syn, opts)
		if err != nil {
			return EstimateResult{}, err
		}
		return toResult(est), nil
	case "avg":
		res, err := estimator.AvgContext(ctx, st.Expr, st.AggCol, syn, opts)
		if err != nil {
			return EstimateResult{}, err
		}
		// AVG is a ratio of two estimates; it has no CI of its own, so
		// only the point value and the underlying term count are set.
		return EstimateResult{
			Value:          res.Avg,
			VarianceMethod: estimator.VarNone.String(),
			Terms:          res.Count.Terms,
		}, nil
	default:
		return EstimateResult{}, fmt.Errorf("unsupported aggregate %q", st.Agg)
	}
}

// tieredEstimate routes a plain query through the tier planner: the
// request opted in via tier_policy/precision, so the response reports
// which tier(s) answered. Building the handle also builds the synopsis's
// sketch tier (idempotent and mutex-guarded, so sharing the static
// synopsis across concurrent requests stays safe). Aggregates are always
// sample-tier; under the "sketch" policy they fail with 422 rather than
// silently downgrading.
func (s *Server) tieredEstimate(ctx context.Context, st *query.Statement, syn *estimator.Synopsis, opts estimator.Options, policy estimator.TierPolicy, precision float64) (EstimateResult, string, error) {
	h := estimator.NewEstimator(syn,
		estimator.WithOptions(opts),
		estimator.WithTierPolicy(policy),
		estimator.WithPrecision(precision))
	req := estimator.Request{Expr: st.Expr, Col: st.AggCol}
	switch st.Agg {
	case "count":
		res, err := h.Count(ctx, req)
		if err != nil {
			return EstimateResult{}, "", err
		}
		return toResult(res.Estimate), res.Tier.Answered, nil
	case "sum":
		res, err := h.Sum(ctx, req)
		if err != nil {
			return EstimateResult{}, "", err
		}
		return toResult(res.Estimate), res.Tier.Answered, nil
	case "avg":
		res, rep, err := h.Avg(ctx, req)
		if err != nil {
			return EstimateResult{}, "", err
		}
		return EstimateResult{
			Value:          res.Avg,
			VarianceMethod: estimator.VarNone.String(),
			Terms:          res.Count.Terms,
		}, rep.Answered, nil
	default:
		return EstimateResult{}, "", fmt.Errorf("unsupported aggregate %q", st.Agg)
	}
}

// toResult converts a library estimate to the wire shape (NaN variance
// becomes an absent field).
func toResult(est estimator.Estimate) EstimateResult {
	out := EstimateResult{
		Value:          est.Value,
		StdErr:         est.StdErr,
		Lo:             est.Lo,
		Hi:             est.Hi,
		Confidence:     est.Confidence,
		VarianceMethod: est.VarianceMethod.String(),
		Terms:          est.Terms,
	}
	if !isNaN(est.Variance) {
		v := est.Variance
		out.Variance = &v
	}
	return out
}

// isNaN is math.IsNaN without the import weight; NaN is the only value
// that differs from itself.
func isNaN(v float64) bool {
	return v != v // floateq recognizes the NaN self-comparison idiom
}

// consumedSamples reports the per-relation sample sizes a plain estimate
// read, derived from the normalized polynomial's relation set.
func consumedSamples(e *algebra.Expr, syn *estimator.Synopsis) (map[string]int, error) {
	poly, err := algebra.Normalize(e)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, name := range poly.RelationNames() {
		n, ok := syn.SampleSize(name)
		if !ok {
			return nil, fmt.Errorf("relation %q missing from synopsis", name)
		}
		out[name] = n
	}
	return out, nil
}

// estimateErrorStatus maps estimation failures to HTTP statuses:
// request-deadline expiry is 504, client cancellation 499, anything
// else (binding, sample-size, schema errors) 422.
func estimateErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// parseVariance maps the wire name to the library method.
func parseVariance(name string) (estimator.VarianceMethod, error) {
	switch name {
	case "", "auto":
		return estimator.VarAuto, nil
	case "none":
		return estimator.VarNone, nil
	case "analytic":
		return estimator.VarAnalytic, nil
	case "split-sample":
		return estimator.VarSplitSample, nil
	case "jackknife":
		return estimator.VarJackknife, nil
	default:
		return 0, fmt.Errorf("unknown variance method %q", name)
	}
}
