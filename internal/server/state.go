package server

import (
	"fmt"
	"sort"
	"sync"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
)

// registry is the daemon's mutable state: registered base relations and
// named synopses. A coarse RWMutex guards the maps; per-synopsis locks
// serialize stream updates and snapshotting so estimation never observes
// a half-applied event.
type registry struct {
	mu   sync.RWMutex
	cat  algebra.MapCatalog
	syns map[string]*synopsisEntry
}

// synopsisEntry is one named synopsis. Exactly one of static/inc is set.
type synopsisEntry struct {
	mu   sync.Mutex
	kind string
	// static is a drawn synopsis shared by plain estimates (read-only
	// concurrent access) and cloned per sequential/deadline request so
	// sample extensions stay private.
	static *estimator.Synopsis
	// inc is an incrementally-maintained synopsis; estimates run over
	// Snapshot() taken under mu.
	inc *estimator.Incremental
}

func newRegistry() *registry {
	return &registry{cat: algebra.MapCatalog{}, syns: map[string]*synopsisEntry{}}
}

// addRelation registers r under its name; duplicate names are an error.
func (reg *registry) addRelation(r *relation.Relation) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.cat[r.Name()]; dup {
		return fmt.Errorf("relation %q already registered", r.Name())
	}
	reg.cat[r.Name()] = r
	return nil
}

// relationBytes sums the resident column storage of registered relations.
func (reg *registry) relationBytes() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	total := 0
	for _, r := range reg.cat {
		total += r.Bytes()
	}
	return total
}

// synopsisBytes sums the resident sample storage of registered synopses.
// Static synopses hold zero-copy sample views (index vectors); incremental
// ones report their reservoir snapshots only when estimated, so they
// contribute nothing here.
func (reg *registry) synopsisBytes() int {
	reg.mu.RLock()
	entries := make([]*synopsisEntry, 0, len(reg.syns))
	for _, e := range reg.syns {
		entries = append(entries, e)
	}
	reg.mu.RUnlock()
	total := 0
	for _, e := range entries {
		e.mu.Lock()
		if e.static != nil {
			total += e.static.Bytes()
		}
		e.mu.Unlock()
	}
	return total
}

// relations lists registered relations in sorted-name order.
func (reg *registry) relations() []RelationInfo {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]RelationInfo, 0, len(reg.cat))
	for _, r := range reg.cat {
		out = append(out, RelationInfo{Name: r.Name(), Rows: r.Len(), Schema: r.Schema().String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// addSynopsis creates the named synopsis from the request spec. Static
// draws iterate the spec's relations in sorted-name order so the seed
// pins the synopsis exactly (sampling consumes a shared stream).
func (reg *registry) addSynopsis(name string, req SynopsisRequest) error {
	if len(req.Relations) == 0 {
		return fmt.Errorf("synopsis %q: no relations given", name)
	}
	names := make([]string, 0, len(req.Relations))
	for rel := range req.Relations {
		names = append(names, rel)
	}
	sort.Strings(names)

	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.syns[name]; dup {
		return fmt.Errorf("synopsis %q already exists", name)
	}
	entry := &synopsisEntry{kind: req.Kind}
	switch req.Kind {
	case "", "static":
		entry.kind = "static"
		rng := sampling.NewSource(req.Seed).Rand(0)
		syn := estimator.NewSynopsis()
		for _, rel := range names {
			r, ok := reg.cat[rel]
			if !ok {
				return fmt.Errorf("synopsis %q: relation %q not registered", name, rel)
			}
			n := req.Relations[rel]
			if n < 1 {
				return fmt.Errorf("synopsis %q: sample size %d for %q (want ≥ 1)", name, n, rel)
			}
			if n > r.Len() {
				n = r.Len()
			}
			if err := syn.AddDrawn(r, n, rng); err != nil {
				return fmt.Errorf("synopsis %q: %v", name, err)
			}
		}
		entry.static = syn
	case "incremental":
		capacity := req.Capacity
		if capacity <= 0 {
			capacity = 1000
		}
		inc := estimator.NewIncrementalWithOptions(estimator.IncrementalOptions{
			Capacity: capacity, Seed: req.Seed,
		})
		for _, rel := range names {
			r, ok := reg.cat[rel]
			if !ok {
				return fmt.Errorf("synopsis %q: relation %q not registered", name, rel)
			}
			if err := inc.Track(rel, r.Schema()); err != nil {
				return fmt.Errorf("synopsis %q: %v", name, err)
			}
		}
		entry.inc = inc
	default:
		return fmt.Errorf("synopsis %q: unknown kind %q (want static or incremental)", name, req.Kind)
	}
	reg.syns[name] = entry
	return nil
}

// synopsis returns the named entry.
func (reg *registry) synopsis(name string) (*synopsisEntry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.syns[name]
	return e, ok
}

// synopses lists synopsis infos in sorted-name order.
func (reg *registry) synopses() []SynopsisInfo {
	reg.mu.RLock()
	names := make([]string, 0, len(reg.syns))
	for name := range reg.syns {
		names = append(names, name)
	}
	reg.mu.RUnlock()
	sort.Strings(names)
	out := make([]SynopsisInfo, 0, len(names))
	for _, name := range names {
		e, ok := reg.synopsis(name)
		if !ok {
			continue
		}
		out = append(out, e.info(name))
	}
	return out
}

// info snapshots the entry's current per-relation sample sizes.
func (e *synopsisEntry) info(name string) SynopsisInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	sizes := map[string]int{}
	switch {
	case e.static != nil:
		for _, rel := range e.static.Names() {
			n, _ := e.static.SampleSize(rel)
			sizes[rel] = n
		}
	case e.inc != nil:
		for _, rel := range e.incNames() {
			n, _ := e.inc.SampleSize(rel)
			sizes[rel] = n
		}
	}
	return SynopsisInfo{Name: name, Kind: e.kind, Relations: sizes}
}

// incNames lists the incremental synopsis's tracked relations via a
// snapshot (Incremental does not expose its name set directly).
func (e *synopsisEntry) incNames() []string {
	syn, err := e.inc.Snapshot()
	if err != nil {
		return nil
	}
	return syn.Names()
}

// apply feeds one stream event to an incremental synopsis.
func (e *synopsisEntry) apply(reg *registry, req StreamRequest) error {
	if e.inc == nil {
		return fmt.Errorf("synopsis is %s; stream updates need kind incremental", e.kind)
	}
	reg.mu.RLock()
	r, ok := reg.cat[req.Relation]
	reg.mu.RUnlock()
	if !ok {
		return fmt.Errorf("relation %q not registered", req.Relation)
	}
	schema := r.Schema()
	if len(req.Tuple) != schema.Len() {
		return fmt.Errorf("tuple arity %d != schema arity %d for %q", len(req.Tuple), schema.Len(), req.Relation)
	}
	tup := make(relation.Tuple, schema.Len())
	for i, s := range req.Tuple {
		if s == "" {
			tup[i] = relation.Null()
			continue
		}
		v, err := relation.ParseValue(s, schema.Column(i).Kind)
		if err != nil {
			return fmt.Errorf("tuple column %d: %v", i, err)
		}
		tup[i] = v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch req.Op {
	case "insert":
		return e.inc.Insert(req.Relation, tup)
	case "delete":
		return e.inc.Delete(req.Relation, tup)
	default:
		return fmt.Errorf("unknown op %q (want insert or delete)", req.Op)
	}
}

// estimationSynopsis resolves the synopsis an estimate should run over.
// Static plain estimates share the stored synopsis (estimation is
// read-only); sequential and deadline modes get a private clone because
// they extend samples in place. Incremental synopses are snapshotted
// under the entry lock and support plain mode only: a snapshot holds
// samples without base relations, so it cannot be extended.
func (e *synopsisEntry) estimationSynopsis(mode string) (*estimator.Synopsis, error) {
	if e.inc != nil {
		if mode != "plain" {
			return nil, fmt.Errorf("mode %q needs a static synopsis (incremental snapshots cannot extend their samples)", mode)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.inc.Snapshot()
	}
	if mode == "plain" {
		return e.static, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.static.Clone(), nil
}
